"""Quickstart: one operator() call from geometry to vectorized SpMV.

Run:  python examples/quickstart.py [image_size]

Walks the library's core loop in ~40 lines:
1. ask :func:`repro.operator` for the parallel-beam CT operator in the
   paper's CSCV formats (built once, then served from the persistent
   cache as zero-copy memory-mapped loads),
2. run the vectorized SpMV and check it against the CSR reference,
3. print the numbers the paper cares about: R_nnzE, GFLOP/s, memory.
"""

import sys

import numpy as np

from repro import CSCVParams, ParallelBeamGeometry, operator
from repro.bench.harness import measure_format


def main(image_size: int = 64) -> None:
    print(f"building {image_size}x{image_size} parallel-beam CT operator ...")
    geom = ParallelBeamGeometry.for_image(image_size, 2 * image_size)
    print(f"  {geom.describe()}")

    params = CSCVParams(s_vvec=16, s_imgb=16, s_vxg=2)
    z = operator(geom, fmt="cscv-z", params=params).fmt
    m = operator(geom, fmt="cscv-m", params=params).fmt
    csr = operator(geom, fmt="csr").fmt
    print(f"  nnz = {z.nnz:,}")
    print(f"  zero-padding rate R_nnzE = {z.r_nnze:.3f} (paper: 0.25-0.45)")
    print(f"  VxG index volume vs CSC  = {z.index_compression_vs_csc():.3f}")

    x = np.linspace(0.5, 1.5, z.shape[1], dtype=np.float32)
    y_ref = csr.spmv(x)
    for name, fmt in (("CSCV-Z", z), ("CSCV-M", m)):
        y = fmt.spmv(x)
        rel = np.abs(y - y_ref).max() / np.abs(y_ref).max()
        rec = measure_format(fmt, iterations=20, max_seconds=1.0)
        mem_mib = fmt.memory_bytes()["total"] / 2**20
        print(
            f"  {name}: max rel err vs CSR = {rel:.2e} | "
            f"{rec.gflops:6.2f} GFLOP/s | matrix stream {mem_mib:6.1f} MiB"
        )

    rec_csr = measure_format(csr, iterations=20, max_seconds=1.0)
    print(f"  CSR baseline: {rec_csr.gflops:6.2f} GFLOP/s")
    best = max(
        measure_format(z, iterations=20, max_seconds=1.0).gflops,
        measure_format(m, iterations=20, max_seconds=1.0).gflops,
    )
    print(f"\nCSCV speedup over CSR: {best / rec_csr.gflops:.2f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
