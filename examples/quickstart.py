"""Quickstart: build a CT matrix, convert to CSCV, run and verify SpMV.

Run:  python examples/quickstart.py [image_size]

Walks the library's core loop in ~40 lines:
1. generate a parallel-beam CT system matrix (the integral operator),
2. convert it to the paper's CSCV format (both CSCV-Z and CSCV-M),
3. run the vectorized SpMV and check it against the CSR reference,
4. print the numbers the paper cares about: R_nnzE, GFLOP/s, memory.
"""

import sys

import numpy as np

from repro import CSCVMMatrix, CSCVParams, CSCVZMatrix, build_ct_matrix
from repro.bench.harness import measure_format
from repro.sparse import CSRMatrix


def main(image_size: int = 64) -> None:
    print(f"building {image_size}x{image_size} parallel-beam CT matrix ...")
    coo, geom = build_ct_matrix(image_size, num_views=2 * image_size, dtype=np.float32)
    print(f"  {geom.describe()}")
    print(f"  nnz = {coo.nnz:,}")

    params = CSCVParams(s_vvec=16, s_imgb=16, s_vxg=2)
    print(f"\nconverting to CSCV with {params} ...")
    z = CSCVZMatrix.from_ct(coo, geom, params)
    m = CSCVMMatrix.from_data(z.data)  # shares the converted arrays
    print(f"  zero-padding rate R_nnzE = {z.r_nnze:.3f} (paper: 0.25-0.45)")
    print(f"  VxG index volume vs CSC  = {z.index_compression_vs_csc():.3f}")

    x = np.linspace(0.5, 1.5, coo.shape[1], dtype=np.float32)
    y_ref = CSRMatrix.from_coo_matrix(coo).spmv(x)
    for name, fmt in (("CSCV-Z", z), ("CSCV-M", m)):
        y = fmt.spmv(x)
        rel = np.abs(y - y_ref).max() / np.abs(y_ref).max()
        rec = measure_format(fmt, iterations=20, max_seconds=1.0)
        mem_mib = fmt.memory_bytes()["total"] / 2**20
        print(
            f"  {name}: max rel err vs CSR = {rel:.2e} | "
            f"{rec.gflops:6.2f} GFLOP/s | matrix stream {mem_mib:6.1f} MiB"
        )

    rec_csr = measure_format(CSRMatrix.from_coo_matrix(coo), iterations=20,
                             max_seconds=1.0)
    print(f"  CSR baseline: {rec_csr.gflops:6.2f} GFLOP/s")
    best = max(
        measure_format(z, iterations=20, max_seconds=1.0).gflops,
        measure_format(m, iterations=20, max_seconds=1.0).gflops,
    )
    print(f"\nCSCV speedup over CSR: {best / rec_csr.gflops:.2f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
