"""CSCV parameter selection, the paper's Section V-D procedure.

Run:  python examples/parameter_sweep.py [image_size]

Sweeps (S_VVec, S_ImgB, S_VxG), prints the R_nnzE / memory / GFLOP/s
grids (the data behind Figs 8-9), applies the paper's selection rule
(best single-thread combination for CSCV-Z, lowest-traffic/best
multi-thread for CSCV-M) and shows that the chosen triple transfers to a
*different* matrix without retuning — the paper's "no case-by-case
parameter selection" claim.
"""

import sys

import numpy as np

from repro import CSCVMMatrix, CSCVZMatrix, autotune_parameters, build_ct_matrix
from repro.bench.harness import measure_format
from repro.utils.tables import Table


def main(image_size: int = 64) -> None:
    coo, geom = build_ct_matrix(image_size, num_views=2 * image_size, dtype=np.float32)
    print(f"tuning matrix: {coo.shape}, nnz {coo.nnz:,}")

    result = autotune_parameters(
        coo, geom, scorer="measure", iterations=8,
        s_vvec_grid=(4, 8, 16), s_imgb_grid=(8, 16, 32), s_vxg_grid=(1, 2, 4),
    )

    table = Table(
        headers=["S_VVec", "S_ImgB", "S_VxG", "R_nnzE", "Z GF", "M GF", "M MiB"],
        fmt=".2f", title="parameter sweep",
    )
    for p in result.points:
        table.add_row(
            p.params.s_vvec, p.params.s_imgb, p.params.s_vxg,
            p.r_nnze, p.gflops_z, p.gflops_m, p.memory_m / 2**20,
        )
    table.mark_extremes(4)
    table.mark_extremes(5)
    print(table.render())
    print(f"\nselected for CSCV-Z: {result.best_z}")
    print(f"selected for CSCV-M: {result.best_m}")

    # transferability: apply the tuned triple to a different matrix
    other_size = image_size + image_size // 2
    coo2, geom2 = build_ct_matrix(other_size, num_views=2 * other_size, dtype=np.float32)
    z = CSCVZMatrix.from_ct(coo2, geom2, result.best_z)
    m = CSCVMMatrix.from_ct(coo2, geom2, result.best_m)
    gz = measure_format(z, iterations=10, max_seconds=1.0).gflops
    gm = measure_format(m, iterations=10, max_seconds=1.0).gflops
    print(
        f"\ntransferred to a {other_size}x{other_size} matrix without retuning: "
        f"CSCV-Z {gz:.2f} GF, CSCV-M {gm:.2f} GF "
        f"(R_nnzE {z.r_nnze:.3f} / {m.r_nnze:.3f})"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
