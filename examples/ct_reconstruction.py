"""Iterative CT reconstruction of the Shepp-Logan phantom through CSCV.

Run:  python examples/ct_reconstruction.py [image_size]

The paper's motivating application: reconstruct an image from its
sinogram with SpMV-heavy iterative solvers (SIRT, CGLS, blocked ART) plus
the FBP analytic reference, all through the one `repro.reconstruct`
facade over the solver registry, and report image quality + where the
time goes.  An ASCII rendering of the phantom and the best
reconstruction is printed at the end.
"""

import sys

import numpy as np

from repro import CSCVParams, ParallelBeamGeometry, operator, reconstruct
from repro.geometry.phantom import shepp_logan
from repro.recon import psnr, relative_error

_RAMP = " .:-=+*#%@"


def ascii_image(img: np.ndarray, width: int = 48) -> str:
    """Downsample + render an image with a 10-glyph density ramp."""
    n = img.shape[0]
    step = max(1, n // width)
    small = img[::step, ::step]
    lo, hi = small.min(), small.max()
    span = (hi - lo) or 1.0
    rows = []
    for r in small:
        rows.append("".join(_RAMP[int((v - lo) / span * 9)] for v in r))
    return "\n".join(rows)


def main(image_size: int = 64) -> None:
    geom = ParallelBeamGeometry.for_image(image_size, 2 * image_size)
    truth = shepp_logan(image_size).ravel()

    # built once, then served from the persistent operator cache
    op = operator(geom, fmt="cscv-z", params=CSCVParams(8, 16, 2),
                  dtype=np.float64)
    print(f"matrix {op.shape[0]}x{op.shape[1]}, nnz {op.fmt.nnz:,}")

    sinogram = op.forward(truth)
    # mild Poisson-style measurement noise
    rng = np.random.default_rng(0)
    noisy = sinogram + rng.normal(0.0, 0.01 * sinogram.max(), sinogram.shape)

    runs = [
        ("fbp", {}),
        ("sirt", {"iterations": 60}),
        ("cgls", {"iterations": 25}),
        ("art", {"iterations": 30, "relax": 0.8}),
    ]
    best = None
    for solver, params in runs:
        res = reconstruct(op, noisy, solver=solver, geom=geom, **params)
        x = res.image
        err = relative_error(x, truth)
        label = f"{solver} x{res.iterations}" if res.iterations else solver
        print(f"  {label:15s} rel.err {err:.4f}  psnr {psnr(x, truth):6.2f} dB  "
              f"({res.wall_seconds:5.2f}s, stop: {res.stop_reason})")
        if best is None or err < best[1]:
            best = (label, err, x)

    name, err, x = best
    print(f"\nground truth {image_size}x{image_size}:")
    print(ascii_image(truth.reshape(image_size, image_size)))
    print(f"\nbest reconstruction ({name}, rel.err {err:.4f}):")
    print(ascii_image(np.asarray(x).reshape(image_size, image_size)))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
