"""Iterative CT reconstruction of the Shepp-Logan phantom through CSCV.

Run:  python examples/ct_reconstruction.py [image_size]

The paper's motivating application: reconstruct an image from its
sinogram with SpMV-heavy iterative solvers (SIRT, CGLS, blocked ART) plus
the FBP analytic reference, all driven through the CSCV-Z operator, and
report image quality + where the time goes.  An ASCII rendering of the
phantom and the SIRT reconstruction is printed at the end.
"""

import sys
import time

import numpy as np

from repro import CSCVParams, ParallelBeamGeometry, operator
from repro.geometry.phantom import shepp_logan
from repro.recon import (
    art_reconstruct,
    cgls_reconstruct,
    fbp_reconstruct,
    psnr,
    relative_error,
    sirt_reconstruct,
)

_RAMP = " .:-=+*#%@"


def ascii_image(img: np.ndarray, width: int = 48) -> str:
    """Downsample + render an image with a 10-glyph density ramp."""
    n = img.shape[0]
    step = max(1, n // width)
    small = img[::step, ::step]
    lo, hi = small.min(), small.max()
    span = (hi - lo) or 1.0
    rows = []
    for r in small:
        rows.append("".join(_RAMP[int((v - lo) / span * 9)] for v in r))
    return "\n".join(rows)


def main(image_size: int = 64) -> None:
    geom = ParallelBeamGeometry.for_image(image_size, 2 * image_size)
    truth = shepp_logan(image_size).ravel()

    # built once, then served from the persistent operator cache
    op = operator(geom, fmt="cscv-z", params=CSCVParams(8, 16, 2),
                  dtype=np.float64)
    print(f"matrix {op.shape[0]}x{op.shape[1]}, nnz {op.fmt.nnz:,}")

    sinogram = op.forward(truth)
    # mild Poisson-style measurement noise
    rng = np.random.default_rng(0)
    noisy = sinogram + rng.normal(0.0, 0.01 * sinogram.max(), sinogram.shape)

    solvers = {
        "FBP (analytic)": lambda: fbp_reconstruct(op, noisy, geom),
        "SIRT x60": lambda: sirt_reconstruct(op, noisy, iterations=60),
        "CGLS x25": lambda: cgls_reconstruct(op, noisy, iterations=25),
        "ART  x30": lambda: art_reconstruct(op, noisy, iterations=30, relax=0.8),
    }
    best = None
    for name, solve in solvers.items():
        t0 = time.perf_counter()
        x = solve()
        dt = time.perf_counter() - t0
        err = relative_error(x, truth)
        print(f"  {name:15s} rel.err {err:.4f}  psnr {psnr(x, truth):6.2f} dB  ({dt:5.2f}s)")
        if best is None or err < best[1]:
            best = (name, err, x)

    name, err, x = best
    print(f"\nground truth {image_size}x{image_size}:")
    print(ascii_image(truth.reshape(image_size, image_size)))
    print(f"\nbest reconstruction ({name}, rel.err {err:.4f}):")
    print(ascii_image(np.asarray(x).reshape(image_size, image_size)))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
