"""Why CSC-style access matters: ICD (column-action) vs ART (row-action).

Run:  python examples/icd_vs_art.py [image_size]

Section III of the paper: CSR serves ART-type solvers well but "is
inefficient in ICD algorithms", because ICD updates one pixel (= one
matrix *column*) at a time.  This example runs both solver families on
the same problem, shows their convergence, and measures the raw access
cost ICD pays under a CSR layout (a transposed temporary) versus the
native CSC/CSCV column access — the asymmetry that gives CSC-style
formats, and hence CSCV, "a wider application range".
"""

import sys
import time

import numpy as np

from repro import build_ct_matrix
from repro.geometry.phantom import shepp_logan
from repro.recon import (
    ProjectionOperator,
    art_reconstruct,
    icd_reconstruct,
    relative_error,
)
from repro.sparse import CSCMatrix, CSRMatrix


def column_gather_csr(csr: CSRMatrix, j: int) -> np.ndarray:
    """What ICD must do under CSR: scan *every row* for column j."""
    hits = csr.col_idx == j
    return csr.vals[hits]


def column_gather_csc(csc: CSCMatrix, j: int) -> np.ndarray:
    """Native CSC column access: one contiguous slice."""
    a, b = int(csc.col_ptr[j]), int(csc.col_ptr[j + 1])
    return csc.vals[a:b]


def main(image_size: int = 48) -> None:
    coo, geom = build_ct_matrix(image_size, num_views=2 * image_size)
    truth = shepp_logan(image_size).ravel()
    csr = CSRMatrix.from_coo_matrix(coo)
    csc = CSCMatrix.from_coo_matrix(coo)
    op = ProjectionOperator(csr)
    sino = op.forward(truth)

    print("convergence (relative error to ground truth):")
    t0 = time.perf_counter()
    x_art = art_reconstruct(op, sino, iterations=30, relax=0.8)
    t_art = time.perf_counter() - t0
    t0 = time.perf_counter()
    x_icd = icd_reconstruct(csc, sino, sweeps=6)
    t_icd = time.perf_counter() - t0
    print(f"  ART x30 sweeps: {relative_error(x_art, truth):.4f}  ({t_art:.2f}s)")
    print(f"  ICD x6 sweeps : {relative_error(x_icd, truth):.4f}  ({t_icd:.2f}s)")

    # the access-pattern asymmetry, measured directly
    cols = np.linspace(0, coo.shape[1] - 1, 32, dtype=int)
    t0 = time.perf_counter()
    for j in cols:
        column_gather_csr(csr, int(j))
    t_csr = time.perf_counter() - t0
    t0 = time.perf_counter()
    for j in cols:
        column_gather_csc(csc, int(j))
    t_csc = time.perf_counter() - t0
    print(
        f"\ncolumn access cost for ICD ({len(cols)} columns): "
        f"CSR scan {t_csr * 1e3:.2f} ms vs CSC slice {t_csc * 1e3:.3f} ms "
        f"({t_csr / max(t_csc, 1e-9):.0f}x)"
    )
    print(
        "CSC-style layouts (and CSCV) serve both SpMV and ICD from one "
        "structure; CSR would need a transposed copy."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 48)
