"""CSCV beyond parallel-beam CT: fan-beam and attenuated (SPECT) operators.

Run:  python examples/other_geometries.py [image_size]

The paper's conclusion promises CSCV "for matrices from CT imaging
reconstruction with different geometries and other applications like
SPECT and PET".  This example demonstrates both extensions working today:

* an equiangular **fan-beam** scan (source rotating around the object),
* the **attenuated Radon transform** (uniform-attenuation SPECT model),

each converted to CSCV with the *same* IOBLR machinery, verified against
CSR, and benchmarked — padding and speed land in the same band as the
parallel-beam case because the trajectories remain piecewise parallel.
"""

import sys

import numpy as np

from repro.bench.harness import measure_format
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.geometry.attenuated import attenuated_strip_matrix, attenuation_factor_range
from repro.geometry.fan_beam import FanBeamGeometry
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.projector_fan import fan_strip_matrix
from repro.geometry.projector_strip import strip_area_matrix
from repro.sparse import COOMatrix, CSRMatrix
from repro.utils.tables import Table


def main(image_size: int = 48) -> None:
    par = ParallelBeamGeometry.for_image(image_size, num_views=2 * image_size)
    fan = FanBeamGeometry.for_image(image_size, num_views=2 * image_size)
    mu = 0.03
    cases = [
        ("parallel beam (CT)", par, strip_area_matrix(par, dtype=np.float32)),
        ("fan beam (CT)", fan, fan_strip_matrix(fan, dtype=np.float32)),
        ("attenuated (SPECT)", par,
         attenuated_strip_matrix(par, mu=mu, dtype=np.float32)),
    ]
    lo, _ = attenuation_factor_range(par, mu)
    print(f"SPECT attenuation: deepest pixel keeps {lo:.2f} of its signal (mu={mu})\n")

    params = CSCVParams(s_vvec=8, s_imgb=8, s_vxg=2)
    table = Table(
        headers=["operator", "nnz", "R_nnzE", "Z GF", "M GF", "rel err"],
        fmt=".3f", title=f"CSCV across imaging operators ({params})",
    )
    for name, geom, (rows, cols, vals) in cases:
        coo = COOMatrix.from_coo(geom.shape, rows, cols, vals, dtype=np.float32)
        x = np.linspace(0.5, 1.5, coo.shape[1]).astype(np.float32)
        ref = CSRMatrix.from_coo_matrix(coo).spmv(x)
        z = CSCVZMatrix.from_ct(coo, geom, params)
        m = CSCVMMatrix.from_data(z.data)
        err = float(np.abs(z.spmv(x) - ref).max() / np.abs(ref).max())
        gz = measure_format(z, iterations=15, max_seconds=1.0).gflops
        gm = measure_format(m, iterations=15, max_seconds=1.0).gflops
        table.add_row(name, coo.nnz, z.r_nnze, gz, gm, f"{err:.1e}")
    print(table.render())
    print(
        "\nsame padding band and speed across all three operators: the\n"
        "trajectories stay piecewise parallel, so IOBLR carries over — the\n"
        "paper's generality claim, demonstrated."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 48)
