"""Multi-slice (2.5-D) reconstruction: one matrix, many slices.

Run:  python examples/volume_reconstruction.py [image_size] [num_slices]

Clinical CT reconstructs a *volume* slice by slice with one shared system
matrix — the workload where CSCV's one-off conversion cost amortises
fastest and where the multi-RHS product (SpMM) earns its keep.  This
example builds a synthetic volume (Shepp-Logan morphing into disks),
projects every slice with one SpMM, adds Poisson noise at a clinical
dose, reconstructs each slice with damped CGLS through the CSCV operator
and reports per-slice quality and total throughput.
"""

import sys
import time

import numpy as np

from repro import CSCVParams, CSCVZMatrix, build_ct_matrix
from repro.geometry.phantom import disk_phantom, shepp_logan
from repro.recon import ProjectionOperator, cgls_reconstruct, relative_error
from repro.recon.noise import add_poisson_noise


def synthetic_volume(n: int, slices: int) -> np.ndarray:
    """(slices, n*n) stack morphing from Shepp-Logan to a disk."""
    a = shepp_logan(n).ravel()
    b = disk_phantom(n, radius_frac=0.45).ravel()
    ts = np.linspace(0.0, 1.0, slices)
    return np.stack([(1 - t) * a + t * b for t in ts])


def main(image_size: int = 48, num_slices: int = 8) -> None:
    coo, geom = build_ct_matrix(image_size, num_views=2 * image_size)
    volume = synthetic_volume(image_size, num_slices)

    t0 = time.perf_counter()
    A = CSCVZMatrix.from_ct(coo, geom, CSCVParams(8, 16, 2))
    t_convert = time.perf_counter() - t0
    op = ProjectionOperator(A)
    print(f"matrix {coo.shape}, nnz {coo.nnz:,}; CSCV conversion {t_convert:.2f}s "
          f"(shared across {num_slices} slices)")

    # forward-project the whole volume in one SpMM call
    t0 = time.perf_counter()
    sinograms = A.spmm(volume.T)  # (num_rays, slices)
    t_fp = time.perf_counter() - t0
    print(f"forward projection of {num_slices} slices (SpMM): {t_fp * 1e3:.1f} ms")

    errs = []
    t0 = time.perf_counter()
    for s in range(num_slices):
        noisy = add_poisson_noise(sinograms[:, s], i0=1e5, seed=s)
        x = cgls_reconstruct(op, noisy.astype(A.dtype), iterations=20, damping=0.1)
        errs.append(relative_error(x, volume[s]))
    t_recon = time.perf_counter() - t0

    print(f"reconstructed {num_slices} slices in {t_recon:.2f}s "
          f"({num_slices / t_recon:.2f} slices/s)")
    print("per-slice relative error:",
          " ".join(f"{e:.3f}" for e in errs))
    print(f"conversion amortised over {num_slices} slices: "
          f"{t_convert / num_slices * 1e3:.1f} ms each")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    slices = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(size, slices)
