"""Every SpMV format on one CT matrix: the paper's comparison in miniature.

Run:  python examples/format_showdown.py [image_size] [--double]

Builds one CT system matrix and pushes it through all eleven formats the
library implements (CSR, CSC, ELL, CSR5, SPC5, ESB, CVR, VHCC, merge-path
CSR, vendor CSR/CSC, and CSCV-Z / CSCV-M), verifying agreement and
printing measured GFLOP/s, the per-iteration memory requirement and the
achieved traffic rate.  The double-precision mode mirrors the paper's
observation that several baselines only ship f64 kernels.
"""

import sys

import numpy as np

from repro import CSCVParams, build_ct_matrix
from repro.api import build_format
from repro.bench.harness import measure_format
from repro.sparse import available_formats
from repro.utils.tables import Table


def main(image_size: int = 64, dtype=np.float32) -> None:
    coo, geom = build_ct_matrix(image_size, num_views=2 * image_size, dtype=dtype)
    print(f"matrix {coo.shape[0]}x{coo.shape[1]}, nnz {coo.nnz:,}, dtype {np.dtype(dtype)}")

    x = np.linspace(0.5, 1.5, coo.shape[1], dtype=dtype)
    params = CSCVParams(s_vvec=16, s_imgb=16, s_vxg=2)

    ref = None
    table = Table(
        headers=["format", "GFLOP/s", "ms/iter", "M_Rit MiB", "BW GB/s", "max rel err"],
        fmt=".2f",
        title="SpMV format showdown",
    )
    for name in sorted(available_formats()):
        if name == "coo":
            continue  # reference scatter-add, never competitive
        fmt = build_format(name, coo, geom=geom, params=params)
        y = fmt.spmv(x)
        if ref is None:
            ref = y.astype(np.float64)
        err = float(np.abs(y.astype(np.float64) - ref).max() / np.abs(ref).max())
        rec = measure_format(fmt, iterations=15, max_seconds=1.0)
        table.add_row(
            name, rec.gflops, rec.seconds * 1e3,
            rec.m_rit_bytes / 2**20, rec.bw_gbs, f"{err:.1e}",
        )
    table.mark_extremes(1)
    print(table.render())
    print("(* = best, ~ = second best; errors are vs the first format run)")


if __name__ == "__main__":
    size = 64
    dtype = np.float32
    for arg in sys.argv[1:]:
        if arg == "--double":
            dtype = np.float64
        else:
            size = int(arg)
    main(size, dtype)
