"""Measurement harness: the paper's test protocol (Section V-C).

``measure_format`` times SpMV with the min-of-N protocol and reports the
three quantities the paper reports: execution time, GFLOP/s
(``2 nnz / T``) and the effective memory-bandwidth usage ratio ``R_EM``.
``run_suite`` sweeps a list of formats over one matrix and collects
records; the experiment modules feed those into the paper-style tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import build_format
from repro.core.params import CSCVParams
from repro.errors import ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat
from repro.obs.trace import span
from repro.sparse.stats import memory_requirement
from repro.utils.timing import gflops, time_stats


@dataclass
class PerfRecord:
    """One (format, matrix) measurement.

    ``seconds`` (the min) stays the headline number per the paper's
    protocol; ``mean/std/p50`` expose run-to-run noise.
    """

    format_name: str
    dtype: str
    seconds: float
    gflops: float
    m_rit_bytes: float
    bw_gbs: float  # achieved effective traffic rate
    nnz: int
    mean_seconds: float = 0.0
    std_seconds: float = 0.0
    p50_seconds: float = 0.0
    timed_iterations: int = 0

    def r_em(self, peak_bw_gbs: float) -> float:
        """Effective bandwidth usage ratio against *peak_bw_gbs*."""
        if peak_bw_gbs <= 0:
            raise ValidationError("peak bandwidth must be positive")
        return self.bw_gbs / peak_bw_gbs

    @property
    def noise(self) -> float:
        """Relative run-to-run spread, ``std / mean`` (0 when unknown)."""
        return self.std_seconds / self.mean_seconds if self.mean_seconds else 0.0


def measure_format(
    fmt: SpMVFormat,
    *,
    iterations: int = 50,
    max_seconds: float = 3.0,
    x: np.ndarray | None = None,
) -> PerfRecord:
    """Min-of-N SpMV timing of one format instance."""
    m, n = fmt.shape
    if x is None:
        x = np.linspace(0.5, 1.5, n).astype(fmt.dtype)
    else:
        x = np.asarray(x, dtype=fmt.dtype)
    y = np.zeros(m, dtype=fmt.dtype)
    with span("bench.measure", format=fmt.name, dtype=str(fmt.dtype),
              nnz=fmt.nnz) as meas_span:
        stats = time_stats(
            lambda: fmt.spmv_into(x, y),
            iterations=iterations,
            max_seconds=max_seconds,
        )
        meas_span.set(min_ms=stats.min * 1e3, mean_ms=stats.mean * 1e3,
                      iterations=stats.iterations)
    t = stats.min
    mem = memory_requirement(fmt)
    return PerfRecord(
        format_name=fmt.name,
        dtype=str(fmt.dtype),
        seconds=t,
        gflops=gflops(fmt.nnz, t),
        m_rit_bytes=mem["M_rit"],
        bw_gbs=mem["M_rit"] / t / 1e9,
        nnz=fmt.nnz,
        mean_seconds=stats.mean,
        std_seconds=stats.std,
        p50_seconds=stats.p50,
        timed_iterations=stats.iterations,
    )


def run_suite(
    coo: COOMatrix,
    geom: ParallelBeamGeometry,
    format_names: list[str],
    *,
    dtype=np.float32,
    params: CSCVParams | None = None,
    params_by_format: dict[str, CSCVParams] | None = None,
    iterations: int = 50,
    max_seconds: float = 3.0,
) -> list[PerfRecord]:
    """Measure every named format on one matrix.

    ``params_by_format`` overrides the CSCV parameter triple per format
    name (Table III uses different triples for CSCV-Z and CSCV-M).
    """
    records = []
    cast = coo if coo.vals.dtype == np.dtype(dtype) else coo.astype(dtype)
    for name in format_names:
        p = (params_by_format or {}).get(name, params)
        fmt = build_format(name, cast, geom=geom, params=p)
        records.append(
            measure_format(fmt, iterations=iterations, max_seconds=max_seconds)
        )
    return records


# The measurement itself now lives in repro.obs.perf (next to the
# per-host cache that dispatch accounting reads); re-exported here so
# existing harness callers keep working.
from repro.obs.perf import measure_stream_bandwidth  # noqa: E402,F401
