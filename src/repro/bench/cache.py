"""Operator-cache bench: cold build vs warm memory-mapped load.

The operator cache turns the expensive geometry -> projector -> CSCV
pipeline into a one-time cost: the first :func:`repro.api.operator` call
builds and persists the arrays, every later call reconstructs the format
from ``np.load(..., mmap_mode="r")`` views without copying.  This bench
measures both paths against an isolated cache root and checks that the
warm operator is *bitwise identical* to the cold one (same spmv and spmm
output bits), which is the property the cache's correctness rests on.

Run via ``python -m repro bench cache``.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass

import numpy as np

from repro.core.cache import OperatorCache
from repro.core.params import CSCVParams
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.tables import Table

DEFAULT_FORMATS = ("cscv-z", "cscv-m")


@dataclass
class CacheBenchRecord:
    """Cold-vs-warm timing for one format at one problem size."""

    format_name: str
    size: int
    cold_seconds: float
    warm_seconds: float
    entry_bytes: int
    spmv_identical: bool
    spmm_identical: bool

    @property
    def speedup(self) -> float:
        """Cold build time over warm mmap-load time."""
        return self.cold_seconds / self.warm_seconds if self.warm_seconds else 0.0


def _build(size: int, name: str, dtype, params, cache: OperatorCache):
    from repro.api import operator

    return operator(size, fmt=name, dtype=dtype, params=params, cache_obj=cache)


def run_cache_bench(
    *,
    size: int = 256,
    format_names=DEFAULT_FORMATS,
    dtype=np.float32,
    params: CSCVParams | None = None,
    warm_repeats: int = 3,
    root: str | None = None,
) -> list[CacheBenchRecord]:
    """Measure cold build vs warm load per format on a ``size``^2 CT matrix.

    Uses a throwaway cache root (unless ``root`` is given) so "cold" is
    genuinely cold; warm time is the best of ``warm_repeats`` reloads.
    """
    tmp = root or tempfile.mkdtemp(prefix="repro-cache-bench-")
    cache = OperatorCache(root=tmp, enabled=True)
    records: list[CacheBenchRecord] = []
    try:
        for name in format_names:
            with span("bench.cache", format=name, size=size) as sp:
                t0 = time.perf_counter()
                cold = _build(size, name, dtype, params, cache)
                cold_s = time.perf_counter() - t0
                warm_s = float("inf")
                warm = None
                for _ in range(max(1, warm_repeats)):
                    t0 = time.perf_counter()
                    warm = _build(size, name, dtype, params, cache)
                    warm_s = min(warm_s, time.perf_counter() - t0)
                sp.set(cold_ms=cold_s * 1e3, warm_ms=warm_s * 1e3)
            rng = np.random.default_rng(0)
            x = rng.random(cold.shape[1]).astype(cold.dtype)
            X = np.ascontiguousarray(rng.random((cold.shape[1], 4)), dtype=cold.dtype)
            spmv_ok = bool(np.array_equal(cold.forward(x), warm.forward(x)))
            spmm_ok = bool(np.array_equal(cold.fmt.spmm(X), warm.fmt.spmm(X)))
            entry_bytes = sum(
                e.nbytes for e in cache.entries() if e.format == name
            )
            rec = CacheBenchRecord(
                format_name=name,
                size=size,
                cold_seconds=cold_s,
                warm_seconds=warm_s,
                entry_bytes=entry_bytes,
                spmv_identical=spmv_ok,
                spmm_identical=spmm_ok,
            )
            obs_metrics.gauge(
                "bench.cache.speedup", "warm-load-over-cold-build speedup"
            ).set(rec.speedup)
            records.append(rec)
    finally:
        if root is None:
            shutil.rmtree(tmp, ignore_errors=True)
    return records


def render(records: list[CacheBenchRecord], *, title: str = "") -> str:
    """One row per format: build vs load, on-disk size, bit-identity."""
    t = Table(
        headers=["format", "cold build ms", "warm load ms", "speedup",
                 "entry MB", "spmv bits", "spmm bits"],
        fmt=".2f",
        title=title,
    )
    for r in records:
        t.add_row(
            r.format_name,
            r.cold_seconds * 1e3,
            r.warm_seconds * 1e3,
            f"{r.speedup:.1f}x",
            r.entry_bytes / 1e6,
            "identical" if r.spmv_identical else "DIFFER",
            "identical" if r.spmm_identical else "DIFFER",
        )
    return t.render()
