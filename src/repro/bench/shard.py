"""Sharded-operator scaling benchmark (``repro bench shard``).

Sweeps the worker-process count of a :class:`repro.dist.sharding.
ShardedOperator` over a *fixed* shard partition and times the forward
SpMV and batched SpMM sweeps.  The partition is pinned (not derived
from the worker count) so every level computes the identical
floating-point result — each record carries an ``identical`` flag
checked bitwise against the in-process serial level, which is the
distributed layer's core determinism contract.

Runs on the NumPy backend by construction: the compiled kernels already
use OpenMP threads inside one address space, so cross-process scaling
is only a *separable* signal on the interpreter-bound backend (and the
trajectory's ``shard/*`` family stays comparable on hosts without a C
toolchain).

``repro bench trajectory`` folds a quick sweep in as the
``shard/<fmt>/<size>/w<k>`` case family in ``BENCH_trajectory.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.utils.tables import Table

__all__ = ["ShardBenchRecord", "run_shard_bench", "render", "shard_cases"]

DEFAULT_WORKER_COUNTS = (1, 2, 4)
SPMM_BATCH = 8


@dataclass(frozen=True)
class ShardBenchRecord:
    """One (format, worker-count) level of the sweep."""

    format_name: str
    size: int
    workers: int
    num_shards: int
    mode: str                   # "serial" | "distributed" | "degraded"
    spmv_seconds: float         # best-of forward SpMV
    spmv_noise: float           # std / mean across repeats
    spmm_seconds: float         # best-of forward SpMM (SPMM_BATCH columns)
    spmm_noise: float
    spawn_seconds: float        # pool start-up (first dispatch) cost
    nnz: int
    identical: bool             # bitwise equal to the workers=1 level


def run_shard_bench(
    *,
    size: int = 64,
    format_names=("csr",),
    worker_counts=DEFAULT_WORKER_COUNTS,
    shards: int | None = None,
    dtype=np.float32,
    iterations: int = 10,
    quick: bool = False,
) -> list[ShardBenchRecord]:
    """Sweep shard-worker counts over a pinned partition.

    The shard count defaults to ``max(4, max(worker_counts))`` and is
    passed explicitly to every level, so the reduction order — hence
    the bitwise result — is one and the same across the sweep.  The
    backend is forced to ``numpy`` for the duration (workers inherit
    it through their init payload) and restored afterwards.
    """
    from repro import api, config
    from repro.geometry.parallel_beam import ParallelBeamGeometry
    from repro.utils.timing import time_stats

    if quick:
        size = min(size, 32)
        iterations = min(iterations, 5)

    num_shards = shards or max(4, max(worker_counts))
    geom = ParallelBeamGeometry.for_image(size)
    records: list[ShardBenchRecord] = []
    saved_backend = config.runtime.backend
    config.runtime.backend = "numpy"
    try:
        for name in format_names:
            n = geom.shape[1]
            rng = np.random.default_rng(0)
            x = np.linspace(0.5, 1.5, n).astype(dtype)
            X = np.ascontiguousarray(
                rng.random((n, SPMM_BATCH)), dtype=dtype
            )
            baseline_spmv = baseline_spmm = None
            for workers in worker_counts:
                op = api.operator(
                    geom, fmt=name, dtype=dtype,
                    shard_workers=workers, shards=num_shards,
                )
                try:
                    t0 = time.perf_counter()
                    y = op.forward(x)           # first dispatch spawns pool
                    spawn = time.perf_counter() - t0
                    Y = op.forward(X)
                    if baseline_spmv is None:
                        baseline_spmv, baseline_spmm = y, Y
                        identical = True
                    else:
                        identical = (
                            np.array_equal(baseline_spmv, y)
                            and np.array_equal(baseline_spmm, Y)
                        )
                    sv = time_stats(lambda: op.forward(x),
                                    iterations=iterations, max_seconds=2.0)
                    sm = time_stats(lambda: op.forward(X),
                                    iterations=iterations, max_seconds=2.0)
                    top = op.topology()
                    records.append(ShardBenchRecord(
                        format_name=name,
                        size=size,
                        workers=workers,
                        num_shards=num_shards,
                        mode=top["mode"],
                        spmv_seconds=sv.min,
                        spmv_noise=sv.std / sv.mean if sv.mean else 0.0,
                        spmm_seconds=sm.min,
                        spmm_noise=sm.std / sm.mean if sm.mean else 0.0,
                        spawn_seconds=spawn,
                        nnz=sum(s["nnz"] or 0 for s in top["shards"]),
                        identical=identical,
                    ))
                finally:
                    op.close()
    finally:
        config.runtime.backend = saved_backend
    return records


def render(records: list, *, title: str = "") -> str:
    """Human table of a sweep, with speedup over the serial level."""
    t = Table(
        headers=["format", "workers", "mode", "spmv ms", "speedup",
                 f"spmm(k={SPMM_BATCH}) ms", "speedup", "spawn s",
                 "identical"],
        title=title or "sharded operator scaling (numpy backend)",
    )
    serial = {r.format_name: r for r in records if r.workers == 1}
    for r in records:
        s = serial.get(r.format_name)
        t.add_row(
            r.format_name,
            f"{r.workers} ({r.num_shards} shards)",
            r.mode,
            f"{r.spmv_seconds * 1e3:.3f}",
            f"{s.spmv_seconds / r.spmv_seconds:.2f}x" if s else "-",
            f"{r.spmm_seconds * 1e3:.3f}",
            f"{s.spmm_seconds / r.spmm_seconds:.2f}x" if s else "-",
            f"{r.spawn_seconds:.2f}",
            "yes" if r.identical else "NO",
        )
    return t.render()


def shard_cases(records: list, *, stream_gbs: float | None = None) -> list[dict]:
    """Trajectory case dicts (the ``shard/<fmt>/<size>/w<k>`` family).

    ``seconds`` is the batched SpMM time — the shape the serving layer
    actually dispatches — with the SpMV time riding along as an extra
    key.  Pool dispatch adds IPC jitter, so a noise floor keeps the
    compare slack from flagging scheduler hiccups.
    """
    return [
        {
            "case": f"shard/{r.format_name}/{r.size}/w{r.workers}",
            "kind": "shard",
            "format": r.format_name,
            "size": r.size,
            "batch": SPMM_BATCH,
            "seconds": r.spmm_seconds,
            "mean_seconds": r.spmm_seconds,
            "noise": max(0.15, r.spmm_noise),
            "gflops": (
                2.0 * r.nnz * SPMM_BATCH / r.spmm_seconds / 1e9
                if r.spmm_seconds > 0 else None
            ),
            "achieved_gbs": None,
            "r_em": None,
            "nnz": r.nnz,
            "workers": r.workers,
            "num_shards": r.num_shards,
            "mode": r.mode,
            "spmv_seconds": r.spmv_seconds,
            "spawn_seconds": r.spawn_seconds,
            "identical": r.identical,
        }
        for r in records
    ]
