"""Scaled CT matrix datasets mirroring the paper's Table II.

The paper's four matrices (512/768/1024/2048 images, up to 1.75e9 nnz)
exceed a single-core container; these datasets keep every *geometric*
property that CSCV exploits — fine angular steps, detector covering the
image diagonal, the same nnz density per (pixel, view), and the
limited-angle setup of the largest case — at sizes that build in seconds.
Benches print the paper's original rows next to ours so the
correspondence is explicit.

Matrices are cached on disk (``~/.cache/repro-datasets``) after first
build; delete the directory to force regeneration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.projector_strip import strip_area_matrix
from repro.sparse.coo import COOMatrix


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table II (for side-by-side reporting)."""

    img: str
    num_bin: int
    num_view: int
    delta_angle: str
    nnz: int
    x_size: int
    y_size: int


@dataclass(frozen=True)
class Dataset:
    """A scaled stand-in for one Table II matrix."""

    name: str
    image_size: int
    num_views: int
    angular_span_deg: float
    paper: PaperRow

    def geometry(self) -> ParallelBeamGeometry:
        return ParallelBeamGeometry.for_image(
            self.image_size, self.num_views, angular_span_deg=self.angular_span_deg
        )

    def load(self, dtype=np.float32) -> tuple[COOMatrix, ParallelBeamGeometry]:
        """Build (or load from disk cache) the system matrix."""
        geom = self.geometry()
        rows, cols, vals = _cached_triplets(self.name, geom)
        coo = COOMatrix(
            geom.shape,
            rows.astype(np.int64),
            cols.astype(np.int64),
            vals.astype(dtype),
        )
        return coo, geom

    def describe(self) -> dict:
        geom = self.geometry()
        d = geom.describe()
        d["name"] = self.name
        return d


def _cache_dir() -> Path:
    default = Path.home() / ".cache" / "repro-datasets"
    return Path(os.environ.get("REPRO_DATASET_CACHE", default))


def _cached_triplets(name: str, geom: ParallelBeamGeometry):
    cache = _cache_dir()
    key = (
        f"{name}-{geom.image_size}-{geom.num_bins}-{geom.num_views}-"
        f"{geom.delta_angle_deg:.6f}.npz"
    )
    path = cache / key
    if path.exists():
        with np.load(path) as z:
            return z["rows"], z["cols"], z["vals"]
    rows, cols, vals = strip_area_matrix(geom, dtype=np.float64)
    cache.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp.npz")
    np.savez_compressed(tmp, rows=rows.astype(np.int64), cols=cols.astype(np.int64), vals=vals)
    os.replace(tmp, path)
    return rows, cols, vals


#: The four datasets, in the paper's Table II order.  The largest mirrors
#: the paper's limited-angle 2048 case (small angular span, few views).
DATASETS: dict[str, Dataset] = {
    "clinical-small": Dataset(
        name="clinical-small",
        image_size=64,
        num_views=128,
        angular_span_deg=180.0,
        paper=PaperRow("512 x 512", 730, 240, "0.75", 166_148_730, 262_144, 175_200),
    ),
    "clinical-mid": Dataset(
        name="clinical-mid",
        image_size=96,
        num_views=192,
        angular_span_deg=180.0,
        paper=PaperRow("768 x 768", 1096, 480, "0.375", 747_032_208, 589_824, 526_080),
    ),
    "mixed-large": Dataset(
        name="mixed-large",
        image_size=128,
        num_views=256,
        angular_span_deg=180.0,
        paper=PaperRow("1024 x 1024", 1460, 480, "0.375", 1_328_114_108, 1_048_576, 700_800),
    ),
    "micro-limited": Dataset(
        name="micro-limited",
        image_size=160,
        num_views=48,
        angular_span_deg=30.0,
        paper=PaperRow("2048 x 2048", 2920, 160, "0.1875", 1_750_179_564, 4_194_304, 467_200),
    ),
}

#: The matrix the paper uses for parameter selection (Section V-D's
#: "single-precision matrix to reconstruct images of 1024 x 1024").
PARAMETER_DATASET = "mixed-large"

#: Quick dataset for smoke benches and CI.
QUICK_DATASET = "clinical-small"


def get_dataset(name: str) -> Dataset:
    """Lookup a dataset by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ValidationError(
            f"unknown dataset {name!r}; options: {sorted(DATASETS)}"
        ) from None
