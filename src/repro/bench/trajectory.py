"""Benchmark trajectory: a pinned suite appended to a committed JSON file.

Every ROADMAP rung from here on (OpenMP driver, GPU backend, serving)
needs a baseline to be measured against; this module provides it.
``repro bench trajectory`` runs a *pinned* suite — SpMV and batched SpMM
per format across fixed sizes, one cold build, one warm cache load —
and appends a schema-versioned point (host fingerprint, STREAM GB/s,
git rev, kernels ABI version, per-case seconds/GB/s/R_EM/noise) to
``BENCH_trajectory.json``, which is committed to the repository.

``repro bench compare`` diffs two points of that file with noise-aware
thresholds: a case regresses when its new time exceeds the old by more
than ``max(25%, 4x the larger run-to-run noise)`` (capped at 90%, so a
2x slowdown always trips).  CI runs the pair in report-only mode to
surface drift without flaking on shared-runner noise.
"""

from __future__ import annotations

import json
import os
import subprocess
import time

import numpy as np

from repro.obs import perf as obs_perf
from repro.utils.tables import Table

__all__ = [
    "TRAJECTORY_SCHEMA",
    "DEFAULT_TRAJECTORY_PATH",
    "run_trajectory",
    "append_point",
    "load_trajectory",
    "compare_points",
    "render_point",
    "render_compare",
]

TRAJECTORY_SCHEMA = 1

DEFAULT_TRAJECTORY_PATH = "BENCH_trajectory.json"

#: The pinned suite: formats and the SpMM batch width never change, so
#: points stay comparable across the whole trajectory.
SUITE_FORMATS = ("csr", "cscv-z", "cscv-m")
SUITE_SPMM_BATCH = 8
QUICK_SIZES = (32,)
FULL_SIZES = (48, 64)

#: Regression slack: at least this much headroom always ...
MIN_SLACK = 0.25
#: ... plus 4x the larger of the two points' relative noise, capped so a
#: genuine 2x slowdown can never hide inside the threshold.
MAX_SLACK = 0.90
NOISE_FACTOR = 4.0


def git_rev() -> str:
    """Short git revision of the working tree, or "unknown"."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def _case(name: str, kind: str, fmt_name: str, size: int, stats, *,
          nnz: int, traffic_bytes: float | None, batch: int = 1,
          stream_gbs: float | None) -> dict:
    """One suite case record from a :class:`TimingStats`-like object."""
    t = stats.min
    gbs = traffic_bytes / t / 1e9 if (traffic_bytes and t > 0) else None
    return {
        "case": name,
        "kind": kind,
        "format": fmt_name,
        "size": size,
        "batch": batch,
        "seconds": t,
        "mean_seconds": stats.mean,
        "noise": stats.std / stats.mean if stats.mean else 0.0,
        "gflops": 2.0 * nnz * batch / t / 1e9 if t > 0 else None,
        "achieved_gbs": gbs,
        "r_em": gbs / stream_gbs if (gbs and stream_gbs) else None,
        "nnz": int(nnz),
    }


class _OneShot:
    """TimingStats stand-in for single-run cases (build, cache load)."""

    def __init__(self, seconds: float):
        self.min = self.mean = self.p50 = seconds
        self.std = 0.0
        self.iterations = 1


def run_trajectory(*, quick: bool = False, sizes=None) -> dict:
    """Run the pinned suite; returns one schema-versioned trajectory point.

    Measures (and persists) the host's STREAM bandwidth first, so every
    case carries an ``r_em`` and later dispatch accounting finds the
    cached denominator.
    """
    from repro.api import operator
    from repro.bench.build import run_build_bench
    from repro.bench.cache import run_cache_bench
    from repro.kernels import KERNELS_ABI_VERSION, dispatch
    from repro.utils.timing import time_stats

    sizes = tuple(sizes) if sizes else (QUICK_SIZES if quick else FULL_SIZES)
    iterations = 10 if quick else 30
    max_seconds = 0.5 if quick else 2.0
    stream_gbs = obs_perf.stream_bandwidth(
        measure=True, size_mb=64 if quick else 256
    )

    cases: list[dict] = []
    for size in sizes:
        for name in SUITE_FORMATS:
            fmt = operator(size, fmt=name, dtype=np.float32).fmt
            m, n = fmt.shape
            x = np.linspace(0.5, 1.5, n).astype(fmt.dtype)
            y = np.zeros(m, dtype=fmt.dtype)
            stats = time_stats(lambda: fmt.spmv_into(x, y),
                               iterations=iterations, max_seconds=max_seconds)
            cases.append(_case(
                f"spmv/{name}/{size}", "spmv", name, size, stats,
                nnz=fmt.nnz, traffic_bytes=obs_perf.format_bytes(fmt)["total"],
                stream_gbs=stream_gbs,
            ))
            k = SUITE_SPMM_BATCH
            rng = np.random.default_rng(0)
            X = np.ascontiguousarray(rng.random((n, k)), dtype=fmt.dtype)
            Y = np.zeros((m, k), dtype=fmt.dtype)
            stats = time_stats(lambda: fmt.spmm_into(X, Y),
                               iterations=iterations, max_seconds=max_seconds)
            cases.append(_case(
                f"spmm/{name}/{size}/k{k}", "spmm", name, size, stats,
                nnz=fmt.nnz, batch=k,
                traffic_bytes=obs_perf.format_bytes(fmt, k)["total"],
                stream_gbs=stream_gbs,
            ))

    build_size = sizes[0]
    build_recs = run_build_bench(
        size=build_size, projectors=("strip",), worker_counts=(1,),
        repeats=1 if quick else 2,
    )
    for rec in build_recs:
        cases.append(_case(
            f"build/strip/{build_size}", "build", "cscv", build_size,
            _OneShot(rec.total_seconds), nnz=rec.nnz,
            traffic_bytes=None, stream_gbs=stream_gbs,
        ))

    cache_recs = run_cache_bench(
        size=build_size, format_names=("cscv-z",), warm_repeats=3,
    )
    for rec in cache_recs:
        cases.append(_case(
            f"cache-warm/{rec.format_name}/{build_size}", "cache",
            rec.format_name, build_size, _OneShot(rec.warm_seconds),
            nnz=0, traffic_bytes=rec.entry_bytes, stream_gbs=stream_gbs,
        ))

    # serving layer: closed-loop jobs/s + latency per concurrency level
    from repro.bench.serve import run_serve_bench, serve_cases

    serve_recs = run_serve_bench(
        size=build_size,
        jobs_per_level=8 if quick else 16,
        concurrency_levels=(1, 8),
        iterations=5 if quick else 10,
        quick=quick,
    )
    cases.extend(serve_cases(serve_recs, size=build_size))

    # sharded execution: worker-process scaling on a pinned partition
    # (numpy backend by construction, so points compare across hosts)
    from repro.bench.shard import run_shard_bench, shard_cases

    shard_recs = run_shard_bench(
        size=build_size,
        format_names=("csr",),
        worker_counts=(1, 2) if quick else (1, 2, 4),
        iterations=5 if quick else 10,
        quick=quick,
    )
    cases.extend(shard_cases(shard_recs))

    return {
        "schema": TRAJECTORY_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "fingerprint": obs_perf.host_fingerprint(),
            "cpu_count": os.cpu_count() or 1,
            "stream_gbs": stream_gbs,
        },
        "git_rev": git_rev(),
        "abi": KERNELS_ABI_VERSION,
        "backend": dispatch.backend_in_use(),
        "quick": bool(quick),
        "cases": cases,
    }


def load_trajectory(path: str = DEFAULT_TRAJECTORY_PATH) -> dict:
    """The trajectory file's payload; an empty skeleton if absent."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return {"bench": "trajectory", "schema": TRAJECTORY_SCHEMA, "points": []}
    if not isinstance(payload, dict) or "points" not in payload:
        raise ValueError(f"{path} is not a trajectory file")
    return payload


def append_point(point: dict, path: str = DEFAULT_TRAJECTORY_PATH) -> dict:
    """Append *point* to the trajectory file (created if missing)."""
    payload = load_trajectory(path)
    payload["points"].append(point)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return payload


def _slack(old: dict, new: dict) -> float:
    noise = max(old.get("noise") or 0.0, new.get("noise") or 0.0)
    return min(MAX_SLACK, max(MIN_SLACK, NOISE_FACTOR * noise))


def compare_points(old: dict, new: dict) -> list[dict]:
    """Case-by-case noise-aware diff of two trajectory points.

    Each result carries a ``status``: ``regression`` (new time above the
    slack threshold), ``improved`` (below the inverse threshold), ``ok``,
    ``new`` (case only in *new*) or ``missing`` (case only in *old*).
    """
    old_cases = {c["case"]: c for c in old["cases"]}
    new_cases = {c["case"]: c for c in new["cases"]}
    results = []
    for name in sorted(set(old_cases) | set(new_cases)):
        o, n = old_cases.get(name), new_cases.get(name)
        if o is None or n is None:
            results.append({
                "case": name, "status": "new" if o is None else "missing",
                "old_seconds": o["seconds"] if o else None,
                "new_seconds": n["seconds"] if n else None,
                "ratio": None, "slack": None,
            })
            continue
        slack = _slack(o, n)
        ratio = n["seconds"] / o["seconds"] if o["seconds"] else float("inf")
        if ratio > 1.0 + slack:
            status = "regression"
        elif ratio < 1.0 / (1.0 + slack):
            status = "improved"
        else:
            status = "ok"
        results.append({
            "case": name, "status": status,
            "old_seconds": o["seconds"], "new_seconds": n["seconds"],
            "ratio": ratio, "slack": slack,
        })
    return results


def render_point(point: dict, *, title: str = "") -> str:
    """Human table of one trajectory point."""
    t = Table(
        headers=["case", "ms", "noise", "GF/s", "GB/s", "R_EM"],
        title=title or (
            f"trajectory @ {point.get('git_rev', '?')} "
            f"({point.get('backend', '?')}, abi {point.get('abi', '?')})"
        ),
    )
    for c in point["cases"]:
        t.add_row(
            c["case"],
            f"{c['seconds'] * 1e3:.3f}",
            f"{c['noise']:.1%}",
            f"{c['gflops']:.2f}" if c.get("gflops") else "-",
            f"{c['achieved_gbs']:.2f}" if c.get("achieved_gbs") else "-",
            f"{c['r_em']:.3f}" if c.get("r_em") else "-",
        )
    return t.render()


def render_compare(results: list[dict], *, title: str = "") -> str:
    """Human table of a two-point comparison."""
    t = Table(
        headers=["case", "old ms", "new ms", "ratio", "slack", "status"],
        title=title or "trajectory comparison",
    )
    for r in results:
        t.add_row(
            r["case"],
            f"{r['old_seconds'] * 1e3:.3f}" if r["old_seconds"] else "-",
            f"{r['new_seconds'] * 1e3:.3f}" if r["new_seconds"] else "-",
            f"{r['ratio']:.2f}x" if r["ratio"] else "-",
            f"{r['slack']:.0%}" if r["slack"] else "-",
            r["status"],
        )
    return t.render()
