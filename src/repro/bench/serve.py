"""Load generator for the reconstruction service (``repro bench serve``).

Closed-loop benchmark: *c* synthetic clients each submit a job, wait for
its completion, and immediately submit the next, until the level's job
budget is drained.  Sweeping *c* shows what the serving layer buys —
at c=1 every job pays a full solve alone; at higher concurrency the
scheduler coalesces key-compatible jobs into SpMM batches and jobs/s
rises well past the serial rate while per-job latency stays bounded.

Jobs share geometry / solver / parameters (hence one batch key and one
cached operator) but carry distinct sinograms — the realistic
multi-slice, multi-client traffic shape.

``repro bench trajectory`` folds a quick sweep in as the ``serve/*``
case family, recording jobs/s plus p50/p99 latency per concurrency
level in ``BENCH_trajectory.json``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.utils.tables import Table

__all__ = ["ServeBenchRecord", "run_serve_bench", "render", "serve_cases"]

DEFAULT_LEVELS = (1, 2, 4, 8)


@dataclass(frozen=True)
class ServeBenchRecord:
    """One concurrency level of the sweep."""

    concurrency: int
    jobs: int
    seconds: float              # wall time for the whole level
    jobs_per_s: float
    p50_s: float                # per-job submit-to-done latency quantiles
    p99_s: float
    mean_batch_width: float
    coalesced_fraction: float   # jobs that shared a batch
    failed: int


def _quantile(sorted_vals: list, q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _run_level(runner, payloads: list, concurrency: int) -> ServeBenchRecord:
    from repro.serve.jobs import DONE

    it = iter(payloads)
    lock = threading.Lock()
    latencies: list = []
    finished: list = []
    failed = [0]

    def client():
        while True:
            with lock:
                payload = next(it, None)
            if payload is None:
                return
            t0 = time.perf_counter()
            job = runner.submit(payload)
            job = runner.wait(job.id, timeout=600.0)
            latencies.append(time.perf_counter() - t0)
            finished.append(job)
            if job.state != DONE:
                failed[0] += 1

    threads = [
        threading.Thread(target=client, name=f"bench-client-{i}", daemon=True)
        for i in range(concurrency)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    lat = sorted(latencies)
    widths = [j.batch_width for j in finished if j.batch_width]
    return ServeBenchRecord(
        concurrency=concurrency,
        jobs=len(finished),
        seconds=wall,
        jobs_per_s=len(finished) / wall if wall > 0 else 0.0,
        p50_s=_quantile(lat, 0.50),
        p99_s=_quantile(lat, 0.99),
        mean_batch_width=float(np.mean(widths)) if widths else 0.0,
        coalesced_fraction=(
            sum(1 for j in finished if j.coalesced) / len(finished)
            if finished else 0.0
        ),
        failed=failed[0],
    )


def run_serve_bench(
    *,
    size: int = 64,
    jobs_per_level: int = 24,
    concurrency_levels=DEFAULT_LEVELS,
    solver: str = "sirt",
    iterations: int = 10,
    workers: int = 2,
    batch_window_s: float = 0.01,
    quick: bool = False,
) -> list[ServeBenchRecord]:
    """Sweep closed-loop client concurrency against a fresh service.

    Each level gets its own :class:`~repro.serve.service.ServiceRunner`
    (same config) so queue state never leaks between levels; the
    operator cache is shared, so every level past the first measures
    serving cost, not operator builds.
    """
    from repro import api
    from repro.geometry.parallel_beam import ParallelBeamGeometry
    from repro.geometry.phantom import shepp_logan
    from repro.serve import ServeConfig, ServiceRunner
    from repro.serve.jobs import encode_array

    if quick:
        size = min(size, 32)
        jobs_per_level = min(jobs_per_level, 8)
        iterations = min(iterations, 5)
        concurrency_levels = tuple(
            c for c in concurrency_levels if c in (1, max(concurrency_levels))
        )

    geom = ParallelBeamGeometry.for_image(size)
    op = api.operator(geom)  # warm the shared operator cache once, up front
    truth = shepp_logan(size).ravel().astype(op.dtype)
    base = op.forward(truth)
    rng = np.random.default_rng(42)

    def payload(i: int) -> dict:
        sino = base + rng.normal(0.0, 0.01 * float(base.std() or 1.0),
                                 base.shape).astype(base.dtype)
        return {
            "tenant": f"client-{i % 4}",
            "solver": solver,
            "params": {"iterations": iterations},
            "geometry": {"size": size},
            "sinogram": encode_array(sino),
        }

    config = ServeConfig(
        workers=workers,
        max_queue_depth=max(16, 2 * max(concurrency_levels)),
        max_batch=max(concurrency_levels),
        batch_window_s=batch_window_s,
    )
    records = []
    for level in concurrency_levels:
        payloads = [payload(i) for i in range(jobs_per_level)]
        with ServiceRunner(config) as runner:
            # gate on readiness, not liveness — a journal-enabled runner
            # only admits jobs once its recovery replay has finished
            runner.wait_ready(timeout=60.0)
            records.append(_run_level(runner, payloads, level))
    return records


def render(records: list, *, title: str = "") -> str:
    """Human table of a sweep, with speedup over the serial level."""
    serial = next((r for r in records if r.concurrency == 1), records[0])
    t = Table(
        headers=["clients", "jobs/s", "speedup", "p50 ms", "p99 ms",
                 "batch width", "coalesced", "failed"],
        title=title or "repro bench serve (closed-loop clients)",
    )
    for r in records:
        t.add_row(
            r.concurrency,
            f"{r.jobs_per_s:.1f}",
            f"{r.jobs_per_s / serial.jobs_per_s:.2f}x"
            if serial.jobs_per_s else "-",
            f"{r.p50_s * 1e3:.1f}",
            f"{r.p99_s * 1e3:.1f}",
            f"{r.mean_batch_width:.1f}",
            f"{r.coalesced_fraction:.0%}",
            r.failed,
        )
    return t.render()


def serve_cases(records: list, *, size: int, solver: str = "sirt") -> list[dict]:
    """Trajectory case dicts for a sweep (the ``serve/*`` point family).

    ``seconds`` is the per-job service time (1 / jobs/s) so the standard
    lower-is-better comparison applies; p50/p99 latency and the batching
    stats ride along as extra keys.  Service timing is scheduler- and
    thread-sensitive, so the declared noise is high — the compare slack
    maxes out rather than flagging jitter.
    """
    return [
        {
            "case": f"serve/{solver}/{size}/c{r.concurrency}",
            "kind": "serve",
            "format": "service",
            "size": size,
            "batch": r.concurrency,
            "seconds": 1.0 / r.jobs_per_s if r.jobs_per_s else float("inf"),
            "mean_seconds": 1.0 / r.jobs_per_s if r.jobs_per_s else float("inf"),
            "noise": 0.25,
            "gflops": None,
            "achieved_gbs": None,
            "r_em": None,
            "nnz": 0,
            "jobs_per_s": r.jobs_per_s,
            "p50_seconds": r.p50_s,
            "p99_seconds": r.p99_s,
            "mean_batch_width": r.mean_batch_width,
            "coalesced_fraction": r.coalesced_fraction,
        }
        for r in records
    ]
