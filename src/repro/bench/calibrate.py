"""Host calibration: fit a Machine model to this computer.

The paper calibrates its platforms with the Intel MLC benchmark; here we
measure the two quantities the performance model needs — streaming read
bandwidth and sustained scalar/vector throughput — with NumPy/ctypes
micro-benchmarks and return a :class:`~repro.perfmodel.platform.Machine`
whose 1-thread predictions can be validated against measured SpMV.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bench.harness import measure_stream_bandwidth
from repro.perfmodel.platform import HOST, Machine
from repro.utils.timing import min_time


def measure_fma_ghz(size: int = 1 << 20, repeats: int = 9) -> float:
    """Effective vector-FMA clock proxy: elementwise a*b+c throughput.

    Returns the apparent GHz assuming 2 ops/lane/cycle on the host's
    (assumed 512-bit) vector unit — a rough but sufficient anchor for the
    latency side of the model.
    """
    a = np.ones(size, dtype=np.float32)
    b = np.full(size, 1.0000001, dtype=np.float32)
    c = np.zeros(size, dtype=np.float32)

    def kernel():
        np.multiply(a, b, out=c)
        np.add(c, a, out=c)

    t = min_time(kernel, iterations=repeats, max_seconds=2.0)
    flops = 2.0 * size
    lanes = 16  # AVX-512 float32
    return flops / t / (2.0 * lanes) / 1e9


def calibrate_host(*, stream_mb: int = 128) -> Machine:
    """Measure this host and return a calibrated Machine model."""
    bw = measure_stream_bandwidth(size_mb=stream_mb)
    ghz = max(measure_fma_ghz(), 0.5)
    cores = os.cpu_count() or 1
    return Machine(
        name="host-calibrated",
        cores=cores,
        max_threads=cores,
        simd_bits=HOST.simd_bits,
        ghz=ghz,
        peak_bw_gbs=bw * min(cores, 4) if cores > 1 else bw,
        core_bw_gbs=bw,
        gather_cost=HOST.gather_cost,
        expand_cost=HOST.expand_cost,
    )


def validation_report(machine: Machine | None = None) -> str:
    """Model-vs-measured table for the quick dataset on this host."""
    from repro.api import build_format
    from repro.bench.datasets import get_dataset
    from repro.bench.harness import measure_format
    from repro.core.params import CSCVParams
    from repro.perfmodel.roofline import predict_gflops
    from repro.utils.tables import Table

    if machine is None:
        machine = calibrate_host()
    coo, geom = get_dataset("clinical-small").load(dtype=np.float32)
    t = Table(
        headers=["format", "measured GF", "model GF", "ratio"],
        title=f"host calibration: {machine.ghz:.2f} GHz eff., "
              f"{machine.core_bw_gbs:.1f} GB/s/core",
        fmt=".2f",
    )
    params = CSCVParams(16, 16, 2)
    for name in ("csr", "mkl-csr", "cscv-z", "cscv-m", "spc5"):
        fmt = build_format(name, coo, geom=geom, params=params)
        rec = measure_format(fmt, iterations=10, max_seconds=1.0)
        model = predict_gflops(fmt, machine, 1)
        t.add_row(name, rec.gflops, model, model / rec.gflops)
    return t.render()
