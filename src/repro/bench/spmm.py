"""SpMM bench: batched multi-RHS SpMV vs the looped single-RHS baseline.

The multi-slice CT workload reconstructs ``k`` slices against one system
matrix.  The looped baseline streams the matrix ``k`` times (one SpMV per
slice); the batched SpMM path streams it once and amortises the index and
value traffic over all ``k`` right-hand sides.  This experiment sweeps
the batch size and reports the throughput of both paths per format —
``GFLOP/s = 2 * nnz * k / T`` — so the crossover where batching pays is
visible directly.

Run via ``python -m repro bench spmm``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import operator
from repro.core.params import CSCVParams
from repro.errors import ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.tables import Table
from repro.utils.timing import time_stats

DEFAULT_BATCH_SIZES = (1, 2, 4, 8, 16)
DEFAULT_FORMATS = ("csr", "cscv-z", "cscv-m")


@dataclass
class SpMMRecord:
    """One (format, batch size) measurement of both execution paths."""

    format_name: str
    batch: int
    looped_seconds: float
    batched_seconds: float
    looped_gflops: float
    batched_gflops: float
    nnz: int

    @property
    def speedup(self) -> float:
        """Batched throughput over the looped single-RHS baseline."""
        return (
            self.looped_seconds / self.batched_seconds
            if self.batched_seconds
            else 0.0
        )


def _looped_spmm(fmt, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """The baseline: one single-RHS SpMV per column of ``X``."""
    for j in range(X.shape[1]):
        Y[:, j] = fmt.spmv(np.ascontiguousarray(X[:, j]))
    return Y


def measure_spmm(
    fmt,
    batch: int,
    *,
    iterations: int = 20,
    max_seconds: float = 2.0,
    rng: np.random.Generator | None = None,
) -> SpMMRecord:
    """Time the looped and batched paths for one format and batch size."""
    if batch < 1:
        raise ValidationError("batch must be >= 1")
    m, n = fmt.shape
    rng = rng or np.random.default_rng(0)
    X = np.ascontiguousarray(rng.random((n, batch)), dtype=fmt.dtype)
    Y = np.zeros((m, batch), dtype=fmt.dtype)

    with span("bench.spmm", format=fmt.name, batch=batch, nnz=fmt.nnz) as sp:
        looped = time_stats(
            lambda: _looped_spmm(fmt, X, Y),
            iterations=iterations,
            max_seconds=max_seconds,
        )
        batched = time_stats(
            lambda: fmt.spmm_into(X, Y),
            iterations=iterations,
            max_seconds=max_seconds,
        )
        sp.set(looped_ms=looped.min * 1e3, batched_ms=batched.min * 1e3)
    flops = 2.0 * fmt.nnz * batch
    rec = SpMMRecord(
        format_name=fmt.name,
        batch=batch,
        looped_seconds=looped.min,
        batched_seconds=batched.min,
        looped_gflops=flops / looped.min / 1e9 if looped.min else 0.0,
        batched_gflops=flops / batched.min / 1e9 if batched.min else 0.0,
        nnz=fmt.nnz,
    )
    obs_metrics.gauge(
        "bench.spmm.speedup", "batched-over-looped SpMM speedup"
    ).set(rec.speedup)
    return rec


def run_spmm_bench(
    *,
    size: int = 256,
    batch_sizes=DEFAULT_BATCH_SIZES,
    format_names=DEFAULT_FORMATS,
    dtype=np.float32,
    params: CSCVParams | None = None,
    iterations: int = 20,
) -> list[SpMMRecord]:
    """Sweep batch sizes for every named format on a ``size``^2 CT matrix.

    Operators come through :func:`repro.api.operator`, so repeat runs
    reuse the persistent cache instead of rebuilding the system matrix.
    """
    records: list[SpMMRecord] = []
    for name in format_names:
        fmt = operator(size, fmt=name, dtype=dtype, params=params).fmt
        for batch in batch_sizes:
            records.append(
                measure_spmm(fmt, int(batch), iterations=iterations)
            )
    return records


def render(records: list[SpMMRecord], *, title: str = "") -> str:
    """Paper-style table of the sweep: one row per (format, batch)."""
    t = Table(
        headers=["format", "k", "looped ms", "batched ms",
                 "looped GF/s", "batched GF/s", "speedup"],
        fmt=".2f",
        title=title,
    )
    for r in records:
        t.add_row(
            r.format_name,
            str(r.batch),
            r.looped_seconds * 1e3,
            r.batched_seconds * 1e3,
            r.looped_gflops,
            r.batched_gflops,
            f"{r.speedup:.2f}x",
        )
    return t.render()
