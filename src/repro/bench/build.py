"""Cold-build bench: operator construction wall time vs worker count.

The cold build has two parallel stages — the projector sweep (C kernels
tracing view ranges concurrently, :mod:`repro.geometry.sweep`) and the
CSCV packing (block-partitioned sort/pack/merge,
:func:`repro.core.builder.build_cscv`).  This bench times both, per
projector, across a ladder of worker counts, and verifies on the way
that every worker count produced the *same* matrix (nnz and a value
checksum), which is the determinism contract the operator cache relies
on.

Run via ``python -m repro bench build``; records land in
``BENCH_build.json`` (one JSON object per measurement, PerfRecord-style)
so CI can diff scaling regressions.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.builder import build_cscv
from repro.core.params import CSCVParams
from repro.errors import ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.sparse.coo import COOMatrix
from repro.utils.tables import Table

DEFAULT_PROJECTORS = ("strip", "pixel", "siddon")


@dataclass
class BuildBenchRecord:
    """One cold build: (projector, size, workers) -> stage wall times."""

    projector: str
    size: int
    workers: int
    backend: str
    sweep_seconds: float
    pack_seconds: float
    total_seconds: float
    nnz: int
    checksum: float

    @property
    def seconds(self) -> float:  # PerfRecord-compatible headline number
        return self.total_seconds


def _sweep(projector: str, geom, dtype, workers: int):
    from repro.api import _resolve_projector

    rows, cols, vals = _resolve_projector(projector)(
        geom, dtype=dtype, workers=workers
    )
    return COOMatrix.from_coo(geom.shape, rows, cols, vals, dtype=dtype)


def run_build_bench(
    *,
    size: int = 256,
    projectors=DEFAULT_PROJECTORS,
    worker_counts=(1, 2, 4),
    dtype=np.float32,
    params: CSCVParams | None = None,
    repeats: int = 1,
) -> list[BuildBenchRecord]:
    """Cold-build timings for every (projector, workers) pair.

    Nothing touches the operator cache — each measurement runs the sweep
    and the CSCV conversion from scratch (best of ``repeats``).  Raises
    :class:`ValidationError` if any worker count changes the built
    matrix, which would break cache-key determinism.
    """
    from repro.geometry.parallel_beam import ParallelBeamGeometry
    from repro.kernels import dispatch

    params = params or CSCVParams()
    geom = ParallelBeamGeometry.for_image(size)
    backend = dispatch.backend_in_use()
    records: list[BuildBenchRecord] = []
    for projector in projectors:
        baseline: tuple[int, float] | None = None
        for workers in worker_counts:
            sweep_s = pack_s = total_s = float("inf")
            nnz = 0
            checksum = 0.0
            for _ in range(max(1, repeats)):
                with span("bench.build", projector=projector, size=size,
                          workers=workers):
                    t0 = time.perf_counter()
                    coo = _sweep(projector, geom, dtype, workers)
                    t1 = time.perf_counter()
                    data = build_cscv(
                        coo.rows, coo.cols, coo.vals, geom, params, dtype,
                        workers=workers,
                    )
                    t2 = time.perf_counter()
                sweep_s = min(sweep_s, t1 - t0)
                pack_s = min(pack_s, t2 - t1)
                total_s = min(total_s, t2 - t0)
                nnz = coo.nnz
                checksum = float(np.asarray(data.packed, dtype=np.float64).sum())
            if baseline is None:
                baseline = (nnz, checksum)
            elif baseline != (nnz, checksum):
                raise ValidationError(
                    f"{projector} build changed with workers={workers}: "
                    f"nnz/checksum {baseline} -> {(nnz, checksum)}"
                )
            rec = BuildBenchRecord(
                projector=projector,
                size=size,
                workers=workers,
                backend=backend,
                sweep_seconds=sweep_s,
                pack_seconds=pack_s,
                total_seconds=total_s,
                nnz=nnz,
                checksum=checksum,
            )
            records.append(rec)
        best = min(r.total_seconds for r in records if r.projector == projector)
        first = next(r for r in records if r.projector == projector)
        obs_metrics.gauge(
            "bench.build.scaling",
            "single-worker cold build time over best multi-worker time",
        ).set(first.total_seconds / best if best else 0.0)
    return records


#: Bumped when the per-record shape changes; every appended record is
#: tagged so mixed-schema files stay interpretable.
BUILD_BENCH_SCHEMA = 2


def save_records(
    records: list[BuildBenchRecord],
    path: str = "BENCH_build.json",
    *,
    fresh: bool = False,
) -> str:
    """Append *records* to *path* (schema-tagged, trajectory-style).

    Appending is the default so worker-ladder runs accumulate into one
    file; ``fresh=True`` restores the old truncate-and-write behavior.
    """
    from repro.bench.trajectory import git_rev
    from repro.obs.perf import host_fingerprint

    payload = {"bench": "build", "schema": BUILD_BENCH_SCHEMA, "records": []}
    if not fresh:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
            if isinstance(existing, dict) and existing.get("bench") == "build":
                payload["records"] = list(existing.get("records", []))
        except (FileNotFoundError, ValueError):
            pass
    stamp = {
        "schema": BUILD_BENCH_SCHEMA,
        "host": host_fingerprint(),
        "git_rev": git_rev(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    payload["records"].extend({**asdict(r), **stamp} for r in records)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def render(records: list[BuildBenchRecord], *, title: str = "") -> str:
    """One row per (projector, workers); speedup is vs that projector's W=1."""
    t = Table(
        headers=["projector", "workers", "sweep ms", "pack ms", "total ms",
                 "speedup", "backend"],
        fmt=".1f",
        title=title,
    )
    base: dict[str, float] = {}
    for r in records:
        base.setdefault(r.projector, r.total_seconds)
        speedup = base[r.projector] / r.total_seconds if r.total_seconds else 0.0
        t.add_row(
            r.projector, str(r.workers), r.sweep_seconds * 1e3,
            r.pack_seconds * 1e3, r.total_seconds * 1e3,
            f"{speedup:.2f}x", r.backend,
        )
    return t.render()
