"""Fig 7 — the whole CSCV-based SpMV process.

The paper's pipeline figure: matrix format conversion (once, before
calculation), then per-iteration local ad hoc reordering + fully
vectorised SpMV.  We time each stage on a real dataset and report the
amortisation: conversion cost divided by per-iteration savings vs the
vendor baseline — the break-even iteration count that justifies CSCV in
iterative reconstruction.

Stage timing comes from the tracing layer (``repro.obs``): the builder
already emits ``build.cscv`` with nested per-stage spans, so the figure
reports the real trajectory/IOBLR/CSCVE/VxG decomposition instead of a
single opaque conversion lap.
"""

from __future__ import annotations

import numpy as np

from repro.bench.datasets import QUICK_DATASET, get_dataset
from repro.core.builder import build_cscv
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.obs import trace as obs_trace
from repro.sparse.mkl_like import MKLLikeCSR
from repro.utils.tables import Table
from repro.utils.timing import min_time


def _traced_build(coo, geom, params: CSCVParams, dtype):
    """Build CSCV with tracing forced on; return (data, new spans)."""
    tr = obs_trace.tracer
    prev, mark = tr.enabled, len(tr.finished())
    tr.enabled = True
    try:
        data = build_cscv(coo.rows, coo.cols, coo.vals, geom, params, dtype)
    finally:
        tr.enabled = prev
    return data, tr.finished()[mark:]


def run(dataset: str = QUICK_DATASET, dtype=np.float32,
        params: CSCVParams | None = None) -> str:
    """Time conversion and per-iteration stages; render the breakdown."""
    params = params or CSCVParams(s_vvec=16, s_imgb=16, s_vxg=2)
    coo, geom = get_dataset(dataset).load(dtype=dtype)

    data, spans = _traced_build(coo, geom, params, dtype)
    z = CSCVZMatrix(data)
    m = CSCVMMatrix(data)
    x = np.linspace(0.5, 1.5, coo.shape[1]).astype(dtype)
    y = np.zeros(coo.shape[0], dtype=dtype)

    t_z = min_time(lambda: z.spmv_into(x, y), iterations=30, max_seconds=2)
    t_m = min_time(lambda: m.spmv_into(x, y), iterations=30, max_seconds=2)
    mkl = MKLLikeCSR.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, dtype=dtype)
    t_mkl = min_time(lambda: mkl.spmv_into(x, y), iterations=30, max_seconds=2)

    root = next(s for s in spans if s.name == "build.cscv")
    convert_s = root.seconds
    t = Table(headers=["stage", "time", "unit"], title="Fig 7: CSCV pipeline stages")
    t.add_row("matrix format conversion (once)", f"{convert_s * 1e3:.1f}", "ms")
    pack = next((s for s in spans if s.name == "build.pack"), None)
    stage_parents = {root.id} | ({pack.id} if pack else set())
    for s in sorted((s for s in spans
                     if s.parent in stage_parents and s.name != "build.pack"),
                    key=lambda s: s.start):
        stage = s.name.removeprefix("build.")
        t.add_row(f"  conversion: {stage}", f"{s.seconds * 1e3:.1f}", "ms")
    t.add_row("SpMV iteration, CSCV-Z (reorder+compute)", f"{t_z * 1e3:.3f}", "ms")
    t.add_row("SpMV iteration, CSCV-M (reorder+expand+compute)", f"{t_m * 1e3:.3f}", "ms")
    t.add_row("SpMV iteration, vendor CSR baseline", f"{t_mkl * 1e3:.3f}", "ms")
    best = min(t_z, t_m)
    if t_mkl > best:
        breakeven = convert_s / (t_mkl - best)
        note = (
            f"conversion amortises after {breakeven:.0f} SpMV iterations "
            f"(iterative CT runs hundreds per reconstruction)"
        )
    else:
        note = "baseline faster at this scale; conversion does not amortise"
    return t.render() + "\n" + note


def stage_times(dataset: str = QUICK_DATASET, dtype=np.float32) -> dict[str, float]:
    """Machine-readable stage times (used by tests)."""
    params = CSCVParams(s_vvec=16, s_imgb=16, s_vxg=2)
    coo, geom = get_dataset(dataset).load(dtype=dtype)
    data, spans = _traced_build(coo, geom, params, dtype)
    z = CSCVZMatrix(data)
    x = np.ones(coo.shape[1], dtype=dtype)
    y = np.zeros(coo.shape[0], dtype=dtype)
    t_iter = min_time(lambda: z.spmv_into(x, y), iterations=10, max_seconds=1)
    convert_s = next(s for s in spans if s.name == "build.cscv").seconds
    return {"convert": convert_s, "iteration": t_iter}
