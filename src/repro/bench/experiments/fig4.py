"""Fig 4 — SIMD efficiency under three y layouts.

The paper: with ``S_VVec = 8``, the nonzeros per SIMD segment are 3 for
the bin-major layout, 2-6 for the view-major (BTB) layout and 7-8 for the
IOBLR layout.  We recompute the segment-occupancy ranges for the sample
block's pixels under all three layouts.
"""

from __future__ import annotations

import numpy as np

from repro.bench.experiments.table1 import sample_block, sample_geometry, sample_params
from repro.core.ioblr import layout_simd_efficiency
from repro.utils.tables import Table

PAPER_RANGES = {"bin-major": (3, 3), "view-major": (2, 6), "ioblr": (7, 8)}


def run(pixels=((5, 5), (6, 8), (7, 7), (9, 6))) -> str:
    """Segment-occupancy range per layout, vs the paper's ranges."""
    geom = sample_geometry()
    block = sample_block()
    s_vvec = sample_params().s_vvec
    t = Table(
        headers=["layout", "paper range", "ours min", "ours max", "ours mean"],
        title=f"Fig 4: nonzeros per {s_vvec}-wide SIMD segment",
        fmt=".1f",
    )
    summary = {}
    for layout, (plo, phi) in PAPER_RANGES.items():
        counts = np.concatenate(
            [layout_simd_efficiency(geom, block, p, s_vvec, layout) for p in pixels]
        )
        summary[layout] = counts
        t.add_row(layout, f"{plo}..{phi}", int(counts.min()), int(counts.max()),
                  float(counts.mean()))
    verdict = (
        "ordering (mean occupancy): "
        + " < ".join(
            sorted(summary, key=lambda k: summary[k].mean())
        )
        + "   (paper: bin-major < view-major < ioblr)"
    )
    return t.render() + "\n" + verdict


def mean_efficiency(layout: str, pixels=((5, 5), (7, 7))) -> float:
    """Mean segment occupancy of one layout (used by tests)."""
    geom = sample_geometry()
    block = sample_block()
    s_vvec = sample_params().s_vvec
    counts = np.concatenate(
        [layout_simd_efficiency(geom, block, p, s_vvec, layout) for p in pixels]
    )
    return float(counts.mean())
