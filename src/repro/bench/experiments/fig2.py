"""Fig 2 — trajectories of pixels in the projection domain.

The paper's figure: three pixels (red and blue adjacent, green apart)
whose projection trajectories share many traces when the pixels are
adjacent and some traces in limited view intervals otherwise.  We compute
the trajectories, count shared bins per view and verify the figure's
qualitative claims (adjacent >> distant sharing, nonzero distant sharing
somewhere).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.trajectory import pixel_trajectory, shared_bins
from repro.utils.tables import Table


def default_geometry() -> ParallelBeamGeometry:
    return ParallelBeamGeometry(
        image_size=25, num_bins=38, num_views=45, delta_angle_deg=4.0
    )


def run() -> str:
    """Compute the three trajectories and their per-view sharing."""
    geom = default_geometry()
    red = (7, 7)
    blue = (7, 8)    # adjacent to red
    green = (12, 16)  # not contiguous with blue
    views = np.arange(geom.num_views)

    t = Table(
        headers=["pair", "views sharing >=1 bin", "total shared bins", "max run"],
        title="Fig 2: trajectory sharing in the projection domain",
    )
    rows = []
    for name, a, b in (
        ("red-blue (adjacent)", red, blue),
        ("blue-green (distant)", blue, green),
        ("red-green (distant)", red, green),
    ):
        sh = shared_bins(geom, a, b, views)
        shared_views = int(np.count_nonzero(sh))
        # longest consecutive run of sharing views (the "view interval"
        # where distant trajectories join)
        run_len = best = 0
        for v in sh:
            run_len = run_len + 1 if v > 0 else 0
            best = max(best, run_len)
        t.add_row(name, shared_views, int(sh.sum()), best)
        rows.append((name, shared_views))

    lo_r, hi_r = pixel_trajectory(geom, *red, views)
    curve = "red pixel trajectory (min bin per view): " + " ".join(
        str(int(b)) for b in lo_r[::4]
    )
    return t.render() + "\n" + curve
