"""Per-experiment modules: each regenerates one table or figure.

Every module exposes ``run(...) -> str`` returning the rendered report
(paper values alongside measured/modelled ones).  The pytest-benchmark
entry points in ``benchmarks/`` call these and time their core kernels.
"""
