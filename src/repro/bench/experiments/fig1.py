"""Fig 1 — forward projection of an image and its sinogram.

Forward-projects the Shepp-Logan phantom through the real system matrix
and renders the sinogram as an ASCII heatmap (views x bins), plus one
view's profile — the data behind the paper's illustration.
"""

from __future__ import annotations

import numpy as np

from repro.api import build_ct_matrix
from repro.geometry.phantom import shepp_logan
from repro.sparse.csr import CSRMatrix
from repro.utils.tables import render_grid


def run(image_size: int = 64, num_views: int = 60, max_cells: int = 24) -> str:
    """Generate the sinogram and render a downsampled heatmap."""
    coo, geom = build_ct_matrix(image_size, num_views=num_views)
    x = shepp_logan(image_size).ravel()
    y = CSRMatrix.from_coo_matrix(coo).spmv(x)
    sino = y.reshape(geom.num_views, geom.num_bins)

    # downsample for terminal rendering
    vstep = max(1, geom.num_views // max_cells)
    bstep = max(1, geom.num_bins // max_cells)
    small = sino[::vstep, ::bstep]
    grid = render_grid(
        small,
        row_labels=[f"v{v}" for v in range(0, geom.num_views, vstep)],
        col_labels=[f"b{b}" for b in range(0, geom.num_bins, bstep)],
        title="Fig 1b: sinogram (views x bins), downsampled",
        fmt=".0f",
        heat=True,
    )
    mid = sino[geom.num_views // 2]
    profile = "Fig 1a: central view profile: " + " ".join(
        f"{v:.0f}" for v in mid[:: max(1, geom.num_bins // 16)]
    )
    stats = (
        f"sinogram range [{sino.min():.2f}, {sino.max():.2f}], "
        f"nnz rays {np.count_nonzero(y)}/{y.size}"
    )
    return "\n".join([grid, profile, stats])
