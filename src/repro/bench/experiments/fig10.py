"""Fig 10 — scalability of SpMV implementations in GFLOP/s.

The thread-sweep figure.  This container has one core, so the curves come
from the performance model on the paper's SKL and Zen2 machines, anchored
by the measured single-thread host numbers (printed in the last column
for reality-checking the latency-bound end).

Shape targets asserted by the tests: near-linear scaling at low thread
counts; CSCV-Z leads at 1 thread; CSCV-M overtakes CSCV-Z as threads grow
(paper: >=16T on SKL, 64T on Zen2); CSCV-M nearly linear to 64T on Zen2.
"""

from __future__ import annotations

import numpy as np

from repro.api import build_format
from repro.bench.datasets import QUICK_DATASET, get_dataset
from repro.bench.harness import measure_format
from repro.core.params import CSCVParams, PAPER_TABLE3
from repro.perfmodel import SKL, ZEN2, scalability_curve
from repro.perfmodel.platform import Machine
from repro.utils.tables import Table

THREADS = (1, 2, 4, 8, 16, 32, 64)

FORMATS = ["cscv-z", "cscv-m", "mkl-csr", "mkl-csc", "merge", "spc5", "csr5", "esb"]


def _params_for(machine: Machine, precision: str) -> dict[str, CSCVParams]:
    return {
        "cscv-z": PAPER_TABLE3[(machine.name, "cscv-z", precision)],
        "cscv-m": PAPER_TABLE3[(machine.name, "cscv-m", precision)],
    }


def run(dataset: str = QUICK_DATASET, dtype=np.float32, measure_host: bool = True) -> str:
    """Render the model scalability tables for SKL and Zen2."""
    dt = np.dtype(dtype)
    precision = "single" if dt == np.float32 else "double"
    coo, geom = get_dataset(dataset).load(dtype=dt)
    sections = []
    for machine in (SKL, ZEN2):
        params = _params_for(machine, precision)
        t = Table(
            headers=["impl", *[f"t={x}" for x in THREADS], "host 1T meas."],
            title=f"Fig 10 model: {machine.name} {precision} GFLOP/s vs threads",
            fmt=".1f",
        )
        for name in FORMATS:
            fmt = build_format(name, coo, geom=geom, params=params.get(name))
            curve = scalability_curve(fmt, machine, THREADS)
            host = ""
            if measure_host and machine is SKL:
                host = f"{measure_format(fmt, iterations=10, max_seconds=1).gflops:.2f}"
            t.add_row(name, *[curve[x] for x in THREADS], host)
        sections.append(t.render())
    return "\n\n".join(sections)


def model_curves(dataset: str = QUICK_DATASET, dtype=np.float32):
    """Machine-readable curves keyed (machine, format) (used by tests)."""
    dt = np.dtype(dtype)
    precision = "single" if dt == np.float32 else "double"
    coo, geom = get_dataset(dataset).load(dtype=dt)
    out = {}
    for machine in (SKL, ZEN2):
        params = _params_for(machine, precision)
        for name in ("cscv-z", "cscv-m", "mkl-csr"):
            fmt = build_format(name, coo, geom=geom, params=params.get(name))
            out[(machine.name, name)] = scalability_curve(fmt, machine, THREADS)
    return out
