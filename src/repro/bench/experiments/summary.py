"""Run-everything report: all tables and figures in one pass.

``python -m repro experiment summary`` regenerates every experiment at
reduced scale and concatenates the reports — the one-command reproduction
of the paper's evaluation section.  Heavier experiments run on the quick
dataset; pass ``full=True`` (or edit the call sites) for paper-scale runs.
"""

from __future__ import annotations

import time

import numpy as np


def run(full: bool = False) -> str:
    """Regenerate every table/figure; returns the concatenated report."""
    from repro.bench.experiments import (
        fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11,
        table1, table2, table3, table4,
    )

    quick = "clinical-small"
    param_ds = "mixed-large" if full else quick
    heavy_sets = None if full else ["clinical-small"]

    jobs = [
        ("Table I", lambda: table1.run()),
        ("Table II", lambda: table2.run()),
        ("Table III", lambda: table3.run(dataset=param_ds)),
        ("Table IV (single)", lambda: table4.run(dataset_names=heavy_sets, dtype=np.float32)),
        ("Table IV (double)", lambda: table4.run(dataset_names=heavy_sets, dtype=np.float64)),
        ("Fig 1", lambda: fig1.run()),
        ("Fig 2", lambda: fig2.run()),
        ("Fig 3", lambda: fig3.run()),
        ("Fig 4", lambda: fig4.run()),
        ("Fig 5", lambda: fig5.run()),
        ("Fig 6", lambda: fig6.run()),
        ("Fig 7", lambda: fig7.run(dataset=quick)),
        ("Fig 8", lambda: fig8.run(dataset=param_ds)),
        ("Fig 9", lambda: fig9.run(dataset=quick, iterations=5)),
        ("Fig 10", lambda: fig10.run(dataset=quick)),
        ("Fig 11", lambda: fig11.run(dataset="clinical-mid" if full else quick)),
    ]
    sections = []
    total_start = time.perf_counter()
    for name, job in jobs:
        start = time.perf_counter()
        try:
            body = job()
        except Exception as exc:  # keep going; report the failure
            body = f"FAILED: {type(exc).__name__}: {exc}"
        elapsed = time.perf_counter() - start
        rule = "=" * 72
        sections.append(f"{rule}\n{name}  ({elapsed:.1f}s)\n{rule}\n{body}")
    sections.append(
        f"total: {time.perf_counter() - total_start:.1f}s for "
        f"{len(jobs)} experiments"
    )
    return "\n\n".join(sections)
