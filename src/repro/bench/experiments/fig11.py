"""Fig 11 — memory requirements, best performance and bandwidth usage.

The paper's three-panel profile of the 1024x1024 case: per implementation
the per-iteration memory requirement ``M_Rit``, the best GFLOP/s, and the
effective memory-bandwidth usage ratio ``R_EM``.  We print measured host
values plus the SKL 64-thread model, and restate the paper's two reasons:

* Reason 1 — equal memory, higher bandwidth usage wins (CSCV-M vs SPC5);
* Reason 2 — equal bandwidth usage, lower memory wins (CSCV-M vs CSCV-Z,
  even though CSCV-Z reaches 98.4% of the peak).
"""

from __future__ import annotations

import numpy as np

from repro.api import build_format
from repro.bench.datasets import get_dataset
from repro.bench.harness import measure_format
from repro.core.params import CSCVParams, PAPER_TABLE3
from repro.perfmodel import SKL, predict_gflops
from repro.perfmodel.roofline import effective_bw_ratio_model, predict_time
from repro.sparse.stats import memory_requirement
from repro.utils.tables import Table

FORMATS = ["cscv-z", "cscv-m", "spc5", "mkl-csr", "mkl-csc", "merge", "csr", "csc"]

#: dataset standing in for the paper's 1024 x 1024 profile matrix
DEFAULT_DATASET = "clinical-mid"


def run(dataset: str = DEFAULT_DATASET, dtype=np.float32, iterations: int = 20) -> str:
    """Render the Fig 11 panel table."""
    dt = np.dtype(dtype)
    precision = "single" if dt == np.float32 else "double"
    coo, geom = get_dataset(dataset).load(dtype=dt)
    params = {
        "cscv-z": PAPER_TABLE3[("skl", "cscv-z", precision)],
        "cscv-m": PAPER_TABLE3[("skl", "cscv-m", precision)],
    }
    t = Table(
        headers=[
            "impl",
            "M_Rit MiB",
            "host GF",
            "host BW GB/s",
            "SKL64 GF (model)",
            "SKL64 R_EM (model)",
            "bound",
        ],
        title=f"Fig 11 ({dataset}, {precision}): memory / performance / bandwidth",
        fmt=".2f",
    )
    for name in FORMATS:
        fmt = build_format(name, coo, geom=geom, params=params.get(name))
        rec = measure_format(fmt, iterations=iterations, max_seconds=2)
        mem = memory_requirement(fmt)
        times = predict_time(fmt, SKL, 64)
        t.add_row(
            name,
            mem["M_rit"] / 2**20,
            rec.gflops,
            rec.bw_gbs,
            predict_gflops(fmt, SKL, 64),
            effective_bw_ratio_model(fmt, SKL, 64),
            "memory" if times["memory"] >= times["compute"] else "compute",
        )
    t.mark_extremes(2)
    t.mark_extremes(4)
    notes = (
        "paper reason 1: similar memory -> bandwidth usage decides (CSCV-M vs SPC5)\n"
        "paper reason 2: similar bandwidth usage -> memory decides "
        "(CSCV-M beats CSCV-Z despite Z reaching 98.4% of M_PBw)"
    )
    return t.render() + "\n" + notes
