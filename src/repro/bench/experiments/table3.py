"""Table III — selected CSCV parameter combinations and their R_nnzE.

Runs the Section V-D autotuning procedure on the parameter-selection
matrix (the scaled 1024x1024 stand-in) and prints the chosen triples with
their measured zero-padding rates, next to the paper's Table III rows for
both platforms.
"""

from __future__ import annotations

import numpy as np

from repro.bench.datasets import PARAMETER_DATASET, get_dataset
from repro.core.autotune import autotune_parameters
from repro.core.params import PAPER_TABLE3, PAPER_TABLE3_RNNZE
from repro.utils.tables import Table


def run(
    dataset: str = PARAMETER_DATASET,
    *,
    scorer: str = "measure",
    dtype=np.float32,
    s_vvec_grid=(4, 8, 16),
    s_imgb_grid=(8, 16, 32),
    s_vxg_grid=(1, 2, 4),
) -> str:
    """Autotune on *dataset* and render the Table III comparison."""
    coo, geom = get_dataset(dataset).load(dtype=dtype)
    result = autotune_parameters(
        coo,
        geom,
        dtype=dtype,
        scorer=scorer,
        s_vvec_grid=s_vvec_grid,
        s_imgb_grid=s_imgb_grid,
        s_vxg_grid=s_vxg_grid,
    )
    t = Table(
        headers=["platform", "impl", "precision", "S_ImgB", "S_VVec", "S_VxG", "R_nnzE"],
        title="Table III: selected parameter combinations",
        fmt=".3f",
    )
    for (plat, impl, prec), p in PAPER_TABLE3.items():
        t.add_row(
            f"paper:{plat}", impl, prec, p.s_imgb, p.s_vvec, p.s_vxg,
            PAPER_TABLE3_RNNZE[(plat, impl, prec)],
        )
    prec = "single" if np.dtype(dtype) == np.float32 else "double"
    for impl, p in (("cscv-z", result.best_z), ("cscv-m", result.best_m)):
        point = next(pt for pt in result.points if pt.params == p)
        t.add_row("ours:host", impl, prec, p.s_imgb, p.s_vvec, p.s_vxg, point.r_nnze)
    return t.render()
