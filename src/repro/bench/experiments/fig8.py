"""Fig 8 — R_nnzE and memory requirements over the parameter space.

Reproduces the paper's parameter-sensitivity grids on the
parameter-selection matrix: for each ``(S_VVec, S_ImgB)`` cell (one grid
per ``S_VxG``), the zero-padding rate and the per-iteration memory
requirement of CSCV-Z and CSCV-M.  The trends the paper calls out and the
tests assert: R_nnzE grows with every parameter; CSCV-M needs
significantly less memory than CSCV-Z; CSCV-M's memory is nearly
independent of S_VxG/S_ImgB.
"""

from __future__ import annotations

import numpy as np

from repro.bench.datasets import PARAMETER_DATASET, get_dataset
from repro.core.autotune import parameter_sweep
from repro.utils.tables import render_grid


def sweep(
    dataset: str = PARAMETER_DATASET,
    *,
    dtype=np.float32,
    s_vvec_grid=(4, 8, 16),
    s_imgb_grid=(8, 16, 32),
    s_vxg_grid=(1, 2, 4),
):
    """Run the structural sweep (no timing) and return the points."""
    coo, geom = get_dataset(dataset).load(dtype=dtype)
    return parameter_sweep(
        coo,
        geom,
        dtype=dtype,
        s_vvec_grid=s_vvec_grid,
        s_imgb_grid=s_imgb_grid,
        s_vxg_grid=s_vxg_grid,
        measure=False,
    )


def run(dataset: str = PARAMETER_DATASET, dtype=np.float32) -> str:
    """Render the R_nnzE and memory grids per S_VxG."""
    points = sweep(dataset, dtype=dtype)
    vvecs = sorted({p.params.s_vvec for p in points})
    imgbs = sorted({p.params.s_imgb for p in points})
    vxgs = sorted({p.params.s_vxg for p in points})

    def grid(metric, s_vxg):
        g = np.full((len(vvecs), len(imgbs)), np.nan)
        for p in points:
            if p.params.s_vxg != s_vxg:
                continue
            i = vvecs.index(p.params.s_vvec)
            j = imgbs.index(p.params.s_imgb)
            g[i, j] = metric(p)
        return g

    sections = []
    for s_vxg in vxgs:
        sections.append(
            render_grid(
                grid(lambda p: p.r_nnze, s_vxg),
                row_labels=[f"VVec={v}" for v in vvecs],
                col_labels=[f"ImgB={b}" for b in imgbs],
                title=f"Fig 8 R_nnzE, S_VxG={s_vxg} (paper: rises with all three params)",
                fmt=".3f",
                heat=True,
            )
        )
        sections.append(
            render_grid(
                grid(lambda p: p.memory_z / 2**20, s_vxg),
                row_labels=[f"VVec={v}" for v in vvecs],
                col_labels=[f"ImgB={b}" for b in imgbs],
                title=f"Fig 8 memory CSCV-Z (MiB), S_VxG={s_vxg}",
                fmt=".1f",
                heat=True,
            )
        )
        sections.append(
            render_grid(
                grid(lambda p: p.memory_m / 2**20, s_vxg),
                row_labels=[f"VVec={v}" for v in vvecs],
                col_labels=[f"ImgB={b}" for b in imgbs],
                title=f"Fig 8 memory CSCV-M (MiB), S_VxG={s_vxg} "
                      "(paper: much flatter than Z)",
                fmt=".1f",
                heat=True,
            )
        )
    return "\n\n".join(sections)
