"""Table I — the running-example matrix block.

Reconstructs the paper's sample block exactly: a 25x25 image, 38 bins,
4-degree angular step, image block rows/cols [5, 9], block starting at
view 8 (32 degrees), S_VVec = 8, S_VxG = 2 — and reports its CSCV
statistics, which Figs 3-6 then draw.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import BlockGrid, MatrixBlock
from repro.core.params import CSCVParams
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.utils.tables import Table

#: the paper's Table I values
PAPER = {
    "full_image": 25,
    "num_bins": 38,
    "delta_angle": 4.0,
    "block_rows": (5, 9),
    "block_cols": (5, 9),
    "block_start_angle": 32.0,
    "s_vvec": 8,
    "s_vxg": 2,
}


def sample_geometry() -> ParallelBeamGeometry:
    """The Table I acquisition: 25x25 image, 38 bins, 4-degree steps.

    45 views cover the 180-degree half-circle at 4 degrees.
    """
    return ParallelBeamGeometry(
        image_size=PAPER["full_image"],
        num_bins=PAPER["num_bins"],
        num_views=45,
        delta_angle_deg=PAPER["delta_angle"],
    )


def sample_block() -> MatrixBlock:
    """The Table I matrix block: pixels [5,9]x[5,9], views 8..15."""
    v0 = int(PAPER["block_start_angle"] / PAPER["delta_angle"])
    return MatrixBlock(
        block_id=0,
        v0=v0,
        v1=v0 + PAPER["s_vvec"],
        i0=PAPER["block_rows"][0],
        i1=PAPER["block_rows"][1] + 1,
        j0=PAPER["block_cols"][0],
        j1=PAPER["block_cols"][1] + 1,
    )


def sample_params() -> CSCVParams:
    """S_VVec=8, S_VxG=2; S_ImgB=5 (the [5,9] tile)."""
    return CSCVParams(s_vvec=PAPER["s_vvec"], s_imgb=5, s_vxg=PAPER["s_vxg"])


def run() -> str:
    """Render Table I next to the reconstructed block's derived stats."""
    geom = sample_geometry()
    block = sample_block()
    t = Table(headers=["field", "paper", "ours"], title="Table I: sample matrix block")
    t.add_row("Full image size", "25 * 25", f"{geom.image_size} * {geom.image_size}")
    t.add_row("Number of Bins", 38, geom.num_bins)
    t.add_row("Delta Angle", "4 deg", f"{geom.delta_angle_deg:g} deg")
    t.add_row("Image Block Range", "Row/Col [5, 9]",
              f"Row [{block.i0}, {block.i1 - 1}], Col [{block.j0}, {block.j1 - 1}]")
    t.add_row("Block Start Angle", "32 deg",
              f"{geom.start_angle_deg + block.v0 * geom.delta_angle_deg:g} deg")
    t.add_row("S_VVec", 8, sample_params().s_vvec)
    t.add_row("S_VxG", 2, sample_params().s_vxg)
    t.add_row("(derived) reference pixel", "-", str(block.reference_pixel))
    t.add_row("(derived) views in block", "-", block.num_views)
    return t.render()
