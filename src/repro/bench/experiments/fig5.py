"""Fig 5 — padding/CSCVE/offset distribution over reference-pixel choice.

Sweeps every pixel of the Table I block as the IOBLR reference and maps
the total padding zeros, CSCVE count and parallel-curve offset span that
choice induces — the paper's three heatmaps.  The block centre should sit
in the low-padding basin (that is why the builder anchors on it).
"""

from __future__ import annotations

import numpy as np

from repro.bench.experiments.table1 import sample_block, sample_geometry, sample_params
from repro.core.cscve import reference_sweep
from repro.utils.tables import render_grid


def run() -> str:
    """Render the three reference-choice heatmaps."""
    geom = sample_geometry()
    block = sample_block()
    s_vvec = sample_params().s_vvec
    grids = reference_sweep(geom, block, s_vvec)
    sections = []
    for key, title in (
        ("padding", "Fig 5a: total padding zeros by reference pixel"),
        ("cscve_count", "Fig 5b: CSCVE count by reference pixel"),
        ("offset_span", "Fig 5c: bin-offset span by reference pixel"),
    ):
        g = grids[key]
        sections.append(
            render_grid(
                g.astype(float),
                row_labels=range(block.i0, block.i1),
                col_labels=range(block.j0, block.j1),
                title=title,
                fmt=".0f",
                heat=True,
            )
        )
    pad = grids["padding"].astype(float)
    ci, cj = np.array(block.reference_pixel) - (block.i0, block.j0)
    sections.append(
        f"centre reference padding {pad[ci, cj]:.0f}, "
        f"grid min {pad.min():.0f}, max {pad.max():.0f} "
        f"(centre within {100 * (pad[ci, cj] - pad.min()) / max(pad.max() - pad.min(), 1):.0f}% of best)"
    )
    return "\n\n".join(sections)


def center_is_good_reference(tolerance: float = 0.34) -> bool:
    """Check the figure's implication: the centre is near-optimal."""
    geom = sample_geometry()
    block = sample_block()
    grids = reference_sweep(geom, block, sample_params().s_vvec)
    pad = grids["padding"].astype(float)
    ci, cj = np.array(block.reference_pixel) - (block.i0, block.j0)
    span = max(float(pad.max() - pad.min()), 1.0)
    return (pad[ci, cj] - pad.min()) / span <= tolerance
