"""Table II — the matrix datasets.

Regenerates the dataset-information table: for every scaled matrix we
build, print its geometry and measured nnz next to the paper's original
row, plus the scale-invariant density ``nnz / (pixels * views)`` whose
agreement justifies the scaling (DESIGN.md substitution table).
"""

from __future__ import annotations

import numpy as np

from repro.bench.datasets import DATASETS
from repro.utils.tables import Table


def run(names: list[str] | None = None, dtype=np.float32) -> str:
    """Build every dataset and render the side-by-side Table II."""
    t = Table(
        headers=[
            "dataset",
            "img size",
            "bins",
            "views",
            "dAngle",
            "nnz",
            "x size",
            "y size",
            "nnz/(px*view)",
        ],
        title="Table II: matrix datasets (paper row, then ours)",
    )
    for name, ds in DATASETS.items():
        if names is not None and name not in names:
            continue
        p = ds.paper
        paper_px = p.x_size
        t.add_row(
            f"paper:{p.img}",
            p.img,
            p.num_bin,
            p.num_view,
            p.delta_angle,
            p.nnz,
            p.x_size,
            p.y_size,
            f"{p.nnz / (paper_px * p.num_view):.2f}",
        )
        coo, geom = ds.load(dtype=dtype)
        t.add_row(
            f"ours:{name}",
            f"{geom.image_size} x {geom.image_size}",
            geom.num_bins,
            geom.num_views,
            f"{geom.delta_angle_deg:.4g}",
            coo.nnz,
            geom.num_pixels,
            geom.num_rays,
            f"{coo.nnz / (geom.num_pixels * geom.num_views):.2f}",
        )
    return t.render()


def density_match(name: str, dtype=np.float32) -> tuple[float, float]:
    """(paper density, our density) for one dataset — the scaling check."""
    ds = DATASETS[name]
    coo, geom = ds.load(dtype=dtype)
    paper = ds.paper.nnz / (ds.paper.x_size * ds.paper.num_view)
    ours = coo.nnz / (geom.num_pixels * geom.num_views)
    return paper, ours
