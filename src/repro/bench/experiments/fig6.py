"""Fig 6 — constructing and ordering VxGs.

Reruns the two-pass VxG construction on the sample block's pixel columns
and renders the ``(offset, count)`` boxes of the figure, marking the
VxGs that acquired whole padding CSCVEs (the figure's red boxes), then
shows the second pass's count ordering.  Also reports the index-volume
ratios the paper quotes (~0.25x vs per-CSCVE, ~0.03x vs CSC).
"""

from __future__ import annotations

from repro.bench.experiments.table1 import sample_block, sample_geometry, sample_params
from repro.core.cscve import column_cscves
from repro.core.vxg import construct_vxgs, index_data_ratio, order_by_count, render_trace


def _column_offsets():
    geom = sample_geometry()
    block = sample_block()
    s_vvec = sample_params().s_vvec
    out = {}
    col = 0
    for i in range(block.i0, block.i1):
        for j in range(block.j0, block.j1):
            cscves = column_cscves(geom, block, (i, j), block.reference_pixel, s_vvec)
            out[col] = [(d, int(v.sum())) for d, v in cscves.items()]
            col += 1
    return out


def run(max_cols: int = 6) -> str:
    """Render the construction trace and the ordered result."""
    offsets = _column_offsets()
    s_vxg = sample_params().s_vxg
    shown = {c: offsets[c] for c in list(offsets)[:max_cols]}
    vxgs = construct_vxgs(shown, s_vxg)
    ordered = order_by_count(vxgs)

    all_vxgs = construct_vxgs(offsets, s_vxg)
    num_cscve = sum(len(v) for v in offsets.values())
    nnz = sum(c for v in offsets.values() for _, c in v)
    ratios = index_data_ratio(len(all_vxgs), num_cscve, nnz)

    return "\n".join(
        [
            "Fig 6a: VxGs after pass one (sorted by bin offset; *extra-padding* = red):",
            render_trace(vxgs),
            "",
            "Fig 6b: VxGs after pass two (ordered by count):",
            render_trace(ordered),
            "",
            f"index volume: {ratios['vs_cscve']:.2f}x of per-CSCVE indexing "
            f"(paper ~0.25x at S_VxG=4), {ratios['vs_csc']:.3f}x of CSC row "
            f"indices (paper ~0.03x)",
        ]
    )
