"""Table IV — best performance of each implementation.

For every implementation the paper lists the average and maximum GFLOP/s
over the four matrices, per platform and precision.  Here each format is

* **measured** on this host (single core, min-of-N wall clock), and
* **modelled** at 64 threads on the paper's SKL and Zen2 machines
  (:mod:`repro.perfmodel`),

with the paper's Table IV numbers printed alongside.  The reproduction
claim is about *ordering and ratios* (who wins, by roughly how much), not
absolute GFLOP/s — see EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.bench.datasets import DATASETS
from repro.bench.harness import run_suite
from repro.core.params import CSCVParams, PAPER_TABLE3
from repro.perfmodel import SKL, ZEN2, predict_gflops
from repro.api import build_format
from repro.utils.tables import Table

#: paper Table IV (avg, max) per (platform, precision, impl)
PAPER_TABLE4 = {
    ("skl", "single"): {
        "cscv-z": (68.74, 72.1), "cscv-m": (85.48, 87.98),
        "mkl-csr": (31.16, 40.99), "mkl-csc": (27.55, 32.75),
        "merge": (24.81, 30.93), "spc5": (61.46, 70.71),
    },
    ("skl", "double"): {
        "cscv-z": (35.05, 37.57), "cscv-m": (45.19, 47.47),
        "mkl-csr": (20.59, 25.72), "mkl-csc": (16.48, 18.15),
        "merge": (12.82, 14.89), "spc5": (34.52, 40.54),
        "vhcc": (26.13, 26.88), "esb": (12.68, 13.56),
        "csr5": (21.39, 26.72), "cvr": (17.62, 20.66),
    },
    ("zen2", "single"): {
        "cscv-z": (73.36, 79.47), "cscv-m": (92.44, 96.93),
        "mkl-csr": (43.75, 54.57), "mkl-csc": (41.56, 44.63),
        "merge": (30.84, 39.49),
    },
    ("zen2", "double"): {
        "cscv-z": (41.25, 44.68), "cscv-m": (51.24, 54.09),
        "mkl-csr": (27.62, 33.79), "mkl-csc": (28.66, 33.45),
        "merge": (17.23, 22.49), "esb": (17.7, 20.27),
        "csr5": (25.69, 34.63),
    },
}

#: formats measured per precision (mirrors the paper's support matrix:
#: several baselines only ship double-precision kernels)
SINGLE_FORMATS = ["cscv-z", "cscv-m", "mkl-csr", "mkl-csc", "merge", "spc5", "csr", "csc"]
DOUBLE_FORMATS = SINGLE_FORMATS + ["vhcc", "esb", "csr5", "cvr"]


def _cscv_params(precision: str) -> dict[str, CSCVParams]:
    """Table III triples (SKL column) used for the CSCV formats."""
    return {
        "cscv-z": PAPER_TABLE3[("skl", "cscv-z", precision)],
        "cscv-m": PAPER_TABLE3[("skl", "cscv-m", precision)],
    }


def run(
    dataset_names: list[str] | None = None,
    *,
    dtype=np.float32,
    iterations: int = 30,
) -> str:
    """Measure + model every implementation; render the comparison."""
    if dataset_names is None:
        dataset_names = ["clinical-small", "clinical-mid"]
    dt = np.dtype(dtype)
    precision = "single" if dt == np.float32 else "double"
    format_names = SINGLE_FORMATS if precision == "single" else DOUBLE_FORMATS
    params_by_format = _cscv_params(precision)

    measured: dict[str, list[float]] = {f: [] for f in format_names}
    model_skl: dict[str, list[float]] = {f: [] for f in format_names}
    model_zen2: dict[str, list[float]] = {f: [] for f in format_names}
    for name in dataset_names:
        coo, geom = DATASETS[name].load(dtype=dt)
        records = run_suite(
            coo, geom, format_names,
            dtype=dt, params_by_format=params_by_format, iterations=iterations,
        )
        for rec in records:
            measured[rec.format_name].append(rec.gflops)
        for fname in format_names:
            fmt = build_format(
                fname, coo, geom=geom, params=params_by_format.get(fname)
            )
            model_skl[fname].append(predict_gflops(fmt, SKL, 64))
            model_zen2[fname].append(predict_gflops(fmt, ZEN2, 64))

    t = Table(
        headers=[
            "impl", "host avg", "host max",
            "SKL64 model avg", "SKL64 paper avg",
            "Zen2-64 model avg", "Zen2-64 paper avg",
        ],
        title=f"Table IV ({precision}): best GFLOP/s per implementation",
        fmt=".2f",
    )
    p_skl = PAPER_TABLE4[("skl", precision)]
    p_zen2 = PAPER_TABLE4[("zen2", precision)]
    for fname in format_names:
        ms = measured[fname]
        t.add_row(
            fname,
            float(np.mean(ms)),
            float(np.max(ms)),
            float(np.mean(model_skl[fname])),
            p_skl.get(fname, (None,))[0],
            float(np.mean(model_zen2[fname])),
            p_zen2.get(fname, (None,))[0],
        )
    for col in (1, 3, 5):
        t.mark_extremes(col)
    return t.render()


def speedup_summary(dataset_name: str = "clinical-mid", dtype=np.float32) -> dict:
    """Headline ratios: CSCV best vs vendor CSR and vs best non-CSCV."""
    dt = np.dtype(dtype)
    precision = "single" if dt == np.float32 else "double"
    coo, geom = DATASETS[dataset_name].load(dtype=dt)
    names = SINGLE_FORMATS if precision == "single" else DOUBLE_FORMATS
    records = run_suite(
        coo, geom, names, dtype=dt, params_by_format=_cscv_params(precision),
        iterations=30,
    )
    by_name = {r.format_name: r.gflops for r in records}
    cscv_best = max(by_name["cscv-z"], by_name["cscv-m"])
    non_cscv = {k: v for k, v in by_name.items() if not k.startswith("cscv")}
    second = max(non_cscv.values())
    return {
        "cscv_best": cscv_best,
        "vs_mkl_csr": cscv_best / by_name["mkl-csr"],
        "vs_second": cscv_best / second,
        "second_name": max(non_cscv, key=non_cscv.get),
    }
