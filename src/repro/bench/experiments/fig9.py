"""Fig 9 — best GFLOP/s and chosen S_VxG per (S_VVec, S_ImgB).

For every ``(S_VVec, S_ImgB)`` cell, measure CSCV-Z and CSCV-M SpMV over
the ``S_VxG`` grid, keep the best, and print ``GFLOP/s (S_VxG)`` — the
paper's annotated heatmaps.  Host measurements play the single-thread
panel; the SKL/Zen2 64-thread panels come from the performance model.
"""

from __future__ import annotations

import numpy as np

from repro.bench.datasets import QUICK_DATASET, get_dataset
from repro.core.autotune import parameter_sweep
from repro.core.builder import build_cscv
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.perfmodel import SKL, predict_gflops
from repro.utils.tables import Table


def run(
    dataset: str = QUICK_DATASET,
    *,
    dtype=np.float32,
    s_vvec_grid=(4, 8, 16),
    s_imgb_grid=(8, 16, 32),
    s_vxg_grid=(1, 2, 4),
    iterations: int = 10,
) -> str:
    """Measure the grid and render the two annotated tables."""
    coo, geom = get_dataset(dataset).load(dtype=dtype)
    points = parameter_sweep(
        coo, geom, dtype=dtype, measure=True, iterations=iterations,
        s_vvec_grid=s_vvec_grid, s_imgb_grid=s_imgb_grid, s_vxg_grid=s_vxg_grid,
    )

    sections = []
    for which in ("z", "m"):
        t = Table(
            headers=["", *[f"ImgB={b}" for b in s_imgb_grid]],
            title=f"Fig 9 CSCV-{which.upper()} host 1T: best GFLOP/s (chosen S_VxG)",
        )
        for s_vvec in s_vvec_grid:
            cells = []
            for s_imgb in s_imgb_grid:
                cand = [
                    p for p in points
                    if p.params.s_vvec == s_vvec and p.params.s_imgb == s_imgb
                ]
                best = max(
                    cand, key=lambda p: p.gflops_z if which == "z" else p.gflops_m
                )
                val = best.gflops_z if which == "z" else best.gflops_m
                cells.append(f"{val:.2f} ({best.params.s_vxg})")
            t.add_row(f"VVec={s_vvec}", *cells)
        sections.append(t.render())

    # model panel: SKL 64T, CSCV-M (the paper's multi-threaded winner)
    t = Table(
        headers=["", *[f"ImgB={b}" for b in s_imgb_grid]],
        title="Fig 9 model: CSCV-M SKL 64T GFLOP/s (chosen S_VxG)",
    )
    for s_vvec in s_vvec_grid:
        cells = []
        for s_imgb in s_imgb_grid:
            best_val, best_vxg = -1.0, None
            for s_vxg in s_vxg_grid:
                params = CSCVParams(s_vvec, s_imgb, s_vxg)
                data = build_cscv(coo.rows, coo.cols, coo.vals, geom, params, dtype)
                g = predict_gflops(CSCVMMatrix(data), SKL, 64)
                if g > best_val:
                    best_val, best_vxg = g, s_vxg
            cells.append(f"{best_val:.1f} ({best_vxg})")
        t.add_row(f"VVec={s_vvec}", *cells)
    sections.append(t.render())
    return "\n\n".join(sections)
