"""Fig 3 — memory layout of CSCVEs along the reference polyline.

Renders the Table I block's CSCVE layout for three pixels: one text row
per parallel-curve offset, ``#`` for stored nonzeros and ``.`` for the
padding zeros (the figure's blue and yellow lattices).
"""

from __future__ import annotations

from repro.bench.experiments.table1 import sample_block, sample_geometry, sample_params
from repro.core.cscve import layout_ascii, pixel_stats


def run(pixels=((5, 5), (7, 7), (9, 9))) -> str:
    """CSCVE layouts + per-pixel padding stats for the sample block."""
    geom = sample_geometry()
    block = sample_block()
    s_vvec = sample_params().s_vvec
    sections = ["Fig 3: CSCVE memory layout (lanes = views, rows = curve offsets)"]
    for pix in pixels:
        sections.append(layout_ascii(geom, block, pix, s_vvec))
        st = pixel_stats(geom, block, pix, block.reference_pixel, s_vvec)
        sections.append(
            f"  -> {st.num_cscve} CSCVEs, nnz {st.nnz}, padding {st.padding} "
            f"(rate {st.padding_rate:.2f})"
        )
    return "\n".join(sections)
