"""Benchmark harness: regenerates every table and figure of the paper.

Layout
------
``datasets``     scaled CT matrices mirroring Table II (disk-cached)
``harness``      timing + GFLOP/s + bandwidth measurement helpers
``report``       rendering of paper-style tables with reference columns
``experiments``  one module per table/figure (table1 ... fig11)

The runnable entry points live in the repository's ``benchmarks/``
directory (pytest-benchmark files), each of which calls into
``repro.bench.experiments`` and prints the regenerated table next to the
paper's reported values.
"""

from repro.bench.datasets import DATASETS, Dataset, get_dataset
from repro.bench.harness import PerfRecord, measure_format, run_suite

__all__ = [
    "Dataset",
    "DATASETS",
    "get_dataset",
    "PerfRecord",
    "measure_format",
    "run_suite",
]
