"""Non-CT workload generators — where CSCV's scope ends.

CSCV is *integral-equation-oriented*: its conversion needs the imaging
geometry's reference trajectories, so matrices without that structure
(PDE stencils, graphs) cannot use it — by design, not by accident.  These
generators produce the classic alternative workloads so the general
formats can be compared on them and the scope boundary is demonstrated
rather than asserted:

* 5-point Laplacian (the ELL-friendly PDE case the paper cites [2]);
* power-law graph adjacency (the LAV case [16], via networkx);
* random banded matrices (generic regular sparsity).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sparse.coo import COOMatrix


def laplacian_2d(grid: int, dtype=np.float64) -> COOMatrix:
    """5-point finite-difference Laplacian on a ``grid x grid`` mesh.

    The elliptic-PDE matrix of the paper's ELL citation: exactly <= 5 nnz
    per row, perfectly regular — the sparsity pattern ELL was built for.
    """
    if grid < 2:
        raise ValidationError("grid must be >= 2")
    n = grid * grid
    idx = np.arange(n)
    i, j = idx // grid, idx % grid
    rows, cols, vals = [idx], [idx], [np.full(n, 4.0)]
    for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        ni, nj = i + di, j + dj
        ok = (ni >= 0) & (ni < grid) & (nj >= 0) & (nj < grid)
        rows.append(idx[ok])
        cols.append((ni * grid + nj)[ok])
        vals.append(np.full(int(ok.sum()), -1.0))
    return COOMatrix.from_coo(
        (n, n),
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(vals).astype(dtype),
    )


def powerlaw_graph(n: int, *, m: int = 4, seed: int = 0, dtype=np.float64) -> COOMatrix:
    """Adjacency matrix of a Barabasi-Albert power-law graph.

    The skewed row-length distribution of social-network SpMV (the LAV
    setting): a few hub rows are orders of magnitude denser than the
    median row, the worst case for ELL and the motivation for
    merge-path/hybrid schedules.
    """
    import networkx as nx

    if n <= m:
        raise ValidationError("n must exceed m")
    g = nx.barabasi_albert_graph(n, m, seed=seed)
    edges = np.asarray(list(g.edges()), dtype=np.int64)
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    vals = np.ones(rows.size, dtype=dtype)
    return COOMatrix.from_coo((n, n), rows, cols, vals)


def random_banded(
    n: int, *, bandwidth: int = 8, density: float = 0.5, seed: int = 0,
    dtype=np.float64,
) -> COOMatrix:
    """Random matrix with nonzeros confined to a diagonal band."""
    if bandwidth < 1 or not (0 < density <= 1):
        raise ValidationError("bandwidth >= 1 and density in (0, 1] required")
    rng = np.random.default_rng(seed)
    offsets = np.arange(-bandwidth, bandwidth + 1)
    rows_parts, cols_parts, vals_parts = [], [], []
    for off in offsets:
        length = n - abs(off)
        keep = rng.random(length) < density
        r = np.arange(max(0, -off), max(0, -off) + length)[keep]
        rows_parts.append(r)
        cols_parts.append(r + off)
        vals_parts.append(rng.standard_normal(int(keep.sum())))
    return COOMatrix.from_coo(
        (n, n),
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts).astype(dtype),
    )


def row_skew(coo: COOMatrix) -> float:
    """Max-row-nnz over mean-row-nnz — the load-imbalance indicator."""
    counts = coo.row_nnz()
    mean = counts.mean()
    return float(counts.max() / mean) if mean else 0.0
