"""Report assembly: paper-vs-ours comparison rendering.

Thin layer over :mod:`repro.utils.tables` that the experiment modules use
for the recurring "paper value next to measured/modelled value" pattern,
plus speedup summaries in the style of the paper's abstract claims.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.bench.harness import PerfRecord
from repro.utils.tables import Table


def comparison_table(
    title: str,
    rows: Sequence[tuple],
    *,
    headers: Sequence[str],
    mark_columns: Sequence[int] = (),
    fmt: str = ".2f",
) -> str:
    """Render rows with best/second-best marks on the given columns."""
    t = Table(headers=headers, title=title, fmt=fmt)
    for row in rows:
        t.add_row(*row)
    for col in mark_columns:
        t.mark_extremes(col)
    return t.render()


def records_vs_paper(
    records: Sequence[PerfRecord],
    paper: Mapping[str, float],
    *,
    title: str = "measured vs paper",
) -> str:
    """One row per record: measured GFLOP/s next to the paper's number."""
    t = Table(
        headers=["format", "measured GF", "paper GF", "measured/paper"],
        title=title,
        fmt=".2f",
    )
    for rec in records:
        ref = paper.get(rec.format_name)
        ratio = rec.gflops / ref if ref else None
        t.add_row(rec.format_name, rec.gflops, ref, ratio)
    t.mark_extremes(1)
    return t.render()


def speedup_lines(records: Sequence[PerfRecord]) -> str:
    """The abstract-style summary: CSCV best vs vendor and vs second place."""
    by_name = {r.format_name: r.gflops for r in records}
    cscv = [v for k, v in by_name.items() if k.startswith("cscv")]
    if not cscv:
        return "no CSCV records"
    best = max(cscv)
    others = {k: v for k, v in by_name.items() if not k.startswith("cscv")}
    lines = [f"CSCV best: {best:.2f} GFLOP/s"]
    if "mkl-csr" in others:
        lines.append(f"  vs MKL-CSR: {best / others['mkl-csr']:.2f}x "
                     "(paper: 1.89-3.70x single precision)")
    if others:
        second_name = max(others, key=others.get)
        lines.append(
            f"  vs second place ({second_name}): "
            f"{best / others[second_name]:.2f}x (paper: 1.05-3.48x)"
        )
    return "\n".join(lines)


def ordering_agreement(
    ours: Mapping[str, float], paper: Mapping[str, float]
) -> float:
    """Kendall-style pairwise ordering agreement on the shared formats.

    Returns the fraction of format pairs ranked the same way by both
    columns — the quantitative "shape reproduced" metric used by tests
    (1.0 = identical ordering).
    """
    common = sorted(set(ours) & set(paper))
    if len(common) < 2:
        return 1.0
    agree = total = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            a, b = common[i], common[j]
            s_ours = np.sign(ours[a] - ours[b])
            s_paper = np.sign(paper[a] - paper[b])
            total += 1
            if s_ours == s_paper:
                agree += 1
    return agree / total if total else 1.0
