"""CSR (compressed sparse row) format — the paper's general baseline.

Row-major layout: ``row_ptr`` (m+1), ``col_idx`` (nnz), ``vals`` (nnz).
SpMV walks rows and accumulates ``vals[k] * x[col_idx[k]]``; the access to
``x`` is indirect (gather), which is the vectorisation obstacle the paper
discusses in Section II.

Backends: a compiled C kernel (plain loops, compiler-vectorised gather)
when available, otherwise a NumPy segmented-sum kernel.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import ValidationError
from repro.kernels import dispatch
from repro.obs import perf as obs_perf
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat, register_format


def segment_sum(products: np.ndarray, ptr: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Sum ``products`` into segments delimited by *ptr* (len(out)+1 entries).

    Handles empty segments, which ``np.add.reduceat`` alone gets wrong
    (it repeats the next segment's first element for an empty one).
    """
    n_seg = out.shape[0]
    if ptr.shape[0] != n_seg + 1:
        raise ValidationError("ptr must have len(out)+1 entries")
    out[:] = 0
    if products.size == 0:
        return out
    starts = ptr[:-1]
    nonempty = ptr[1:] > starts
    if not np.any(nonempty):
        return out
    # reduceat over the non-empty segment starts, then scatter back
    red = np.add.reduceat(products, starts[nonempty].astype(np.int64))
    out[nonempty] = red
    return out


@register_format
class CSRMatrix(SpMVFormat):
    """Compressed sparse row with 32-bit indices."""

    name = "csr"

    def __init__(self, shape, row_ptr, col_idx, vals):
        super().__init__(shape, len(vals), vals.dtype)
        self.row_ptr = np.ascontiguousarray(row_ptr, dtype=INDEX_DTYPE)
        self.col_idx = np.ascontiguousarray(col_idx, dtype=INDEX_DTYPE)
        self.vals = np.ascontiguousarray(vals)
        if self.row_ptr.shape[0] != shape[0] + 1:
            raise ValidationError("row_ptr must have shape[0]+1 entries")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(vals):
            raise ValidationError("row_ptr must start at 0 and end at nnz")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValidationError("row_ptr must be non-decreasing")

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, **kwargs) -> "CSRMatrix":
        coo = COOMatrix.from_coo(shape, rows, cols, vals, **kwargs)
        return cls(shape, *coo.to_csr_arrays())

    @classmethod
    def from_coo_matrix(cls, coo: COOMatrix) -> "CSRMatrix":
        return cls(coo.shape, *coo.to_csr_arrays())

    def spmv_into(self, x, y):
        x = self._check_x(x)
        t0 = obs_perf.clock() if obs_perf.active else 0.0
        fn = dispatch.get("csr_spmv", self.dtype)
        if fn is not None:
            fn(
                self.shape[0],
                self.row_ptr,
                self.col_idx,
                self.vals,
                x,
                y,
            )
            if obs_perf.active:
                obs_perf.record_format("spmv", self, "c", obs_perf.clock() - t0)
            return y
        products = self.vals * x[self.col_idx]
        y = segment_sum(products, self.row_ptr, y)
        if obs_perf.active:
            obs_perf.record_format("spmv", self, "numpy", obs_perf.clock() - t0)
        return y

    def spmm_into(self, X, Y):
        """Multi-RHS product: C kernel when available, else one reduceat
        pass over (nnz, k)."""
        k = X.shape[1]
        if k == 0:
            Y[:] = 0
            return Y
        t0 = obs_perf.clock() if obs_perf.active else 0.0
        fn = dispatch.get("csr_spmm", self.dtype)
        if fn is not None:
            fn(self.shape[0], k, self.row_ptr, self.col_idx, self.vals, X, Y)
            if obs_perf.active:
                obs_perf.record_format("spmm", self, "c",
                                       obs_perf.clock() - t0, k)
            return Y
        products = self.vals[:, None] * X[self.col_idx.astype(np.int64)]
        ptr = np.asarray(self.row_ptr, dtype=np.int64)
        Y[:] = 0
        nonempty = ptr[1:] > ptr[:-1]
        if np.any(nonempty):
            red = np.add.reduceat(products, ptr[:-1][nonempty], axis=0)
            Y[nonempty] = red
        if obs_perf.active:
            obs_perf.record_format("spmm", self, "numpy",
                                   obs_perf.clock() - t0, k)
        return Y

    def memory_bytes(self):
        idx = self.row_ptr.nbytes + self.col_idx.nbytes
        return {
            "values": self.vals.nbytes,
            "indices": idx,
            "total": self.vals.nbytes + idx,
        }

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.row_ptr))
        dense[rows, self.col_idx] = self.vals
        return dense

    def row_nnz(self) -> np.ndarray:
        """Per-row nonzero counts."""
        return np.diff(self.row_ptr).astype(np.int64)

    def transpose_spmv(self, y_in: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``x = A^T y`` — the back-projection direction (paper future work)."""
        from repro.utils.arrays import check_1d, ensure_dtype

        y_in = ensure_dtype(check_1d(y_in, self.shape[0], "y"), self.dtype, "y")
        if out is None:
            out = np.zeros(self.shape[1], dtype=self.dtype)
        else:
            out[:] = 0
        contrib = self.vals * np.repeat(y_in, np.diff(self.row_ptr))
        np.add.at(out, self.col_idx, contrib)
        return out

    def transpose_spmm(self, Y_in: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``X = A^T Y`` for a stack of sinograms ``Y`` of shape (m, k)."""
        Y_in = np.asarray(Y_in)
        if Y_in.ndim != 2 or Y_in.shape[0] != self.shape[0]:
            raise ValidationError(f"Y must have shape ({self.shape[0]}, k)")
        Yc = np.ascontiguousarray(Y_in, dtype=self.dtype)
        k = Yc.shape[1]
        if out is None:
            out = np.zeros((self.shape[1], k), dtype=self.dtype)
        else:
            out[:] = 0
        contrib = self.vals[:, None] * np.repeat(Yc, np.diff(self.row_ptr), axis=0)
        np.add.at(out, self.col_idx, contrib)
        return out

    def to_coo_triplets(self):
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.row_ptr))
        return rows, self.col_idx.astype(np.int64), self.vals
