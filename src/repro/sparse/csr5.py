"""CSR5 (Liu & Vinter, ICS'15) — tiled CSR with fast segmented sum.

CSR5 partitions the nonzeros into 2-D tiles of ``sigma x omega`` entries
stored *tile-transposed* (SIMD lane = tile column), plus small per-tile
descriptors encoding where row boundaries fall inside the tile.  SpMV is a
segmented sum: each lane accumulates products, boundary bits split the
partial sums, and per-tile carries stitch tiles together.

This reproduction keeps the exact storage layout (tile-transposed values /
column indices + tile descriptors with bit flags) and performs the
segmented sum with a vectorised inclusive-scan over the products, using
the descriptors only for accounting.  The memory model counts what real
CSR5 streams: values, column indices, ``tile_ptr`` and packed descriptor
bits — not the convenience permutation NumPy needs.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import FormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat, register_format


@register_format
class CSR5Matrix(SpMVFormat):
    """CSR5 with configurable tile shape (sigma rows x omega lanes)."""

    name = "csr5"

    def __init__(self, shape, row_ptr, tile_vals, tile_cols, perm, sigma, omega, nnz):
        super().__init__(shape, nnz, tile_vals.dtype)
        self.row_ptr = np.ascontiguousarray(row_ptr, dtype=INDEX_DTYPE)
        #: values in tile-transposed order, padded to a whole tile
        self.tile_vals = tile_vals
        self.tile_cols = tile_cols
        #: permutation: linear CSR position -> tile-transposed position
        self.perm = perm
        self.sigma = int(sigma)
        self.omega = int(omega)
        self.tile_size = self.sigma * self.omega
        self.num_tiles = tile_vals.size // self.tile_size

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, *, sigma: int = 16, omega: int = 8, **kwargs):
        if sigma < 1 or omega < 1:
            raise FormatError("sigma and omega must be >= 1")
        coo = COOMatrix.from_coo(shape, rows, cols, vals, **kwargs)
        row_ptr, col_idx, v = coo.to_csr_arrays()
        nnz = v.size
        tile = sigma * omega
        padded = ((nnz + tile - 1) // tile) * tile if nnz else 0

        # tile-transposed position of linear nonzero k:
        #   tile t = k // tile, in-tile r = (k % tile) // omega (row of tile),
        #   lane c = k % omega; transposed offset = c * sigma + r.
        k = np.arange(padded, dtype=np.int64)
        t = k // tile
        r = (k % tile) // omega
        c = k % omega
        perm = t * tile + c * sigma + r

        tvals = np.zeros(padded, dtype=v.dtype)
        tcols = np.zeros(padded, dtype=INDEX_DTYPE)
        tvals[perm[:nnz]] = v
        tcols[perm[:nnz]] = col_idx
        return cls(shape, row_ptr, tvals, tcols, perm[:nnz].copy(), sigma, omega, nnz)

    def spmv_into(self, x, y):
        x = self._check_x(x)
        nnz = self.nnz
        if nnz == 0:
            y[:] = 0
            return y
        # Gather back to linear order (the lane walk of real CSR5), then a
        # prefix-scan segmented sum over row boundaries.
        products = self.tile_vals[self.perm] * x[self.tile_cols[self.perm]]
        scan = np.cumsum(products, dtype=np.float64)
        hi = np.asarray(self.row_ptr[1:], dtype=np.int64)
        lo = np.asarray(self.row_ptr[:-1], dtype=np.int64)
        total_hi = np.where(hi > 0, scan[hi - 1], 0.0)
        total_lo = np.where(lo > 0, scan[lo - 1], 0.0)
        y[:] = (total_hi - total_lo).astype(self.dtype, copy=False)
        return y

    def memory_bytes(self):
        # Real CSR5 streams: padded values+cols, row_ptr, tile_ptr and a
        # packed per-tile descriptor of ~(omega * (1 + log2(sigma))) bits.
        desc_bits_per_tile = self.omega * (1 + max(int(np.ceil(np.log2(max(self.sigma, 2)))), 1))
        desc_bytes = self.num_tiles * ((desc_bits_per_tile + 7) // 8)
        tile_ptr = (self.num_tiles + 1) * INDEX_DTYPE.itemsize
        idx = self.tile_cols.nbytes + self.row_ptr.nbytes + tile_ptr + desc_bytes
        return {
            "values": self.tile_vals.nbytes,
            "indices": idx,
            "total": self.tile_vals.nbytes + idx,
        }

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        rows, cols, vals = self.to_coo_triplets()
        dense[rows, cols] = vals
        return dense

    def to_coo_triplets(self):
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.row_ptr)
        )
        return (
            rows,
            self.tile_cols[self.perm].astype(np.int64),
            self.tile_vals[self.perm],
        )
