"""Matrix statistics and the paper's memory-requirement model.

Defines ``M_Rit = M(A) + M(x) + M(y)`` — the minimum bytes read per SpMV
iteration (Section V-C) — and structural statistics (row/column nnz
distributions, column bandwidth) used by the property-P3 analysis and the
performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.matrix_base import SpMVFormat


@dataclass(frozen=True)
class MatrixStats:
    """Structural summary of a sparse matrix (from COO triplets)."""

    shape: tuple[int, int]
    nnz: int
    row_nnz_mean: float
    row_nnz_std: float
    row_nnz_max: int
    col_nnz_mean: float
    col_nnz_std: float
    col_nnz_max: int
    density: float

    @classmethod
    def from_coo(cls, shape, rows, cols) -> "MatrixStats":
        m, n = int(shape[0]), int(shape[1])
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        nnz = rows.size
        rc = np.bincount(rows, minlength=m) if nnz else np.zeros(m, dtype=np.int64)
        cc = np.bincount(cols, minlength=n) if nnz else np.zeros(n, dtype=np.int64)
        return cls(
            shape=(m, n),
            nnz=int(nnz),
            row_nnz_mean=float(rc.mean()) if m else 0.0,
            row_nnz_std=float(rc.std()) if m else 0.0,
            row_nnz_max=int(rc.max()) if m else 0,
            col_nnz_mean=float(cc.mean()) if n else 0.0,
            col_nnz_std=float(cc.std()) if n else 0.0,
            col_nnz_max=int(cc.max()) if n else 0,
            density=float(nnz) / (m * n) if m and n else 0.0,
        )

    def p3_spread(self, axis: str = "col") -> float:
        """Relative spread std/mean of nnz along *axis* (P3 metric)."""
        if axis == "col":
            return self.col_nnz_std / self.col_nnz_mean if self.col_nnz_mean else 0.0
        if axis == "row":
            return self.row_nnz_std / self.row_nnz_mean if self.row_nnz_mean else 0.0
        raise ValueError("axis must be 'row' or 'col'")


def memory_requirement(fmt: SpMVFormat) -> dict[str, float]:
    """The paper's ``M_Rit``: bytes that must be read per ``y = A x``.

    Returns a dict with ``M_A`` (format-dependent), ``M_x``, ``M_y`` and
    ``M_rit`` (their sum), all in bytes.
    """
    m, n = fmt.shape
    item = fmt.dtype.itemsize
    m_a = float(fmt.memory_bytes()["total"])
    m_x = float(n * item)
    m_y = float(m * item)
    return {"M_A": m_a, "M_x": m_x, "M_y": m_y, "M_rit": m_a + m_x + m_y}


def effective_bandwidth_ratio(
    fmt: SpMVFormat, seconds: float, peak_bandwidth_gbs: float
) -> float:
    """The paper's ``R_EM = M_rit / (T * M_PBw)``.

    *peak_bandwidth_gbs* is the platform's read-only bandwidth in GB/s.
    Values near 1.0 mean the implementation saturates memory bandwidth.
    """
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    if peak_bandwidth_gbs <= 0:
        raise ValueError("peak bandwidth must be positive")
    m_rit = memory_requirement(fmt)["M_rit"]
    return m_rit / (seconds * peak_bandwidth_gbs * 1e9)


def column_bandwidth(rows: np.ndarray, cols: np.ndarray, num_cols: int) -> np.ndarray:
    """Per-column row-index span ``max(row) - min(row) + 1`` (0 if empty).

    CT matrices have enormous column bandwidth in bin-major row order —
    each pixel touches every view — which is exactly why naive CSC
    vectorisation fails and IOBLR is needed.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    lo = np.full(num_cols, np.iinfo(np.int64).max, dtype=np.int64)
    hi = np.full(num_cols, -1, dtype=np.int64)
    np.minimum.at(lo, cols, rows)
    np.maximum.at(hi, cols, rows)
    span = hi - lo + 1
    span[hi < 0] = 0
    return span
