"""Vectorized CSC SpMV — the paper's Algorithm 2, implemented faithfully.

This is the strawman CSCV exists to beat: process each column in
``s_vvec``-long segments; per segment **gather** the ``y`` elements at the
segment's row indices, FMA with the value segment, and **scatter** the
result back.  The gathers/scatters are the "additional instructions for
vector permutation [that] take much time, even more than that of the SIMD
computation step" (Section III).

Keeping it as a first-class format lets the ablation benches measure that
cost directly against CSCV on identical matrices.  Storage is exactly
CSC; only the execution schedule (and its padded segment count, used by
the performance model) differs.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import FormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.matrix_base import register_format


@register_format
class CSCVecMatrix(CSCMatrix):
    """CSC storage + the Algorithm 2 segment gather/scatter schedule."""

    name = "csc-vec"

    def __init__(self, shape, col_ptr, row_idx, vals, s_vvec: int = 8):
        super().__init__(shape, col_ptr, row_idx, vals)
        if s_vvec < 1:
            raise FormatError("s_vvec must be >= 1")
        self.s_vvec = int(s_vvec)
        # Precompute the segment schedule: for every segment, its column
        # and its [start, stop) range in the value array — what a real
        # implementation would derive on the fly from col_ptr.
        starts = []
        cols = []
        cp = np.asarray(self.col_ptr, dtype=np.int64)
        for j in range(shape[1]):
            for s in range(int(cp[j]), int(cp[j + 1]), self.s_vvec):
                starts.append(s)
                cols.append(j)
        self._seg_start = np.asarray(starts, dtype=np.int64)
        self._seg_col = np.asarray(cols, dtype=np.int64)

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, *, s_vvec: int = 8, **kwargs):
        coo = COOMatrix.from_coo(shape, rows, cols, vals, **kwargs)
        col_ptr, row_idx, v = coo.to_csc_arrays()
        return cls(shape, col_ptr, row_idx, v, s_vvec)

    @property
    def num_segments(self) -> int:
        return self._seg_start.shape[0]

    def padded_slots(self) -> int:
        """Slots if every segment were padded to full s_vvec width."""
        return self.num_segments * self.s_vvec

    def spmv_into(self, x, y):
        x = self._check_x(x)
        y[:] = 0
        if self.nnz == 0:
            return y
        cp = np.asarray(self.col_ptr, dtype=np.int64)
        s_vvec = self.s_vvec
        # Algorithm 2, line by line: the gather (y[idx]), the FMA, the
        # scatter (y[idx] = ...).  Vectorised per segment batch by
        # grouping segments of equal length.
        seg_stop = np.minimum(self._seg_start + s_vvec, cp[self._seg_col + 1])
        seg_len = seg_stop - self._seg_start
        for length in np.unique(seg_len):
            sel = seg_len == length
            starts = self._seg_start[sel]
            colv = x[self._seg_col[sel]]
            idx = starts[:, None] + np.arange(length)[None, :]
            rows = self.row_idx[idx].astype(np.int64)
            contrib = colv[:, None] * self.vals[idx]     # the FMA step
            # gather + scatter of Algorithm 2 collapse into one indexed
            # accumulation here; np.add.at handles segments of the same
            # batch hitting identical y rows
            np.add.at(y, rows.ravel(), contrib.ravel())
        return y

    def memory_bytes(self):
        base = super().memory_bytes()
        # identical storage to CSC; the schedule adds no matrix bytes
        return base

    def permutation_instruction_count(self) -> int:
        """Gather + scatter element count per SpMV — the Algorithm 2 tax."""
        return 2 * self.nnz
