"""ELLPACK (ELL) format — fixed row width, column-major lanes.

The format of Bell & Garland [2]: every row is padded to the width of the
longest row; values and column indices are stored column-major so that
lane *k* of all rows is contiguous (SIMD across rows).  Padding slots use
column ``-1`` and value ``0``.

For CT matrices, per-row nnz is fairly uniform (property P3 across rows of
a view), so ELL's padding waste is moderate — but it still streams padded
values, which is exactly the "useless zeros" cost the paper attributes to
dense-block methods.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import FormatError
from repro.kernels import dispatch
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat, register_format


@register_format
class ELLMatrix(SpMVFormat):
    """ELLPACK with column-major ``(width, m)`` storage."""

    name = "ell"

    #: rows whose nnz exceeds ``max_width_factor * mean`` trigger a build
    #: error rather than silently exploding memory.
    max_width_factor = 16.0

    def __init__(self, shape, cols, vals, nnz):
        super().__init__(shape, nnz, vals.dtype)
        if cols.shape != vals.shape or cols.ndim != 2:
            raise FormatError("cols/vals must be 2-D arrays of equal shape")
        if cols.shape[1] != shape[0]:
            raise FormatError("second axis must equal the row count")
        self.cols = np.ascontiguousarray(cols, dtype=INDEX_DTYPE)
        self.vals = np.ascontiguousarray(vals)
        self.width = cols.shape[0]

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, **kwargs) -> "ELLMatrix":
        coo = COOMatrix.from_coo(shape, rows, cols, vals, **kwargs)
        m, _ = shape
        counts = coo.row_nnz()
        width = int(counts.max()) if counts.size else 0
        mean = counts.mean() if m else 0.0
        if mean > 0 and width > cls.max_width_factor * mean:
            raise FormatError(
                f"row width {width} is {width / mean:.1f}x the mean nnz; "
                "matrix is too irregular for ELL"
            )
        ell_cols = np.full((width, m), -1, dtype=INDEX_DTYPE)
        ell_vals = np.zeros((width, m), dtype=coo.vals.dtype)
        # lane position of each nonzero within its row
        lane = np.arange(coo.nnz, dtype=np.int64)
        row_starts = np.zeros(m, dtype=np.int64)
        np.cumsum(counts[:-1], out=row_starts[1:])
        lane -= row_starts[coo.rows]
        ell_cols[lane, coo.rows] = coo.cols
        ell_vals[lane, coo.rows] = coo.vals
        return cls(shape, ell_cols, ell_vals, coo.nnz)

    def spmv_into(self, x, y):
        x = self._check_x(x)
        fn = dispatch.get("ell_spmv", self.dtype)
        if fn is not None:
            fn(self.shape[0], self.width, self.cols.reshape(-1), self.vals.reshape(-1), x, y)
            return y
        y[:] = 0
        for k in range(self.width):  # lane loop; each lane is vectorised
            c = self.cols[k]
            valid = c >= 0
            y[valid] += self.vals[k, valid] * x[c[valid]]
        return y

    def memory_bytes(self):
        # ELL streams the padded arrays in full — padding is the cost.
        return {
            "values": self.vals.nbytes,
            "indices": self.cols.nbytes,
            "total": self.vals.nbytes + self.cols.nbytes,
        }

    def padding_ratio(self) -> float:
        """Stored slots / nnz - 1 (the ELL analogue of the paper's R_nnzE)."""
        stored = self.vals.size
        return stored / self.nnz - 1.0 if self.nnz else 0.0

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        for k in range(self.width):
            c = self.cols[k]
            valid = c >= 0
            dense[np.nonzero(valid)[0], c[valid]] = self.vals[k, valid]
        return dense

    def to_coo_triplets(self):
        valid = self.cols >= 0
        lanes, rows = np.nonzero(valid)
        return (
            rows.astype(np.int64),
            self.cols[lanes, rows].astype(np.int64),
            self.vals[lanes, rows],
        )
