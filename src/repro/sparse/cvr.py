"""CVR — Compressed Vectorization-oriented sparse Row (Xie et al.).

CVR packs the nonzeros of many rows into ``num_lanes`` parallel streams:
rows are dealt to SIMD lanes, each lane consumes its rows' nonzeros
sequentially, and when a lane finishes a row it *steals* the next unserved
row.  All lanes advance in lock-step, so step ``t`` of the kernel touches
``num_lanes`` contiguous values — vertical vectorisation with almost no
padding (only the final steps of the longest lane are padded).

Storage here follows that schedule: values and column ids live in
``(steps, num_lanes)`` arrays, plus per-element segment ids (which output
row the lane is working on) used by the vectorised segmented reduction.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import FormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat, register_format


@register_format
class CVRMatrix(SpMVFormat):
    """CVR with a configurable lane count (default 8 = AVX-512 f64)."""

    name = "cvr"

    def __init__(self, shape, lane_vals, lane_cols, lane_rows, num_lanes, nnz):
        super().__init__(shape, nnz, lane_vals.dtype)
        #: (steps, lanes) value grid; padding slots are value 0, row -1
        self.lane_vals = lane_vals
        self.lane_cols = lane_cols
        #: (steps, lanes) output row per slot (-1 for padding)
        self.lane_rows = lane_rows
        self.num_lanes = int(num_lanes)

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, *, num_lanes: int = 8, **kwargs):
        if num_lanes < 1:
            raise FormatError("num_lanes must be >= 1")
        coo = COOMatrix.from_coo(shape, rows, cols, vals, **kwargs)
        row_ptr, col_idx, v = coo.to_csr_arrays()
        m = shape[0]
        counts = np.diff(row_ptr).astype(np.int64)
        nonempty = np.flatnonzero(counts)

        # Deal rows to lanes greedily: each lane takes the next unserved
        # row when it finishes one (row stealing), tracked per lane.
        lane_seq: list[list[tuple[int, int, int]]] = [[] for _ in range(num_lanes)]
        lane_load = np.zeros(num_lanes, dtype=np.int64)
        for r in nonempty:
            lane = int(np.argmin(lane_load))
            lane_seq[lane].append((int(r), int(row_ptr[r]), int(row_ptr[r + 1])))
            lane_load[lane] += counts[r]
        steps = int(lane_load.max()) if num_lanes else 0

        lane_vals = np.zeros((steps, num_lanes), dtype=v.dtype)
        lane_cols = np.zeros((steps, num_lanes), dtype=INDEX_DTYPE)
        lane_rows = np.full((steps, num_lanes), -1, dtype=INDEX_DTYPE)
        for lane in range(num_lanes):
            t = 0
            for r, a, b in lane_seq[lane]:
                n = b - a
                lane_vals[t : t + n, lane] = v[a:b]
                lane_cols[t : t + n, lane] = col_idx[a:b]
                lane_rows[t : t + n, lane] = r
                t += n
        return cls(shape, lane_vals, lane_cols, lane_rows, num_lanes, coo.nnz)

    def spmv_into(self, x, y):
        x = self._check_x(x)
        y[:] = 0
        if self.lane_vals.size == 0:
            return y
        rows = self.lane_rows.ravel()
        valid = rows >= 0
        products = (self.lane_vals.ravel() * x[self.lane_cols.ravel()])[valid]
        y += np.bincount(rows[valid], weights=products, minlength=self.shape[0]).astype(
            self.dtype, copy=False
        )
        return y

    def memory_bytes(self):
        # Real CVR streams values + columns for every slot and compact
        # per-lane row-switch records (~2 ints per row) instead of the full
        # lane_rows grid.
        slots = self.lane_vals.size
        switch_records = 2 * INDEX_DTYPE.itemsize * max(
            int(np.count_nonzero(np.diff(self.lane_rows, axis=0)) + self.num_lanes), 1
        )
        idx = slots * INDEX_DTYPE.itemsize + switch_records
        return {
            "values": self.lane_vals.nbytes,
            "indices": idx,
            "total": self.lane_vals.nbytes + idx,
        }

    def padding_ratio(self) -> float:
        """Padded slots / nnz — small by construction (tail only)."""
        return self.lane_vals.size / self.nnz - 1.0 if self.nnz else 0.0

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        rows, cols, vals = self.to_coo_triplets()
        dense[rows, cols] = vals
        return dense

    def to_coo_triplets(self):
        rows = self.lane_rows.ravel()
        valid = rows >= 0
        return (
            rows[valid].astype(np.int64),
            self.lane_cols.ravel()[valid].astype(np.int64),
            self.lane_vals.ravel()[valid],
        )
