"""SPC5 (Bramas & Kus) — beta(1,c) masked row blocks without padding.

SPC5 covers each row's nonzeros with blocks of ``c`` consecutive columns
described by ``(row, first_col, c-bit mask)``; only real nonzeros are
stored.  At compute time the packed values are expanded against the mask
(``vexpand`` on AVX-512, software expansion elsewhere) and FMA'd with the
contiguous slice ``x[first_col : first_col+c]`` — dense-block
vectorisation without dense-block padding traffic.

This reproduction uses *aligned* column windows (``first_col`` a multiple
of ``c``), which makes construction fully vectorisable; alignment can only
split blocks, never merge them, so correctness and the no-padding property
are preserved.  SPC5 is the closest prior art to CSCV-M (the paper: the
masking "concept is the same as that of SPC5") and its strongest
competitor on the SKL platform.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import FormatError
from repro.kernels import dispatch
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat, register_format


@register_format
class SPC5Matrix(SpMVFormat):
    """beta(1,c) SPC5 blocks; ``c`` defaults to 8 (one AVX-512 f64 vector)."""

    name = "spc5"

    def __init__(self, shape, blk_row, blk_col, masks, voff, packed, expanded_cols, width, nnz):
        super().__init__(shape, nnz, packed.dtype)
        self.blk_row = np.ascontiguousarray(blk_row, dtype=INDEX_DTYPE)
        self.blk_col = np.ascontiguousarray(blk_col, dtype=INDEX_DTYPE)
        self.masks = np.ascontiguousarray(masks, dtype=np.uint32)
        #: prefix offsets into ``packed`` per block (len = num_blocks + 1)
        self.voff = np.ascontiguousarray(voff, dtype=np.int64)
        self.packed = np.ascontiguousarray(packed)
        #: NumPy-path helper: the column of every packed value
        self._expanded_cols = expanded_cols
        self.width = int(width)
        if self.voff[-1] != self.packed.size:
            raise FormatError("voff must end at the packed value count")

    @property
    def num_blocks(self) -> int:
        return self.blk_row.shape[0]

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, *, width: int = 8, **kwargs):
        if not (1 <= width <= 32):
            raise FormatError("width must be in [1, 32]")
        coo = COOMatrix.from_coo(shape, rows, cols, vals, **kwargs)
        row_ptr, col_idx, v = coo.to_csr_arrays()
        nnz = v.size
        if nnz == 0:
            return cls(
                shape,
                np.zeros(0, dtype=INDEX_DTYPE),
                np.zeros(0, dtype=INDEX_DTYPE),
                np.zeros(0, dtype=np.uint32),
                np.zeros(1, dtype=np.int64),
                np.zeros(0, dtype=v.dtype),
                np.zeros(0, dtype=np.int64),
                width,
                0,
            )
        rows64 = np.repeat(np.arange(shape[0], dtype=np.int64), np.diff(row_ptr))
        cols64 = col_idx.astype(np.int64)
        win = cols64 // width
        # CSR order sorts (row, col), hence (row, win) keys are sorted too.
        key = rows64 * ((shape[1] // width) + 1) + win
        starts = np.flatnonzero(np.diff(key, prepend=key[0] - 1))
        blk_row = rows64[starts]
        blk_col = (win[starts] * width).astype(INDEX_DTYPE)
        bits = (np.uint32(1) << (cols64 % width).astype(np.uint32)).astype(np.uint32)
        masks = np.bitwise_or.reduceat(bits, starts)
        voff = np.concatenate([starts, [nnz]]).astype(np.int64)
        return cls(shape, blk_row, blk_col, masks, voff, v, cols64, width, nnz)

    def spmv_into(self, x, y):
        x = self._check_x(x)
        fn = dispatch.get("spc5_spmv", self.dtype)
        if fn is not None:
            fn(
                self.num_blocks,
                self.blk_row,
                self.blk_col,
                self.masks,
                self.voff,
                self.packed,
                self.width,
                x,
                y,
                self.shape[0],
            )
            return y
        y[:] = 0
        if self.packed.size == 0:
            return y
        products = self.packed * x[self._expanded_cols]
        # per-block partial sums via prefix scan, then scatter into rows
        scan = np.cumsum(products, dtype=np.float64)
        hi, lo = self.voff[1:], self.voff[:-1]
        block_sums = np.where(hi > 0, scan[hi - 1], 0.0) - np.where(lo > 0, scan[lo - 1], 0.0)
        y += np.bincount(self.blk_row, weights=block_sums, minlength=self.shape[0]).astype(
            self.dtype, copy=False
        )
        return y

    def memory_bytes(self):
        # streams: packed values; per-block column + mask; per-row block
        # counts (real SPC5 stores rows implicitly this way).
        mask_bytes = self.num_blocks * ((self.width + 7) // 8)
        row_meta = (self.shape[0] + 1) * INDEX_DTYPE.itemsize
        idx = self.blk_col.nbytes + mask_bytes + row_meta
        return {
            "values": self.packed.nbytes,
            "indices": idx,
            "total": self.packed.nbytes + idx,
        }

    def blocks_per_nnz(self) -> float:
        """Average blocks per nonzero — lower means denser packing."""
        return self.num_blocks / self.nnz if self.nnz else 0.0

    def avg_fill(self) -> float:
        """Average nonzeros per block (out of ``width`` slots)."""
        return self.nnz / self.num_blocks if self.num_blocks else 0.0

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        rows, cols, vals = self.to_coo_triplets()
        dense[rows, cols] = vals
        return dense

    def to_coo_triplets(self):
        rows = np.repeat(self.blk_row.astype(np.int64), np.diff(self.voff))
        return rows, self._expanded_cols.astype(np.int64), self.packed
