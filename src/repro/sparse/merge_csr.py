"""Merge-based CSR SpMV (Merrill & Garland, SC'16).

Standard CSR storage, but the *schedule* changes: the total work is modeled
as the merge of two sorted lists — the row boundaries ``row_ptr[1:]`` and
the nonzero indices ``0..nnz-1`` — of combined length ``m + nnz``.  The
merge path is split into equal-length chunks via 2-D binary search
(:func:`merge_path_search`), giving every worker an identical amount of
(row-completion + nonzero) work regardless of row-length skew.  Workers
compute partial sums for the rows they touch; rows split across chunks are
fixed up with per-chunk carry-out entries.

This guarantees perfect load balance — the property "Merge" is benchmarked
for in the paper — at the cost of extra bookkeeping per chunk.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import FormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import segment_sum
from repro.sparse.matrix_base import SpMVFormat, register_format


def merge_path_search(diagonal: int, row_end: np.ndarray, nnz: int) -> tuple[int, int]:
    """2-D binary search: where does *diagonal* cross the merge path?

    The merge path of lists ``A = row_end`` (length m) and ``B = 0..nnz-1``
    passes through ``(i, j)`` with ``i + j = diagonal``; we find the split
    with ``A[i'] <= B[j']`` ordering preserved.  Returns ``(i, j)`` = (rows
    consumed, nonzeros consumed).
    """
    m = row_end.shape[0]
    lo = max(0, diagonal - nnz)
    hi = min(diagonal, m)
    while lo < hi:
        mid = (lo + hi) // 2
        # A[mid] vs B[diagonal - mid - 1] == diagonal - mid - 1
        if row_end[mid] <= diagonal - mid - 1:
            lo = mid + 1
        else:
            hi = mid
    return lo, diagonal - lo


@register_format
class MergeCSRMatrix(SpMVFormat):
    """CSR arrays + merge-path chunked execution."""

    name = "merge"

    def __init__(self, shape, row_ptr, col_idx, vals, num_chunks):
        super().__init__(shape, len(vals), vals.dtype)
        self.row_ptr = np.ascontiguousarray(row_ptr, dtype=INDEX_DTYPE)
        self.col_idx = np.ascontiguousarray(col_idx, dtype=INDEX_DTYPE)
        self.vals = np.ascontiguousarray(vals)
        self.num_chunks = int(num_chunks)
        if self.num_chunks < 1:
            raise FormatError("num_chunks must be >= 1")
        self._chunks = self._partition()

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, *, num_chunks: int = 64, **kwargs):
        coo = COOMatrix.from_coo(shape, rows, cols, vals, **kwargs)
        row_ptr, col_idx, v = coo.to_csr_arrays()
        return cls(shape, row_ptr, col_idx, v, num_chunks)

    def _partition(self) -> list[tuple[int, int, int, int]]:
        """Chunk list of ``(row_start, row_end, nnz_start, nnz_end)``."""
        m = self.shape[0]
        nnz = self.nnz
        total = m + nnz
        row_end = np.asarray(self.row_ptr[1:], dtype=np.int64)
        chunks = []
        prev = (0, 0)
        for c in range(1, self.num_chunks + 1):
            diagonal = min((total * c) // self.num_chunks, total)
            cur = merge_path_search(diagonal, row_end, nnz)
            chunks.append((prev[0], cur[0], prev[1], cur[1]))
            prev = cur
        assert prev == (m, nnz), "merge path must consume all work"
        return chunks

    def spmv_into(self, x, y):
        x = self._check_x(x)
        y[:] = 0
        products = self.vals * x[self.col_idx]
        row_ptr = np.asarray(self.row_ptr, dtype=np.int64)
        m = self.shape[0]
        # Per-chunk: rows *completing* inside the chunk get a segmented sum;
        # the row left open at chunk end contributes a carry.  The merge
        # path guarantees row_ptr[r0] <= k0 <= row_ptr[r0+1], so a chunk
        # never holds nonzeros of rows before r0.
        carries = np.zeros(m, dtype=np.float64)
        for r0, r1, k0, k1 in self._chunks:
            if k0 == k1 and r0 == r1:
                continue
            if r0 < r1:
                seg_starts = row_ptr[r0:r1].copy()
                seg_starts[0] = k0  # row r0 may have been partially consumed
                local_ptr = np.concatenate([seg_starts, row_ptr[r1 : r1 + 1]]) - k0
                out = np.zeros(r1 - r0, dtype=self.dtype)
                segment_sum(products[k0 : row_ptr[r1]], local_ptr, out)
                y[r0:r1] += out
                tail_start = int(row_ptr[r1])
            else:
                tail_start = k0
            if tail_start < k1 and r1 < m:
                carries[r1] += products[tail_start:k1].sum(dtype=np.float64)
        y += carries.astype(self.dtype, copy=False)
        return y

    def memory_bytes(self):
        idx = self.row_ptr.nbytes + self.col_idx.nbytes
        return {
            "values": self.vals.nbytes,
            "indices": idx,
            "total": self.vals.nbytes + idx,
        }

    def chunk_loads(self) -> np.ndarray:
        """Merge-work items per chunk — near-constant by construction."""
        return np.array([(r1 - r0) + (k1 - k0) for r0, r1, k0, k1 in self._chunks])

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        rows, cols, vals = self.to_coo_triplets()
        dense[rows, cols] = vals
        return dense

    def to_coo_triplets(self):
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.row_ptr)
        )
        return rows, self.col_idx.astype(np.int64), self.vals
