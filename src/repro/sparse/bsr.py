"""BSR — block sparse row: the "collection of dense sub-matrices" method.

The second-type method of the paper's Section II taxonomy ([4], [17]):
the matrix is tiled into ``r x c`` dense blocks and every tile containing
at least one nonzero is stored *densely*.  SIMD-friendly (each tile is a
small dense GEMV) and index-cheap (one column id per tile), but the
padding zeros inside tiles are streamed and multiplied — the exact
traffic cost CSCV-M exists to avoid, which makes BSR the natural ablation
baseline for the dense-block end of the design space.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import FormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat, register_format


@register_format
class BSRMatrix(SpMVFormat):
    """Block sparse row with ``r x c`` dense tiles."""

    name = "bsr"

    def __init__(self, shape, block_row_ptr, block_col, blocks, r, c, nnz):
        super().__init__(shape, nnz, blocks.dtype)
        self.block_row_ptr = np.ascontiguousarray(block_row_ptr, dtype=INDEX_DTYPE)
        self.block_col = np.ascontiguousarray(block_col, dtype=INDEX_DTYPE)
        #: (num_blocks, r, c) dense tiles
        self.blocks = blocks
        self.r = int(r)
        self.c = int(c)

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, *, r: int = 4, c: int = 8, **kwargs):
        if r < 1 or c < 1:
            raise FormatError("block dims must be >= 1")
        coo = COOMatrix.from_coo(shape, rows, cols, vals, **kwargs)
        m, n = shape
        brows = coo.rows // r
        bcols = coo.cols // c
        nbr = (m + r - 1) // r
        nbc = (n + c - 1) // c
        key = brows * nbc + bcols
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        uniq, start = (np.unique(key_s, return_index=True) if key_s.size
                       else (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)))
        num_blocks = uniq.size

        blocks = np.zeros((num_blocks, r, c), dtype=coo.vals.dtype)
        block_of = np.searchsorted(uniq, key)
        blocks[block_of, coo.rows % r, coo.cols % c] = coo.vals

        block_brow = (uniq // nbc).astype(np.int64)
        block_col = (uniq % nbc).astype(INDEX_DTYPE)
        counts = np.bincount(block_brow, minlength=nbr)
        block_row_ptr = np.zeros(nbr + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=block_row_ptr[1:])
        return cls(shape, block_row_ptr, block_col, blocks, r, c, coo.nnz)

    @property
    def num_blocks(self) -> int:
        return self.blocks.shape[0]

    def spmv_into(self, x, y):
        x = self._check_x(x)
        y[:] = 0
        m, n = self.shape
        if self.num_blocks == 0:
            return y
        r, c = self.r, self.c
        # gather x tiles (zero-padded at the right edge), batch the GEMVs
        xpad = np.zeros(((n + c - 1) // c) * c, dtype=self.dtype)
        xpad[:n] = x
        xt = xpad.reshape(-1, c)[self.block_col.astype(np.int64)]  # (B, c)
        contrib = np.einsum("brc,bc->br", self.blocks, xt)          # (B, r)
        nbr = self.block_row_ptr.shape[0] - 1
        brow_of_block = np.repeat(np.arange(nbr), np.diff(self.block_row_ptr))
        ypad = np.zeros((nbr, r), dtype=np.float64)
        np.add.at(ypad, brow_of_block, contrib)
        y[:] = ypad.reshape(-1)[:m].astype(self.dtype, copy=False)
        return y

    def memory_bytes(self):
        idx = self.block_row_ptr.nbytes + self.block_col.nbytes
        return {
            "values": self.blocks.nbytes,
            "indices": idx,
            "total": self.blocks.nbytes + idx,
        }

    def fill_ratio(self) -> float:
        """nnz / stored slots — the dense-block efficiency (<= 1)."""
        slots = self.blocks.size
        return self.nnz / slots if slots else 0.0

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        m, n = self.shape
        nbr = self.block_row_ptr.shape[0] - 1
        brow_of_block = np.repeat(np.arange(nbr), np.diff(self.block_row_ptr))
        for b in range(self.num_blocks):
            i0 = int(brow_of_block[b]) * self.r
            j0 = int(self.block_col[b]) * self.c
            tile = self.blocks[b]
            dense[i0 : min(i0 + self.r, m), j0 : min(j0 + self.c, n)] = tile[
                : min(self.r, m - i0), : min(self.c, n - j0)
            ]
        return dense

    def to_coo_triplets(self):
        m, n = self.shape
        nbr = self.block_row_ptr.shape[0] - 1
        brow_of_block = np.repeat(
            np.arange(nbr, dtype=np.int64), np.diff(self.block_row_ptr)
        )
        b, lr, lc = np.nonzero(self.blocks)
        rows = brow_of_block[b] * self.r + lr
        cols = self.block_col.astype(np.int64)[b] * self.c + lc
        # edge tiles are zero-padded, so all stored nonzeros are in range
        return rows, cols, self.blocks[b, lr, lc]
