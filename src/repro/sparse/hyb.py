"""HYB — hybrid ELL + COO format (Bell & Garland's GPU classic).

The "hybrid" entry of the paper's Section I taxonomy: store the regular
part of every row (up to a width chosen from the row-length distribution)
in ELL, and spill the irregular tail into COO.  This bounds ELL's padding
(the failure mode ruled out by :class:`~repro.sparse.ell.ELLMatrix`'s
skew guard) while keeping most of the matrix in the vector-friendly
layout.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import FormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat, register_format


@register_format
class HYBMatrix(SpMVFormat):
    """ELL head + COO tail.

    ``width`` defaults to the qth quantile of row lengths (q = 0.75), the
    usual heuristic: ELL covers the common case, COO the stragglers.
    """

    name = "hyb"

    def __init__(self, shape, ell_cols, ell_vals, coo_rows, coo_cols, coo_vals, nnz):
        super().__init__(shape, nnz, ell_vals.dtype)
        self.ell_cols = ell_cols        # (width, m), -1 padded
        self.ell_vals = ell_vals
        self.coo_rows = coo_rows
        self.coo_cols = coo_cols
        self.coo_vals = coo_vals
        self.width = ell_cols.shape[0]

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, *, width: int | None = None,
                 quantile: float = 0.75, **kwargs):
        coo = COOMatrix.from_coo(shape, rows, cols, vals, **kwargs)
        m, _ = shape
        counts = coo.row_nnz()
        if width is None:
            width = int(np.quantile(counts, quantile)) if m else 0
        if width < 0:
            raise FormatError("width must be >= 0")

        lane = np.arange(coo.nnz, dtype=np.int64)
        row_starts = np.zeros(m, dtype=np.int64)
        np.cumsum(counts[:-1], out=row_starts[1:])
        lane -= row_starts[coo.rows]

        in_ell = lane < width
        ell_cols = np.full((width, m), -1, dtype=INDEX_DTYPE)
        ell_vals = np.zeros((width, m), dtype=coo.vals.dtype)
        ell_cols[lane[in_ell], coo.rows[in_ell]] = coo.cols[in_ell]
        ell_vals[lane[in_ell], coo.rows[in_ell]] = coo.vals[in_ell]
        tail = ~in_ell
        return cls(
            shape,
            ell_cols,
            ell_vals,
            coo.rows[tail].copy(),
            coo.cols[tail].copy(),
            coo.vals[tail].copy(),
            coo.nnz,
        )

    @property
    def ell_nnz(self) -> int:
        return int((self.ell_cols >= 0).sum())

    @property
    def coo_nnz(self) -> int:
        return int(self.coo_vals.size)

    def spmv_into(self, x, y):
        x = self._check_x(x)
        y[:] = 0
        for k in range(self.width):  # ELL part, lane-vectorised
            c = self.ell_cols[k]
            valid = c >= 0
            y[valid] += self.ell_vals[k, valid] * x[c[valid]]
        if self.coo_vals.size:  # COO tail
            y += np.bincount(
                self.coo_rows,
                weights=self.coo_vals * x[self.coo_cols],
                minlength=self.shape[0],
            ).astype(self.dtype, copy=False)
        return y

    def memory_bytes(self):
        values = self.ell_vals.nbytes + self.coo_vals.nbytes
        idx = (
            self.ell_cols.nbytes
            + self.coo_rows.nbytes
            + self.coo_cols.nbytes
        )
        return {"values": values, "indices": idx, "total": values + idx}

    def padding_ratio(self) -> float:
        """(stored slots incl. padding) / nnz - 1 — bounded by design."""
        slots = self.ell_vals.size + self.coo_vals.size
        return slots / self.nnz - 1.0 if self.nnz else 0.0

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        for k in range(self.width):
            c = self.ell_cols[k]
            valid = c >= 0
            dense[np.nonzero(valid)[0], c[valid]] = self.ell_vals[k, valid]
        dense[self.coo_rows, self.coo_cols] = self.coo_vals
        return dense

    def to_coo_triplets(self):
        valid = self.ell_cols >= 0
        lanes, rows = np.nonzero(valid)
        return (
            np.concatenate([rows.astype(np.int64), self.coo_rows.astype(np.int64)]),
            np.concatenate(
                [self.ell_cols[lanes, rows].astype(np.int64), self.coo_cols.astype(np.int64)]
            ),
            np.concatenate([self.ell_vals[lanes, rows], self.coo_vals]),
        )
