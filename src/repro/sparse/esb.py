"""ESB — ELLPACK Sorted Blocks (Liu et al., Intel MIC lineage).

ESB fixes ELL's padding by (a) slicing the matrix into row blocks of
height ``slice_height`` and giving every slice its own width, and (b)
sorting rows by nonzero count inside a *sorting window* of ``sort_window``
rows, so rows sharing a slice have similar lengths.  Values/columns are
stored column-major per slice (SIMD across rows), and a per-slice bitmask
marks real entries.  A row permutation maps slice-local results back to
the original order.

SpMV offers the paper's "best scheduling" knob through the slice loop; the
NumPy backend vectorises within each slice.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import FormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat, register_format


@register_format
class ESBMatrix(SpMVFormat):
    """ELLPACK sorted blocks (a SELL-C-sigma style layout)."""

    name = "esb"

    def __init__(self, shape, slices, perm, nnz, dtype, slice_height, sort_window):
        super().__init__(shape, nnz, dtype)
        #: list of (cols, vals) column-major arrays, one pair per slice
        self.slices = slices
        #: permutation: sorted position -> original row id
        self.perm = perm
        self.slice_height = int(slice_height)
        self.sort_window = int(sort_window)

    @classmethod
    def from_coo(
        cls,
        shape,
        rows,
        cols,
        vals,
        *,
        slice_height: int = 32,
        sort_window: int = 256,
        **kwargs,
    ) -> "ESBMatrix":
        if slice_height < 1:
            raise FormatError("slice_height must be >= 1")
        if sort_window < slice_height:
            raise FormatError("sort_window must be >= slice_height")
        coo = COOMatrix.from_coo(shape, rows, cols, vals, **kwargs)
        m, _ = shape
        row_ptr, col_idx, v = coo.to_csr_arrays()
        counts = np.diff(row_ptr).astype(np.int64)

        # sort rows by descending nnz within each sorting window
        perm = np.empty(m, dtype=np.int64)
        for w0 in range(0, m, sort_window):
            w1 = min(w0 + sort_window, m)
            local = np.argsort(-counts[w0:w1], kind="stable") + w0
            perm[w0:w1] = local

        slices = []
        for s0 in range(0, m, slice_height):
            s1 = min(s0 + slice_height, m)
            srows = perm[s0:s1]
            width = int(counts[srows].max()) if srows.size else 0
            h = s1 - s0
            sc = np.full((width, h), -1, dtype=INDEX_DTYPE)
            sv = np.zeros((width, h), dtype=v.dtype)
            for local_i, r in enumerate(srows):
                a, b = int(row_ptr[r]), int(row_ptr[r + 1])
                sc[: b - a, local_i] = col_idx[a:b]
                sv[: b - a, local_i] = v[a:b]
            slices.append((sc, sv))
        return cls(shape, slices, perm, coo.nnz, v.dtype, slice_height, sort_window)

    def spmv_into(self, x, y):
        x = self._check_x(x)
        y[:] = 0
        m = self.shape[0]
        for si, (sc, sv) in enumerate(self.slices):
            s0 = si * self.slice_height
            h = sc.shape[1]
            rows = self.perm[s0 : s0 + h]
            acc = np.zeros(h, dtype=self.dtype)
            for k in range(sc.shape[0]):
                c = sc[k]
                valid = c >= 0
                acc[valid] += sv[k, valid] * x[c[valid]]
            y[rows] = acc
        return y

    def memory_bytes(self):
        values = sum(sv.nbytes for _, sv in self.slices)
        # real ESB replaces padded column ids with a bitmask; count column
        # ids for real entries, one mask bit per slot, slice descriptors,
        # and the row permutation (streamed for the result scatter).
        slots = sum(sv.size for _, sv in self.slices)
        idx = (
            self.nnz * INDEX_DTYPE.itemsize
            + (slots + 7) // 8
            + (len(self.slices) + 1) * INDEX_DTYPE.itemsize
            + self.shape[0] * INDEX_DTYPE.itemsize
        )
        return {"values": values, "indices": idx, "total": values + idx}

    def padding_ratio(self) -> float:
        """Stored slots / nnz - 1 (after slicing + sorting)."""
        slots = sum(sv.size for _, sv in self.slices)
        return slots / self.nnz - 1.0 if self.nnz else 0.0

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        for si, (sc, sv) in enumerate(self.slices):
            s0 = si * self.slice_height
            rows = self.perm[s0 : s0 + sc.shape[1]]
            for k in range(sc.shape[0]):
                c = sc[k]
                valid = c >= 0
                dense[rows[valid], c[valid]] = sv[k, valid]
        return dense

    def to_coo_triplets(self):
        rows_parts, cols_parts, vals_parts = [], [], []
        for si, (sc, sv) in enumerate(self.slices):
            s0 = si * self.slice_height
            rows = self.perm[s0 : s0 + sc.shape[1]]
            valid = sc >= 0
            lanes, local = np.nonzero(valid)
            rows_parts.append(rows[local].astype(np.int64))
            cols_parts.append(sc[lanes, local].astype(np.int64))
            vals_parts.append(sv[lanes, local])
        if not rows_parts:
            z = np.zeros(0, dtype=np.int64)
            return z, z, np.zeros(0, dtype=self.dtype)
        return (
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
        )
