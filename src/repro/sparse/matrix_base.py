"""Base class and registry for SpMV-capable sparse-matrix formats.

Every format in :mod:`repro.sparse` (and CSCV in :mod:`repro.core`)
subclasses :class:`SpMVFormat`, which fixes the public contract:

* construction from COO triplets (:meth:`SpMVFormat.from_coo`);
* ``y = A @ x`` through :meth:`SpMVFormat.spmv` /
  :meth:`SpMVFormat.spmv_into`;
* an exact accounting of the bytes the format streams per SpMV
  (:meth:`SpMVFormat.memory_bytes`) — the paper's ``M(A)`` term;
* densification for testing (:meth:`SpMVFormat.to_dense`).

Formats register themselves under a short name with
:func:`register_format`, so the bench harness can sweep "all formats" the
way the paper's evaluation does.
"""

from __future__ import annotations

import abc
from typing import Iterable, Type

import numpy as np

from repro.config import normalize_dtype
from repro.errors import FormatError, ValidationError
from repro.utils.arrays import check_1d, ensure_dtype

_REGISTRY: dict[str, Type["SpMVFormat"]] = {}


def register_format(cls: Type["SpMVFormat"]) -> Type["SpMVFormat"]:
    """Class decorator: add *cls* to the global format registry."""
    name = getattr(cls, "name", None)
    if not name:
        raise FormatError(f"{cls.__name__} must define a non-empty `name`")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise FormatError(f"format name {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def get_format(name: str) -> Type["SpMVFormat"]:
    """Look up a registered format class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise FormatError(
            f"unknown format {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_formats() -> list[str]:
    """Names of all registered formats, sorted."""
    return sorted(_REGISTRY)


class SpMVFormat(abc.ABC):
    """Abstract sparse matrix supporting ``y = A @ x``.

    Subclasses must set the class attribute :attr:`name` and implement
    :meth:`from_coo`, :meth:`spmv_into` and :meth:`memory_bytes`.
    """

    #: short registry name, e.g. ``"csr"``
    name: str = ""

    def __init__(self, shape: tuple[int, int], nnz: int, dtype):
        m, n = int(shape[0]), int(shape[1])
        if m < 0 or n < 0:
            raise ValidationError(f"invalid shape {shape}")
        if nnz < 0:
            raise ValidationError("nnz must be >= 0")
        self._shape = (m, n)
        self._nnz = int(nnz)
        self._dtype = normalize_dtype(dtype)

    # ------------------------------------------------------------------ #
    # core contract

    @classmethod
    @abc.abstractmethod
    def from_coo(
        cls,
        shape: tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        **kwargs,
    ) -> "SpMVFormat":
        """Build the format from (already deduplicated) COO triplets."""

    @abc.abstractmethod
    def spmv_into(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Compute ``y[:] = A @ x`` in place and return *y*.

        *y* must be a contiguous array of the matrix dtype with
        ``len(y) == shape[0]``; its previous contents are overwritten.
        """

    @abc.abstractmethod
    def memory_bytes(self) -> dict[str, int]:
        """Bytes streamed from memory for the matrix per SpMV.

        Returns a dict with at least ``{"values": ..., "indices": ...,
        "total": ...}``; ``total`` is the paper's ``M(A)``.
        """

    # ------------------------------------------------------------------ #
    # shared behaviour

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols)."""
        return self._shape

    @property
    def nnz(self) -> int:
        """Number of *stored meaningful* nonzeros (excludes padding)."""
        return self._nnz

    @property
    def dtype(self) -> np.dtype:
        """Value dtype (float32 or float64)."""
        return self._dtype

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Compute and return ``y = A @ x`` (allocating unless *out* given)."""
        x = self._check_x(x)
        if out is None:
            out = np.zeros(self._shape[0], dtype=self._dtype)
        else:
            out = check_1d(out, self._shape[0], "out")
            if out.dtype != self._dtype or not out.flags.c_contiguous:
                raise ValidationError(
                    f"out must be C-contiguous {self._dtype}, got {out.dtype}"
                )
        return self.spmv_into(x, out)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.spmm(x)
        return self.spmv(x)

    def spmm(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Multi-vector product ``Y = A @ X`` with ``X`` of shape (n, k).

        The multi-slice CT workload: one system matrix applied to many
        images (or sinograms) at once.  Validation and allocation live
        here; the computation is delegated to :meth:`spmm_into`, which
        formats with a vectorised multi-RHS path override.
        """
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[0] != self._shape[1]:
            raise ValidationError(
                f"X must have shape ({self._shape[1]}, k), got {X.shape}"
            )
        k = X.shape[1]
        Xc = np.ascontiguousarray(X, dtype=self._dtype)
        if out is None:
            out = np.zeros((self._shape[0], k), dtype=self._dtype)
        elif out.shape != (self._shape[0], k):
            raise ValidationError(f"out must have shape ({self._shape[0]}, {k})")
        elif out.dtype != self._dtype or not out.flags.c_contiguous:
            raise ValidationError(
                f"out must be C-contiguous {self._dtype}, got {out.dtype}"
            )
        return self.spmm_into(Xc, out)

    def spmm_into(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """Compute ``Y[:] = A @ X`` in place (X already validated (n, k)).

        The default loops one SpMV per column; batched formats (CSR,
        CSCV-Z, CSCV-M) override with a single multi-RHS pass.
        """
        for j in range(X.shape[1]):
            Y[:, j] = self.spmv(np.ascontiguousarray(X[:, j]))
        return Y

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Shape-dispatching product: SpMV for 1-D *x*, SpMM for 2-D."""
        x = np.asarray(x)
        if x.ndim == 2:
            return self.spmm(x, out)
        return self.spmv(x, out)

    def _check_x(self, x: np.ndarray) -> np.ndarray:
        x = check_1d(x, self._shape[1], "x")
        return ensure_dtype(x, self._dtype, "x")

    def to_dense(self) -> np.ndarray:
        """Dense equivalent, reconstructed by multiplying by unit vectors.

        Subclasses with direct access to triplets should override this; the
        default is O(n) SpMVs and intended only for small test matrices.
        """
        m, n = self._shape
        dense = np.zeros((m, n), dtype=self._dtype)
        e = np.zeros(n, dtype=self._dtype)
        for j in range(n):
            e[j] = 1.0
            dense[:, j] = self.spmv(e)
            e[j] = 0.0
        return dense

    def to_coo_triplets(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, cols, vals)`` of the stored nonzeros, any order.

        Used by the adjoint fallback and the norm helpers, which must not
        densify the matrix.  Every shipped format overrides this with a
        direct O(nnz) extraction from its own arrays; this default (via
        :meth:`to_dense`) exists only for out-of-tree subclasses and is
        meant for small test matrices.
        """
        dense = self.to_dense()
        r, c = np.nonzero(dense)
        return r.astype(np.int64), c.astype(np.int64), dense[r, c]

    def index_bytes(self) -> int:
        """Bytes of index/metadata streamed per SpMV (from memory_bytes)."""
        return int(self.memory_bytes()["indices"])

    # ------------------------------------------------------------------ #
    # persistence hooks (the operator cache's per-format serialization)

    def cache_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """``(meta, arrays)`` capturing this instance for the operator cache.

        The base implementation stores the COO triplets — restoring skips
        the (dominant) projector sweep but re-runs this format's own
        ``from_coo`` conversion.  Formats whose arrays can be used
        directly (the CSCVs) override this pair with their native arrays
        so a restore is a zero-copy reconstruction.
        """
        rows, cols, vals = self.to_coo_triplets()
        meta = {
            "kind": "coo",
            "shape": [int(self._shape[0]), int(self._shape[1])],
            "dtype": str(self._dtype),
        }
        return meta, {
            "rows": np.ascontiguousarray(rows, dtype=np.int64),
            "cols": np.ascontiguousarray(cols, dtype=np.int64),
            "vals": np.ascontiguousarray(vals, dtype=self._dtype),
        }

    @classmethod
    def from_cache_state(
        cls, meta: dict, arrays: dict[str, np.ndarray], *, threads=None, **kwargs
    ) -> "SpMVFormat":
        """Rebuild an instance from :meth:`cache_state` output.

        *threads* is accepted for signature parity with the CSCV
        overrides and ignored here (COO-built formats pick their thread
        count up from ``config.runtime`` at SpMV time).  Raises
        :class:`~repro.errors.FormatError` when *meta* does not describe
        a state this class can restore.
        """
        if meta.get("kind") != "coo":
            raise FormatError(
                f"{cls.__name__} cannot restore cache entries of kind "
                f"{meta.get('kind')!r}"
            )
        m, n = meta["shape"]
        return cls.from_coo(
            (int(m), int(n)),
            np.asarray(arrays["rows"]),
            np.asarray(arrays["cols"]),
            np.asarray(arrays["vals"]),
            **kwargs,
        )

    def describe(self) -> dict:
        """Human-readable summary used by the bench reports."""
        mem = self.memory_bytes()
        return {
            "format": self.name,
            "shape": self._shape,
            "nnz": self._nnz,
            "dtype": str(self._dtype),
            "matrix MiB": mem["total"] / 2**20,
            "index MiB": mem["indices"] / 2**20,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m, n = self._shape
        return (
            f"<{type(self).__name__} {m}x{n} nnz={self._nnz} "
            f"dtype={self._dtype}>"
        )


def coo_validate(
    shape: tuple[int, int],
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    dtype=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared COO triplet validation used by every ``from_coo``.

    Casts indices to int64, values to *dtype* (default: vals.dtype
    normalised), checks ranges and equal lengths.
    """
    m, n = int(shape[0]), int(shape[1])
    rows = ensure_dtype(rows, np.int64, "rows")
    cols = ensure_dtype(cols, np.int64, "cols")
    if dtype is None:
        dtype = normalize_dtype(np.asarray(vals).dtype if hasattr(vals, "dtype") else np.float64)
    vals = ensure_dtype(vals, dtype, "vals")
    if not (rows.shape == cols.shape == vals.shape):
        raise ValidationError(
            f"triplet arrays must have equal length, got "
            f"{rows.shape}, {cols.shape}, {vals.shape}"
        )
    if rows.size:
        if rows.min() < 0 or rows.max() >= m:
            raise ValidationError(f"row indices out of range [0, {m})")
        if cols.min() < 0 or cols.max() >= n:
            raise ValidationError(f"col indices out of range [0, {n})")
    return rows, cols, vals


def coalesce(
    rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, shape: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort triplets row-major and sum duplicates."""
    m, n = shape
    key = rows * n + cols
    order = np.argsort(key, kind="stable")
    key = key[order]
    vals = vals[order]
    uniq, start = np.unique(key, return_index=True)
    summed = np.add.reduceat(vals, start) if vals.size else vals
    return (uniq // n).astype(np.int64), (uniq % n).astype(np.int64), summed
