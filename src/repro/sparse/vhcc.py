"""VHCC — vectorized 2-D jagged-partition format (Tang et al., CGO'15).

VHCC splits the matrix into vertical *panels* (column ranges) so each
panel's slice of ``x`` stays cache-resident, then flattens each panel's
nonzeros (column-major by row inside the panel) into fixed-size chunks
processed by vector units with a segmented sum.  Partial row sums that
cross chunk/panel boundaries are fixed up through a carry pass.

The reproduction keeps the panel decomposition and per-panel segmented
sum; panels accumulate into ``y`` one after another (the carry structure),
and the memory model counts VHCC's streamed data: values, in-panel row
ids, panel descriptors and the segmented-scan flag bits.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import FormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat, register_format


@register_format
class VHCCMatrix(SpMVFormat):
    """2-D jagged partition: vertical panels + segmented sums."""

    name = "vhcc"

    def __init__(self, shape, panels, nnz, dtype, panel_width):
        super().__init__(shape, nnz, dtype)
        #: list of (col_start, rows, cols, vals) per panel, panel-local order
        self.panels = panels
        self.panel_width = int(panel_width)

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, *, panel_width: int = 4096, **kwargs):
        if panel_width < 1:
            raise FormatError("panel_width must be >= 1")
        coo = COOMatrix.from_coo(shape, rows, cols, vals, **kwargs)
        panels = []
        # column-major global order so each panel's nonzeros are contiguous
        order = np.argsort(coo.cols * np.int64(shape[0]) + coo.rows, kind="stable")
        rows_s = coo.rows[order]
        cols_s = coo.cols[order]
        vals_s = coo.vals[order]
        panel_of = cols_s // panel_width
        boundaries = np.flatnonzero(np.diff(panel_of, prepend=-1))
        boundaries = np.append(boundaries, rows_s.size)
        for i in range(boundaries.size - 1):
            a, b = int(boundaries[i]), int(boundaries[i + 1])
            if a == b:
                continue
            c0 = int(panel_of[a]) * panel_width
            panels.append(
                (
                    c0,
                    rows_s[a:b].astype(INDEX_DTYPE),
                    (cols_s[a:b] - c0).astype(INDEX_DTYPE),
                    vals_s[a:b].copy(),
                )
            )
        return cls(shape, panels, coo.nnz, coo.vals.dtype, panel_width)

    @property
    def num_panels(self) -> int:
        return len(self.panels)

    def spmv_into(self, x, y):
        x = self._check_x(x)
        y[:] = 0
        for c0, prows, pcols, pvals in self.panels:
            products = pvals * x[c0 + pcols.astype(np.int64)]
            # segmented sum keyed by row inside the panel (rows repeat in
            # runs because the panel is column-major-sorted by (col, row)).
            y += np.bincount(
                prows.astype(np.int64), weights=products, minlength=self.shape[0]
            ).astype(self.dtype, copy=False)
        return y

    def memory_bytes(self):
        values = sum(p[3].nbytes for p in self.panels)
        # streams: panel-local row ids (full ints) + panel-local column
        # offsets (2 bytes suffice inside <=65536-wide panels) + one
        # descriptor per panel + scan flag bit per nnz.
        col_bytes = 2 if self.panel_width <= 65536 else INDEX_DTYPE.itemsize
        idx = (
            self.nnz * INDEX_DTYPE.itemsize
            + self.nnz * col_bytes
            + self.num_panels * 4 * INDEX_DTYPE.itemsize
            + (self.nnz + 7) // 8
        )
        return {"values": values, "indices": idx, "total": values + idx}

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        for c0, prows, pcols, pvals in self.panels:
            dense[prows.astype(np.int64), c0 + pcols.astype(np.int64)] = pvals
        return dense

    def to_coo_triplets(self):
        if not self.panels:
            z = np.zeros(0, dtype=np.int64)
            return z, z, np.zeros(0, dtype=self.dtype)
        return (
            np.concatenate([p[1].astype(np.int64) for p in self.panels]),
            np.concatenate([p[0] + p[2].astype(np.int64) for p in self.panels]),
            np.concatenate([p[3] for p in self.panels]),
        )
