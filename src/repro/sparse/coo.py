"""COO (coordinate) format — the conversion hub.

Stores sorted, deduplicated ``(row, col, value)`` triplets.  Every other
format's ``from_coo`` consumes the arrays this class produces, and the CT
projectors emit raw triplets that :meth:`COOMatrix.from_triplets`
canonicalises.  Its SpMV is a reference scatter-add, useful for testing but
never competitive — exactly its role in the paper's taxonomy.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE, normalize_dtype
from repro.errors import ValidationError
from repro.sparse.matrix_base import SpMVFormat, coalesce, coo_validate, register_format


@register_format
class COOMatrix(SpMVFormat):
    """Canonical triplets, row-major sorted, duplicates summed."""

    name = "coo"

    def __init__(self, shape, rows, cols, vals):
        super().__init__(shape, len(vals), vals.dtype)
        self.rows = rows
        self.cols = cols
        self.vals = vals

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, **kwargs) -> "COOMatrix":
        dtype = kwargs.pop("dtype", None)
        if kwargs:
            raise ValidationError(f"unknown kwargs: {sorted(kwargs)}")
        rows, cols, vals = coo_validate(shape, rows, cols, vals, dtype)
        rows, cols, vals = coalesce(rows, cols, vals, shape)
        return cls(shape, rows, cols, vals)

    #: alias with a more natural name for projector output
    from_triplets = from_coo

    @classmethod
    def from_dense(cls, dense: np.ndarray, dtype=None) -> "COOMatrix":
        """Build from a dense 2-D array (zeros dropped)."""
        d = np.asarray(dense)
        if d.ndim != 2:
            raise ValidationError(f"dense must be 2-D, got shape {d.shape}")
        rows, cols = np.nonzero(d)
        return cls.from_coo(d.shape, rows, cols, d[rows, cols], dtype=dtype)

    def spmv_into(self, x, y):
        x = self._check_x(x)
        y[:] = 0
        np.add.at(y, self.rows, self.vals * x[self.cols])
        return y

    def memory_bytes(self):
        idx = 2 * self.nnz * np.dtype(np.int64).itemsize
        values = self.nnz * self.dtype.itemsize
        return {"values": values, "indices": idx, "total": values + idx}

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        dense[self.rows, self.cols] = self.vals
        return dense

    def to_coo_triplets(self):
        return self.rows.astype(np.int64), self.cols.astype(np.int64), self.vals

    # ------------------------------------------------------------------ #
    # conversion helpers shared by the compressed formats

    def to_csr_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(row_ptr, col_idx, vals)`` with 32-bit indices."""
        m, _ = self.shape
        counts = np.bincount(self.rows, minlength=m)
        row_ptr = np.zeros(m + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=row_ptr[1:])
        # self.rows is already row-major sorted
        return row_ptr, self.cols.astype(INDEX_DTYPE), self.vals.copy()

    def to_csc_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(col_ptr, row_idx, vals)`` with 32-bit indices."""
        _, n = self.shape
        order = np.argsort(self.cols * self.shape[0] + self.rows, kind="stable")
        cols = self.cols[order]
        rows = self.rows[order]
        vals = self.vals[order]
        counts = np.bincount(cols, minlength=n)
        col_ptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=col_ptr[1:])
        return col_ptr, rows.astype(INDEX_DTYPE), vals

    def astype(self, dtype) -> "COOMatrix":
        """Copy with values cast to *dtype*."""
        dt = normalize_dtype(dtype)
        return COOMatrix(self.shape, self.rows.copy(), self.cols.copy(), self.vals.astype(dt))

    def row_nnz(self) -> np.ndarray:
        """Per-row nonzero counts."""
        return np.bincount(self.rows, minlength=self.shape[0]).astype(np.int64)

    def col_nnz(self) -> np.ndarray:
        """Per-column nonzero counts."""
        return np.bincount(self.cols, minlength=self.shape[1]).astype(np.int64)
