"""Vendor-library baselines: scipy.sparse stand-ins for Intel MKL.

The paper benchmarks MKL-CSR and MKL-CSC — the tuned vendor CSR/CSC
implementations.  Without MKL in this environment, :mod:`scipy.sparse`
plays the same role: a mature, compiled, general-purpose CSR/CSC SpMV the
custom formats must beat.  The wrappers expose the standard
:class:`~repro.sparse.matrix_base.SpMVFormat` contract so the bench
harness treats them like every other format.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.config import INDEX_DTYPE
from repro.sparse.matrix_base import SpMVFormat, coo_validate, register_format


class _ScipyBacked(SpMVFormat):
    """Common plumbing for the scipy-backed formats."""

    _scipy_cls = None  # set by subclasses

    def __init__(self, shape, matrix, nnz):
        super().__init__(shape, nnz, matrix.dtype)
        self._m = matrix

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, **kwargs):
        dtype = kwargs.pop("dtype", None)
        rows, cols, vals = coo_validate(shape, rows, cols, vals, dtype)
        coo = sp.coo_matrix((vals, (rows, cols)), shape=shape)
        coo.sum_duplicates()
        m = cls._scipy_cls(coo)
        m.sort_indices()
        return cls(shape, m, m.nnz)

    def spmv_into(self, x, y):
        x = self._check_x(x)
        y[:] = self._m @ x
        return y

    def memory_bytes(self):
        idx = self._m.indptr.nbytes + self._m.indices.nbytes
        return {
            "values": self._m.data.nbytes,
            "indices": idx,
            "total": self._m.data.nbytes + idx,
        }

    def to_dense(self):
        return np.asarray(self._m.todense(), dtype=self.dtype)

    def to_coo_triplets(self):
        coo = self._m.tocoo()
        return coo.row.astype(np.int64), coo.col.astype(np.int64), coo.data

    def to_scipy(self):
        """Underlying scipy matrix (shared, do not mutate)."""
        return self._m


@register_format
class MKLLikeCSR(_ScipyBacked):
    """scipy CSR as the MKL-CSR stand-in."""

    name = "mkl-csr"
    _scipy_cls = sp.csr_matrix

    def transpose_spmv(self, y_in, out=None):
        """``x = A^T y`` through scipy's transposed product."""
        res = self._m.T @ np.ascontiguousarray(y_in, dtype=self.dtype)
        if out is None:
            return res.astype(self.dtype, copy=False)
        out[:] = res
        return out


@register_format
class MKLLikeCSC(_ScipyBacked):
    """scipy CSC as the MKL-CSC stand-in."""

    name = "mkl-csc"
    _scipy_cls = sp.csc_matrix
