"""CSC (compressed sparse column) format — paper Algorithm 1.

Column-major layout: ``col_ptr`` (n+1), ``row_idx`` (nnz), ``vals`` (nnz).
SpMV scatters ``x_i * vals`` into ``y`` at ``row_idx`` — the output access
is indirect, which is why vectorised CSC needs the gather/scatter of
Algorithm 2 and why the paper builds CSCV instead.  For integral-equation
solvers (ICD-style), column access is the natural direction, giving CSC a
"wider application range" (Section III).
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import ValidationError
from repro.kernels import dispatch
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat, register_format


@register_format
class CSCMatrix(SpMVFormat):
    """Compressed sparse column with 32-bit indices."""

    name = "csc"

    def __init__(self, shape, col_ptr, row_idx, vals):
        super().__init__(shape, len(vals), vals.dtype)
        self.col_ptr = np.ascontiguousarray(col_ptr, dtype=INDEX_DTYPE)
        self.row_idx = np.ascontiguousarray(row_idx, dtype=INDEX_DTYPE)
        self.vals = np.ascontiguousarray(vals)
        if self.col_ptr.shape[0] != shape[1] + 1:
            raise ValidationError("col_ptr must have shape[1]+1 entries")
        if self.col_ptr[0] != 0 or self.col_ptr[-1] != len(vals):
            raise ValidationError("col_ptr must start at 0 and end at nnz")
        if np.any(np.diff(self.col_ptr) < 0):
            raise ValidationError("col_ptr must be non-decreasing")

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, **kwargs) -> "CSCMatrix":
        coo = COOMatrix.from_coo(shape, rows, cols, vals, **kwargs)
        return cls(shape, *coo.to_csc_arrays())

    @classmethod
    def from_coo_matrix(cls, coo: COOMatrix) -> "CSCMatrix":
        return cls(coo.shape, *coo.to_csc_arrays())

    def spmv_into(self, x, y):
        x = self._check_x(x)
        fn = dispatch.get("csc_spmv", self.dtype)
        if fn is not None:
            fn(
                self.shape[0],
                self.shape[1],
                self.col_ptr,
                self.row_idx,
                self.vals,
                x,
                y,
            )
            return y
        y[:] = 0
        # x value broadcast to each column's nonzeros, then scatter-add.
        x_expanded = np.repeat(x, np.diff(self.col_ptr))
        contrib = self.vals * x_expanded
        # bincount is a vectorised scatter-add keyed by row index
        y += np.bincount(self.row_idx, weights=contrib, minlength=self.shape[0]).astype(
            self.dtype, copy=False
        )
        return y

    def memory_bytes(self):
        idx = self.col_ptr.nbytes + self.row_idx.nbytes
        return {
            "values": self.vals.nbytes,
            "indices": idx,
            "total": self.vals.nbytes + idx,
        }

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        rows, cols, vals = self.to_coo_triplets()
        dense[rows, cols] = vals
        return dense

    def to_coo_triplets(self):
        cols = np.repeat(np.arange(self.shape[1], dtype=np.int64), np.diff(self.col_ptr))
        return self.row_idx.astype(np.int64), cols, self.vals

    def col_nnz(self) -> np.ndarray:
        """Per-column nonzero counts (property P3 statistic)."""
        return np.diff(self.col_ptr).astype(np.int64)

    def transpose_spmv(self, y_in: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``x = A^T y``: for CSC this is a clean per-column dot product."""
        from repro.sparse.csr import segment_sum
        from repro.utils.arrays import check_1d, ensure_dtype

        y_in = ensure_dtype(check_1d(y_in, self.shape[0], "y"), self.dtype, "y")
        if out is None:
            out = np.zeros(self.shape[1], dtype=self.dtype)
        products = self.vals * y_in[self.row_idx]
        return segment_sum(products, self.col_ptr, out)
