"""Sparse-matrix storage formats and their SpMV implementations.

Contains our own from-scratch implementations of every format the paper
benchmarks against, plus the shared base class and format registry:

========  ==========================================================
format    idea
========  ==========================================================
COO       canonical triplets; conversion hub
CSR       row-compressed; the scalar baseline (Alg. in [1])
HYB       ELL head + COO tail (bounded padding)
BSR       r x c dense tiles (the dense-sub-matrix method)
CSC       column-compressed (paper Alg. 1)
ELL       fixed width per row, column-major — PDE-style matrices [2]
CSR5      tiles + segmented sum over a transposed tile layout [9]
SPC5      beta(r,c) row-blocks with per-row masks, no padding [3]
ESB       ELLPACK sorted blocks with bitmasks (Intel MIC lineage)
CVR       lane-packing of rows into SIMD streams
VHCC      2-D jagged panels + segmented sum
MergeCSR  merge-path work partitioning over (rows x nnz)
MKL-like  scipy.sparse-backed vendor stand-in
========  ==========================================================

The paper's own CSCV format lives in :mod:`repro.core`.
"""

from repro.sparse.matrix_base import (
    SpMVFormat,
    available_formats,
    get_format,
    register_format,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csc_vec import CSCVecMatrix
from repro.sparse.bsr import BSRMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.hyb import HYBMatrix
from repro.sparse.csr5 import CSR5Matrix
from repro.sparse.spc5 import SPC5Matrix
from repro.sparse.esb import ESBMatrix
from repro.sparse.cvr import CVRMatrix
from repro.sparse.vhcc import VHCCMatrix
from repro.sparse.merge_csr import MergeCSRMatrix
from repro.sparse.mkl_like import MKLLikeCSR, MKLLikeCSC
from repro.sparse.stats import MatrixStats, memory_requirement

__all__ = [
    "SpMVFormat",
    "available_formats",
    "get_format",
    "register_format",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "CSCVecMatrix",
    "ELLMatrix",
    "HYBMatrix",
    "BSRMatrix",
    "CSR5Matrix",
    "SPC5Matrix",
    "ESBMatrix",
    "CVRMatrix",
    "VHCCMatrix",
    "MergeCSRMatrix",
    "MKLLikeCSR",
    "MKLLikeCSC",
    "MatrixStats",
    "memory_requirement",
]
