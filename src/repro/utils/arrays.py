"""Array helpers: alignment, dtype coercion, shape validation.

SIMD kernels want their value streams aligned to cache-line (64-byte)
boundaries; :func:`aligned_zeros` over-allocates and slices to achieve that
without any C code.  The remaining helpers implement the validation idioms
used across all sparse formats.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

#: Alignment (bytes) targeted by :func:`aligned_zeros` — one cache line,
#: which also satisfies AVX-512 load alignment.
ALIGNMENT = 64


def aligned_zeros(shape, dtype=np.float64, align: int = ALIGNMENT) -> np.ndarray:
    """Return a zero-initialised array whose data pointer is *align*-aligned.

    Parameters
    ----------
    shape : int or tuple of int
        Desired shape.
    dtype : dtype-like
        Element type.
    align : int
        Required byte alignment (power of two).

    Notes
    -----
    NumPy does not expose aligned allocation directly, so we allocate
    ``size + align`` bytes and slice at the first aligned offset.  The
    returned array is a view; keeping it alive keeps the base buffer alive.
    """
    if align <= 0 or (align & (align - 1)) != 0:
        raise ValidationError(f"alignment must be a positive power of two, got {align}")
    dt = np.dtype(dtype)
    if np.isscalar(shape):
        shape = (int(shape),)
    shape = tuple(int(s) for s in shape)
    size = int(np.prod(shape, dtype=np.int64)) if shape else 1
    nbytes = size * dt.itemsize
    raw = np.zeros(nbytes + align, dtype=np.uint8)
    offset = (-raw.ctypes.data) % align
    view = raw[offset : offset + nbytes].view(dt)
    return view.reshape(shape)


def as_contiguous(arr: np.ndarray, dtype=None) -> np.ndarray:
    """Return *arr* as a C-contiguous array of *dtype* (no copy if possible)."""
    if dtype is None:
        dtype = arr.dtype
    return np.ascontiguousarray(arr, dtype=dtype)


def ensure_dtype(arr: np.ndarray, dtype, name: str = "array") -> np.ndarray:
    """Cast *arr* to *dtype*, raising :class:`ValidationError` on bad input."""
    try:
        a = np.asarray(arr)
    except Exception as exc:  # pragma: no cover - defensive
        raise ValidationError(f"{name} is not array-like: {exc}") from exc
    if not np.issubdtype(a.dtype, np.number) and a.size:
        raise ValidationError(f"{name} must be numeric, got dtype {a.dtype}")
    return np.ascontiguousarray(a, dtype=dtype)


def check_1d(arr: np.ndarray, size: int | None = None, name: str = "vector") -> np.ndarray:
    """Validate that *arr* is one-dimensional (and optionally of length *size*)."""
    a = np.asarray(arr)
    if a.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {a.shape}")
    if size is not None and a.shape[0] != size:
        raise ValidationError(f"{name} must have length {size}, got {a.shape[0]}")
    return a


def as_column_batch(
    arr: np.ndarray, size: int, name: str, dtype
) -> tuple[np.ndarray, bool]:
    """Normalise a vector or stack to a 2-D ``(size, k)`` batch.

    Returns ``(batch, was_1d)`` so solvers can run one batched code path
    and squeeze the result back to 1-D when the caller passed a vector.
    """
    a = np.asarray(arr)
    if a.ndim == 1:
        a = check_1d(a, size, name)[:, None]
        was_1d = True
    elif a.ndim == 2:
        if a.shape[0] != size:
            raise ValidationError(f"{name} must have shape ({size}, k), got {a.shape}")
        was_1d = False
    else:
        raise ValidationError(f"{name} must be 1-D or 2-D, got shape {a.shape}")
    return ensure_dtype(a, dtype, name), was_1d


def is_aligned(arr: np.ndarray, align: int = ALIGNMENT) -> bool:
    """True when *arr*'s data pointer is *align*-byte aligned."""
    return arr.ctypes.data % align == 0


def bincount_lengths(indices: np.ndarray, n: int) -> np.ndarray:
    """Histogram of *indices* over ``range(n)`` as an int64 array.

    Used to derive per-row / per-column nonzero counts from COO triplets.
    """
    idx = np.asarray(indices)
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        raise ValidationError(
            f"indices out of range [0, {n}): min={idx.min()}, max={idx.max()}"
        )
    return np.bincount(idx, minlength=n).astype(np.int64)
