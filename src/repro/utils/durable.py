"""Durable filesystem writes: fsync-before-replace helpers.

``os.replace`` alone gives *atomicity* (readers see either the old or
the new content) but not *durability*: after a power loss or a hard
kill, a file that was renamed into place can come back empty or stale
because neither its data pages nor the directory entry were forced to
disk.  The write-ahead job journal and the solver checkpoints of the
crash-safe serving layer need the stronger contract, and the existing
atomic writers (``save_cscv``, the operator-cache store, ``stats.json``)
were one crash away from serving truncated data.

The discipline implemented here is the standard one:

1. write the new content to a temp file in the *same directory*;
2. ``fsync`` the temp file so its data is on disk;
3. ``os.replace`` it over the destination (atomic rename);
4. ``fsync`` the containing directory so the rename itself is durable.

On platforms or filesystems where directory fsync is unsupported the
directory step degrades silently — the write is still atomic, just no
more durable than before.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = [
    "fsync_file",
    "fsync_dir",
    "replace_durable",
    "write_bytes_durable",
    "write_text_durable",
    "write_json_durable",
]


def fsync_file(fd_or_path) -> None:
    """Force a file's data and metadata to disk.

    Accepts an open file descriptor (int) or a path.  Raises ``OSError``
    on failure — callers that can degrade should catch it.
    """
    if isinstance(fd_or_path, int):
        os.fsync(fd_or_path)
        return
    fd = os.open(os.fspath(fd_or_path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path) -> None:
    """Force a directory entry table to disk (best-effort).

    Needed after ``os.replace`` for the rename to survive power loss.
    Unsupported targets (some network/virtual filesystems, Windows)
    degrade silently: the rename stays atomic, merely not durable.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def replace_durable(tmp, dst) -> None:
    """``os.replace(tmp, dst)`` with full fsync discipline.

    *tmp* must live in the same directory as *dst* (the usual staging
    pattern).  The temp file is fsynced before the rename and the parent
    directory after it, so *dst* either holds the complete old content
    or the complete new content — even across a power cut.

    Works for staged *directories* too: the rename is fsynced the same
    way (individual files inside a staged directory should already have
    been fsynced by the caller where durability matters).
    """
    tmp = os.fspath(tmp)
    dst = os.fspath(dst)
    if not os.path.isdir(tmp):
        fsync_file(tmp)
    os.replace(tmp, dst)
    fsync_dir(os.path.dirname(dst) or ".")


def write_bytes_durable(path, data: bytes) -> Path:
    """Atomically and durably write *data* to *path*.

    Stages a temp file next to *path*, fsyncs it, renames it into place
    and fsyncs the directory.  Returns *path*.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=path.name + ".", suffix=".tmp",
                               dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def write_text_durable(path, text: str) -> Path:
    """:func:`write_bytes_durable` for text (UTF-8)."""
    return write_bytes_durable(path, text.encode("utf-8"))


def write_json_durable(path, obj) -> Path:
    """:func:`write_bytes_durable` for a JSON document."""
    return write_bytes_durable(
        path, json.dumps(obj, separators=(",", ":")).encode("utf-8")
    )
