"""Shared utilities: array helpers, timing, partitioning, ASCII tables."""

from repro.utils.arrays import (
    aligned_zeros,
    as_contiguous,
    check_1d,
    ensure_dtype,
)
from repro.utils.durable import (
    fsync_dir,
    fsync_file,
    replace_durable,
    write_bytes_durable,
    write_json_durable,
    write_text_durable,
)
from repro.utils.partition import (
    chunk_ranges,
    greedy_balance,
    split_evenly,
)
from repro.utils.tables import Table, render_grid
from repro.utils.timing import Timer, min_time

__all__ = [
    "aligned_zeros",
    "as_contiguous",
    "check_1d",
    "ensure_dtype",
    "fsync_dir",
    "fsync_file",
    "replace_durable",
    "write_bytes_durable",
    "write_json_durable",
    "write_text_durable",
    "chunk_ranges",
    "greedy_balance",
    "split_evenly",
    "Table",
    "render_grid",
    "Timer",
    "min_time",
]
