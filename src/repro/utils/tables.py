"""ASCII rendering for benchmark tables and figure-style grids.

Every experiment in :mod:`repro.bench` reports through these renderers so
``pytest benchmarks/`` output looks like the paper's tables.  ``Table``
renders column-aligned tables with optional best/second-best emphasis
(the paper marks best bold, second italic — we use ``*`` and ``~``).
:func:`render_grid` renders small 2-D heatmaps (Figs 5, 8, 9) using a
density ramp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

#: character ramp from light to dark for ASCII heatmaps
_RAMP = " .:-=+*#%@"


def _fmt(value, spec: str | None) -> str:
    if value is None:
        return "-"
    if spec and isinstance(value, (int, float, np.integer, np.floating)):
        return format(value, spec)
    return str(value)


@dataclass
class Table:
    """Column-aligned ASCII table.

    Parameters
    ----------
    headers : sequence of str
        Column names.
    fmt : str or None
        Default numeric format spec (e.g. ``".2f"``) applied to numbers.
    title : str
        Optional title printed above the rule.
    """

    headers: Sequence[str]
    fmt: str | None = None
    title: str = ""
    rows: list[list] = field(default_factory=list)

    def add_row(self, *cells) -> "Table":
        """Append one row (cells may be any mix of str/number/None)."""
        if len(cells) == 1 and isinstance(cells[0], (list, tuple)):
            cells = tuple(cells[0])
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))
        return self

    def mark_extremes(self, column: int, best: str = "max") -> "Table":
        """Mark best (``*``) and second-best (``~``) numeric values in a column.

        Mirrors Table IV's bold/italic emphasis.  Non-numeric cells are
        ignored.  ``best`` selects whether larger (``"max"``) or smaller
        (``"min"``) is better.
        """
        vals = []
        for i, row in enumerate(self.rows):
            cell = row[column]
            if isinstance(cell, (int, float, np.integer, np.floating)):
                vals.append((float(cell), i))
        if not vals:
            return self
        reverse = best == "max"
        vals.sort(key=lambda t: t[0], reverse=reverse)
        marks = {"*": vals[0][1]}
        if len(vals) > 1:
            marks["~"] = vals[1][1]
        for mark, idx in marks.items():
            cell = self.rows[idx][column]
            self.rows[idx][column] = f"{_fmt(cell, self.fmt)}{mark}"
        return self

    def render(self) -> str:
        """Render the table to a string."""
        str_rows = [
            [_fmt(c, self.fmt) for c in row] for row in self.rows
        ]
        widths = [len(h) for h in self.headers]
        for row in str_rows:
            for j, cell in enumerate(row):
                widths[j] = max(widths[j], len(cell))
        sep = "+".join("-" * (w + 2) for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in str_rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_grid(
    values: np.ndarray,
    *,
    row_labels: Iterable | None = None,
    col_labels: Iterable | None = None,
    title: str = "",
    fmt: str = ".2f",
    heat: bool = False,
) -> str:
    """Render a 2-D array as an ASCII grid, optionally as a heatmap.

    With ``heat=True`` each cell shows both the value and a density glyph
    from a 10-step ramp, normalised over finite entries — used for the
    paper's parameter-sweep heatmaps (Figs 5, 8, 9).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"values must be 2-D, got shape {arr.shape}")
    finite = arr[np.isfinite(arr)]
    lo, hi = (finite.min(), finite.max()) if finite.size else (0.0, 1.0)
    span = (hi - lo) or 1.0

    def cell(v) -> str:
        if not np.isfinite(v):
            return "-"
        txt = format(v, fmt)
        if heat:
            glyph = _RAMP[min(int((v - lo) / span * (len(_RAMP) - 1)), len(_RAMP) - 1)]
            txt = f"{txt}{glyph}"
        return txt

    rows = [[cell(v) for v in r] for r in arr]
    rl = [str(r) for r in (row_labels if row_labels is not None else range(arr.shape[0]))]
    cl = [str(c) for c in (col_labels if col_labels is not None else range(arr.shape[1]))]
    tbl = Table(headers=["", *cl], title=title)
    for label, row in zip(rl, rows):
        tbl.add_row(label, *row)
    return tbl.render()
