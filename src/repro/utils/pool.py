"""Process-wide worker pools shared across hot-path call sites.

Solver loops call SpMV thousands of times and the cold-build sweep fans
out once per view range; spawning a fresh ``ThreadPoolExecutor`` per call
costs more than the compute on small work items.  :class:`SharedPool`
keeps one lazily-created executor per subsystem (SpMV, operator build)
and resizes it against a config-driven ceiling:

* **grow** whenever a caller asks for more workers than the pool has;
* **shrink** (recreate smaller) when the config ceiling was lowered at
  runtime and the request fits under the new ceiling — so lowering e.g.
  ``config.runtime.threads`` actually releases the extra OS threads
  instead of fanning work over a stale oversized pool;
* **reuse** for explicit larger-than-ceiling requests that the current
  pool already covers (a caller passing ``threads=3`` against a pool of
  4 keeps the pool of 4).

All pools register an ``atexit`` teardown.

:func:`run_resilient` is the fan-out entry point the hot paths use: it
degrades gracefully when a worker task crashes (retry once on the pool,
then run that task serially on the caller thread), so one bad worker —
real or injected via ``REPRO_FAULTS`` ``pool.task.*`` rules — costs
wall-clock, never correctness.
"""

from __future__ import annotations

import atexit
import threading
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor


class SharedPool:
    """A lazily-created, resizable, process-wide thread pool.

    Parameters
    ----------
    prefix : str
        ``thread_name_prefix`` for the executor's workers.
    ceiling : callable
        Returns the config-driven size ceiling (e.g.
        ``lambda: config.runtime.threads``); re-read on every
        :meth:`get` so runtime changes take effect immediately.
    """

    def __init__(self, prefix: str, ceiling: Callable[[], int]):
        self._prefix = prefix
        self._ceiling = ceiling
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._size = 0
        atexit.register(self.shutdown)

    @property
    def size(self) -> int:
        """Current pool width (0 when not yet created)."""
        return self._size

    def get(self, workers: int) -> ThreadPoolExecutor:
        """Executor with at least *workers* threads (bounded reuse)."""
        limit = int(self._ceiling())
        target = max(int(workers), limit)
        with self._lock:
            grow = self._pool is None or self._size < workers
            # the ceiling dropped below the pool width and this request
            # fits under it: recreate so the extra threads actually die
            shrink = (
                self._pool is not None
                and self._size > target
                and workers <= limit
            )
            if grow or shrink:
                if self._pool is not None:
                    self._pool.shutdown(wait=True)
                self._pool = ThreadPoolExecutor(
                    max_workers=target, thread_name_prefix=self._prefix
                )
                self._size = target
            return self._pool

    def shutdown(self) -> None:
        """Tear the pool down (atexit hook and test hook)."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
                self._size = 0


def run_resilient(shared: SharedPool, fn, items, workers: int, *, label: str) -> list:
    """``[fn(item) for item in items]`` over the pool, degradation-hardened.

    Policy per item: run on the pool; on any exception retry once on the
    pool; on a second failure fall back to running that item serially on
    the caller thread.  The serial path calls *fn* directly (outside the
    ``pool.task.<label>`` injection point), so injected worker crashes
    always degrade to the serial result while a deterministic real bug
    still propagates from the serial run.

    Item order (and therefore any downstream reduction order) is
    preserved, so results are bitwise-identical to the fault-free run
    whenever *fn* is idempotent per item — which every repro fan-out
    (sweep chunks, pack partitions, SpMV block ranges) guarantees.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs.trace import tracer
    from repro.resilience import faults

    site = f"pool.task.{label}"

    # Propagate the submitting span to the workers: without this every
    # span a worker opens becomes a root and the trace tree shatters.
    ctx = tracer.current_context() if tracer.enabled else None

    def wrapped(item):
        with tracer.attach(ctx):
            faults.fire(site)
            return fn(item)

    items = list(items)
    pool = shared.get(workers)
    futures = [pool.submit(wrapped, item) for item in items]
    out = []
    for item, future in zip(items, futures):
        try:
            out.append(future.result())
            continue
        except Exception:
            obs_metrics.counter(
                f"retry.{site}.attempts", "pool tasks retried after a crash"
            ).inc()
        try:
            out.append(pool.submit(wrapped, item).result())
            continue
        except Exception:
            obs_metrics.counter(
                f"retry.{site}.serial_fallbacks",
                "pool tasks degraded to serial execution after two crashes",
            ).inc()
        out.append(fn(item))
    return out


# The two process-wide pools: SpMV's NumPy-threaded path (ceiling =
# config.runtime.threads) and the cold-build sweep/pack workers (ceiling
# = config.runtime.build_workers).  Imported lazily at the call sites so
# `repro.config` stays import-light.


def _threads_ceiling() -> int:
    from repro import config

    return config.runtime.threads


def _build_ceiling() -> int:
    from repro import config

    return config.runtime.build_workers


spmv_pool = SharedPool("repro-spmv", _threads_ceiling)
build_pool = SharedPool("repro-build", _build_ceiling)
