"""Process-wide worker pools shared across hot-path call sites.

Solver loops call SpMV thousands of times and the cold-build sweep fans
out once per view range; spawning a fresh ``ThreadPoolExecutor`` per call
costs more than the compute on small work items.  :class:`SharedPool`
keeps one lazily-created executor per subsystem (SpMV, operator build)
and resizes it against a config-driven ceiling:

* **grow** whenever a caller asks for more workers than the pool has;
* **shrink** (recreate smaller) when the config ceiling was lowered at
  runtime and the request fits under the new ceiling — so lowering e.g.
  ``config.runtime.threads`` actually releases the extra OS threads
  instead of fanning work over a stale oversized pool;
* **reuse** for explicit larger-than-ceiling requests that the current
  pool already covers (a caller passing ``threads=3`` against a pool of
  4 keeps the pool of 4).

All pools register an ``atexit`` teardown.
"""

from __future__ import annotations

import atexit
import threading
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor


class SharedPool:
    """A lazily-created, resizable, process-wide thread pool.

    Parameters
    ----------
    prefix : str
        ``thread_name_prefix`` for the executor's workers.
    ceiling : callable
        Returns the config-driven size ceiling (e.g.
        ``lambda: config.runtime.threads``); re-read on every
        :meth:`get` so runtime changes take effect immediately.
    """

    def __init__(self, prefix: str, ceiling: Callable[[], int]):
        self._prefix = prefix
        self._ceiling = ceiling
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._size = 0
        atexit.register(self.shutdown)

    @property
    def size(self) -> int:
        """Current pool width (0 when not yet created)."""
        return self._size

    def get(self, workers: int) -> ThreadPoolExecutor:
        """Executor with at least *workers* threads (bounded reuse)."""
        limit = int(self._ceiling())
        target = max(int(workers), limit)
        with self._lock:
            grow = self._pool is None or self._size < workers
            # the ceiling dropped below the pool width and this request
            # fits under it: recreate so the extra threads actually die
            shrink = (
                self._pool is not None
                and self._size > target
                and workers <= limit
            )
            if grow or shrink:
                if self._pool is not None:
                    self._pool.shutdown(wait=True)
                self._pool = ThreadPoolExecutor(
                    max_workers=target, thread_name_prefix=self._prefix
                )
                self._size = target
            return self._pool

    def shutdown(self) -> None:
        """Tear the pool down (atexit hook and test hook)."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
                self._size = 0


# The two process-wide pools: SpMV's NumPy-threaded path (ceiling =
# config.runtime.threads) and the cold-build sweep/pack workers (ceiling
# = config.runtime.build_workers).  Imported lazily at the call sites so
# `repro.config` stays import-light.


def _threads_ceiling() -> int:
    from repro import config

    return config.runtime.threads


def _build_ceiling() -> int:
    from repro import config

    return config.runtime.build_workers


spmv_pool = SharedPool("repro-spmv", _threads_ceiling)
build_pool = SharedPool("repro-build", _build_ceiling)
