"""Work partitioning helpers used by the multi-threaded SpMV drivers.

The paper's threading scheme (section IV-E) row-partitions the matrix into
fixed-size blocks and guarantees every thread receives at least one block.
:func:`split_evenly` and :func:`chunk_ranges` implement the contiguous
splits; :func:`greedy_balance` implements weighted balancing (used when
block nnz varies — property P3 says it varies little, but the harness
verifies that claim rather than assuming it).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def split_evenly(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into *parts* contiguous ranges of near-equal size.

    Ranges are returned as ``(start, stop)`` pairs.  When ``parts > n`` the
    trailing ranges are empty (``start == stop``), preserving the invariant
    that exactly *parts* ranges are returned and they tile ``range(n)``.
    """
    if n < 0:
        raise ValidationError("n must be >= 0")
    if parts < 1:
        raise ValidationError("parts must be >= 1")
    base, extra = divmod(n, parts)
    out = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append((start, start + size))
        start += size
    return out


def chunk_ranges(n: int, chunk: int) -> list[tuple[int, int]]:
    """Tile ``range(n)`` with fixed-size chunks (last may be short)."""
    if chunk < 1:
        raise ValidationError("chunk must be >= 1")
    if n < 0:
        raise ValidationError("n must be >= 0")
    return [(s, min(s + chunk, n)) for s in range(0, n, chunk)]


def greedy_balance(weights, parts: int) -> list[list[int]]:
    """Assign weighted items to *parts* bins minimising the max bin weight.

    Classic LPT (longest processing time first) greedy: sort items by
    descending weight, repeatedly give the next item to the lightest bin.
    Returns a list of index lists, one per bin.  Guarantees every bin is
    non-empty when ``len(weights) >= parts``.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ValidationError("weights must be 1-D")
    if parts < 1:
        raise ValidationError("parts must be >= 1")
    if np.any(w < 0):
        raise ValidationError("weights must be non-negative")
    order = np.argsort(-w, kind="stable")
    bins: list[list[int]] = [[] for _ in range(parts)]
    loads = np.zeros(parts)
    # Seed each bin with one item first so no bin is empty when possible.
    for rank, idx in enumerate(order):
        if rank < parts:
            target = rank
        else:
            target = int(np.argmin(loads))
        bins[target].append(int(idx))
        loads[target] += w[idx]
    return bins


def imbalance(weights, assignment: list[list[int]]) -> float:
    """Load imbalance of an assignment: ``max_load / mean_load - 1``.

    Zero means perfectly balanced.  Used by tests of property P3 (similar
    nnz per column) and by the threading harness.
    """
    w = np.asarray(weights, dtype=np.float64)
    loads = np.array([w[idx].sum() if idx else 0.0 for idx in assignment])
    mean = loads.mean()
    if mean == 0:
        return 0.0
    return float(loads.max() / mean - 1.0)
