"""Timing utilities implementing the paper's measurement protocol.

Section V-C: *"Performance is measured by the minimum SpMV execution time
recorded with at least 100 SpMV iterations"* — the minimum is robust to
one-off overheads (thread fork/join, allocation, frequency ramp-up).
:func:`min_time` implements exactly that; :class:`Timer` is a small
context-manager stopwatch used by the pipeline-stage breakdown (Fig 7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Timer:
    """Context-manager stopwatch accumulating named laps.

    Example
    -------
    >>> t = Timer()
    >>> with t.lap("convert"):
    ...     pass
    >>> "convert" in t.laps
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    class _Lap:
        def __init__(self, timer: "Timer", name: str):
            self._timer = timer
            self._name = name
            self._start = 0.0

        def __enter__(self):
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc):
            elapsed = time.perf_counter() - self._start
            self._timer.laps[self._name] = self._timer.laps.get(self._name, 0.0) + elapsed
            return False

    def lap(self, name: str) -> "Timer._Lap":
        """Return a context manager that accumulates elapsed time under *name*."""
        return Timer._Lap(self, name)

    def total(self) -> float:
        """Sum of all recorded laps in seconds."""
        return sum(self.laps.values())


@dataclass(frozen=True)
class TimingStats:
    """Distribution of per-call wall-clock times from :func:`time_stats`.

    ``min`` stays the paper's headline number; ``mean``/``std``/``p50``
    expose run-to-run noise so benchmark tables can show both.
    """

    min: float
    mean: float
    std: float
    p50: float
    iterations: int
    warmup: int

    @classmethod
    def from_samples(cls, samples: list[float], warmup: int) -> "TimingStats":
        n = len(samples)
        if n == 0:
            raise ValueError("need at least one timed sample")
        mean = sum(samples) / n
        var = sum((s - mean) ** 2 for s in samples) / n
        ordered = sorted(samples)
        mid = n // 2
        p50 = ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])
        return cls(
            min=ordered[0], mean=mean, std=var ** 0.5, p50=p50,
            iterations=n, warmup=warmup,
        )


def time_stats(
    fn: Callable[[], object],
    *,
    iterations: int = 100,
    warmup: int = 3,
    max_seconds: float = 5.0,
) -> TimingStats:
    """Timing distribution of *fn* under the paper's min-of-N protocol.

    Parameters
    ----------
    fn : callable
        The operation to time (no arguments; capture state in a closure).
    iterations : int
        Target number of timed iterations (the paper uses >= 100).
    warmup : int
        Untimed warm-up calls (cache/JIT/page-fault warming).  Warmup
        wall-clock counts against *max_seconds* — a huge problem can't
        blow the budget before the first timed iteration — but at least
        one timed iteration always runs.
    max_seconds : float
        Stop early once this much total wall-clock (warmup included) has
        elapsed, so huge problems don't hold the harness hostage.

    Returns
    -------
    TimingStats
        min / mean / std / p50 of the per-call times, with the number of
        timed iterations and warmup calls actually performed.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    spent = 0.0
    warmed = 0
    for _ in range(max(0, warmup)):
        start = time.perf_counter()
        fn()
        spent += time.perf_counter() - start
        warmed += 1
        if spent >= max_seconds:
            break
    samples = []
    for _ in range(iterations):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        samples.append(elapsed)
        spent += elapsed
        if spent >= max_seconds:
            break
    return TimingStats.from_samples(samples, warmed)


def min_time(
    fn: Callable[[], object],
    *,
    iterations: int = 100,
    warmup: int = 3,
    max_seconds: float = 5.0,
) -> float:
    """Minimum wall-clock execution time of *fn* over repeated calls.

    Thin wrapper over :func:`time_stats` (same protocol and budget
    semantics) returning just the paper's headline minimum.
    """
    return time_stats(
        fn, iterations=iterations, warmup=warmup, max_seconds=max_seconds
    ).min


def gflops(nnz: int, seconds: float) -> float:
    """SpMV floating-point rate per the paper: ``F = 2*nnz / T`` in GFLOP/s."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return 2.0 * nnz / seconds / 1e9
