"""Timing utilities implementing the paper's measurement protocol.

Section V-C: *"Performance is measured by the minimum SpMV execution time
recorded with at least 100 SpMV iterations"* — the minimum is robust to
one-off overheads (thread fork/join, allocation, frequency ramp-up).
:func:`min_time` implements exactly that; :class:`Timer` is a small
context-manager stopwatch used by the pipeline-stage breakdown (Fig 7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Timer:
    """Context-manager stopwatch accumulating named laps.

    Example
    -------
    >>> t = Timer()
    >>> with t.lap("convert"):
    ...     pass
    >>> "convert" in t.laps
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    class _Lap:
        def __init__(self, timer: "Timer", name: str):
            self._timer = timer
            self._name = name
            self._start = 0.0

        def __enter__(self):
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc):
            elapsed = time.perf_counter() - self._start
            self._timer.laps[self._name] = self._timer.laps.get(self._name, 0.0) + elapsed
            return False

    def lap(self, name: str) -> "Timer._Lap":
        """Return a context manager that accumulates elapsed time under *name*."""
        return Timer._Lap(self, name)

    def total(self) -> float:
        """Sum of all recorded laps in seconds."""
        return sum(self.laps.values())


def min_time(
    fn: Callable[[], object],
    *,
    iterations: int = 100,
    warmup: int = 3,
    max_seconds: float = 5.0,
) -> float:
    """Minimum wall-clock execution time of *fn* over repeated calls.

    Parameters
    ----------
    fn : callable
        The operation to time (no arguments; capture state in a closure).
    iterations : int
        Target number of timed iterations (the paper uses >= 100).
    warmup : int
        Untimed warm-up calls (cache/JIT/page-fault warming).
    max_seconds : float
        Stop early once this much total timed wall-clock has elapsed, so
        huge problems don't hold the harness hostage.  At least one timed
        iteration always runs.

    Returns
    -------
    float
        The minimum observed per-call time in seconds.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    for _ in range(max(0, warmup)):
        fn()
    best = float("inf")
    spent = 0.0
    for _ in range(iterations):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        spent += elapsed
        if spent >= max_seconds:
            break
    return best


def gflops(nnz: int, seconds: float) -> float:
    """SpMV floating-point rate per the paper: ``F = 2*nnz / T`` in GFLOP/s."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return 2.0 * nnz / seconds / 1e9
