"""Global configuration for the repro library.

Centralises dtype policy, default CSCV parameters, backend selection and
environment-variable overrides.  Everything here is intentionally plain
data so tests can monkeypatch it safely.

Environment variables
---------------------
``REPRO_BACKEND``
    ``"auto"`` (default), ``"numpy"`` or ``"c"``.  ``auto`` prefers the
    compiled C backend when a working C compiler is available and silently
    falls back to NumPy otherwise.
``REPRO_CC``
    C compiler executable used to build the kernel library (default
    ``cc`` then ``gcc``).
``REPRO_CACHE_DIR``
    Root directory for every on-disk cache (compiled kernels, persisted
    operators, autotune results).  Default: ``~/.cache/repro``.
``REPRO_CACHE``
    ``1`` (default) enables the persistent operator cache; ``0`` turns
    every cache lookup into a miss-and-don't-store (builds still work).
``REPRO_CACHE_MAX_BYTES``
    Size budget for the operator cache in bytes (default 4 GiB).  After
    every store the least-recently-used entries are evicted until the
    cache fits the budget.  Accepts suffixes ``k``/``m``/``g``.
``REPRO_CACHE_VERIFY``
    ``1`` (default) checks stored array checksums on every cache load;
    ``0`` trusts the entry (fastest, still validated structurally).
``REPRO_THREADS``
    Default thread count for multi-threaded SpMV (default: CPU count).
``REPRO_BUILD_WORKERS``
    Default worker count for the parallel cold build — the projector
    sweep over view ranges and the block-partitioned CSCV packing
    (default: CPU count).  Any value produces bitwise-identical
    operators; this knob trades cores for cold-build wall time only.
``REPRO_SHARD_WORKERS``
    Worker *processes* for sharded operator execution (default 1 =
    in-process serial, no processes spawned).  See :mod:`repro.dist`.
``REPRO_SHARD_TRANSPORT``
    Transport moving operands/results between shard workers.  Only
    ``shm`` (POSIX shared memory) ships today; the name is resolved via
    :data:`repro.dist.transport.TRANSPORTS` so MPI/sockets can register.
``REPRO_SHARDS``
    Number of contiguous view-range shards the operator is partitioned
    into (default 0 = auto: ``max(4, shard workers)``).  The partition —
    not the worker count — fixes the floating-point reduction order, so
    results are bitwise-identical for any ``REPRO_SHARD_WORKERS`` at a
    given shard count.
``REPRO_CKPT_EVERY``
    Solver checkpoint cadence for crash-safe serving: persist a resumable
    :class:`~repro.recon.checkpoint.CheckpointState` every N iterations
    (default 5; checkpointing itself is opt-in per run).  See
    :mod:`repro.recon.checkpoint`.
``REPRO_JOURNAL_DIR``
    Directory of the durable job journal the serving layer writes
    (write-ahead JSONL + payload spill + checkpoints).  Default:
    ``<cache root>/journal``.  See :mod:`repro.serve.journal`.
``REPRO_GUARD``
    Numerical guard level: ``off`` (default, also ``0``), ``inputs``
    (``1`` — screen operator/solver inputs for NaN/Inf) or ``full``
    (``2`` — also screen operator outputs and solver iterates).  See
    :mod:`repro.resilience.guards`.
``REPRO_FAULTS``
    Deterministic fault-injection plan: empty (default, nothing fires),
    a named profile (``chaos``, ``kernel-chaos``), or an explicit rule
    list such as ``cache.load.read:corrupt:every=3,pool.task.*:raise``.
    See :mod:`repro.resilience.faults`.
``REPRO_TRACE``
    ``0`` (default) disables tracing; ``1`` enables span recording with
    the default JSONL dump path; any other value enables tracing and is
    used as the dump path.  See :mod:`repro.obs`.
``REPRO_PROFILE``
    ``1`` prints cProfile summaries of profiled regions to stderr; a
    path accumulates binary pstats there.  See :mod:`repro.obs.profile`.
``REPRO_METRICS_PORT``
    Unset (default): no metrics endpoint.  A port number starts a
    background HTTP server on localhost serving the metric registry in
    Prometheus text format at ``/metrics`` (``0`` picks an ephemeral
    port).  Also enables bytes-moved perf accounting.  See
    :mod:`repro.obs.runtime`.
``REPRO_METRICS_FLUSH``
    Unset (default): no flusher.  A path starts a background thread
    appending one JSONL metrics snapshot there every
    ``REPRO_METRICS_FLUSH_SEC`` seconds (default 10), plus a final
    flush at interpreter exit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

#: dtypes supported by every format and kernel in the library.
SUPPORTED_DTYPES: tuple[np.dtype, ...] = (np.dtype(np.float32), np.dtype(np.float64))

#: Default index dtype for all sparse formats (32-bit is what the paper's
#: implementation uses; matrices here never exceed 2^31 rows/cols/nnz).
INDEX_DTYPE = np.dtype(np.int32)

#: Default CSCVE vector length (elements per SIMD vector group).  8 matches
#: an AVX-512 register of float64 or an AVX2 register of float32, and is the
#: paper's running-example value (Table I).
DEFAULT_S_VVEC = 8

#: Default image-block edge length (pixels), paper Table III uses 16-64.
DEFAULT_S_IMGB = 16

#: Default number of CSCVEs concatenated into one VxG.
DEFAULT_S_VXG = 2


def env_backend() -> str:
    """Return the backend requested via ``REPRO_BACKEND`` (normalised)."""
    value = os.environ.get("REPRO_BACKEND", "auto").strip().lower()
    if value not in ("auto", "numpy", "c"):
        raise ValueError(f"REPRO_BACKEND must be auto|numpy|c, got {value!r}")
    return value


def env_threads() -> int:
    """Default thread count: ``REPRO_THREADS`` or the CPU count."""
    raw = os.environ.get("REPRO_THREADS")
    if raw:
        n = int(raw)
        if n < 1:
            raise ValueError("REPRO_THREADS must be >= 1")
        return n
    return os.cpu_count() or 1


def env_build_workers() -> int:
    """Default cold-build workers: ``REPRO_BUILD_WORKERS`` or CPU count."""
    raw = os.environ.get("REPRO_BUILD_WORKERS")
    if raw:
        n = int(raw)
        if n < 1:
            raise ValueError("REPRO_BUILD_WORKERS must be >= 1")
        return n
    return os.cpu_count() or 1


def env_shard_workers() -> int:
    """Default shard worker processes: ``REPRO_SHARD_WORKERS`` or 1."""
    raw = os.environ.get("REPRO_SHARD_WORKERS")
    if raw:
        n = int(raw)
        if n < 1:
            raise ValueError("REPRO_SHARD_WORKERS must be >= 1")
        return n
    return 1


def env_shard_transport() -> str:
    """Default shard transport name: ``REPRO_SHARD_TRANSPORT`` or ``shm``."""
    return os.environ.get("REPRO_SHARD_TRANSPORT", "shm").strip().lower() or "shm"


def env_shards() -> int:
    """Default shard count: ``REPRO_SHARDS`` or 0 (auto)."""
    raw = os.environ.get("REPRO_SHARDS")
    if raw:
        n = int(raw)
        if n < 0:
            raise ValueError("REPRO_SHARDS must be >= 0 (0 = auto)")
        return n
    return 0


#: Accepted numerical guard levels, weakest to strongest.
GUARD_LEVELS = ("off", "inputs", "full")

_GUARD_ALIASES = {
    "": "off", "0": "off", "false": "off", "no": "off", "off": "off",
    "1": "inputs", "input": "inputs", "inputs": "inputs",
    "2": "full", "on": "full", "true": "full", "all": "full", "full": "full",
}


def env_guard() -> str:
    """``REPRO_GUARD``: numerical guard level (``off``/``inputs``/``full``)."""
    raw = os.environ.get("REPRO_GUARD", "off").strip().lower()
    try:
        return _GUARD_ALIASES[raw]
    except KeyError:
        raise ValueError(
            f"REPRO_GUARD must be one of {GUARD_LEVELS} (or 0/1/2), got {raw!r}"
        ) from None


def env_faults() -> str:
    """``REPRO_FAULTS``: fault-injection plan (profile name or rule list)."""
    return os.environ.get("REPRO_FAULTS", "").strip()


#: Default solver checkpoint cadence (iterations between checkpoints).
DEFAULT_CKPT_EVERY = 5


def env_ckpt_every() -> int:
    """``REPRO_CKPT_EVERY``: checkpoint cadence in iterations (default 5)."""
    raw = os.environ.get("REPRO_CKPT_EVERY")
    if raw:
        n = int(raw)
        if n < 1:
            raise ValueError("REPRO_CKPT_EVERY must be >= 1")
        return n
    return DEFAULT_CKPT_EVERY


def env_trace() -> tuple[bool, str | None]:
    """Interpret ``REPRO_TRACE``: (enabled, explicit dump path or None)."""
    raw = os.environ.get("REPRO_TRACE", "").strip()
    if raw.lower() in ("", "0", "false", "no", "off"):
        return False, None
    if raw.lower() in ("1", "true", "yes", "on"):
        return True, None
    return True, raw


#: Default seconds between JSONL metric snapshots (``REPRO_METRICS_FLUSH_SEC``).
DEFAULT_METRICS_FLUSH_SEC = 10.0


def env_metrics_port() -> int | None:
    """``REPRO_METRICS_PORT``: /metrics exporter port, or None for off.

    ``0`` is valid and binds an ephemeral port (tests, parallel CI runs).
    """
    raw = os.environ.get("REPRO_METRICS_PORT", "").strip()
    if raw == "" or raw.lower() in ("off", "none", "false", "no"):
        return None
    port = int(raw)
    if not (0 <= port <= 65535):
        raise ValueError(f"REPRO_METRICS_PORT must be 0..65535, got {port}")
    return port


def env_metrics_flush() -> tuple[str | None, float]:
    """``REPRO_METRICS_FLUSH`` (JSONL path or None) + flush interval."""
    path = os.environ.get("REPRO_METRICS_FLUSH", "").strip() or None
    raw = os.environ.get("REPRO_METRICS_FLUSH_SEC", "").strip()
    interval = float(raw) if raw else DEFAULT_METRICS_FLUSH_SEC
    if interval <= 0:
        raise ValueError("REPRO_METRICS_FLUSH_SEC must be > 0")
    return path, interval


def cache_root() -> str:
    """Root directory of every repro on-disk cache (``REPRO_CACHE_DIR``)."""
    default = os.path.join(os.path.expanduser("~"), ".cache", "repro")
    return os.environ.get("REPRO_CACHE_DIR", default)


def cache_dir() -> str:
    """Directory where compiled kernels are cached (``<root>/kernels``)."""
    return os.path.join(cache_root(), "kernels")


def operator_cache_dir() -> str:
    """Directory of the persistent operator cache (``<root>/operators``)."""
    return os.path.join(cache_root(), "operators")


def journal_dir() -> str:
    """Directory of the serving job journal (``REPRO_JOURNAL_DIR``).

    Default: ``<cache root>/journal``.
    """
    return os.environ.get("REPRO_JOURNAL_DIR") or os.path.join(
        cache_root(), "journal"
    )


#: Default operator-cache size budget: 4 GiB.
DEFAULT_CACHE_MAX_BYTES = 4 * 1024**3

_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}


def _parse_size(raw: str) -> int:
    raw = raw.strip().lower()
    mult = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        mult = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    return int(float(raw) * mult)


def env_cache_enabled() -> bool:
    """``REPRO_CACHE``: persistent operator cache on (default) or off."""
    raw = os.environ.get("REPRO_CACHE", "1").strip().lower()
    return raw not in ("0", "false", "no", "off")


def env_cache_max_bytes() -> int:
    """``REPRO_CACHE_MAX_BYTES``: operator-cache size budget."""
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if not raw:
        return DEFAULT_CACHE_MAX_BYTES
    n = _parse_size(raw)
    if n < 0:
        raise ValueError("REPRO_CACHE_MAX_BYTES must be >= 0")
    return n


def env_cache_verify() -> bool:
    """``REPRO_CACHE_VERIFY``: checksum entries on load (default on)."""
    raw = os.environ.get("REPRO_CACHE_VERIFY", "1").strip().lower()
    return raw not in ("0", "false", "no", "off")


@dataclass
class RuntimeConfig:
    """Mutable runtime knobs, exposed as :data:`repro.config.runtime`."""

    backend: str = field(default_factory=env_backend)
    threads: int = field(default_factory=env_threads)
    #: Workers for the parallel cold build (projector sweep + CSCV pack);
    #: results are bitwise-identical for any value (``REPRO_BUILD_WORKERS``).
    build_workers: int = field(default_factory=env_build_workers)
    #: When True, CSCV builders double-check permutations and paddings.
    paranoid_checks: bool = False
    #: Span tracing requested (seeded from ``REPRO_TRACE``); the live
    #: switch is ``repro.obs.tracer.enabled`` — use ``repro.obs.enable()``
    #: / ``disable()`` to flip both coherently.
    trace: bool = field(default_factory=lambda: env_trace()[0])
    #: Explicit JSONL dump path from ``REPRO_TRACE``, or None for default.
    trace_path: str | None = field(default_factory=lambda: env_trace()[1])
    #: Persistent operator cache on/off (seeded from ``REPRO_CACHE``).
    cache_enabled: bool = field(default_factory=env_cache_enabled)
    #: Operator-cache size budget in bytes (``REPRO_CACHE_MAX_BYTES``).
    cache_max_bytes: int = field(default_factory=env_cache_max_bytes)
    #: Verify stored checksums on cache load (``REPRO_CACHE_VERIFY``).
    cache_verify: bool = field(default_factory=env_cache_verify)
    #: Numerical guard level (``REPRO_GUARD``): ``off``/``inputs``/``full``.
    guard: str = field(default_factory=env_guard)
    #: Fault-injection plan string (``REPRO_FAULTS``); parsed lazily by
    #: :mod:`repro.resilience.faults`, empty = nothing fires.
    faults: str = field(default_factory=env_faults)
    #: Worker processes for sharded operators (``REPRO_SHARD_WORKERS``);
    #: 1 = in-process serial execution, no processes spawned.
    shard_workers: int = field(default_factory=env_shard_workers)
    #: Shard transport name (``REPRO_SHARD_TRANSPORT``), resolved via
    #: :data:`repro.dist.transport.TRANSPORTS`.
    shard_transport: str = field(default_factory=env_shard_transport)
    #: View-range shard count (``REPRO_SHARDS``); 0 = auto
    #: (``max(4, shard_workers)``).  Fixes the reduction order.
    shards: int = field(default_factory=env_shards)
    #: Solver checkpoint cadence in iterations (``REPRO_CKPT_EVERY``);
    #: consumed by the crash-safe serving layer, opt-in per run.
    ckpt_every: int = field(default_factory=env_ckpt_every)


#: Singleton runtime configuration.
runtime = RuntimeConfig()


def normalize_dtype(dtype) -> np.dtype:
    """Validate and canonicalise a floating dtype.

    Raises
    ------
    ValueError
        If *dtype* is not float32 or float64.
    """
    dt = np.dtype(dtype)
    if dt not in SUPPORTED_DTYPES:
        raise ValueError(
            f"dtype {dt} unsupported; expected one of "
            f"{[str(d) for d in SUPPORTED_DTYPES]}"
        )
    return dt
