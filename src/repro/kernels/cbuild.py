"""Build machinery for the compiled kernel library.

Compiles ``c_src/kernels.c`` into a shared object on first use, caching by
a hash of (source, flags, compiler version) under
``~/.cache/repro-kernels``.  Mirrors the paper's build: ``-O3`` plus the
host-ISA flag (``-march=native``, their ``-xHost`` equivalent) so the
compiler auto-vectorises the scalar loops.

Build failures are remembered twice over: in-process (reported once,
callers fall back to the NumPy backend) and *persistently* via a failure
marker file keyed on (source, compiler set, platform) — so a box without
a working toolchain pays for the compile attempt once, not on every
import.  An explicit :func:`build_library` call (``repro kernels
build``) always retries for real and clears the marker on success.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path

from repro import config
from repro.errors import KernelError

_SRC = Path(__file__).parent / "c_src" / "kernels.c"

#: Flag sets tried in order; the first that compiles wins.
_FLAG_SETS = [
    ["-O3", "-march=native", "-fopenmp", "-fPIC", "-shared", "-std=c11"],
    ["-O3", "-march=native", "-fPIC", "-shared", "-std=c11"],
    ["-O3", "-fPIC", "-shared", "-std=c11"],
]


def _compilers() -> list[str]:
    env = os.environ.get("REPRO_CC")
    if env:
        return [env]
    return ["cc", "gcc", "clang"]


def _cache_key(cc: str, flags: list[str], source: bytes) -> str:
    h = hashlib.sha256()
    h.update(source)
    h.update(" ".join(flags).encode())
    h.update(cc.encode())
    h.update(sys.platform.encode())
    return h.hexdigest()[:16]


def failure_marker_path() -> Path:
    """Persistent compile-failure marker for the current toolchain.

    Keyed like the .so cache (source hash, compiler candidates,
    platform): editing the kernels, pointing ``REPRO_CC`` elsewhere, or
    installing on a new platform all invalidate the marker naturally.
    """
    h = hashlib.sha256()
    h.update(_SRC.read_bytes() if _SRC.exists() else b"")
    h.update(",".join(_compilers()).encode())
    h.update(sys.platform.encode())
    return Path(config.cache_dir()) / f"build-failed-{h.hexdigest()[:16]}.marker"


def build_library(verbose: bool = False) -> str:
    """Compile the kernel library if needed; return the .so path.

    Raises
    ------
    KernelError
        When no compiler/flag combination produces a loadable library.
    """
    if not _SRC.exists():  # pragma: no cover - packaging error
        raise KernelError(f"kernel source missing: {_SRC}")
    from repro.resilience import faults

    if faults.fire("kernel.build") is not None:
        _record_failure("fault injected: compiler unavailable")
        raise KernelError("fault injected: compiler unavailable")
    source = _SRC.read_bytes()
    cache = Path(config.cache_dir())
    cache.mkdir(parents=True, exist_ok=True)

    errors: list[str] = []
    for cc in _compilers():
        for flags in _FLAG_SETS:
            key = _cache_key(cc, flags, source)
            out = cache / f"libreprokernels-{key}.so"
            if out.exists():
                _clear_failure()
                return str(out)
            cmd = [cc, *flags, str(_SRC), "-lm", "-o", str(out) + ".tmp"]
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
            except (OSError, subprocess.TimeoutExpired) as exc:
                errors.append(f"{cc} {' '.join(flags)}: {exc}")
                continue
            if proc.returncode == 0:
                os.replace(out.with_name(out.name + ".tmp"), out)
                _clear_failure()
                if verbose:  # pragma: no cover - diagnostics
                    print(f"[repro.kernels] built {out} with {cc} {' '.join(flags)}")
                return str(out)
            errors.append(f"{cc} {' '.join(flags)}: {proc.stderr.strip()[:500]}")
    message = (
        "could not compile kernel library; attempts:\n" + "\n".join(errors)
    )
    _record_failure(message)
    raise KernelError(message)


def _record_failure(message: str) -> None:
    """Write the persistent marker so later imports skip the compile."""
    import contextlib

    with contextlib.suppress(OSError):
        marker = failure_marker_path()
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.write_text(message)


def _clear_failure() -> None:
    import contextlib

    with contextlib.suppress(OSError):
        failure_marker_path().unlink()


_build_result: str | None = None
_build_failed = False


def library_path() -> str | None:
    """Cached :func:`build_library`; returns None after a failed build.

    A persistent failure marker (written by an earlier failed build, in
    this process or any previous one) short-circuits the compile attempt
    entirely: one warning, NumPy fallback, no compiler invocation.  Run
    ``repro kernels build`` (which calls :func:`build_library` directly)
    to retry for real after fixing the toolchain.
    """
    global _build_result, _build_failed
    if _build_failed:
        return None
    if _build_result is None:
        marker = failure_marker_path()
        if marker.is_file():
            from repro.obs import metrics as obs_metrics

            obs_metrics.counter(
                "kernel.build.marker_skips",
                "kernel builds skipped due to a persistent failure marker",
            ).inc()
            _build_failed = True
            warnings.warn(
                "repro C kernels unavailable (previous compile failed; "
                f"using NumPy backend). Retry with 'repro kernels build' "
                f"or delete {marker}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        try:
            _build_result = build_library()
        except KernelError as exc:
            _build_failed = True
            warnings.warn(
                f"repro C kernels unavailable, using NumPy backend: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
    return _build_result


def reset_cache_state() -> None:
    """Forget build success/failure (test hook)."""
    global _build_result, _build_failed
    _build_result = None
    _build_failed = False
