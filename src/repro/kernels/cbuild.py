"""Build machinery for the compiled kernel library.

Compiles ``c_src/kernels.c`` into a shared object on first use, caching by
a hash of (source, flags, compiler version) under
``~/.cache/repro-kernels``.  Mirrors the paper's build: ``-O3`` plus the
host-ISA flag (``-march=native``, their ``-xHost`` equivalent) so the
compiler auto-vectorises the scalar loops.

Build failures are remembered for the process and reported once; callers
then fall back to the NumPy backend.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path

from repro import config
from repro.errors import KernelError

_SRC = Path(__file__).parent / "c_src" / "kernels.c"

#: Flag sets tried in order; the first that compiles wins.
_FLAG_SETS = [
    ["-O3", "-march=native", "-fopenmp", "-fPIC", "-shared", "-std=c11"],
    ["-O3", "-march=native", "-fPIC", "-shared", "-std=c11"],
    ["-O3", "-fPIC", "-shared", "-std=c11"],
]


def _compilers() -> list[str]:
    env = os.environ.get("REPRO_CC")
    if env:
        return [env]
    return ["cc", "gcc", "clang"]


def _cache_key(cc: str, flags: list[str], source: bytes) -> str:
    h = hashlib.sha256()
    h.update(source)
    h.update(" ".join(flags).encode())
    h.update(cc.encode())
    h.update(sys.platform.encode())
    return h.hexdigest()[:16]


def build_library(verbose: bool = False) -> str:
    """Compile the kernel library if needed; return the .so path.

    Raises
    ------
    KernelError
        When no compiler/flag combination produces a loadable library.
    """
    if not _SRC.exists():  # pragma: no cover - packaging error
        raise KernelError(f"kernel source missing: {_SRC}")
    source = _SRC.read_bytes()
    cache = Path(config.cache_dir())
    cache.mkdir(parents=True, exist_ok=True)

    errors: list[str] = []
    for cc in _compilers():
        for flags in _FLAG_SETS:
            key = _cache_key(cc, flags, source)
            out = cache / f"libreprokernels-{key}.so"
            if out.exists():
                return str(out)
            cmd = [cc, *flags, str(_SRC), "-lm", "-o", str(out) + ".tmp"]
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
            except (OSError, subprocess.TimeoutExpired) as exc:
                errors.append(f"{cc} {' '.join(flags)}: {exc}")
                continue
            if proc.returncode == 0:
                os.replace(out.with_name(out.name + ".tmp"), out)
                if verbose:  # pragma: no cover - diagnostics
                    print(f"[repro.kernels] built {out} with {cc} {' '.join(flags)}")
                return str(out)
            errors.append(f"{cc} {' '.join(flags)}: {proc.stderr.strip()[:500]}")
    raise KernelError(
        "could not compile kernel library; attempts:\n" + "\n".join(errors)
    )


_build_result: str | None = None
_build_failed = False


def library_path() -> str | None:
    """Cached :func:`build_library`; returns None after a failed build."""
    global _build_result, _build_failed
    if _build_failed:
        return None
    if _build_result is None:
        try:
            _build_result = build_library()
        except KernelError as exc:
            _build_failed = True
            warnings.warn(
                f"repro C kernels unavailable, using NumPy backend: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
    return _build_result


def reset_cache_state() -> None:
    """Forget build success/failure (test hook)."""
    global _build_result, _build_failed
    _build_result = None
    _build_failed = False
