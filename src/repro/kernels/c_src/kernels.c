/* SpMV kernels for the CSCV reproduction.
 *
 * Style contract (the paper's portability claim, Section IV-E):
 * every kernel is plain scalar C — no intrinsics, no inline assembly —
 * written so the compiler's auto-vectoriser turns the fixed-length
 * contiguous inner loops into wide SIMD (AVX-512 on the build host).
 * The CSCV inner loops in particular are straight-line FMA streams over
 * contiguous memory, which is the entire point of the format.
 *
 * Index conventions match the Python side: 32-bit element indices,
 * 64-bit sizes/pointers offsets.
 *
 * Built with: cc -O3 -march=native -fopenmp -fPIC -shared
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#ifdef _OPENMP
#include <omp.h>
#endif

/* The single exception to the no-intrinsics rule, taken straight from the
 * paper (Section IV-E): "On Intel platforms, CSCV-M uses the hardware
 * vexpand instructions in AVX-512 for vector expansion; on other
 * platforms, vector expansion is implemented by software code denoted as
 * soft-vexpand".  We guard the hardware path behind __AVX512F__. */
#if defined(__AVX512F__)
#include <immintrin.h>
#define HAVE_VEXPAND 1
#endif

#define EXPORT __attribute__((visibility("default")))

/* ------------------------------------------------------------------ */
/* CSR: y[i] = sum_k vals[k] * x[col[k]], k in row i                    */

#define DEFINE_CSR(SUF, T)                                                  \
EXPORT void csr_spmv_##SUF(int64_t m, const int32_t *row_ptr,               \
                           const int32_t *col_idx, const T *vals,           \
                           const T *x, T *y) {                              \
    _Pragma("omp parallel for schedule(static)")                            \
    for (int64_t i = 0; i < m; ++i) {                                       \
        T acc = (T)0;                                                       \
        for (int32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)               \
            acc += vals[k] * x[col_idx[k]];                                 \
        y[i] = acc;                                                         \
    }                                                                       \
}

DEFINE_CSR(f32, float)
DEFINE_CSR(f64, double)

/* ------------------------------------------------------------------ */
/* CSR SpMM: Y = A X with X (n, k) and Y (m, k), both row-major.        */
/* Each nonzero streams once and fans out across the k RHS lanes — the  */
/* k-loop is contiguous in both X and Y, so it vectorises cleanly and   */
/* the matrix traffic is amortised k ways.                              */

#define DEFINE_CSR_SPMM(SUF, T)                                             \
EXPORT void csr_spmm_##SUF(int64_t m, int64_t k, const int32_t *row_ptr,    \
                           const int32_t *col_idx, const T *vals,           \
                           const T *X, T *Y) {                              \
    _Pragma("omp parallel for schedule(static)")                            \
    for (int64_t i = 0; i < m; ++i) {                                       \
        T *yr = Y + i * k;                                                  \
        for (int64_t j = 0; j < k; ++j) yr[j] = (T)0;                       \
        for (int32_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {             \
            const T a = vals[p];                                            \
            const T *xr = X + (int64_t)col_idx[p] * k;                      \
            for (int64_t j = 0; j < k; ++j)                                 \
                yr[j] += a * xr[j];                                         \
        }                                                                   \
    }                                                                       \
}

DEFINE_CSR_SPMM(f32, float)
DEFINE_CSR_SPMM(f64, double)

/* ------------------------------------------------------------------ */
/* CSC: paper Algorithm 1 — scatter x_i * vals into y (single thread:   */
/* the scatter races under naive OpenMP, matching why CSC is hard).     */

#define DEFINE_CSC(SUF, T)                                                  \
EXPORT void csc_spmv_##SUF(int64_t m, int64_t n, const int32_t *col_ptr,    \
                           const int32_t *row_idx, const T *vals,           \
                           const T *x, T *y) {                              \
    memset(y, 0, (size_t)m * sizeof(T));                                    \
    for (int64_t i = 0; i < n; ++i) {                                       \
        const T xi = x[i];                                                  \
        for (int32_t k = col_ptr[i]; k < col_ptr[i + 1]; ++k)               \
            y[row_idx[k]] += xi * vals[k];                                  \
    }                                                                       \
}

DEFINE_CSC(f32, float)
DEFINE_CSC(f64, double)

/* ------------------------------------------------------------------ */
/* ELL: column-major slabs, width w, padded with col=-1                 */

#define DEFINE_ELL(SUF, T)                                                  \
EXPORT void ell_spmv_##SUF(int64_t m, int64_t width, const int32_t *cols,   \
                           const T *vals, const T *x, T *y) {               \
    _Pragma("omp parallel for schedule(static)")                            \
    for (int64_t i = 0; i < m; ++i) {                                       \
        T acc = (T)0;                                                       \
        for (int64_t k = 0; k < width; ++k) {                               \
            const int64_t idx = k * m + i; /* column-major */               \
            const int32_t c = cols[idx];                                    \
            if (c >= 0) acc += vals[idx] * x[c];                            \
        }                                                                   \
        y[i] = acc;                                                         \
    }                                                                       \
}

DEFINE_ELL(f32, float)
DEFINE_ELL(f64, double)

/* ------------------------------------------------------------------ */
/* CSCV-Z block kernel: VxGs of s_vxg CSCVEs, each s_vvec wide.         */
/* values laid out VxG-contiguous; ytilde access is contiguous, so the  */
/* inner loop is a pure vector FMA — no gather, no scatter.             */

#define DEFINE_CSCV_Z_BLOCK(SUF, T)                                         \
static void cscv_z_block_##SUF(int64_t num_vxg, int64_t vxg_len,            \
                               const int32_t *vxg_col,                      \
                               const int32_t *vxg_start, const T *values,   \
                               const T *x, T *ytilde) {                     \
    for (int64_t g = 0; g < num_vxg; ++g) {                                 \
        const T xv = x[vxg_col[g]];                                         \
        const T *v = values + g * vxg_len;                                  \
        T *yt = ytilde + vxg_start[g];                                      \
        for (int64_t k = 0; k < vxg_len; ++k)                               \
            yt[k] += xv * v[k];                                             \
    }                                                                       \
}

DEFINE_CSCV_Z_BLOCK(f32, float)
DEFINE_CSCV_Z_BLOCK(f64, double)

/* ------------------------------------------------------------------ */
/* CSCV-M block kernel: packed nonzeros + per-CSCVE bitmask.            */
/* Hardware vexpand (AVX-512) when available, soft-vexpand otherwise.   */

#ifdef HAVE_VEXPAND
static inline void vexpand_fma_f32(float *yt, const float *pv, uint32_t mask,
                                   float xv, int64_t s_vvec) {
    const __m512 xvv = _mm512_set1_ps(xv);
    for (int64_t k = 0; k < s_vvec; k += 16) {
        const int chunk = (s_vvec - k) >= 16 ? 16 : (int)(s_vvec - k);
        const __mmask16 vm =
            chunk == 16 ? (__mmask16)0xFFFF : (__mmask16)((1u << chunk) - 1u);
        const __mmask16 em = (__mmask16)((mask >> k) & vm);
        const __m512 vals = _mm512_maskz_expandloadu_ps(em, pv);
        __m512 yv = _mm512_maskz_loadu_ps(vm, yt + k);
        yv = _mm512_fmadd_ps(xvv, vals, yv);
        _mm512_mask_storeu_ps(yt + k, vm, yv);
        pv += _mm_popcnt_u32((unsigned)em);
    }
}

static inline void vexpand_fma_f64(double *yt, const double *pv, uint32_t mask,
                                   double xv, int64_t s_vvec) {
    const __m512d xvv = _mm512_set1_pd(xv);
    for (int64_t k = 0; k < s_vvec; k += 8) {
        const int chunk = (s_vvec - k) >= 8 ? 8 : (int)(s_vvec - k);
        const __mmask8 vm =
            chunk == 8 ? (__mmask8)0xFF : (__mmask8)((1u << chunk) - 1u);
        const __mmask8 em = (__mmask8)((mask >> k) & vm);
        const __m512d vals = _mm512_maskz_expandloadu_pd(em, pv);
        __m512d yv = _mm512_maskz_loadu_pd(vm, yt + k);
        yv = _mm512_fmadd_pd(xvv, vals, yv);
        _mm512_mask_storeu_pd(yt + k, vm, yv);
        pv += _mm_popcnt_u32((unsigned)em);
    }
}
#endif

/* One (column, start, voff) triple per VxG; s_vxg masks per VxG with
 * empty CSCVE slots holding mask 0 — the VxG-level index compression the
 * paper credits for the 0.25x index volume. */
#define DEFINE_CSCV_M_BLOCK(SUF, T)                                         \
static void cscv_m_block_##SUF(int64_t num_vxg, int64_t s_vxg,              \
                               int64_t s_vvec, const int32_t *vxg_col,      \
                               const int32_t *vxg_start,                    \
                               const int64_t *vxg_voff,                     \
                               const uint32_t *vxg_masks, const T *packed,  \
                               const T *x, T *ytilde) {                     \
    for (int64_t g = 0; g < num_vxg; ++g) {                                 \
        const T xv = x[vxg_col[g]];                                         \
        const T *pv = packed + vxg_voff[g];                                 \
        T *yt0 = ytilde + vxg_start[g];                                     \
        const uint32_t *gm = vxg_masks + g * s_vxg;                         \
        for (int64_t e = 0; e < s_vxg; ++e) {                               \
            const uint32_t mask = gm[e];                                    \
            if (!mask) continue;                                            \
            T *yt = yt0 + e * s_vvec;                                       \
            CSCV_M_EXPAND_##SUF                                             \
            pv += POPCOUNT32(mask);                                         \
        }                                                                   \
    }                                                                       \
}

#ifdef __GNUC__
#define POPCOUNT32(x) __builtin_popcount((unsigned)(x))
#else
static inline int popcount32_sw(uint32_t v) {
    int c = 0;
    while (v) { v &= v - 1; ++c; }
    return c;
}
#define POPCOUNT32(x) popcount32_sw(x)
#endif

#ifdef HAVE_VEXPAND
#define CSCV_M_EXPAND_f32 vexpand_fma_f32(yt, pv, mask, xv, s_vvec);
#define CSCV_M_EXPAND_f64 vexpand_fma_f64(yt, pv, mask, xv, s_vvec);
#else
/* soft-vexpand: scalar expansion of packed values against the mask */
#define CSCV_M_SOFT_EXPAND                                                  \
        int64_t p = 0;                                                      \
        for (int64_t k = 0; k < s_vvec; ++k) {                              \
            if (mask & (1u << k)) {                                         \
                yt[k] += xv * pv[p];                                        \
                ++p;                                                        \
            }                                                               \
        }
#define CSCV_M_EXPAND_f32 CSCV_M_SOFT_EXPAND
#define CSCV_M_EXPAND_f64 CSCV_M_SOFT_EXPAND
#endif

DEFINE_CSCV_M_BLOCK(f32, float)
DEFINE_CSCV_M_BLOCK(f64, double)

/* ------------------------------------------------------------------ */
/* Full CSCV drivers: loop blocks (OpenMP), private y copies, reduce.   */
/*                                                                      */
/* Layouts (built by repro.core.builder):                               */
/*   blk_vxg_ptr[num_blocks+1] : VxG ranges per block                   */
/*   vxg_col[g]   : global x index of the VxG's column                  */
/*   vxg_start[g] : offset into the block's ytilde scratch              */
/*   blk_ysize[b] : ytilde length of block b                            */
/*   blk_map_ptr[num_blocks+1], map[] : ytilde pos -> global y (or -1)  */
/* y must hold m zeros on entry.                                        */

#define DEFINE_CSCV_Z_FULL(SUF, T)                                          \
static void cscv_z_seq_##SUF(                                               \
        int64_t num_blocks, const int64_t *blk_vxg_ptr,                     \
        const int32_t *vxg_col, const int32_t *vxg_start, const T *values,  \
        int64_t vxg_len, const int64_t *blk_ysize,                          \
        const int64_t *blk_map_ptr, const int32_t *map, const T *x, T *y,   \
        T *ytilde) {                                                        \
    for (int64_t b = 0; b < num_blocks; ++b) {                              \
        const int64_t ysz = blk_ysize[b];                                   \
        memset(ytilde, 0, (size_t)ysz * sizeof(T));                         \
        const int64_t g0 = blk_vxg_ptr[b], g1 = blk_vxg_ptr[b + 1];         \
        cscv_z_block_##SUF(g1 - g0, vxg_len, vxg_col + g0,                  \
                           vxg_start + g0, values + g0 * vxg_len, x,        \
                           ytilde);                                         \
        const int32_t *bmap = map + blk_map_ptr[b];                         \
        for (int64_t p = 0; p < ysz; ++p) {                                 \
            const int32_t t = bmap[p];                                      \
            if (t >= 0) y[t] += ytilde[p];                                  \
        }                                                                   \
    }                                                                       \
}                                                                           \
EXPORT void cscv_z_spmv_##SUF(                                              \
        int64_t m, int64_t num_blocks, const int64_t *blk_vxg_ptr,          \
        const int32_t *vxg_col, const int32_t *vxg_start, const T *values,  \
        int64_t vxg_len, const int64_t *blk_ysize,                          \
        const int64_t *blk_map_ptr, const int32_t *map, const T *x, T *y,   \
        int64_t max_ysize, int nthreads) {                                  \
    if (nthreads <= 1) { /* no private copies, no reduction */              \
        T *ytilde = (T *)malloc((size_t)max_ysize * sizeof(T));             \
        cscv_z_seq_##SUF(num_blocks, blk_vxg_ptr, vxg_col, vxg_start,       \
                         values, vxg_len, blk_ysize, blk_map_ptr, map, x,   \
                         y, ytilde);                                        \
        free(ytilde);                                                       \
        return;                                                             \
    }                                                                       \
    _Pragma("omp parallel num_threads(nthreads)")                           \
    {                                                                       \
        T *ytilde = (T *)malloc((size_t)max_ysize * sizeof(T));             \
        T *ylocal = (T *)calloc((size_t)m, sizeof(T));                      \
        _Pragma("omp for schedule(dynamic, 1)")                             \
        for (int64_t b = 0; b < num_blocks; ++b) {                          \
            const int64_t ysz = blk_ysize[b];                               \
            memset(ytilde, 0, (size_t)ysz * sizeof(T));                     \
            const int64_t g0 = blk_vxg_ptr[b], g1 = blk_vxg_ptr[b + 1];     \
            cscv_z_block_##SUF(g1 - g0, vxg_len, vxg_col + g0,              \
                               vxg_start + g0, values + g0 * vxg_len, x,    \
                               ytilde);                                     \
            const int32_t *bmap = map + blk_map_ptr[b];                     \
            for (int64_t p = 0; p < ysz; ++p) {                             \
                const int32_t t = bmap[p];                                  \
                if (t >= 0) ylocal[t] += ytilde[p];                         \
            }                                                               \
        }                                                                   \
        _Pragma("omp critical")                                             \
        for (int64_t i = 0; i < m; ++i) y[i] += ylocal[i];                  \
        free(ytilde);                                                       \
        free(ylocal);                                                       \
    }                                                                       \
}

DEFINE_CSCV_Z_FULL(f32, float)
DEFINE_CSCV_Z_FULL(f64, double)

/* ------------------------------------------------------------------ */
/* CSCV-Z SpMM: the VxG stream applied to k RHS at once.                */
/* X is (n, k) row-major, Y is (m, k) row-major; ytilde holds k lanes   */
/* per slot (slot-major), so the scatter through the IOBLR map moves    */
/* contiguous k-vectors.  The matrix (values + index) streams once for  */
/* all k columns — the whole point of batching.                         */

#define DEFINE_CSCV_Z_SPMM_BLOCK(SUF, T)                                    \
static void cscv_z_block_spmm_##SUF(int64_t num_vxg, int64_t vxg_len,       \
                                    int64_t k, const int32_t *vxg_col,      \
                                    const int32_t *vxg_start,               \
                                    const T *values, const T *X,            \
                                    T *ytilde) {                            \
    for (int64_t g = 0; g < num_vxg; ++g) {                                 \
        const T *xr = X + (int64_t)vxg_col[g] * k;                          \
        const T *v = values + g * vxg_len;                                  \
        T *yt = ytilde + (int64_t)vxg_start[g] * k;                         \
        for (int64_t s = 0; s < vxg_len; ++s) {                             \
            const T vs = v[s];                                              \
            T *yts = yt + s * k;                                            \
            for (int64_t j = 0; j < k; ++j)                                 \
                yts[j] += vs * xr[j];                                       \
        }                                                                   \
    }                                                                       \
}

DEFINE_CSCV_Z_SPMM_BLOCK(f32, float)
DEFINE_CSCV_Z_SPMM_BLOCK(f64, double)

#define DEFINE_CSCV_Z_SPMM_FULL(SUF, T)                                     \
EXPORT void cscv_z_spmm_##SUF(                                              \
        int64_t m, int64_t k, int64_t num_blocks,                           \
        const int64_t *blk_vxg_ptr, const int32_t *vxg_col,                 \
        const int32_t *vxg_start, const T *values, int64_t vxg_len,         \
        const int64_t *blk_ysize, const int64_t *blk_map_ptr,               \
        const int32_t *map, const T *X, T *Y, int64_t max_ysize,            \
        int nthreads) {                                                     \
    if (nthreads <= 1) { /* no private copies, no reduction */              \
        T *ytilde = (T *)malloc((size_t)(max_ysize * k) * sizeof(T));       \
        for (int64_t b = 0; b < num_blocks; ++b) {                          \
            const int64_t ysz = blk_ysize[b];                               \
            memset(ytilde, 0, (size_t)(ysz * k) * sizeof(T));               \
            const int64_t g0 = blk_vxg_ptr[b], g1 = blk_vxg_ptr[b + 1];     \
            cscv_z_block_spmm_##SUF(g1 - g0, vxg_len, k, vxg_col + g0,      \
                                    vxg_start + g0, values + g0 * vxg_len,  \
                                    X, ytilde);                             \
            const int32_t *bmap = map + blk_map_ptr[b];                     \
            for (int64_t p = 0; p < ysz; ++p) {                             \
                const int32_t t = bmap[p];                                  \
                if (t < 0) continue;                                        \
                T *yr = Y + (int64_t)t * k;                                 \
                const T *yt = ytilde + p * k;                               \
                for (int64_t j = 0; j < k; ++j) yr[j] += yt[j];             \
            }                                                               \
        }                                                                   \
        free(ytilde);                                                       \
        return;                                                             \
    }                                                                       \
    _Pragma("omp parallel num_threads(nthreads)")                           \
    {                                                                       \
        T *ytilde = (T *)malloc((size_t)(max_ysize * k) * sizeof(T));       \
        T *ylocal = (T *)calloc((size_t)(m * k), sizeof(T));                \
        _Pragma("omp for schedule(dynamic, 1)")                             \
        for (int64_t b = 0; b < num_blocks; ++b) {                          \
            const int64_t ysz = blk_ysize[b];                               \
            memset(ytilde, 0, (size_t)(ysz * k) * sizeof(T));               \
            const int64_t g0 = blk_vxg_ptr[b], g1 = blk_vxg_ptr[b + 1];     \
            cscv_z_block_spmm_##SUF(g1 - g0, vxg_len, k, vxg_col + g0,      \
                                    vxg_start + g0, values + g0 * vxg_len,  \
                                    X, ytilde);                             \
            const int32_t *bmap = map + blk_map_ptr[b];                     \
            for (int64_t p = 0; p < ysz; ++p) {                             \
                const int32_t t = bmap[p];                                  \
                if (t < 0) continue;                                        \
                T *yr = ylocal + (int64_t)t * k;                            \
                const T *yt = ytilde + p * k;                               \
                for (int64_t j = 0; j < k; ++j) yr[j] += yt[j];             \
            }                                                               \
        }                                                                   \
        _Pragma("omp critical")                                             \
        for (int64_t i = 0; i < m * k; ++i) Y[i] += ylocal[i];              \
        free(ytilde);                                                       \
        free(ylocal);                                                       \
    }                                                                       \
}

DEFINE_CSCV_Z_SPMM_FULL(f32, float)
DEFINE_CSCV_Z_SPMM_FULL(f64, double)

#define DEFINE_CSCV_M_FULL(SUF, T)                                          \
EXPORT void cscv_m_spmv_##SUF(                                              \
        int64_t m, int64_t num_blocks, const int64_t *blk_vxg_ptr,          \
        const int32_t *vxg_col, const int32_t *vxg_start,                   \
        const int64_t *vxg_voff, const uint32_t *vxg_masks,                 \
        const T *packed, int64_t s_vxg, int64_t s_vvec,                     \
        const int64_t *blk_ysize, const int64_t *blk_map_ptr,               \
        const int32_t *map, const T *x, T *y, int64_t max_ysize,            \
        int nthreads) {                                                     \
    if (nthreads <= 1) { /* no private copies, no reduction */              \
        T *ytilde = (T *)malloc((size_t)max_ysize * sizeof(T));             \
        for (int64_t b = 0; b < num_blocks; ++b) {                          \
            const int64_t ysz = blk_ysize[b];                               \
            memset(ytilde, 0, (size_t)ysz * sizeof(T));                     \
            const int64_t g0 = blk_vxg_ptr[b], g1 = blk_vxg_ptr[b + 1];     \
            cscv_m_block_##SUF(g1 - g0, s_vxg, s_vvec, vxg_col + g0,        \
                               vxg_start + g0, vxg_voff + g0,               \
                               vxg_masks + g0 * s_vxg, packed, x, ytilde);  \
            const int32_t *bmap = map + blk_map_ptr[b];                     \
            for (int64_t p = 0; p < ysz; ++p) {                             \
                const int32_t t = bmap[p];                                  \
                if (t >= 0) y[t] += ytilde[p];                              \
            }                                                               \
        }                                                                   \
        free(ytilde);                                                       \
        return;                                                             \
    }                                                                       \
    _Pragma("omp parallel num_threads(nthreads)")                           \
    {                                                                       \
        T *ytilde = (T *)malloc((size_t)max_ysize * sizeof(T));             \
        T *ylocal = (T *)calloc((size_t)m, sizeof(T));                      \
        _Pragma("omp for schedule(dynamic, 1)")                             \
        for (int64_t b = 0; b < num_blocks; ++b) {                          \
            const int64_t ysz = blk_ysize[b];                               \
            memset(ytilde, 0, (size_t)ysz * sizeof(T));                     \
            const int64_t g0 = blk_vxg_ptr[b], g1 = blk_vxg_ptr[b + 1];     \
            cscv_m_block_##SUF(g1 - g0, s_vxg, s_vvec, vxg_col + g0,        \
                               vxg_start + g0, vxg_voff + g0,               \
                               vxg_masks + g0 * s_vxg, packed, x, ytilde);  \
            const int32_t *bmap = map + blk_map_ptr[b];                     \
            for (int64_t p = 0; p < ysz; ++p) {                             \
                const int32_t t = bmap[p];                                  \
                if (t >= 0) ylocal[t] += ytilde[p];                         \
            }                                                               \
        }                                                                   \
        _Pragma("omp critical")                                             \
        for (int64_t i = 0; i < m; ++i) y[i] += ylocal[i];                  \
        free(ytilde);                                                       \
        free(ylocal);                                                       \
    }                                                                       \
}

DEFINE_CSCV_M_FULL(f32, float)
DEFINE_CSCV_M_FULL(f64, double)

/* ------------------------------------------------------------------ */
/* CSCV-M SpMM: packed values applied to k RHS at once.                 */
/* No vexpand here even on AVX-512: with k lanes per slot each packed   */
/* value already feeds a contiguous k-wide FMA against X's row, so the  */
/* expansion degenerates to a scalar walk over set mask bits.           */

#define DEFINE_CSCV_M_SPMM_BLOCK(SUF, T)                                    \
static void cscv_m_block_spmm_##SUF(int64_t num_vxg, int64_t s_vxg,         \
                                    int64_t s_vvec, int64_t k,              \
                                    const int32_t *vxg_col,                 \
                                    const int32_t *vxg_start,               \
                                    const int64_t *vxg_voff,                \
                                    const uint32_t *vxg_masks,              \
                                    const T *packed, const T *X,            \
                                    T *ytilde) {                            \
    for (int64_t g = 0; g < num_vxg; ++g) {                                 \
        const T *xr = X + (int64_t)vxg_col[g] * k;                          \
        const T *pv = packed + vxg_voff[g];                                 \
        T *yt0 = ytilde + (int64_t)vxg_start[g] * k;                        \
        const uint32_t *gm = vxg_masks + g * s_vxg;                         \
        for (int64_t e = 0; e < s_vxg; ++e) {                               \
            const uint32_t mask = gm[e];                                    \
            if (!mask) continue;                                            \
            T *yte = yt0 + e * s_vvec * k;                                  \
            for (int64_t l = 0; l < s_vvec; ++l) {                          \
                if (!(mask & (1u << l))) continue;                          \
                const T a = *pv++;                                          \
                T *yts = yte + l * k;                                       \
                for (int64_t j = 0; j < k; ++j)                             \
                    yts[j] += a * xr[j];                                    \
            }                                                               \
        }                                                                   \
    }                                                                       \
}

DEFINE_CSCV_M_SPMM_BLOCK(f32, float)
DEFINE_CSCV_M_SPMM_BLOCK(f64, double)

#define DEFINE_CSCV_M_SPMM_FULL(SUF, T)                                     \
EXPORT void cscv_m_spmm_##SUF(                                              \
        int64_t m, int64_t k, int64_t num_blocks,                           \
        const int64_t *blk_vxg_ptr, const int32_t *vxg_col,                 \
        const int32_t *vxg_start, const int64_t *vxg_voff,                  \
        const uint32_t *vxg_masks, const T *packed, int64_t s_vxg,          \
        int64_t s_vvec, const int64_t *blk_ysize,                           \
        const int64_t *blk_map_ptr, const int32_t *map, const T *X, T *Y,   \
        int64_t max_ysize, int nthreads) {                                  \
    if (nthreads <= 1) { /* no private copies, no reduction */              \
        T *ytilde = (T *)malloc((size_t)(max_ysize * k) * sizeof(T));       \
        for (int64_t b = 0; b < num_blocks; ++b) {                          \
            const int64_t ysz = blk_ysize[b];                               \
            memset(ytilde, 0, (size_t)(ysz * k) * sizeof(T));               \
            const int64_t g0 = blk_vxg_ptr[b], g1 = blk_vxg_ptr[b + 1];     \
            cscv_m_block_spmm_##SUF(g1 - g0, s_vxg, s_vvec, k,              \
                                    vxg_col + g0, vxg_start + g0,           \
                                    vxg_voff + g0, vxg_masks + g0 * s_vxg,  \
                                    packed, X, ytilde);                     \
            const int32_t *bmap = map + blk_map_ptr[b];                     \
            for (int64_t p = 0; p < ysz; ++p) {                             \
                const int32_t t = bmap[p];                                  \
                if (t < 0) continue;                                        \
                T *yr = Y + (int64_t)t * k;                                 \
                const T *yt = ytilde + p * k;                               \
                for (int64_t j = 0; j < k; ++j) yr[j] += yt[j];             \
            }                                                               \
        }                                                                   \
        free(ytilde);                                                       \
        return;                                                             \
    }                                                                       \
    _Pragma("omp parallel num_threads(nthreads)")                           \
    {                                                                       \
        T *ytilde = (T *)malloc((size_t)(max_ysize * k) * sizeof(T));       \
        T *ylocal = (T *)calloc((size_t)(m * k), sizeof(T));                \
        _Pragma("omp for schedule(dynamic, 1)")                             \
        for (int64_t b = 0; b < num_blocks; ++b) {                          \
            const int64_t ysz = blk_ysize[b];                               \
            memset(ytilde, 0, (size_t)(ysz * k) * sizeof(T));               \
            const int64_t g0 = blk_vxg_ptr[b], g1 = blk_vxg_ptr[b + 1];     \
            cscv_m_block_spmm_##SUF(g1 - g0, s_vxg, s_vvec, k,              \
                                    vxg_col + g0, vxg_start + g0,           \
                                    vxg_voff + g0, vxg_masks + g0 * s_vxg,  \
                                    packed, X, ytilde);                     \
            const int32_t *bmap = map + blk_map_ptr[b];                     \
            for (int64_t p = 0; p < ysz; ++p) {                             \
                const int32_t t = bmap[p];                                  \
                if (t < 0) continue;                                        \
                T *yr = ylocal + (int64_t)t * k;                            \
                const T *yt = ytilde + p * k;                               \
                for (int64_t j = 0; j < k; ++j) yr[j] += yt[j];             \
            }                                                               \
        }                                                                   \
        _Pragma("omp critical")                                             \
        for (int64_t i = 0; i < m * k; ++i) Y[i] += ylocal[i];              \
        free(ytilde);                                                       \
        free(ylocal);                                                       \
    }                                                                       \
}

DEFINE_CSCV_M_SPMM_FULL(f32, float)
DEFINE_CSCV_M_SPMM_FULL(f64, double)

/* ------------------------------------------------------------------ */
/* SPC5-style beta(1,c) row-block kernel: per block one row id, a       */
/* bitmask over c consecutive columns, packed values (no padding).      */

#ifdef HAVE_VEXPAND
static inline float spc5_dot_f32(const float *pv, const float *xp,
                                 uint32_t mask, int64_t width) {
    __m512 acc = _mm512_setzero_ps();
    for (int64_t k = 0; k < width; k += 16) {
        const int chunk = (width - k) >= 16 ? 16 : (int)(width - k);
        const __mmask16 vm =
            chunk == 16 ? (__mmask16)0xFFFF : (__mmask16)((1u << chunk) - 1u);
        const __mmask16 em = (__mmask16)((mask >> k) & vm);
        const __m512 vals = _mm512_maskz_expandloadu_ps(em, pv);
        const __m512 xv = _mm512_maskz_loadu_ps(em, xp + k);
        acc = _mm512_fmadd_ps(vals, xv, acc);
        pv += _mm_popcnt_u32((unsigned)em);
    }
    return _mm512_reduce_add_ps(acc);
}

static inline double spc5_dot_f64(const double *pv, const double *xp,
                                  uint32_t mask, int64_t width) {
    __m512d acc = _mm512_setzero_pd();
    for (int64_t k = 0; k < width; k += 8) {
        const int chunk = (width - k) >= 8 ? 8 : (int)(width - k);
        const __mmask8 vm =
            chunk == 8 ? (__mmask8)0xFF : (__mmask8)((1u << chunk) - 1u);
        const __mmask8 em = (__mmask8)((mask >> k) & vm);
        const __m512d vals = _mm512_maskz_expandloadu_pd(em, pv);
        const __m512d xv = _mm512_maskz_loadu_pd(em, xp + k);
        acc = _mm512_fmadd_pd(vals, xv, acc);
        pv += _mm_popcnt_u32((unsigned)em);
    }
    return _mm512_reduce_add_pd(acc);
}
#else
#define DEFINE_SPC5_DOT(SUF, T)                                             \
static inline T spc5_dot_##SUF(const T *pv, const T *xp, uint32_t mask,     \
                               int64_t width) {                             \
    T acc = (T)0;                                                           \
    int64_t p = 0;                                                          \
    for (int64_t k = 0; k < width; ++k) {                                   \
        if (mask & (1u << k)) {                                             \
            acc += pv[p] * xp[k];                                           \
            ++p;                                                            \
        }                                                                   \
    }                                                                       \
    return acc;                                                             \
}
DEFINE_SPC5_DOT(f32, float)
DEFINE_SPC5_DOT(f64, double)
#endif

#define DEFINE_SPC5(SUF, T)                                                 \
EXPORT void spc5_spmv_##SUF(int64_t num_blocks, const int32_t *blk_row,     \
                            const int32_t *blk_col, const uint32_t *masks,  \
                            const int64_t *voff, const T *packed,           \
                            int64_t blk_width, const T *x, T *y,            \
                            int64_t m) {                                    \
    memset(y, 0, (size_t)m * sizeof(T));                                    \
    for (int64_t b = 0; b < num_blocks; ++b) {                              \
        y[blk_row[b]] += spc5_dot_##SUF(packed + voff[b], x + blk_col[b],   \
                                        masks[b], blk_width);               \
    }                                                                       \
}

DEFINE_SPC5(f32, float)
DEFINE_SPC5(f64, double)


/* ------------------------------------------------------------------ */
/* CSCV-Z transpose SpMV: x = A^T y (CT back-projection).               */
/* Per block: gather ytilde through the map (the forward reorder run    */
/* in reverse), then one contiguous dot product per VxG.  Columns repeat*/
/* across view-group blocks, so threads use private x copies + reduce.  */

#define DEFINE_CSCV_Z_TSPMV(SUF, T)                                         \
EXPORT void cscv_z_tspmv_##SUF(                                             \
        int64_t n, int64_t num_blocks, const int64_t *blk_vxg_ptr,          \
        const int32_t *vxg_col, const int32_t *vxg_start, const T *values,  \
        int64_t vxg_len, const int64_t *blk_ysize,                          \
        const int64_t *blk_map_ptr, const int32_t *map, const T *y, T *x,   \
        int64_t max_ysize, int nthreads) {                                  \
    if (nthreads <= 1) {                                                    \
        T *ytilde = (T *)malloc((size_t)max_ysize * sizeof(T));             \
        for (int64_t b = 0; b < num_blocks; ++b) {                          \
            const int64_t ysz = blk_ysize[b];                               \
            const int32_t *bmap = map + blk_map_ptr[b];                     \
            for (int64_t p = 0; p < ysz; ++p) {                             \
                const int32_t t = bmap[p];                                  \
                ytilde[p] = (t >= 0) ? y[t] : (T)0;                         \
            }                                                               \
            const int64_t g0 = blk_vxg_ptr[b], g1 = blk_vxg_ptr[b + 1];     \
            for (int64_t g = g0; g < g1; ++g) {                             \
                const T *v = values + g * vxg_len;                          \
                const T *yt = ytilde + vxg_start[g];                        \
                T acc = (T)0;                                               \
                for (int64_t k = 0; k < vxg_len; ++k)                       \
                    acc += v[k] * yt[k];                                    \
                x[vxg_col[g]] += acc;                                       \
            }                                                               \
        }                                                                   \
        free(ytilde);                                                       \
        return;                                                             \
    }                                                                       \
    _Pragma("omp parallel num_threads(nthreads)")                           \
    {                                                                       \
        T *ytilde = (T *)malloc((size_t)max_ysize * sizeof(T));             \
        T *xlocal = (T *)calloc((size_t)n, sizeof(T));                      \
        _Pragma("omp for schedule(dynamic, 1)")                             \
        for (int64_t b = 0; b < num_blocks; ++b) {                          \
            const int64_t ysz = blk_ysize[b];                               \
            const int32_t *bmap = map + blk_map_ptr[b];                     \
            for (int64_t p = 0; p < ysz; ++p) {                             \
                const int32_t t = bmap[p];                                  \
                ytilde[p] = (t >= 0) ? y[t] : (T)0;                         \
            }                                                               \
            const int64_t g0 = blk_vxg_ptr[b], g1 = blk_vxg_ptr[b + 1];     \
            for (int64_t g = g0; g < g1; ++g) {                             \
                const T *v = values + g * vxg_len;                          \
                const T *yt = ytilde + vxg_start[g];                        \
                T acc = (T)0;                                               \
                for (int64_t k = 0; k < vxg_len; ++k)                       \
                    acc += v[k] * yt[k];                                    \
                xlocal[vxg_col[g]] += acc;                                  \
            }                                                               \
        }                                                                   \
        _Pragma("omp critical")                                             \
        for (int64_t i = 0; i < n; ++i) x[i] += xlocal[i];                  \
        free(ytilde);                                                       \
        free(xlocal);                                                       \
    }                                                                       \
}

DEFINE_CSCV_Z_TSPMV(f32, float)
DEFINE_CSCV_Z_TSPMV(f64, double)

/* ------------------------------------------------------------------ */
/* Projector sweep kernels: geometry -> COO triplets for a view range.  */
/*                                                                      */
/* Each kernel fills caller-allocated (rows, cols, vals) buffers with   */
/* the nonzeros of views [v0, v1) and returns how many it wrote, or -1  */
/* when `cap` would overflow (the Python side allocates from a          */
/* conservative per-view bound, so -1 means a bug, not a retry).        */
/* Kernels are single-threaded per call and hold no global state: the   */
/* Python sweep partitions the view axis over a thread pool and ctypes  */
/* releases the GIL for the duration of each call.  All arithmetic is   */
/* double precision regardless of the target matrix dtype; the sweep    */
/* casts values once at the end.                                        */
/*                                                                      */
/* Geometry conventions mirror geometry/parallel_beam.py: pixel (i, j)  */
/* has centre x = (j - (n-1)/2) ps, y = ((n-1)/2 - i) ps; detector bin  */
/* b covers s in [(b - B/2) ds, (b + 1 - B/2) ds); sinogram row =       */
/* view * B + bin; pixel column = i * n + j.                            */

/* Trapezoid footprint CDF — the closed form of projector_strip.py,
 * kept region-by-region identical so C and NumPy values agree to
 * rounding. */
static double trapezoid_cdf(double t, double r1, double r2,
                            double h, double ramp_w) {
    if (t >= r2) return 1.0;
    if (t <= -r2) return 0.0;
    if (t < -r1) return 0.5 * h / ramp_w * (t + r2) * (t + r2);
    if (t <= r1) return 0.5 * h * (r2 - r1) + h * (t + r1);
    return 1.0 - 0.5 * h / ramp_w * (r2 - t) * (r2 - t);
}

EXPORT int64_t pixel_footprint_views_f64(
        int64_t n, int64_t num_bins,
        double delta_angle_deg, double start_angle_deg,
        double pixel_size, double bin_spacing,
        int64_t v0, int64_t v1, int64_t cap,
        int64_t *rows, int64_t *cols, double *vals) {
    const double deg2rad = 0.017453292519943295;
    const double half = (n - 1) / 2.0;
    int64_t w = 0;
    for (int64_t v = v0; v < v1; ++v) {
        const double theta = (start_angle_deg + delta_angle_deg * v) * deg2rad;
        const double ct = cos(theta), st = sin(theta);
        const int64_t row0 = v * num_bins;
        for (int64_t i = 0; i < n; ++i) {
            const double y = (half - i) * pixel_size;
            for (int64_t j = 0; j < n; ++j) {
                const double x = (j - half) * pixel_size;
                const double s = x * ct + y * st;
                const double f = s / bin_spacing + num_bins / 2.0 - 0.5;
                const double b0 = floor(f);
                const double w1 = f - b0;
                const int64_t b = (int64_t)b0;
                const int64_t col = i * n + j;
                /* lower bin, weight 1 - w1 */
                if (b >= 0 && b < num_bins && 1.0 - w1 > 0.0) {
                    if (w >= cap) return -1;
                    rows[w] = row0 + b;
                    cols[w] = col;
                    vals[w] = (1.0 - w1) * pixel_size;
                    ++w;
                }
                /* upper bin, weight w1 */
                if (b + 1 >= 0 && b + 1 < num_bins && w1 > 0.0) {
                    if (w >= cap) return -1;
                    rows[w] = row0 + b + 1;
                    cols[w] = col;
                    vals[w] = w1 * pixel_size;
                    ++w;
                }
            }
        }
    }
    return w;
}

EXPORT int64_t strip_footprint_views_f64(
        int64_t n, int64_t num_bins,
        double delta_angle_deg, double start_angle_deg,
        double pixel_size, double bin_spacing,
        int64_t v0, int64_t v1, int64_t cap,
        int64_t *rows, int64_t *cols, double *vals) {
    const double deg2rad = 0.017453292519943295;
    const double eps = 1e-12;
    const double half = (n - 1) / 2.0;
    const double ps = pixel_size, ds = bin_spacing;
    const double area_per_ds = ps * ps / ds;
    int64_t w = 0;
    for (int64_t v = v0; v < v1; ++v) {
        const double theta = (start_angle_deg + delta_angle_deg * v) * deg2rad;
        const double ct = cos(theta), st = sin(theta);
        const double a = fabs(ct) * ps, b = fabs(st) * ps;
        const double r1 = fabs(a - b) / 2.0, r2 = (a + b) / 2.0;
        const double h = 1.0 / (r1 + r2);
        const double ramp_w = fmax(r2 - r1, 1e-300);
        const int64_t span = (int64_t)ceil(2.0 * r2 / ds) + 1;
        const int64_t row0 = v * num_bins;
        for (int64_t i = 0; i < n; ++i) {
            const double y = (half - i) * ps;
            for (int64_t j = 0; j < n; ++j) {
                const double x = (j - half) * ps;
                const double s = x * ct + y * st;
                const int64_t first =
                    (int64_t)floor((s - r2) / ds + num_bins / 2.0);
                double prev =
                    trapezoid_cdf((first - num_bins / 2.0) * ds - s,
                                  r1, r2, h, ramp_w);
                const int64_t col = i * n + j;
                for (int64_t k = 0; k < span; ++k) {
                    const double edge =
                        (first + k + 1 - num_bins / 2.0) * ds - s;
                    const double chi = trapezoid_cdf(edge, r1, r2, h, ramp_w);
                    const double val = (chi - prev) * area_per_ds;
                    prev = chi;
                    const int64_t bin = first + k;
                    if (val > eps && bin >= 0 && bin < num_bins) {
                        if (w >= cap) return -1;
                        rows[w] = row0 + bin;
                        cols[w] = col;
                        vals[w] = val;
                        ++w;
                    }
                }
            }
        }
    }
    return w;
}

EXPORT int64_t siddon_trace_views_f64(
        int64_t n, int64_t num_bins,
        double delta_angle_deg, double start_angle_deg,
        double pixel_size, double bin_spacing,
        int64_t v0, int64_t v1, int64_t cap,
        int64_t *rows, int64_t *cols, double *vals) {
    const double deg2rad = 0.017453292519943295;
    const double ps = pixel_size;
    const double half = n * ps / 2.0;
    int64_t w = 0;
    for (int64_t v = v0; v < v1; ++v) {
        const double theta = (start_angle_deg + delta_angle_deg * v) * deg2rad;
        const double ct = cos(theta), st = sin(theta);
        const double dx = -st, dy = ct;
        for (int64_t bin = 0; bin < num_bins; ++bin) {
            const double s = (bin + 0.5 - num_bins / 2.0) * bin_spacing;
            const double ox = s * ct, oy = s * st;
            /* box clip, same order and tolerances as _trace_ray */
            double t_lo = -1e300, t_hi = 1e300;
            int miss = 0;
            const double o2[2] = {ox, oy}, d2[2] = {dx, dy};
            for (int axis = 0; axis < 2; ++axis) {
                const double o = o2[axis], dd = d2[axis];
                if (fabs(dd) < 1e-15) {
                    if (o < -half || o > half) { miss = 1; break; }
                } else {
                    double t0 = (-half - o) / dd, t1 = (half - o) / dd;
                    if (t0 > t1) { const double tmp = t0; t0 = t1; t1 = tmp; }
                    if (t0 > t_lo) t_lo = t0;
                    if (t1 < t_hi) t_hi = t1;
                }
            }
            if (miss || t_hi <= t_lo) continue;
            /* Merge the ascending x- and y-crossing parameter streams
             * (tx_k = ((-half + k ps) - ox) / dx and likewise ty) between
             * t_lo and t_hi; each merged segment lies in one pixel,
             * classified by its midpoint exactly like the NumPy tracer. */
            const int have_x = fabs(dx) > 1e-15, have_y = fabs(dy) > 1e-15;
            int64_t kx = dx > 0 ? 0 : n, ky = dy > 0 ? 0 : n;
            const int64_t sx = dx > 0 ? 1 : -1, sy = dy > 0 ? 1 : -1;
            double next_x = 1e300, next_y = 1e300;
            if (have_x) {
                while (kx >= 0 && kx <= n) {
                    const double t = ((-half + kx * ps) - ox) / dx;
                    if (t > t_lo) { if (t < t_hi) next_x = t; break; }
                    kx += sx;
                }
            }
            if (have_y) {
                while (ky >= 0 && ky <= n) {
                    const double t = ((-half + ky * ps) - oy) / dy;
                    if (t > t_lo) { if (t < t_hi) next_y = t; break; }
                    ky += sy;
                }
            }
            const int64_t row = v * num_bins + bin;
            double t_prev = t_lo;
            for (;;) {
                double t_cur = t_hi;
                if (next_x < t_cur) t_cur = next_x;
                if (next_y < t_cur) t_cur = next_y;
                const double seg = t_cur - t_prev;
                if (seg > 1e-12) {
                    const double mid = (t_prev + t_cur) / 2.0;
                    const double mx = ox + mid * dx, my = oy + mid * dy;
                    const int64_t j = (int64_t)floor((mx + half) / ps);
                    const int64_t ib = (int64_t)floor((my + half) / ps);
                    const int64_t i = (n - 1) - ib; /* rows from the top */
                    if (j >= 0 && j < n && i >= 0 && i < n) {
                        if (w >= cap) return -1;
                        rows[w] = row;
                        cols[w] = i * n + j;
                        vals[w] = seg;
                        ++w;
                    }
                }
                if (t_cur >= t_hi) break;
                t_prev = t_cur;
                if (next_x == t_cur) {
                    kx += sx;
                    next_x = 1e300;
                    if (have_x && kx >= 0 && kx <= n) {
                        const double t = ((-half + kx * ps) - ox) / dx;
                        if (t < t_hi) next_x = t;
                    }
                }
                if (next_y == t_cur) {
                    ky += sy;
                    next_y = 1e300;
                    if (have_y && ky >= 0 && ky <= n) {
                        const double t = ((-half + ky * ps) - oy) / dy;
                        if (t < t_hi) next_y = t;
                    }
                }
            }
        }
    }
    return w;
}

EXPORT int64_t fan_strip_views_f64(
        int64_t n, int64_t num_bins,
        double delta_angle_deg, double start_angle_deg, double pixel_size,
        double source_radius, double fan_angle_deg,
        int64_t v0, int64_t v1, int64_t cap,
        int64_t *rows, int64_t *cols, double *vals) {
    const double deg2rad = 0.017453292519943295;
    const double pi = 3.141592653589793;
    const double eps = 1e-12;
    const double half = (n - 1) / 2.0;
    const double ps = pixel_size;
    const double pitch = fan_angle_deg * deg2rad / num_bins;
    const double halfdiag = ps * 1.4142135623730951 / 2.0;
    int64_t w = 0;
    for (int64_t v = v0; v < v1; ++v) {
        const double beta = (start_angle_deg + delta_angle_deg * v) * deg2rad;
        const double srcx = source_radius * cos(beta);
        const double srcy = source_radius * sin(beta);
        const double central = beta + pi;
        const int64_t row0 = v * num_bins;
        for (int64_t i = 0; i < n; ++i) {
            const double y = (half - i) * ps;
            for (int64_t j = 0; j < n; ++j) {
                const double x = (j - half) * ps;
                const double ddx = x - srcx, ddy = y - srcy;
                /* signed fan angle, wrapped to (-pi, pi] like numpy mod */
                double g = atan2(ddy, ddx) - central;
                g = fmod(g + pi, 2.0 * pi);
                if (g < 0) g += 2.0 * pi;
                g -= pi;
                const double dist = hypot(ddx, ddy);
                const double wa = atan2(halfdiag, dist);
                const double f_lo = (g - wa) / pitch + num_bins / 2.0;
                const double f_hi = (g + wa) / pitch + num_bins / 2.0;
                const int64_t first = (int64_t)floor(f_lo);
                const double width = fmax(f_hi - f_lo, eps);
                const int64_t span = (int64_t)ceil(f_hi - f_lo) + 1;
                const int64_t col = i * n + j;
                for (int64_t k = 0; k < span; ++k) {
                    const int64_t b = first + k;
                    double overlap =
                        fmin(f_hi, (double)(b + 1)) - fmax(f_lo, (double)b);
                    if (overlap < 0.0) overlap = 0.0;
                    const double val = overlap / width * ps;
                    if (val > eps && b >= 0 && b < num_bins) {
                        if (w >= cap) return -1;
                        rows[w] = row0 + b;
                        cols[w] = col;
                        vals[w] = val;
                        ++w;
                    }
                }
            }
        }
    }
    return w;
}

/* ------------------------------------------------------------------ */
/* Utility: OpenMP thread control.  The blocked CSCV drivers receive an
 * explicit nthreads argument, but the plain `omp parallel for` kernels
 * (CSR/CSC/ELL SpMV, CSR SpMM) run at the library-wide default -- which
 * ignores `runtime.threads` unless the host process sets it here.       */

EXPORT int kernels_omp_max_threads(void) {
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}

EXPORT void kernels_set_omp_threads(int nthreads) {
#ifdef _OPENMP
    if (nthreads >= 1) omp_set_num_threads(nthreads);
#else
    (void)nthreads;
#endif
}

EXPORT int kernels_abi_version(void) { return 6; }
