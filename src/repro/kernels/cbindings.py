"""ctypes bindings for the compiled kernel library.

Each binding wraps one C symbol per floating dtype with argument-type
checking via :func:`numpy.ctypeslib.ndpointer`.  Wrappers accept NumPy
arrays directly; callers guarantee contiguity and dtype (the sparse-format
classes construct their arrays that way).
"""

from __future__ import annotations

import ctypes
import warnings

import numpy as np
from numpy.ctypeslib import ndpointer

from repro.errors import KernelError
from repro.kernels.cbuild import library_path

_i32 = ndpointer(np.int32, flags="C_CONTIGUOUS")
_i64 = ndpointer(np.int64, flags="C_CONTIGUOUS")
_u32 = ndpointer(np.uint32, flags="C_CONTIGUOUS")
_c_i64 = ctypes.c_int64
_c_int = ctypes.c_int
_c_f64 = ctypes.c_double


def _f(dtype) -> object:
    return ndpointer(dtype, flags="C_CONTIGUOUS")


_SUFFIX = {np.dtype(np.float32): "f32", np.dtype(np.float64): "f64"}


# Parallel-beam projector sweeps share one shape: geometry scalars, a
# [v0, v1) view range, and caller-allocated COO triplet buffers.  These
# kernels compute in float64 only (the sweep casts values afterwards),
# so only the f64 symbols exist in the library.
_PROJECTOR_SIG = [
    _c_i64,  # n (image edge)
    _c_i64,  # num_bins
    _c_f64,  # delta_angle_deg
    _c_f64,  # start_angle_deg
    _c_f64,  # pixel_size
    _c_f64,  # bin_spacing
    _c_i64,  # v0
    _c_i64,  # v1
    _c_i64,  # capacity
    _i64,    # rows (out)
    _i64,    # cols (out)
    ndpointer(np.float64, flags="C_CONTIGUOUS"),  # vals (out)
]

_FAN_SIG = [
    _c_i64,  # n
    _c_i64,  # num_bins
    _c_f64,  # delta_angle_deg
    _c_f64,  # start_angle_deg
    _c_f64,  # pixel_size
    _c_f64,  # source_radius
    _c_f64,  # fan_angle_deg
    _c_i64,  # v0
    _c_i64,  # v1
    _c_i64,  # capacity
    _i64,    # rows (out)
    _i64,    # cols (out)
    ndpointer(np.float64, flags="C_CONTIGUOUS"),  # vals (out)
]

#: Kernels with a non-void return (projector sweeps return the triplet
#: count, or -1 on capacity overflow); everything else returns void.
_RESTYPES = {
    "pixel_footprint_views": _c_i64,
    "strip_footprint_views": _c_i64,
    "siddon_trace_views": _c_i64,
    "fan_strip_views": _c_i64,
}


def _signatures(dtype) -> dict[str, list]:
    fp = _f(dtype)
    return {
        "pixel_footprint_views": _PROJECTOR_SIG,
        "strip_footprint_views": _PROJECTOR_SIG,
        "siddon_trace_views": _PROJECTOR_SIG,
        "fan_strip_views": _FAN_SIG,
        "csr_spmv": [_c_i64, _i32, _i32, fp, fp, fp],
        "csr_spmm": [_c_i64, _c_i64, _i32, _i32, fp, fp, fp],
        "csc_spmv": [_c_i64, _c_i64, _i32, _i32, fp, fp, fp],
        "ell_spmv": [_c_i64, _c_i64, _i32, fp, fp, fp],
        "cscv_z_spmv": [
            _c_i64,  # m
            _c_i64,  # num_blocks
            _i64,    # blk_vxg_ptr
            _i32,    # vxg_col
            _i32,    # vxg_start
            fp,      # values
            _c_i64,  # vxg_len
            _i64,    # blk_ysize
            _i64,    # blk_map_ptr
            _i32,    # map
            fp,      # x
            fp,      # y
            _c_i64,  # max_ysize
            _c_int,  # nthreads
        ],
        "cscv_z_spmm": [
            _c_i64,  # m
            _c_i64,  # k (RHS count)
            _c_i64,  # num_blocks
            _i64,    # blk_vxg_ptr
            _i32,    # vxg_col
            _i32,    # vxg_start
            fp,      # values
            _c_i64,  # vxg_len
            _i64,    # blk_ysize
            _i64,    # blk_map_ptr
            _i32,    # map
            fp,      # X (n, k) row-major
            fp,      # Y (m, k) row-major
            _c_i64,  # max_ysize
            _c_int,  # nthreads
        ],
        "cscv_m_spmv": [
            _c_i64,  # m
            _c_i64,  # num_blocks
            _i64,    # blk_vxg_ptr
            _i32,    # vxg_col
            _i32,    # vxg_start
            _i64,    # vxg_voff
            _u32,    # vxg_masks
            fp,      # packed
            _c_i64,  # s_vxg
            _c_i64,  # s_vvec
            _i64,    # blk_ysize
            _i64,    # blk_map_ptr
            _i32,    # map
            fp,      # x
            fp,      # y
            _c_i64,  # max_ysize
            _c_int,  # nthreads
        ],
        "cscv_m_spmm": [
            _c_i64,  # m
            _c_i64,  # k (RHS count)
            _c_i64,  # num_blocks
            _i64,    # blk_vxg_ptr
            _i32,    # vxg_col
            _i32,    # vxg_start
            _i64,    # vxg_voff
            _u32,    # vxg_masks
            fp,      # packed
            _c_i64,  # s_vxg
            _c_i64,  # s_vvec
            _i64,    # blk_ysize
            _i64,    # blk_map_ptr
            _i32,    # map
            fp,      # X (n, k) row-major
            fp,      # Y (m, k) row-major
            _c_i64,  # max_ysize
            _c_int,  # nthreads
        ],
        "spc5_spmv": [_c_i64, _i32, _i32, _u32, _i64, fp, _c_i64, fp, fp, _c_i64],
        "cscv_z_tspmv": [
            _c_i64,  # n
            _c_i64,  # num_blocks
            _i64,    # blk_vxg_ptr
            _i32,    # vxg_col
            _i32,    # vxg_start
            fp,      # values
            _c_i64,  # vxg_len
            _i64,    # blk_ysize
            _i64,    # blk_map_ptr
            _i32,    # map
            fp,      # y
            fp,      # x (output)
            _c_i64,  # max_ysize
            _c_int,  # nthreads
        ],
    }


class KernelLibrary:
    """Loaded shared library with typed kernel callables."""

    def __init__(self, path: str):
        self.path = path
        self._lib = ctypes.CDLL(path)
        self._fns: dict[tuple[str, np.dtype], object] = {}
        abi = self._lib.kernels_abi_version
        abi.restype = ctypes.c_int
        self.abi_version = int(abi())
        omp = self._lib.kernels_omp_max_threads
        omp.restype = ctypes.c_int
        self.omp_max_threads = int(omp())
        setter = self._lib.kernels_set_omp_threads
        setter.restype = None
        setter.argtypes = [ctypes.c_int]
        self._set_omp = setter

    def set_omp_threads(self, nthreads: int) -> None:
        """Set the library-wide OpenMP thread count (``omp_set_num_threads``).

        The blocked CSCV drivers take an explicit per-call ``nthreads``,
        but the plain ``omp parallel for`` kernels (CSR/CSC/ELL SpMV, CSR
        SpMM) run at this library-wide default — without this call they
        ignore ``runtime.threads`` entirely.
        """
        self._set_omp(int(nthreads))
        self.omp_max_threads = int(self._lib.kernels_omp_max_threads())

    def get(self, name: str, dtype) -> object:
        """Typed callable for kernel *name* at *dtype*."""
        dt = np.dtype(dtype)
        key = (name, dt)
        fn = self._fns.get(key)
        if fn is None:
            suffix = _SUFFIX.get(dt)
            if suffix is None:
                raise KernelError(f"no C kernels for dtype {dt}")
            sigs = _signatures(dt)
            if name not in sigs:
                raise KernelError(f"unknown kernel {name!r}")
            try:
                fn = getattr(self._lib, f"{name}_{suffix}")
            except AttributeError as exc:  # pragma: no cover - stale .so
                raise KernelError(f"symbol {name}_{suffix} missing") from exc
            fn.restype = _RESTYPES.get(name)
            fn.argtypes = sigs[name]
            self._fns[key] = fn
        return fn


_library: KernelLibrary | None = None
_load_failed = False


def load_library() -> KernelLibrary | None:
    """Build-and-load the kernel library once per process (or None).

    A library that built but will not load (deleted, truncated, or ABI
    mismatch — simulated by the ``kernel.load`` fault point) degrades
    the same way a failed build does: one ``RuntimeWarning``, a
    ``kernel.load.failures`` count, NumPy fallback for the rest of the
    process.
    """
    global _library, _load_failed
    if _load_failed:
        return None
    if _library is None:
        from repro.resilience import faults

        path = library_path()
        directive = faults.fire("kernel.load") if path is not None else None
        if directive == "missing":
            path = None
        if path is None:
            _load_failed = True
            if directive == "missing":
                _warn_load_failure("shared library missing")
            return None
        try:
            if directive == "corrupt":
                raise OSError(f"fault injected: unloadable library {path}")
            _library = KernelLibrary(path)
        except (OSError, KernelError, AttributeError) as exc:
            _load_failed = True
            _warn_load_failure(str(exc))
            return None
    return _library


def _warn_load_failure(reason: str) -> None:
    from repro.obs import metrics as obs_metrics

    obs_metrics.counter(
        "kernel.load.failures",
        "kernel library load failures (NumPy fallback engaged)",
    ).inc()
    warnings.warn(
        f"repro kernel library failed to load, using NumPy backend: {reason}",
        RuntimeWarning,
        stacklevel=3,
    )


def reset_load_state() -> None:
    """Forget the loaded library (test hook)."""
    global _library, _load_failed
    _library = None
    _load_failed = False
