"""Compute backends for SpMV kernels.

Two backends implement every kernel:

* **numpy** — vectorised NumPy, always available;
* **c** — plain C loops compiled on first use with ``cc -O3 -march=native
  -fopenmp`` and loaded through :mod:`ctypes`.

The C kernels deliberately contain **no intrinsics and no assembly** —
reproducing the paper's portability claim that CSCV's fixed-length
contiguous inner loops auto-vectorise (AVX-512 ``vfmadd``/``vexpand`` on
this host) from scalar source.

:mod:`repro.kernels.dispatch` decides per call which backend serves a
kernel; set ``REPRO_BACKEND=numpy`` to disable the compiled path.
"""

from repro.kernels import dispatch

__all__ = ["dispatch"]
