"""Compute backends for SpMV kernels.

Two backends implement every kernel:

* **numpy** — vectorised NumPy, always available;
* **c** — plain C loops compiled on first use with ``cc -O3 -march=native
  -fopenmp`` and loaded through :mod:`ctypes`.

The C kernels deliberately contain **no intrinsics and no assembly** —
reproducing the paper's portability claim that CSCV's fixed-length
contiguous inner loops auto-vectorise (AVX-512 ``vfmadd``/``vexpand`` on
this host) from scalar source.

:mod:`repro.kernels.dispatch` decides per call which backend serves a
kernel; set ``REPRO_BACKEND=numpy`` to disable the compiled path.
"""

from repro.kernels import dispatch

#: Python-side mirror of ``kernels_abi_version()`` in ``c_src/kernels.c``.
#: Bump both together whenever a kernel signature or array layout changes;
#: the persistent operator cache keys entries on this value so stale array
#: layouts can never be fed to newer kernels.
KERNELS_ABI_VERSION = 6

__all__ = ["dispatch", "KERNELS_ABI_VERSION"]
