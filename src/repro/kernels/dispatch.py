"""Backend dispatch: pick the C kernel or fall back to NumPy.

``get(name, dtype)`` is the single entry point the sparse formats call.
It returns a typed C callable, or ``None`` when the caller should run its
NumPy path — because the user forced ``REPRO_BACKEND=numpy``, the compile
failed, or the dtype has no compiled variant.
"""

from __future__ import annotations

import numpy as np

from repro import config


def _count(outcome: str, name: str) -> None:
    """Backend-choice counters: ``dispatch.hit.*`` vs ``dispatch.fallback.*``."""
    from repro.obs import metrics as obs_metrics

    obs_metrics.counter(
        f"dispatch.{outcome}.{name}",
        "kernel dispatch outcomes (hit = compiled C, fallback = NumPy)",
    ).inc()


#: Last thread count pushed into the compiled library via
#: ``kernels_set_omp_threads`` (None = never synced this process).
_omp_synced: int | None = None


def _sync_omp_threads(lib) -> None:
    """Push ``runtime.threads`` into the library's OpenMP default.

    The blocked CSCV kernels take an explicit per-call thread count, but
    the plain ``omp parallel for`` kernels (CSR/CSC/ELL SpMV, CSR SpMM)
    run at the OpenMP library default, which used to ignore
    ``runtime.threads``/``REPRO_THREADS`` entirely.  One int compare per
    dispatch keeps them in lockstep with runtime changes.
    """
    global _omp_synced
    want = int(config.runtime.threads)
    if want != _omp_synced:
        lib.set_omp_threads(want)
        _omp_synced = want


def set_omp_threads(n: int) -> bool:
    """Explicitly pin the compiled library's OpenMP thread count.

    Returns True when a compiled library was present to receive the
    setting (sharding workers call this with their clamped budget so the
    per-process kernels never oversubscribe the host).  Also updates
    ``config.runtime.threads`` so the NumPy-threaded drivers and later
    dispatch syncs agree with the pin.
    """
    global _omp_synced
    n = max(1, int(n))
    config.runtime.threads = n
    if config.runtime.backend == "numpy":
        return False
    from repro.kernels.cbindings import load_library

    lib = load_library()
    if lib is None:
        return False
    lib.set_omp_threads(n)
    _omp_synced = n
    return True


def get(name: str, dtype) -> object | None:
    """C kernel callable for *name*/*dtype*, or ``None`` for NumPy fallback."""
    if config.runtime.backend == "numpy":
        _count("fallback", name)
        return None
    from repro.kernels.cbindings import load_library

    lib = load_library()
    if lib is None:
        if config.runtime.backend == "c":
            from repro.errors import KernelError

            raise KernelError(
                "REPRO_BACKEND=c requested but the kernel library is unavailable"
            )
        _count("fallback", name)
        return None
    _sync_omp_threads(lib)
    try:
        fn = lib.get(name, dtype)
    except Exception:
        if config.runtime.backend == "c":
            raise
        _count("fallback", name)
        return None
    _count("hit" if fn is not None else "fallback", name)
    return fn


def backend_in_use(dtype=np.float64) -> str:
    """``"c"`` when compiled kernels will serve SpMV calls, else ``"numpy"``."""
    return "c" if get("csr_spmv", dtype) is not None else "numpy"


def omp_threads() -> int:
    """Max OpenMP threads the compiled library reports (1 without it)."""
    if config.runtime.backend == "numpy":
        return 1
    from repro.kernels.cbindings import load_library

    lib = load_library()
    return lib.omp_max_threads if lib is not None else 1
