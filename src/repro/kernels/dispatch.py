"""Backend dispatch: pick the C kernel or fall back to NumPy.

``get(name, dtype)`` is the single entry point the sparse formats call.
It returns a typed C callable, or ``None`` when the caller should run its
NumPy path — because the user forced ``REPRO_BACKEND=numpy``, the compile
failed, or the dtype has no compiled variant.
"""

from __future__ import annotations

import numpy as np

from repro import config


def _count(outcome: str, name: str) -> None:
    """Backend-choice counters: ``dispatch.hit.*`` vs ``dispatch.fallback.*``."""
    from repro.obs import metrics as obs_metrics

    obs_metrics.counter(
        f"dispatch.{outcome}.{name}",
        "kernel dispatch outcomes (hit = compiled C, fallback = NumPy)",
    ).inc()


def get(name: str, dtype) -> object | None:
    """C kernel callable for *name*/*dtype*, or ``None`` for NumPy fallback."""
    if config.runtime.backend == "numpy":
        _count("fallback", name)
        return None
    from repro.kernels.cbindings import load_library

    lib = load_library()
    if lib is None:
        if config.runtime.backend == "c":
            from repro.errors import KernelError

            raise KernelError(
                "REPRO_BACKEND=c requested but the kernel library is unavailable"
            )
        _count("fallback", name)
        return None
    try:
        fn = lib.get(name, dtype)
    except Exception:
        if config.runtime.backend == "c":
            raise
        _count("fallback", name)
        return None
    _count("hit" if fn is not None else "fallback", name)
    return fn


def backend_in_use(dtype=np.float64) -> str:
    """``"c"`` when compiled kernels will serve SpMV calls, else ``"numpy"``."""
    return "c" if get("csr_spmv", dtype) is not None else "numpy"


def omp_threads() -> int:
    """Max OpenMP threads the compiled library reports (1 without it)."""
    if config.runtime.backend == "numpy":
        return 1
    from repro.kernels.cbindings import load_library

    lib = load_library()
    return lib.omp_max_threads if lib is not None else 1
