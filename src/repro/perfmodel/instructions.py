"""Per-format instruction profiles for the performance model.

For one SpMV pass, count the work classes that dominate SpMV kernels:

* ``fma_lane_groups``   — vector FMA issues (one per SIMD register of work)
* ``vector_mem_ops``    — vector loads/stores of contiguous data
* ``gather_elems``      — elements fetched through an index (x or y gather)
* ``scatter_elems``     — elements stored through an index
* ``expand_ops``        — mask-expansion vector operations (vexpand /
  soft-vexpand, the CSCV-M / SPC5 cost)
* ``scalar_ops``        — scalar bookkeeping (loop/row/block overhead)

The counts are derived from each format object's actual arrays, so padding
ratios, block counts and map sizes all enter with their true values; only
the *costs* of the classes are machine parameters
(:class:`repro.perfmodel.platform.Machine`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.sparse.matrix_base import SpMVFormat


#: Achieved fraction of peak bandwidth per format when bandwidth-bound.
#: Calibrated against the paper's Fig 11 effective-bandwidth-usage data:
#: streaming formats (CSCV, SPC5) approach the MLC peak (the paper reports
#: CSCV-Z at 98.4% of M_PBw); gather/scatter formats waste cache lines on
#: random x/y access and land much lower.
BW_EFFICIENCY = {
    "csr": 0.65,
    "mkl-csr": 0.65,
    "merge": 0.40,
    "csc": 0.50,
    "mkl-csc": 0.50,
    "ell": 0.55,
    "esb": 0.45,
    "csr5": 0.65,
    "cvr": 0.50,
    "vhcc": 0.75,
    "spc5": 0.70,
    "cscv-z": 0.95,
    "cscv-m": 0.95,
    "coo": 0.40,
    "csc-vec": 0.50,
    "hyb": 0.55,
    "bsr": 0.70,
}


@dataclass(frozen=True)
class InstructionProfile:
    """Instruction-class counts for one SpMV pass."""

    fma_lane_groups: float
    vector_mem_ops: float
    gather_elems: float
    scatter_elems: float
    expand_ops: float
    scalar_ops: float
    #: achieved fraction of peak bandwidth when bandwidth-bound
    bw_efficiency: float = 0.6

    def cycles(self, machine, itemsize: int) -> float:
        """Estimated core-cycles for one SpMV pass on *machine*.

        FMA issues dual-port; contiguous vector memory ops dual-port;
        the slower of the two pipelines binds.  Gathers/scatters cost
        ``gather_cost`` cycles per element, expansions ``expand_cost``
        per vector op, scalar bookkeeping one cycle per op.
        """
        lanes = machine.simd_lanes(itemsize)
        pipelined = max(
            self.fma_lane_groups / machine.fma_ports,
            self.vector_mem_ops / 2.0,
        )
        return (
            pipelined
            + self.gather_elems * machine.gather_cost / 2.0
            + self.scatter_elems * machine.gather_cost / 2.0
            + self.expand_ops * machine.expand_cost
            + self.scalar_ops
        ) / 1.0 + 0.0 * lanes


def _lanes(machine, fmt) -> int:
    return machine.simd_lanes(fmt.dtype.itemsize)


def instruction_profile(fmt: SpMVFormat, machine) -> InstructionProfile:
    """Build the instruction profile of *fmt* for *machine*'s SIMD width."""
    prof = _raw_profile(fmt, machine)
    eff = BW_EFFICIENCY.get(fmt.name, 0.6)
    return InstructionProfile(
        fma_lane_groups=prof.fma_lane_groups,
        vector_mem_ops=prof.vector_mem_ops,
        gather_elems=prof.gather_elems,
        scatter_elems=prof.scatter_elems,
        expand_ops=prof.expand_ops,
        scalar_ops=prof.scalar_ops,
        bw_efficiency=eff,
    )


def _raw_profile(fmt: SpMVFormat, machine) -> InstructionProfile:
    name = fmt.name
    m, n = fmt.shape
    nnz = fmt.nnz
    lanes = _lanes(machine, fmt)

    if name in ("csr", "mkl-csr", "merge"):
        # gather x per element; vector loads of vals+cols; row overhead
        extra = 0.0
        if name == "merge":
            extra = 4.0 * getattr(fmt, "num_chunks", 64)  # chunk fixups
        return InstructionProfile(
            fma_lane_groups=nnz / lanes,
            vector_mem_ops=2.0 * nnz / lanes,
            gather_elems=float(nnz),
            scatter_elems=0.0,
            expand_ops=0.0,
            scalar_ops=float(m) + extra,
        )
    if name == "csc-vec":
        # Algorithm 2: padded segment FMAs plus gather+scatter per element
        slots = float(fmt.padded_slots())
        return InstructionProfile(
            fma_lane_groups=slots / lanes,
            vector_mem_ops=2.0 * slots / lanes,
            gather_elems=float(nnz),
            scatter_elems=float(nnz),
            expand_ops=0.0,
            scalar_ops=float(n) + float(fmt.num_segments),
        )
    if name in ("csc", "mkl-csc"):
        # y gathered *and* scattered per element (paper Algorithm 2)
        return InstructionProfile(
            fma_lane_groups=nnz / lanes,
            vector_mem_ops=2.0 * nnz / lanes,
            gather_elems=float(nnz),
            scatter_elems=float(nnz),
            expand_ops=0.0,
            scalar_ops=float(n),
        )
    if name == "ell":
        slots = float(fmt.vals.size)
        return InstructionProfile(
            fma_lane_groups=slots / lanes,
            vector_mem_ops=2.0 * slots / lanes,
            gather_elems=slots,
            scatter_elems=0.0,
            expand_ops=0.0,
            scalar_ops=float(m),
        )
    if name == "hyb":
        ell_slots = float(fmt.ell_vals.size)
        tail = float(fmt.coo_nnz)
        return InstructionProfile(
            fma_lane_groups=(ell_slots + tail) / lanes,
            vector_mem_ops=2.0 * (ell_slots + tail) / lanes,
            gather_elems=ell_slots + tail,
            scatter_elems=tail,  # COO tail scatters into y
            expand_ops=0.0,
            scalar_ops=float(m),
        )
    if name == "bsr":
        slots = float(fmt.blocks.size)
        return InstructionProfile(
            fma_lane_groups=slots / lanes,
            vector_mem_ops=2.0 * slots / lanes,
            gather_elems=0.0,  # x tiles are contiguous slices
            scatter_elems=0.0,
            expand_ops=0.0,
            scalar_ops=float(fmt.num_blocks) + float(m),
        )
    if name == "esb":
        slots = float(nnz * (1.0 + fmt.padding_ratio()))
        return InstructionProfile(
            fma_lane_groups=slots / lanes,
            vector_mem_ops=2.0 * slots / lanes,
            gather_elems=slots,
            scatter_elems=float(m),  # permutation write-back
            expand_ops=0.0,
            scalar_ops=float(len(fmt.slices)) * 4.0,
        )
    if name == "csr5":
        padded = float(fmt.tile_vals.size)
        return InstructionProfile(
            fma_lane_groups=padded / lanes,
            vector_mem_ops=2.0 * padded / lanes,
            gather_elems=float(nnz),
            scatter_elems=0.0,
            # segmented sum: ~2 extra vector ops per tile column
            expand_ops=0.0,
            scalar_ops=float(m) + 2.0 * padded / lanes,
        )
    if name == "cvr":
        slots = float(fmt.lane_vals.size)
        switches = float(
            np.count_nonzero(np.diff(fmt.lane_rows, axis=0)) + fmt.num_lanes
        )
        return InstructionProfile(
            fma_lane_groups=slots / lanes,
            vector_mem_ops=2.0 * slots / lanes,
            gather_elems=slots,
            scatter_elems=switches,
            expand_ops=0.0,
            scalar_ops=switches,
        )
    if name == "vhcc":
        return InstructionProfile(
            fma_lane_groups=nnz / lanes,
            vector_mem_ops=2.0 * nnz / lanes,
            gather_elems=float(nnz),
            scatter_elems=0.0,
            scalar_ops=float(m) + 2.0 * nnz / lanes,  # segmented scan
            expand_ops=0.0,
        )
    if name == "spc5":
        blocks = float(fmt.num_blocks)
        width_groups = np.ceil(fmt.width / lanes)
        return InstructionProfile(
            fma_lane_groups=blocks * width_groups,
            vector_mem_ops=2.0 * blocks * width_groups,
            gather_elems=0.0,
            scatter_elems=0.0,
            expand_ops=blocks * width_groups,
            scalar_ops=blocks + float(m),
        )
    if name == "cscv-z":
        d = fmt.data
        slots = float(d.stored_slots)
        map_slots = float(d.ymap.size)
        return InstructionProfile(
            fma_lane_groups=slots / lanes,
            # load values + load ytilde + store ytilde
            vector_mem_ops=3.0 * slots / lanes,
            gather_elems=0.0,
            scatter_elems=map_slots,  # the per-block reorder pass
            expand_ops=0.0,
            scalar_ops=float(d.num_vxg) + 2.0 * d.num_blocks,
        )
    if name == "cscv-m":
        d = fmt.data
        slots = float(d.stored_slots)
        map_slots = float(d.ymap.size)
        s_vvec_groups = np.ceil(d.params.s_vvec / lanes)
        return InstructionProfile(
            fma_lane_groups=slots / lanes,
            vector_mem_ops=3.0 * slots / lanes,
            gather_elems=0.0,
            scatter_elems=map_slots,
            expand_ops=float(d.num_cscve) * s_vvec_groups,
            scalar_ops=float(d.num_vxg) + 2.0 * d.num_blocks,
        )
    raise ValidationError(f"no instruction profile for format {name!r}")


def profile_with_efficiency(fmt: SpMVFormat, machine) -> InstructionProfile:
    """Deprecated alias of :func:`instruction_profile`."""
    return instruction_profile(fmt, machine)
