"""Machine descriptions for the performance model.

``SKL`` and ``ZEN2`` encode the paper's two evaluation systems
(Section V-A); ``HOST`` describes this container for sanity-checking the
model against measured single-thread numbers.

The per-core figures are standard microarchitectural values: one FMA unit
pair per core, SIMD width from the ISA, a sustained per-core load
bandwidth well above its share of the socket bandwidth (so few threads
are never bandwidth-bound — matching the paper's observation that SpMV is
latency-bound at low thread counts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class Machine:
    """Parameters the roofline/latency model needs."""

    name: str
    #: physical cores (across both sockets)
    cores: int
    #: hardware threads usable (paper runs up to this many OpenMP threads)
    max_threads: int
    #: SIMD register width in bits
    simd_bits: int
    #: sustained clock in GHz under all-core vector load
    ghz: float
    #: peak read-only memory bandwidth, GB/s (paper: Intel MLC)
    peak_bw_gbs: float
    #: per-core sustained streaming bandwidth, GB/s
    core_bw_gbs: float
    #: FMA issue ports per core
    fma_ports: int = 2
    #: relative cost (cycles) of a gather/scatter element vs a vector lane
    gather_cost: float = 2.0
    #: cycles of overhead per mask-expansion vector op (vexpand = cheap,
    #: soft-vexpand = expensive); set per platform
    expand_cost: float = 1.0

    def __post_init__(self):
        if self.cores < 1 or self.max_threads < self.cores:
            raise ValidationError("cores >= 1 and max_threads >= cores required")
        if min(self.simd_bits, self.ghz, self.peak_bw_gbs, self.core_bw_gbs) <= 0:
            raise ValidationError("machine rates must be positive")

    def simd_lanes(self, itemsize: int) -> int:
        """Vector lanes for elements of *itemsize* bytes."""
        return max(self.simd_bits // (8 * itemsize), 1)

    def flops_peak(self, threads: int, itemsize: int) -> float:
        """Peak FMA GFLOP/s at *threads* (2 flops per lane per FMA)."""
        t = min(threads, self.max_threads)
        eff_cores = min(t, self.cores)
        return eff_cores * self.ghz * self.fma_ports * self.simd_lanes(itemsize) * 2.0

    def bandwidth(self, threads: int) -> float:
        """Aggregate streaming bandwidth (GB/s) available to *threads*."""
        t = min(threads, self.max_threads)
        return min(t * self.core_bw_gbs, self.peak_bw_gbs)


#: Paper: dual-socket Intel Xeon Gold 6130 (Skylake-SP), AVX-512,
#: hyper-threading on, MLC read-only bandwidth 202.8 GB/s.
SKL = Machine(
    name="skl",
    cores=32,
    max_threads=64,
    simd_bits=512,
    ghz=1.9,            # AVX-512 all-core licence clock of the 6130
    peak_bw_gbs=202.8,
    core_bw_gbs=12.0,
    gather_cost=2.5,
    expand_cost=8.0,    # hardware vexpand: short but serially dependent
)

#: Paper: dual-socket AMD EPYC 7452 (Zen2), AVX2 (256-bit),
#: MLC read-only bandwidth 236.43 GB/s.
ZEN2 = Machine(
    name="zen2",
    cores=64,
    max_threads=64,
    simd_bits=256,
    ghz=2.35,
    peak_bw_gbs=236.43,
    core_bw_gbs=20.0,
    gather_cost=3.5,
    expand_cost=12.0,   # soft-vexpand: the paper's "high instruction
                        # overhead" — M at 1T on Zen2 runs at half SKL's
)

#: This container (single core, AVX-512-capable).  Bandwidth figures are
#: rough; use repro.bench.calibrate to refit from a stream benchmark.
HOST = Machine(
    name="host",
    cores=1,
    max_threads=1,
    simd_bits=512,
    ghz=2.5,
    peak_bw_gbs=20.0,
    core_bw_gbs=20.0,
    gather_cost=2.0,
    expand_cost=1.0,
)


def machine_by_name(name: str) -> Machine:
    """Lookup: ``"skl"``, ``"zen2"`` or ``"host"``."""
    table = {"skl": SKL, "zen2": ZEN2, "host": HOST}
    try:
        return table[name.lower()]
    except KeyError:
        raise ValidationError(f"unknown machine {name!r}; options {sorted(table)}") from None
