"""Roofline + latency model: predicted GFLOP/s per thread count.

For a format ``f`` on machine ``M`` with ``t`` threads:

* **memory time** = ``M_Rit(f) / bandwidth(M, t)`` — the bandwidth roof
  (Section V-C's effective-bandwidth analysis, Fig 11);
* **compute time** = ``cycles(profile(f), M) / (t_eff * ghz)`` — the
  instruction/latency bound that dominates at few threads (Section II's
  observation, Fig 10's linear region);
* predicted ``T = max(memory, compute)``, GFLOP/s = ``2 nnz / T``.

Thread counts beyond the physical cores contribute partial extra
throughput (hyper-threading), modelled with a single SMT yield factor.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.instructions import instruction_profile
from repro.perfmodel.platform import Machine
from repro.sparse.matrix_base import SpMVFormat
from repro.sparse.stats import memory_requirement

#: extra throughput of the second hardware thread of a core
SMT_YIELD = 0.25


def _effective_cores(machine: Machine, threads: int) -> float:
    t = min(threads, machine.max_threads)
    if t <= machine.cores:
        return float(t)
    return machine.cores + SMT_YIELD * (t - machine.cores)


def predict_time(fmt: SpMVFormat, machine: Machine, threads: int) -> dict[str, float]:
    """Predicted SpMV time (seconds) with its two components."""
    if threads < 1:
        raise ValueError("threads must be >= 1")
    mem = memory_requirement(fmt)
    prof = instruction_profile(fmt, machine)
    mem_time = mem["M_rit"] / (machine.bandwidth(threads) * prof.bw_efficiency * 1e9)
    cycles = prof.cycles(machine, fmt.dtype.itemsize)
    compute_time = cycles / (_effective_cores(machine, threads) * machine.ghz * 1e9)
    return {
        "memory": mem_time,
        "compute": compute_time,
        "total": max(mem_time, compute_time),
    }


def predict_gflops(fmt: SpMVFormat, machine: Machine, threads: int) -> float:
    """Predicted GFLOP/s (``2 nnz / T``) of *fmt* on *machine*."""
    t = predict_time(fmt, machine, threads)["total"]
    return 2.0 * fmt.nnz / t / 1e9


def scalability_curve(
    fmt: SpMVFormat, machine: Machine, thread_counts=(1, 2, 4, 8, 16, 32, 64)
) -> dict[int, float]:
    """Fig 10-style curve: thread count -> predicted GFLOP/s."""
    return {
        int(t): predict_gflops(fmt, machine, int(t))
        for t in thread_counts
        if t <= machine.max_threads
    }


def bottleneck(fmt: SpMVFormat, machine: Machine, threads: int) -> str:
    """``"memory"`` or ``"compute"`` — which bound binds at *threads*."""
    t = predict_time(fmt, machine, threads)
    return "memory" if t["memory"] >= t["compute"] else "compute"


def crossover_threads(
    fmt_a: SpMVFormat, fmt_b: SpMVFormat, machine: Machine, max_threads: int = 64
) -> int | None:
    """First thread count where *fmt_b* overtakes *fmt_a* (None if never).

    Used for the CSCV-Z / CSCV-M crossover the paper reports (Z wins at
    few threads, M wins once bandwidth binds).
    """
    for t in range(1, min(max_threads, machine.max_threads) + 1):
        if predict_gflops(fmt_b, machine, t) > predict_gflops(fmt_a, machine, t):
            return t
    return None


def effective_bw_ratio_model(fmt: SpMVFormat, machine: Machine, threads: int) -> float:
    """Model-side ``R_EM``: achieved traffic rate over the platform peak."""
    t = predict_time(fmt, machine, threads)["total"]
    mem = memory_requirement(fmt)["M_rit"]
    return mem / (t * machine.peak_bw_gbs * 1e9)
