"""Analytic SpMV performance model.

This container has one CPU core, so the paper's thread-scaling and
cross-platform results (Figs 9-11, Table IV) cannot be *measured* here.
They can, however, be *modelled*: the paper itself explains every ranking
through two quantities —

* ``M_Rit`` — bytes that must stream from memory per iteration (computed
  exactly from each format's layout, :mod:`repro.sparse.stats`), and
* inner-loop instruction cost (gathers, scatters, mask expansions, FMA
  width — counted per format in :mod:`repro.perfmodel.instructions`).

:mod:`repro.perfmodel.roofline` combines them under a machine description
(:mod:`repro.perfmodel.platform` ships the paper's SKL and Zen2 systems)
into predicted GFLOP/s per thread count: a latency/throughput bound that
scales with cores, capped by the bandwidth roof ``M_PBw / M_Rit``.
This reproduces who-wins/where-crossovers-fall, which is the level the
reproduction targets (absolute numbers belong to the authors' testbed).
"""

from repro.perfmodel.instructions import InstructionProfile, instruction_profile
from repro.perfmodel.platform import HOST, SKL, ZEN2, Machine
from repro.perfmodel.roofline import predict_gflops, scalability_curve

__all__ = [
    "Machine",
    "SKL",
    "ZEN2",
    "HOST",
    "InstructionProfile",
    "instruction_profile",
    "predict_gflops",
    "scalability_curve",
]
