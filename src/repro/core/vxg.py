"""VxG construction trace — the two-pass ordering of Fig 6.

The production VxG packing is fused into :mod:`repro.core.builder`; this
module re-derives it step by step for one block so the construction can be
inspected, tested against the builder, and rendered the way Fig 6 draws it:

1. order each column's CSCVEs by curve offset and cover them with
   fixed-size windows of ``s_vxg`` consecutive offsets (pass one —
   windows forced to include absent offsets acquire whole padding CSCVEs
   and are *marked red* in the figure);
2. order the VxGs by their nonzero count (pass two — groups similar
   workloads so the inner loop length is stable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class VxGTrace:
    """One VxG as the figure draws it."""

    column: int
    #: first curve offset covered by the window
    d_start: int
    #: per-CSCVE nonzero counts inside the window (0 = padding CSCVE)
    cscve_counts: tuple[int, ...]
    #: did windowing introduce an all-padding CSCVE? (the red mark)
    has_extra_padding: bool

    @property
    def nnz(self) -> int:
        return sum(self.cscve_counts)


def construct_vxgs(
    column_offsets: dict[int, list[tuple[int, int]]],
    s_vxg: int,
) -> list[VxGTrace]:
    """Pass one: cover each column's offsets with anchored windows.

    Parameters
    ----------
    column_offsets : dict
        column id -> list of ``(offset d, nonzero count)`` per CSCVE.
    s_vxg : int
        CSCVEs per VxG.
    """
    if s_vxg < 1:
        raise ValidationError("s_vxg must be >= 1")
    out: list[VxGTrace] = []
    for col in sorted(column_offsets):
        entries = sorted(column_offsets[col])
        if not entries:
            continue
        counts = dict(entries)
        anchor = entries[0][0]
        windows = sorted({(d - anchor) // s_vxg for d, _ in entries})
        for w in windows:
            d0 = anchor + w * s_vxg
            cs = tuple(counts.get(d0 + k, 0) for k in range(s_vxg))
            out.append(
                VxGTrace(
                    column=col,
                    d_start=d0,
                    cscve_counts=cs,
                    has_extra_padding=any(c == 0 for c in cs),
                )
            )
    return out


def order_by_count(vxgs: list[VxGTrace]) -> list[VxGTrace]:
    """Pass two: sort VxGs by nonzero count (descending, stable)."""
    return sorted(vxgs, key=lambda g: -g.nnz)


def index_data_ratio(num_vxg: int, num_cscve: int, nnz: int) -> dict[str, float]:
    """Index-volume comparison the paper quotes (Section IV-D).

    Returns the VxG index volume relative to per-CSCVE indexing
    (paper: ~0.25x) and relative to CSC row indices (paper: ~0.03x).
    Each VxG and each CSCVE costs one (column, start) pair; CSC costs one
    row index per nonzero.
    """
    if nnz == 0:
        return {"vs_cscve": 0.0, "vs_csc": 0.0}
    per_vxg = 2.0 * num_vxg
    per_cscve = 2.0 * num_cscve
    per_csc = float(nnz)
    return {
        "vs_cscve": per_vxg / per_cscve if per_cscve else 0.0,
        "vs_csc": per_vxg / per_csc,
    }


def render_trace(vxgs: list[VxGTrace]) -> str:
    """ASCII rendering in the style of Fig 6: ``(offset, count)`` boxes."""
    lines = []
    for g in vxgs:
        boxes = " ".join(
            f"({g.d_start + k},{c})" for k, c in enumerate(g.cscve_counts)
        )
        mark = " *extra-padding*" if g.has_extra_padding else ""
        lines.append(f"col {g.column:4d}: [{boxes}]{mark}")
    return "\n".join(lines)
