"""CSCV serialization: save/load converted matrices.

The Fig 7 pipeline's conversion step costs hundreds of milliseconds to
seconds; production CT reconstructors convert once per scanner geometry
and reuse the matrix across patients.  This module persists a
:class:`~repro.core.builder.CSCVData` (plus its parameter triple and
shape) to a single compressed ``.npz`` and restores it bit-exactly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.builder import CSCVData
from repro.core.params import CSCVParams
from repro.errors import FormatError

#: bump when the array layout changes
FORMAT_VERSION = 1

_ARRAYS = (
    "values",
    "vxg_col",
    "vxg_start",
    "blk_vxg_ptr",
    "vxg_voff",
    "vxg_masks",
    "e_col",
    "e_start",
    "voff",
    "masks",
    "packed",
    "blk_e_ptr",
    "blk_ysize",
    "blk_map_ptr",
    "ymap",
    "present_blocks",
)


def save_cscv(path, data: CSCVData) -> None:
    """Write *data* to *path* as a compressed ``.npz``."""
    path = Path(path)
    meta = np.array(
        [
            FORMAT_VERSION,
            data.shape[0],
            data.shape[1],
            data.nnz,
            data.params.s_vvec,
            data.params.s_imgb,
            data.params.s_vxg,
        ],
        dtype=np.int64,
    )
    arrays = {name: getattr(data, name) for name in _ARRAYS}
    np.savez_compressed(path, _meta=meta, **arrays)


def load_cscv(path) -> CSCVData:
    """Restore a :class:`CSCVData` saved by :func:`save_cscv`.

    Raises
    ------
    FormatError
        On version mismatch or missing arrays.
    """
    path = Path(path)
    with np.load(path) as z:
        if "_meta" not in z:
            raise FormatError(f"{path} is not a CSCV file (no _meta)")
        meta = z["_meta"]
        if int(meta[0]) != FORMAT_VERSION:
            raise FormatError(
                f"CSCV file version {int(meta[0])} != supported {FORMAT_VERSION}"
            )
        missing = [n for n in _ARRAYS if n not in z]
        if missing:
            raise FormatError(f"CSCV file missing arrays: {missing}")
        arrays = {name: z[name] for name in _ARRAYS}
    params = CSCVParams(int(meta[4]), int(meta[5]), int(meta[6]))
    return CSCVData(
        shape=(int(meta[1]), int(meta[2])),
        nnz=int(meta[3]),
        params=params,
        dtype=arrays["values"].dtype,
        **arrays,
    )
