"""CSCV serialization: save/load converted matrices.

The Fig 7 pipeline's conversion step costs hundreds of milliseconds to
seconds; production CT reconstructors convert once per scanner geometry
and reuse the matrix across patients.  This module persists a
:class:`~repro.core.builder.CSCVData` (plus its parameter triple and
shape) in two layouts:

* a single compressed ``.npz`` (:func:`save_cscv` / :func:`load_cscv`)
  for hand-managed files — compact, but decompressed into fresh arrays
  on every load;
* a directory of raw ``.npy`` files (:func:`save_cscv_dir` /
  :func:`load_cscv_dir`) — the persistent operator cache's layout, where
  every array loads with ``np.load(..., mmap_mode="r")``: zero-copy,
  lazily paged, and shared read-only across worker processes through the
  OS page cache.

Both writers are atomic *and durable* (temp name + fsync +
``os.replace`` + directory fsync via :mod:`repro.utils.durable`) so a
killed process — or a power cut — can never leave a truncated entry
behind.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.core.builder import CSCVData
from repro.core.params import CSCVParams
from repro.errors import FormatError
from repro.utils.durable import fsync_file, replace_durable

#: bump when the array layout changes
FORMAT_VERSION = 1

_ARRAYS = (
    "values",
    "vxg_col",
    "vxg_start",
    "blk_vxg_ptr",
    "vxg_voff",
    "vxg_masks",
    "e_col",
    "e_start",
    "voff",
    "masks",
    "packed",
    "blk_e_ptr",
    "blk_ysize",
    "blk_map_ptr",
    "ymap",
    "present_blocks",
)


def cscv_meta_array(data: CSCVData) -> np.ndarray:
    """The 7-int64 header stored next to the arrays (see ``_validate``)."""
    return np.array(
        [
            FORMAT_VERSION,
            data.shape[0],
            data.shape[1],
            data.nnz,
            data.params.s_vvec,
            data.params.s_imgb,
            data.params.s_vxg,
        ],
        dtype=np.int64,
    )


def cscv_data_from_arrays(
    meta: np.ndarray, arrays: dict, *, source="<arrays>", validate: bool = True
) -> CSCVData:
    """Reassemble a :class:`CSCVData` from a meta header + array dict.

    Shared by the ``.npz`` loader and the cache's mmap loader; *arrays*
    may be memory-mapped — they are used as-is, never copied.
    """
    meta = np.asarray(meta)
    if validate:
        _validate(source, meta, arrays)
    params = CSCVParams(int(meta[4]), int(meta[5]), int(meta[6]))
    return CSCVData(
        shape=(int(meta[1]), int(meta[2])),
        nnz=int(meta[3]),
        params=params,
        dtype=arrays["values"].dtype,
        **{name: arrays[name] for name in _ARRAYS},
    )


def save_cscv(path, data: CSCVData) -> None:
    """Write *data* to *path* as a compressed ``.npz`` (atomically).

    The archive is assembled in a temp file in the same directory,
    fsynced, and ``os.replace``d into place (directory fsynced too), so
    *path* either holds the complete old content or the complete new
    content — never a truncated archive, even across a power cut.
    """
    path = Path(path)
    arrays = {name: getattr(data, name) for name in _ARRAYS}
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, _meta=cscv_meta_array(data), **arrays)
        replace_durable(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _check_ptr(name: str, ptr: np.ndarray, end: int | None = None) -> None:
    """A pointer array must start at 0, be non-decreasing, and (when *end*
    is given) finish exactly at *end*."""
    if ptr.size == 0:
        raise FormatError(f"CSCV file corrupt: {name} is empty")
    if int(ptr[0]) != 0:
        raise FormatError(f"CSCV file corrupt: {name}[0] = {int(ptr[0])}, expected 0")
    if np.any(np.diff(ptr) < 0):
        raise FormatError(f"CSCV file corrupt: {name} is not non-decreasing")
    if end is not None and int(ptr[-1]) != end:
        raise FormatError(
            f"CSCV file corrupt: {name}[-1] = {int(ptr[-1])}, expected {end}"
        )


def _validate(path, meta: np.ndarray, arrays: dict) -> None:
    """Cross-check the loaded arrays against the metadata.

    A truncated download or a file edited by other tooling should fail
    here with a named field, not deep inside an SpMV kernel.
    """
    if meta.ndim != 1 or meta.size != 7:
        raise FormatError(
            f"{path}: _meta must hold 7 int64 entries, got shape {meta.shape}"
        )
    m, n, nnz = int(meta[1]), int(meta[2]), int(meta[3])
    if m < 0 or n < 0:
        raise FormatError(f"CSCV file corrupt: negative shape ({m}, {n})")
    if nnz < 0:
        raise FormatError(f"CSCV file corrupt: negative nnz {nnz}")
    s_vvec, s_imgb, s_vxg = int(meta[4]), int(meta[5]), int(meta[6])
    if s_vvec < 1 or s_imgb < 1 or s_vxg < 1:
        raise FormatError(
            f"CSCV file corrupt: parameters ({s_vvec}, {s_imgb}, {s_vxg}) "
            "must all be >= 1"
        )
    vxg_len = s_vxg * s_vvec
    num_vxg = int(arrays["vxg_col"].size)
    if arrays["values"].size != num_vxg * vxg_len:
        raise FormatError(
            f"CSCV file corrupt: values has {arrays['values'].size} slots, "
            f"expected num_vxg * vxg_len = {num_vxg} * {vxg_len}"
        )
    if arrays["vxg_start"].size != num_vxg:
        raise FormatError(
            f"CSCV file corrupt: vxg_start length {arrays['vxg_start'].size} "
            f"!= num_vxg {num_vxg}"
        )
    if arrays["packed"].size != nnz:
        raise FormatError(
            f"CSCV file corrupt: packed holds {arrays['packed'].size} values, "
            f"expected nnz = {nnz}"
        )
    _check_ptr("voff", arrays["voff"], nnz)
    # vxg_voff holds one packed-stream start offset per VxG (not a +1 ptr)
    if arrays["vxg_voff"].size != num_vxg:
        raise FormatError(
            f"CSCV file corrupt: vxg_voff length {arrays['vxg_voff'].size} "
            f"!= num_vxg {num_vxg}"
        )
    if np.any(np.diff(arrays["vxg_voff"]) < 0):
        raise FormatError("CSCV file corrupt: vxg_voff is not non-decreasing")
    if num_vxg and (
        int(arrays["vxg_voff"][0]) < 0 or int(arrays["vxg_voff"][-1]) > nnz
    ):
        raise FormatError(
            f"CSCV file corrupt: vxg_voff offsets outside [0, nnz={nnz}]"
        )
    _check_ptr("blk_vxg_ptr", arrays["blk_vxg_ptr"], num_vxg)
    num_blocks = int(arrays["blk_vxg_ptr"].size) - 1
    if arrays["blk_ysize"].size != num_blocks:
        raise FormatError(
            f"CSCV file corrupt: blk_ysize length {arrays['blk_ysize'].size} "
            f"!= num_blocks {num_blocks}"
        )
    if np.any(arrays["blk_ysize"] < 0):
        raise FormatError("CSCV file corrupt: blk_ysize has negative entries")
    _check_ptr("blk_e_ptr", arrays["blk_e_ptr"], int(arrays["e_col"].size))
    if arrays["blk_e_ptr"].size != num_blocks + 1:
        raise FormatError(
            f"CSCV file corrupt: blk_e_ptr length {arrays['blk_e_ptr'].size} "
            f"!= num_blocks + 1 = {num_blocks + 1}"
        )
    _check_ptr("blk_map_ptr", arrays["blk_map_ptr"], int(arrays["ymap"].size))
    if arrays["blk_map_ptr"].size != num_blocks + 1:
        raise FormatError(
            f"CSCV file corrupt: blk_map_ptr length {arrays['blk_map_ptr'].size} "
            f"!= num_blocks + 1 = {num_blocks + 1}"
        )
    map_lens = np.diff(arrays["blk_map_ptr"])
    if np.any(map_lens != arrays["blk_ysize"]):
        bad = int(np.flatnonzero(map_lens != arrays["blk_ysize"])[0])
        raise FormatError(
            f"CSCV file corrupt: block {bad} maps {int(map_lens[bad])} slots "
            f"but blk_ysize says {int(arrays['blk_ysize'][bad])}"
        )


def load_cscv(path) -> CSCVData:
    """Restore a :class:`CSCVData` saved by :func:`save_cscv`.

    Raises
    ------
    FormatError
        On version mismatch, missing arrays, or internal inconsistency
        (nnz vs packed/values sizes, non-monotone block pointers, …).
    """
    path = Path(path)
    with np.load(path) as z:
        if "_meta" not in z:
            raise FormatError(f"{path} is not a CSCV file (no _meta)")
        meta = z["_meta"]
        if meta.size < 1:
            raise FormatError(f"{path} is not a CSCV file (empty _meta)")
        if int(meta[0]) != FORMAT_VERSION:
            raise FormatError(
                f"CSCV file version {int(meta[0])} != supported {FORMAT_VERSION}"
            )
        missing = [n for n in _ARRAYS if n not in z]
        if missing:
            raise FormatError(f"CSCV file missing arrays: {missing}")
        arrays = {name: z[name] for name in _ARRAYS}
    return cscv_data_from_arrays(meta, arrays, source=path)


# ---------------------------------------------------------------------- #
# directory layout (persistent operator cache; zero-copy mmap loads)

#: file name of the meta header inside a CSCV directory
META_FILE = "_meta.npy"


def save_cscv_dir(path, data: CSCVData) -> Path:
    """Write *data* as a directory of raw ``.npy`` files (atomically).

    Arrays are staged into a sibling temp directory (each file fsynced)
    and the whole directory is ``os.replace``d into place with the
    parent directory fsynced, so concurrent readers see either no entry
    or a complete one — and the entry survives a power cut.  Returns
    the final path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(
        tempfile.mkdtemp(prefix=path.name + ".", suffix=".tmp", dir=path.parent)
    )
    try:
        np.save(tmp / META_FILE, cscv_meta_array(data))
        for name in _ARRAYS:
            np.save(tmp / f"{name}.npy", getattr(data, name))
        for staged in tmp.iterdir():
            fsync_file(staged)
        if path.exists():
            shutil.rmtree(path)
        replace_durable(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


def load_cscv_dir(path, *, mmap_mode: str | None = "r") -> CSCVData:
    """Restore a :class:`CSCVData` saved by :func:`save_cscv_dir`.

    With the default ``mmap_mode="r"`` every array is memory-mapped
    read-only: loading costs a handful of page faults instead of a full
    decompress, and any number of processes mapping the same entry share
    one physical copy through the page cache.  Pass ``mmap_mode=None``
    for private in-memory copies.

    A partially-written entry (an array file missing or truncated) can
    only come from tooling that bypassed the atomic writer; it is evicted
    (the directory removed) before :class:`FormatError` is raised, so the
    broken entry cannot shadow a future rebuild.

    Raises
    ------
    FormatError
        On missing files, truncated arrays, version mismatch, or internal
        inconsistency (same validation as :func:`load_cscv`).
    """
    path = Path(path)
    meta_path = path / META_FILE
    if not meta_path.is_file():
        raise FormatError(f"{path} is not a CSCV directory (no {META_FILE})")

    def _evict(reason: str) -> FormatError:
        shutil.rmtree(path, ignore_errors=True)
        return FormatError(f"{reason} (evicted partial entry {path})")

    try:
        meta = np.load(meta_path)
    except (OSError, ValueError, EOFError) as exc:
        raise _evict(f"{meta_path}: unreadable meta header: {exc}") from exc
    if meta.size < 1:
        raise FormatError(f"{path} is not a CSCV directory (empty meta)")
    if int(meta.flat[0]) != FORMAT_VERSION:
        raise FormatError(
            f"CSCV dir version {int(meta.flat[0])} != supported {FORMAT_VERSION}"
        )
    arrays = {}
    missing = []
    for name in _ARRAYS:
        f = path / f"{name}.npy"
        if not f.is_file():
            missing.append(name)
            continue
        try:
            arrays[name] = np.load(f, mmap_mode=mmap_mode)
        except (OSError, ValueError, EOFError) as exc:
            # np.load raises EOFError/ValueError on a truncated .npy
            raise _evict(f"{f}: unreadable array: {exc}") from exc
    if missing:
        raise _evict(f"CSCV dir missing arrays: {missing}")
    return cscv_data_from_arrays(meta, arrays, source=path)
