"""Persistent content-addressed operator cache with zero-copy mmap loads.

Building a CT system matrix (projector sweep -> COO -> IOBLR -> CSCVE/VxG
packing) dominates end-to-end time, yet the result is a pure function of
(geometry, projector, dtype, CSCV parameters, format, kernel ABI).  The
paper amortises the conversion over thousands of SpMV iterations (Fig 7);
this module amortises it over *processes*: the first build persists the
format's arrays on disk, every later construction memory-maps them back
read-only in milliseconds, and any number of worker processes mapping the
same entry share one physical copy through the OS page cache.

Layout on disk (``REPRO_CACHE_DIR``, default ``~/.cache/repro``)::

    <root>/operators/
        entries/<key>/           one cache entry (atomic dir rename)
            entry.json           meta + per-file sha256 checksums
            <array>.npy          raw arrays, np.load(..., mmap_mode="r")
            stamp                mtime = last use (LRU eviction order)
        locks/<key>.lock         cross-process build stampede protection
        stats.json               lifetime hit/miss/eviction counters

Keys are sha256 hashes over a canonical JSON encoding of every input the
arrays depend on, so *any* change — one geometry field, the projector,
the dtype, a CSCV parameter, the serialization schema, or the kernel ABI
version — lands in a different entry.  Integrity is belt-and-braces: the
per-format validation that :func:`repro.core.io.load_cscv` applies runs
on every load, plus (by default) a sha256 check of each array file; any
mismatch evicts the corrupt entry and falls back to a fresh build.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import config
from repro.errors import FormatError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.resilience import faults
from repro.resilience.retry import backoff_delays
from repro.utils.durable import fsync_file, replace_durable, write_bytes_durable

#: bump when the entry layout (entry.json schema, file naming) changes
CACHE_SCHEMA = 1

#: seconds a builder may hold the per-key lock before waiters give up and
#: build redundantly (safe: stores are atomic renames, last writer wins)
LOCK_TIMEOUT = float(os.environ.get("REPRO_CACHE_LOCK_TIMEOUT", "120"))

_ENTRY_JSON = "entry.json"
_STAMP = "stamp"


def _abi_version() -> int:
    from repro.kernels import KERNELS_ABI_VERSION

    return KERNELS_ABI_VERSION


def geometry_signature(geom) -> dict:
    """Canonical JSON-safe description of a geometry object.

    Uses the dataclass fields (every geometry in :mod:`repro.geometry` is
    a frozen dataclass), prefixed with the class name so two geometry
    types with coincidentally equal fields cannot collide.
    """
    import dataclasses

    if dataclasses.is_dataclass(geom):
        fields = {
            f.name: getattr(geom, f.name) for f in dataclasses.fields(geom)
        }
    else:  # out-of-tree geometry: fall back to its public dict
        fields = {
            k: v for k, v in sorted(vars(geom).items()) if not k.startswith("_")
        }
    safe = {}
    for k, v in fields.items():
        if isinstance(v, (bool, int, str)) or v is None:
            safe[k] = v
        elif isinstance(v, float):
            # hex round-trips exactly; repr could collapse distinct floats
            safe[k] = np.float64(v).hex()
        else:
            safe[k] = repr(v)
    return {"class": type(geom).__name__, "fields": safe}


def operator_key(
    *,
    geom,
    fmt: str,
    projector: str,
    dtype,
    params=None,
    reference_mode: str = "ioblr",
    kind: str = "operator",
    extra: dict | None = None,
) -> str:
    """Stable content hash identifying one cached operator build.

    Two processes (today or months apart) computing the key from the same
    inputs get the same hex string; changing any input — including the
    serialization schema or the kernel ABI version — changes it.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "abi": _abi_version(),
        "kind": kind,
        "geom": geometry_signature(geom),
        "format": fmt,
        "projector": projector,
        "dtype": str(np.dtype(dtype)),
        "params": list(params.as_tuple()) if params is not None else None,
        "reference_mode": reference_mode,
    }
    if extra:
        payload["extra"] = extra
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass(frozen=True)
class EntryInfo:
    """One on-disk cache entry, as listed by ``repro cache ls``."""

    key: str
    path: Path
    kind: str
    format: str
    shape: tuple[int, int] | None
    nbytes: int
    created: float
    last_used: float


class OperatorCache:
    """Content-addressed store of built operators (and related results).

    Parameters default to the process configuration
    (:mod:`repro.config`); tests pass explicit values for hermeticity.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        *,
        max_bytes: int | None = None,
        verify: bool | None = None,
        enabled: bool | None = None,
    ):
        self.root = Path(root if root is not None else config.operator_cache_dir())
        self.max_bytes = (
            config.runtime.cache_max_bytes if max_bytes is None else int(max_bytes)
        )
        self.verify = config.runtime.cache_verify if verify is None else bool(verify)
        self.enabled = (
            config.runtime.cache_enabled if enabled is None else bool(enabled)
        )

    # ------------------------------------------------------------------ #
    # paths

    @property
    def entries_dir(self) -> Path:
        return self.root / "entries"

    def _entry_path(self, key: str) -> Path:
        return self.entries_dir / key

    def _lock_path(self, key: str) -> Path:
        return self.root / "locks" / f"{key}.lock"

    # ------------------------------------------------------------------ #
    # lifetime counters (advisory; survive across processes)

    def _bump(self, what: str, n: int = 1) -> None:
        obs_metrics.counter(
            f"cache.{what}", "persistent operator cache events"
        ).inc(n)
        stats_path = self.root / "stats.json"
        try:
            stats = json.loads(stats_path.read_text())
        except (OSError, ValueError):
            stats = {}
        stats[what] = int(stats.get(what, 0)) + n
        try:
            write_bytes_durable(stats_path, json.dumps(stats).encode("utf-8"))
        except OSError:  # read-only cache dir: keep serving, drop the count
            pass

    def lifetime_stats(self) -> dict:
        """Hit/miss/eviction counters accumulated across all processes."""
        try:
            return json.loads((self.root / "stats.json").read_text())
        except (OSError, ValueError):
            return {}

    # ------------------------------------------------------------------ #
    # store / load

    def store(self, key: str, fmt, *, note: dict | None = None) -> Path | None:
        """Persist *fmt* (via its ``cache_state`` hook) under *key*.

        Returns the entry path, or ``None`` when the cache is disabled.
        The entry directory is staged fully (arrays + checksums +
        ``entry.json``) and renamed into place in one ``os.replace``.
        """
        if not self.enabled:
            return None
        meta, arrays = fmt.cache_state()
        with span("cache.store", key=key, format=fmt.name):
            path = self._entry_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = Path(
                tempfile.mkdtemp(prefix=key + ".", suffix=".tmp", dir=path.parent)
            )
            try:
                files = {}
                for name, arr in arrays.items():
                    f = tmp / f"{name}.npy"
                    faults.fire("cache.store.write", key=key, file=name)
                    np.save(f, np.ascontiguousarray(arr))
                    files[name] = {
                        "sha256": _sha256_file(f),
                        "nbytes": f.stat().st_size,
                    }
                entry = {
                    "schema": CACHE_SCHEMA,
                    "key": key,
                    "abi": _abi_version(),
                    "format": fmt.name,
                    "class": type(fmt).__name__,
                    "kind": meta.get("kind", "unknown"),
                    "meta": meta,
                    "shape": [int(fmt.shape[0]), int(fmt.shape[1])],
                    "dtype": str(fmt.dtype),
                    "nnz": int(fmt.nnz),
                    "created": time.time(),
                    "note": note or {},
                    "files": files,
                }
                (tmp / _ENTRY_JSON).write_text(json.dumps(entry, indent=1))
                (tmp / _STAMP).touch()
                for staged in tmp.iterdir():
                    fsync_file(staged)
                if path.exists():
                    shutil.rmtree(path)
                replace_durable(tmp, path)
            except BaseException:
                shutil.rmtree(tmp, ignore_errors=True)
                raise
        self._bump("stores")
        self.prune(protect={key})
        return path

    def load(self, key: str, cls, *, threads=None, count_miss: bool = True):
        """Reconstruct a format from entry *key*, or ``None`` on miss.

        Arrays come back memory-mapped read-only.  Corrupt entries (bad
        checksum, failed validation, unreadable files) are evicted and
        reported as a miss so the caller rebuilds.
        """
        if not self.enabled:
            return None
        path = self._entry_path(key)
        if not (path / _ENTRY_JSON).is_file():
            if count_miss:
                self._bump("misses")
            return None
        with span("cache.load", key=key):
            try:
                directive = faults.fire("cache.load.read", key=key)
                if directive == "corrupt":
                    raise FormatError(f"fault injected: corrupt entry {key}")
                if directive == "short-read":
                    raise EOFError(f"fault injected: truncated entry {key}")
                entry = json.loads((path / _ENTRY_JSON).read_text())
                if entry.get("schema") != CACHE_SCHEMA:
                    raise FormatError(
                        f"cache entry schema {entry.get('schema')} != "
                        f"{CACHE_SCHEMA}"
                    )
                arrays = {}
                for name, info in entry["files"].items():
                    f = path / f"{name}.npy"
                    if self.verify and _sha256_file(f) != info["sha256"]:
                        raise FormatError(f"checksum mismatch in {f.name}")
                    arrays[name] = np.load(f, mmap_mode="r")
                fmt = cls.from_cache_state(entry["meta"], arrays, threads=threads)
            except (OSError, ValueError, KeyError, EOFError, FormatError):
                # corrupt, truncated or unreadable: evict, caller rebuilds
                # (EOFError: np.load raises it on a short .npy body)
                self._bump("corrupt")
                self.evict(key)
                if count_miss:
                    self._bump("misses")
                return None
        with contextlib.suppress(OSError):
            (path / _STAMP).touch()
        self._bump("hits")
        return fmt

    def get_or_build(self, key: str, cls, builder, *, threads=None):
        """Load *key*, or build (stampede-protected), store and return.

        Returns ``(fmt, cached)`` where *cached* says whether the result
        came off disk.  With the cache disabled this is just
        ``(builder(), False)``.
        """
        if not self.enabled:
            return builder(), False
        fmt = self.load(key, cls, threads=threads)
        if fmt is not None:
            return fmt, True
        with self._lock(key):
            # another process may have built while we waited on the lock
            fmt = self.load(key, cls, threads=threads, count_miss=False)
            if fmt is not None:
                return fmt, True
            with span("cache.build", key=key):
                built = builder()
            try:
                self.store(key, built)
            except OSError:
                # disk full / unwritable cache: serve the fresh build and
                # keep going — persistence is an optimisation, not a need
                self._bump("store_errors")
        return built, False

    # ------------------------------------------------------------------ #
    # JSON payloads (autotune results ride in the same store)

    def store_json(self, key: str, payload: dict) -> Path | None:
        """Persist a small JSON payload (e.g. an autotune result)."""
        if not self.enabled:
            return None
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(
            tempfile.mkdtemp(prefix=key + ".", suffix=".tmp", dir=path.parent)
        )
        try:
            entry = {
                "schema": CACHE_SCHEMA,
                "key": key,
                "kind": "json",
                "format": "",
                "created": time.time(),
                "payload": payload,
                "files": {},
            }
            (tmp / _ENTRY_JSON).write_text(json.dumps(entry, indent=1))
            (tmp / _STAMP).touch()
            for staged in tmp.iterdir():
                fsync_file(staged)
            if path.exists():
                shutil.rmtree(path)
            replace_durable(tmp, path)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self._bump("stores")
        return path

    def load_json(self, key: str) -> dict | None:
        """Fetch a JSON payload stored by :meth:`store_json`."""
        if not self.enabled:
            return None
        path = self._entry_path(key)
        if not (path / _ENTRY_JSON).is_file():
            self._bump("misses")
            return None
        try:
            entry = json.loads((path / _ENTRY_JSON).read_text())
            if entry.get("schema") != CACHE_SCHEMA or entry.get("kind") != "json":
                raise ValueError("wrong schema/kind")
            payload = entry["payload"]
        except (OSError, ValueError, KeyError):
            self._bump("corrupt")
            self.evict(key)
            self._bump("misses")
            return None
        with contextlib.suppress(OSError):
            (path / _STAMP).touch()
        self._bump("hits")
        return payload

    # ------------------------------------------------------------------ #
    # inventory / eviction

    def entries(self) -> list[EntryInfo]:
        """All entries, least-recently-used first."""
        out = []
        if not self.entries_dir.is_dir():
            return out
        for path in sorted(self.entries_dir.iterdir()):
            ej = path / _ENTRY_JSON
            if not ej.is_file():
                continue
            try:
                entry = json.loads(ej.read_text())
            except (OSError, ValueError):
                continue
            nbytes = sum(
                f.stat().st_size for f in path.iterdir() if f.is_file()
            )
            stamp = path / _STAMP
            last = stamp.stat().st_mtime if stamp.exists() else 0.0
            shape = entry.get("shape")
            out.append(
                EntryInfo(
                    key=path.name,
                    path=path,
                    kind=entry.get("kind", "?"),
                    format=entry.get("format", ""),
                    shape=tuple(shape) if shape else None,
                    nbytes=nbytes,
                    created=float(entry.get("created", 0.0)),
                    last_used=last,
                )
            )
        out.sort(key=lambda e: e.last_used)
        return out

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self.entries())

    def evict(self, key: str) -> bool:
        """Remove one entry; returns True when something was deleted."""
        path = self._entry_path(key)
        if not path.exists():
            return False
        shutil.rmtree(path, ignore_errors=True)
        self._bump("evictions")
        return True

    def prune(self, *, protect: set[str] | None = None) -> list[str]:
        """Evict LRU entries until the cache fits ``max_bytes``.

        Entries named in *protect* (typically the one just stored) are
        kept even when the budget is exceeded, so a store can never evict
        its own result.
        """
        protect = protect or set()
        entries = self.entries()
        total = sum(e.nbytes for e in entries)
        evicted: list[str] = []
        for e in entries:
            if total <= self.max_bytes:
                break
            if e.key in protect:
                continue
            if self.evict(e.key):
                evicted.append(e.key)
                total -= e.nbytes
        obs_metrics.gauge(
            "cache.bytes", "total bytes stored in the operator cache"
        ).set(float(total))
        return evicted

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for e in self.entries():
            if self.evict(e.key):
                n += 1
        return n

    def stats(self) -> dict:
        """Summary used by ``repro cache info`` and ``repro info``."""
        entries = self.entries()
        life = self.lifetime_stats()
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "entries": len(entries),
            "bytes": sum(e.nbytes for e in entries),
            "max_bytes": self.max_bytes,
            "verify": self.verify,
            "hits": int(life.get("hits", 0)),
            "misses": int(life.get("misses", 0)),
            "stores": int(life.get("stores", 0)),
            "evictions": int(life.get("evictions", 0)),
            "corrupt": int(life.get("corrupt", 0)),
        }

    # ------------------------------------------------------------------ #
    # cross-process stampede protection

    @contextlib.contextmanager
    def _lock(self, key: str, timeout: float | None = None):
        """Exclusive per-key build lock (lockfile + polling + staleness).

        If the lock cannot be acquired within *timeout* seconds — or a
        ``cache.lock:timeout`` fault fires — the caller proceeds
        unlocked: a redundant build is wasteful but correct, because
        stores are atomic renames.  Waiters poll with capped exponential
        backoff plus pid-seeded jitter so a stampede of processes
        contending for one key decorrelates instead of thundering in
        lockstep.
        """
        timeout = LOCK_TIMEOUT if timeout is None else timeout
        path = self._lock_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + timeout
        delays = backoff_delays(base=0.01, cap=min(0.5, max(timeout / 4, 0.01)))
        acquired = False
        if faults.fire("cache.lock", key=key) == "timeout":
            obs_metrics.counter(
                "cache.lock_timeouts",
                "cache build locks that timed out (redundant build)",
            ).inc()
        else:
            while True:
                try:
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                    os.write(fd, str(os.getpid()).encode())
                    os.close(fd)
                    acquired = True
                    break
                except FileExistsError:
                    with contextlib.suppress(OSError):
                        if time.time() - path.stat().st_mtime > timeout:
                            # holder died: break the stale lock and retry
                            path.unlink()
                            continue
                    if time.monotonic() >= deadline:
                        obs_metrics.counter(
                            "cache.lock_timeouts",
                            "cache build locks that timed out (redundant build)",
                        ).inc()
                        break
                    time.sleep(min(next(delays), max(deadline - time.monotonic(), 0.0)))
        try:
            yield
        finally:
            if acquired:
                with contextlib.suppress(OSError):
                    path.unlink()


def default_cache() -> OperatorCache:
    """An :class:`OperatorCache` bound to the process configuration.

    Constructed fresh on every call (construction does no I/O), so
    changes to ``repro.config.runtime`` or the environment take effect
    immediately — important for tests and long-lived services.
    """
    return OperatorCache()
