"""Matrix blocking: image blocks x view groups.

CSCV partitions the system matrix twice (Section IV-E: *"we use block
partitioning for vector x and row partitioning for the matrix"*):

* **columns** by image block — ``s_imgb x s_imgb`` pixel tiles, so each
  block's slice of ``x`` is small and cache-resident;
* **rows** by view group — ``s_vvec`` consecutive views, so a CSCVE lane
  corresponds to one view of the group.

A matrix block ``A^k`` is one (view group, image block) pair; it gets its
own IOBLR permutation ``iota_k`` of the sinogram rows it touches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import CSCVParams
from repro.errors import ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry


@dataclass(frozen=True)
class MatrixBlock:
    """One (view group, image block) cell of the block grid."""

    block_id: int
    #: view range [v0, v1) — at most ``s_vvec`` views
    v0: int
    v1: int
    #: image tile rows [i0, i1) and cols [j0, j1)
    i0: int
    i1: int
    j0: int
    j1: int

    @property
    def num_views(self) -> int:
        return self.v1 - self.v0

    @property
    def reference_pixel(self) -> tuple[int, int]:
        """Centre pixel of the image tile (the IOBLR reference)."""
        return ((self.i0 + self.i1 - 1) // 2, (self.j0 + self.j1 - 1) // 2)

    def pixel_ids(self, image_size: int) -> np.ndarray:
        """Global column ids of the tile's pixels, row-major within tile."""
        ii = np.arange(self.i0, self.i1)
        jj = np.arange(self.j0, self.j1)
        return (ii[:, None] * image_size + jj[None, :]).ravel()


class BlockGrid:
    """The full blocking of a geometry under given CSCV parameters."""

    def __init__(self, geom: ParallelBeamGeometry, params: CSCVParams):
        self.geom = geom
        self.params = params
        n = geom.image_size
        self.tiles_per_side = (n + params.s_imgb - 1) // params.s_imgb
        self.num_img_blocks = self.tiles_per_side**2
        self.num_view_groups = (geom.num_views + params.s_vvec - 1) // params.s_vvec
        self.num_blocks = self.num_img_blocks * self.num_view_groups

    def block(self, block_id: int) -> MatrixBlock:
        """Materialise the :class:`MatrixBlock` for *block_id*.

        Block ids enumerate view groups (major) then image tiles (minor):
        ``block_id = group * num_img_blocks + tile``.
        """
        if not (0 <= block_id < self.num_blocks):
            raise ValidationError(
                f"block_id {block_id} out of range [0, {self.num_blocks})"
            )
        group, tile = divmod(block_id, self.num_img_blocks)
        ti, tj = divmod(tile, self.tiles_per_side)
        s = self.params.s_imgb
        n = self.geom.image_size
        v0 = group * self.params.s_vvec
        return MatrixBlock(
            block_id=block_id,
            v0=v0,
            v1=min(v0 + self.params.s_vvec, self.geom.num_views),
            i0=ti * s,
            i1=min((ti + 1) * s, n),
            j0=tj * s,
            j1=min((tj + 1) * s, n),
        )

    # ------------------------------------------------------------------ #
    # vectorised classification of COO entries

    def classify(
        self, rows: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Map every nonzero to (block_id, lane, bin, local info).

        Returns
        -------
        block_id : int64 array
            ``group * num_img_blocks + tile`` per nonzero.
        lane : int64 array
            view index within the group (CSCVE lane), ``v % s_vvec``.
        bin_ : int64 array
            detector bin of the nonzero's row.
        tile_of_col : int64 array
            image-tile index of the nonzero's column.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        geom = self.geom
        v, bin_ = rows // geom.num_bins, rows % geom.num_bins
        group = v // self.params.s_vvec
        lane = v % self.params.s_vvec
        i, j = cols // geom.image_size, cols % geom.image_size
        tile = (i // self.params.s_imgb) * self.tiles_per_side + (j // self.params.s_imgb)
        block_id = group * self.num_img_blocks + tile
        return block_id, lane, bin_, tile

    def reference_pixels(self) -> tuple[np.ndarray, np.ndarray]:
        """Reference pixel (i, j) arrays for every image tile."""
        s = self.params.s_imgb
        n = self.geom.image_size
        t = np.arange(self.tiles_per_side)
        lo = t * s
        hi = np.minimum(lo + s, n)
        centers = (lo + hi - 1) // 2
        ti, tj = np.meshgrid(centers, centers, indexing="ij")
        return ti.ravel(), tj.ravel()

    def reference_bins(self) -> np.ndarray:
        """Reference curve ``r[view, tile]``: min bin of each tile's
        reference pixel at each view, **unclipped** (may exit the detector).

        Vectorised over (views x tiles); this is the IOBLR anchor grid.
        Dispatches on the geometry type — IOBLR only needs *a* reference
        trajectory per tile, so fan-beam (and other line-integral
        geometries) plug in here.
        """
        geom = self.geom
        ri, rj = self.reference_pixels()
        from repro.geometry.fan_beam import FanBeamGeometry

        if isinstance(geom, FanBeamGeometry):
            from repro.geometry.projector_fan import fan_reference_bins

            return fan_reference_bins(geom, ri, rj)
        half = (geom.image_size - 1) / 2.0
        x = (rj - half) * geom.pixel_size
        y = (half - ri) * geom.pixel_size
        thetas = geom.view_angles()
        ct, st = np.cos(thetas), np.sin(thetas)
        s = np.outer(ct, x) + np.outer(st, y)  # (views, tiles)
        w = (np.abs(ct) + np.abs(st))[:, None] * geom.pixel_size / 2.0
        f_lo = (s - w) / geom.bin_spacing + geom.num_bins / 2.0
        return np.floor(f_lo + 1e-12).astype(np.int64)
