"""Single-block CSCVE analysis — the statistics behind Figs 3 and 5.

These helpers look at one matrix block under a *chosen* reference pixel
(not necessarily the tile centre), producing per-pixel CSCVE layouts,
padding-zero counts, CSCVE counts and curve offsets.  Fig 5 sweeps the
reference-pixel choice over the whole tile to show the centre is a good
anchor; Fig 3 draws the resulting memory layout.

The heavy, whole-matrix path lives in :mod:`repro.core.builder`; this
module trades speed for introspection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import MatrixBlock
from repro.errors import ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.trajectory import pixel_trajectory, reference_trajectory


@dataclass(frozen=True)
class PixelCSCVEStats:
    """CSCVE statistics of one pixel column in one block."""

    pixel: tuple[int, int]
    num_cscve: int
    nnz: int
    padding: int
    offsets: tuple[int, ...]

    @property
    def padding_rate(self) -> float:
        """Per-column ``R_nnzE``."""
        return self.padding / self.nnz if self.nnz else 0.0


def column_cscves(
    geom: ParallelBeamGeometry,
    block: MatrixBlock,
    pixel: tuple[int, int],
    reference: tuple[int, int],
    s_vvec: int,
) -> dict[int, np.ndarray]:
    """CSCVE occupancy of a pixel column: offset d -> boolean lane vector.

    A lane is occupied when the pixel's trajectory at that view covers bin
    ``r(view) + d`` of the reference curve ``r``.
    """
    views = np.arange(block.v0, block.v1)
    if views.size > s_vvec:
        raise ValidationError("block has more views than s_vvec lanes")
    lo, hi = pixel_trajectory(geom, *pixel, views, clip=False)
    r = reference_trajectory(geom, *reference, views)
    cscves: dict[int, np.ndarray] = {}
    for j in range(views.size):
        for b in range(int(lo[j]), int(hi[j]) + 1):
            d = b - int(r[j])
            lanes = cscves.setdefault(d, np.zeros(s_vvec, dtype=bool))
            lanes[j] = True
    return cscves


def pixel_stats(
    geom: ParallelBeamGeometry,
    block: MatrixBlock,
    pixel: tuple[int, int],
    reference: tuple[int, int],
    s_vvec: int,
) -> PixelCSCVEStats:
    """Padding/CSCVE-count stats of one pixel under one reference choice."""
    cscves = column_cscves(geom, block, pixel, reference, s_vvec)
    nnz = sum(int(v.sum()) for v in cscves.values())
    slots = len(cscves) * s_vvec
    return PixelCSCVEStats(
        pixel=pixel,
        num_cscve=len(cscves),
        nnz=nnz,
        padding=slots - nnz,
        offsets=tuple(sorted(cscves)),
    )


def reference_sweep(
    geom: ParallelBeamGeometry,
    block: MatrixBlock,
    s_vvec: int,
) -> dict[str, np.ndarray]:
    """Fig 5: sweep the reference pixel over the tile.

    For every candidate reference pixel, sum over all tile pixels the
    padding zeros, the CSCVE count, and the span of curve offsets.
    Returns 2-D grids keyed ``"padding"``, ``"cscve_count"``,
    ``"offset_span"`` of shape (tile_rows, tile_cols).
    """
    ti = block.i1 - block.i0
    tj = block.j1 - block.j0
    padding = np.zeros((ti, tj), dtype=np.int64)
    counts = np.zeros((ti, tj), dtype=np.int64)
    spans = np.zeros((ti, tj), dtype=np.int64)
    pixels = [
        (i, j)
        for i in range(block.i0, block.i1)
        for j in range(block.j0, block.j1)
    ]
    for ri in range(block.i0, block.i1):
        for rj in range(block.j0, block.j1):
            pad = cnt = 0
            d_lo, d_hi = 10**9, -(10**9)
            for pix in pixels:
                st = pixel_stats(geom, block, pix, (ri, rj), s_vvec)
                pad += st.padding
                cnt += st.num_cscve
                if st.offsets:
                    d_lo = min(d_lo, st.offsets[0])
                    d_hi = max(d_hi, st.offsets[-1])
            padding[ri - block.i0, rj - block.j0] = pad
            counts[ri - block.i0, rj - block.j0] = cnt
            spans[ri - block.i0, rj - block.j0] = (d_hi - d_lo + 1) if cnt else 0
    return {"padding": padding, "cscve_count": counts, "offset_span": spans}


def layout_ascii(
    geom: ParallelBeamGeometry,
    block: MatrixBlock,
    pixel: tuple[int, int],
    s_vvec: int,
) -> str:
    """Fig 3: render one column's CSCVEs as lanes along the reference curve.

    ``#`` marks a stored nonzero, ``.`` a padding zero; one text row per
    curve offset, one character per lane (view).
    """
    cscves = column_cscves(geom, block, pixel, block.reference_pixel, s_vvec)
    if not cscves:
        return "(empty column)"
    lines = [f"pixel {pixel}, reference {block.reference_pixel}"]
    for d in sorted(cscves):
        lanes = cscves[d]
        lines.append(
            f"  d={d:+3d} |" + "".join("#" if o else "." for o in lanes) + "|"
        )
    return "\n".join(lines)
