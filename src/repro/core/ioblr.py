"""IOBLR — Integral Operator Based Local Reordering.

The heart of CSCV (Section IV-C).  Within one matrix block, the sinogram
coordinates ``(view, bin)`` of the rows the block touches are transformed
into *curve coordinates* ``(offset d, lane j)``:

* lane ``j`` is the view's index inside the view group;
* ``d = bin - r(j)`` where ``r`` is the **reference curve** — the minimum
  bin the block's reference pixel (tile centre) touches at each view.

Because trajectories of pixels near the reference are piecewise parallel
to the reference curve (properties P1/P2), each pixel's nonzeros occupy a
narrow band of offsets, and all ``s_vvec`` lanes of one offset are stored
contiguously in the reordered vector ``ytilde``:

    ytilde[(d - d_min) * s_vvec + j]  <->  y[row(v0 + j, r(j) + d)]

which turns the SpMV inner loop into contiguous vector FMAs.

This module builds the per-block mapping (``iota_k`` in Algorithm 3) and
provides the three-layout SIMD-efficiency comparison of Fig 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import MatrixBlock
from repro.errors import ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.trajectory import pixel_trajectory, reference_trajectory


@dataclass
class IOBLRMapping:
    """The local permutation ``iota_k`` of one matrix block.

    Attributes
    ----------
    ref_bins : int64 array, shape (s_vvec,)
        Reference curve ``r(j)`` (unclipped min bin of the reference
        pixel), one entry per lane; lanes beyond the group's real view
        count hold a copy of the last valid entry.
    d_min, d_max : int
        Offset band covered by ``ytilde`` (inclusive).
    s_vvec : int
        Lane count.
    num_valid_views : int
        Real views in the group (< s_vvec only for the tail group).
    """

    ref_bins: np.ndarray
    d_min: int
    d_max: int
    s_vvec: int
    num_valid_views: int
    v0: int
    num_bins: int

    @property
    def ysize(self) -> int:
        """Length of the block's ``ytilde`` scratch vector."""
        return (self.d_max - self.d_min + 1) * self.s_vvec

    def position(self, lane, d) -> np.ndarray:
        """``ytilde`` position of curve coordinate ``(d, lane)``."""
        return (np.asarray(d) - self.d_min) * self.s_vvec + np.asarray(lane)

    def to_curve(self, lane, bin_) -> np.ndarray:
        """Offset ``d`` of sinogram coordinate ``(lane, bin)``."""
        return np.asarray(bin_) - self.ref_bins[np.asarray(lane)]

    def global_map(self) -> np.ndarray:
        """``map[p] -> global sinogram row`` (or -1 for invalid slots).

        A slot is invalid when its lane exceeds the group's real view
        count or its bin ``r(j) + d`` exits the detector.
        """
        d = np.arange(self.d_min, self.d_max + 1)
        lanes = np.arange(self.s_vvec)
        bins = self.ref_bins[None, :] + d[:, None]          # (D, s_vvec)
        rows = (self.v0 + lanes)[None, :] * self.num_bins + bins
        valid = (
            (lanes[None, :] < self.num_valid_views)
            & (bins >= 0)
            & (bins < self.num_bins)
        )
        out = np.where(valid, rows, -1).astype(np.int32)
        return out.ravel()

    def inverse_permutation_is_consistent(self) -> bool:
        """True when valid slots map to distinct global rows (injective)."""
        m = self.global_map()
        valid = m[m >= 0]
        return valid.size == np.unique(valid).size


def build_ioblr_mapping(
    geom: ParallelBeamGeometry,
    block: MatrixBlock,
    s_vvec: int,
    block_bins_lo: np.ndarray | None = None,
    block_bins_hi: np.ndarray | None = None,
) -> IOBLRMapping:
    """Construct the IOBLR mapping of one block.

    ``block_bins_lo/hi`` optionally give the per-lane bin band actually
    touched by the block's nonzeros (tight ``d`` range); without them, the
    band is derived from the tile's corner-pixel trajectories.
    """
    if block.num_views < 1:
        raise ValidationError("block has no views")
    views = np.arange(block.v0, block.v1)
    ref_i, ref_j = block.reference_pixel
    r = reference_trajectory(geom, ref_i, ref_j, views)
    ref_bins = np.empty(s_vvec, dtype=np.int64)
    ref_bins[: r.size] = r
    ref_bins[r.size :] = r[-1] if r.size else 0

    if block_bins_lo is None or block_bins_hi is None:
        # band from the four tile corners (trajectories of interior pixels
        # lie between the corners' by convexity of the projection)
        corners = [
            (block.i0, block.j0),
            (block.i0, block.j1 - 1),
            (block.i1 - 1, block.j0),
            (block.i1 - 1, block.j1 - 1),
        ]
        los, his = [], []
        for ci, cj in corners:
            lo, hi = pixel_trajectory(geom, ci, cj, views, clip=False)
            los.append(lo)
            his.append(hi)
        block_bins_lo = np.minimum.reduce(los)
        block_bins_hi = np.maximum.reduce(his)

    d_lo = int((block_bins_lo - r).min())
    d_hi = int((block_bins_hi - r).max())
    return IOBLRMapping(
        ref_bins=ref_bins,
        d_min=d_lo,
        d_max=d_hi,
        s_vvec=s_vvec,
        num_valid_views=block.num_views,
        v0=block.v0,
        num_bins=geom.num_bins,
    )


# --------------------------------------------------------------------- #
# Fig 4: SIMD efficiency of the three y layouts

def layout_simd_efficiency(
    geom: ParallelBeamGeometry,
    block: MatrixBlock,
    pixel: tuple[int, int],
    s_vvec: int,
    layout: str,
) -> np.ndarray:
    """Nonzeros per ``s_vvec``-long y segment for a pixel's column.

    ``layout`` is one of ``"bin-major"`` (segments run along bins within a
    view), ``"view-major"`` (segments run along views within a bin — the
    BTB layout of [14]) or ``"ioblr"`` (segments run along parallel curves
    — CSCV).  Returns the nonzero count of every segment the pixel's
    column intersects; Fig 4 reports the min..max range.
    """
    views = np.arange(block.v0, block.v1)
    lo, hi = pixel_trajectory(geom, *pixel, views, clip=False)
    nv = views.size

    if layout == "bin-major":
        counts = []
        for k in range(nv):
            # bins of this view grouped into aligned s_vvec segments
            bins = np.arange(lo[k], hi[k] + 1)
            segs, c = np.unique(bins // s_vvec, return_counts=True)
            counts.extend(c.tolist())
        return np.asarray(counts)

    if layout == "view-major":
        # segment = same bin across s_vvec consecutive views
        counts: dict[int, int] = {}
        for k in range(nv):
            for b in range(int(lo[k]), int(hi[k]) + 1):
                counts[b] = counts.get(b, 0) + 1
        return np.asarray(sorted(counts.values()))

    if layout == "ioblr":
        ref_i, ref_j = block.reference_pixel
        r = reference_trajectory(geom, ref_i, ref_j, views)
        offsets: dict[int, int] = {}
        for k in range(nv):
            for b in range(int(lo[k]), int(hi[k]) + 1):
                d = b - int(r[k])
                offsets[d] = offsets.get(d, 0) + 1
        return np.asarray(sorted(offsets.values()))

    raise ValidationError(f"unknown layout {layout!r}")
