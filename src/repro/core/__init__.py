"""CSCV — the paper's contribution.

Compressed Sparse Column Vector: a CSC-style format whose nonzeros are
packed into fixed-length dense vectors (CSCVEs) aligned with the
trajectories of the CT integral operator (IOBLR), grouped into VxGs, and
executed by a fully vectorised SpMV with only a local, per-block
permutation of ``y``.

Modules
-------
``params``    parameter triple (S_VVec, S_ImgB, S_VxG) and validation
``blocks``    image-block x view-group matrix blocking
``ioblr``     Integral Operator Based Local Reordering (reference curves)
``cscve``     CSCVE extraction and zero-padding accounting
``vxg``       Vectorized eXecution Group packing
``builder``   end-to-end conversion COO + geometry -> CSCV arrays
``format_z``  CSCV-Z (padding kept)
``format_m``  CSCV-M (padding masked out, soft-vexpand)
``spmv``      sequential and multi-threaded SpMV drivers
``transpose`` x = A^T y back-projection (paper future work)
``autotune``  section V-D parameter selection
``io``        serialization (.npz archives + mmap-able cache directories)
``cache``     persistent content-addressed operator cache
"""

from repro.core.autotune import AutotuneResult, autotune_parameters, parameter_sweep
from repro.core.blocks import BlockGrid, MatrixBlock
from repro.core.builder import build_cscv
from repro.core.cache import OperatorCache, default_cache, operator_key
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.ioblr import IOBLRMapping, build_ioblr_mapping, layout_simd_efficiency
from repro.core.params import CSCVParams

__all__ = [
    "CSCVParams",
    "BlockGrid",
    "MatrixBlock",
    "IOBLRMapping",
    "build_ioblr_mapping",
    "layout_simd_efficiency",
    "build_cscv",
    "CSCVZMatrix",
    "CSCVMMatrix",
    "autotune_parameters",
    "parameter_sweep",
    "AutotuneResult",
    "OperatorCache",
    "default_cache",
    "operator_key",
]
