"""Parameter selection for CSCV (paper Section V-D).

The paper sweeps ``(S_VVec, S_ImgB, S_VxG)`` on one representative matrix,
records ``R_nnzE``, memory requirement and GFLOP/s, then picks

* for CSCV-Z: the best **single-threaded** combination (latency-bound);
* for CSCV-M: the best **multi-threaded** combination (bandwidth-bound);

and reuses that choice across matrices ("parameter selection ... does not
need to be carried out on a case-by-case basis").  This module implements
the sweep and the selection rule.  Scoring is measured wall-clock by
default; a model-based scorer (no timing noise, used in CI) is available
via ``scorer="model"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.builder import build_cscv
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.errors import AutotuneError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.utils.timing import gflops, min_time

DEFAULT_S_VVEC_GRID = (4, 8, 16)
DEFAULT_S_IMGB_GRID = (8, 16, 32, 64)
DEFAULT_S_VXG_GRID = (1, 2, 4)


@dataclass
class SweepPoint:
    """One parameter combination's sweep record."""

    params: CSCVParams
    r_nnze: float
    memory_z: float  # bytes per iteration, CSCV-Z
    memory_m: float  # bytes per iteration, CSCV-M
    gflops_z: float | None = None
    gflops_m: float | None = None


@dataclass
class AutotuneResult:
    """Selected parameters and the full sweep behind them."""

    best_z: CSCVParams
    best_m: CSCVParams
    points: list[SweepPoint] = field(default_factory=list)

    def as_table_rows(self) -> list[tuple]:
        """Rows shaped like the paper's Table III."""
        out = []
        for name, p in (("cscv-z", self.best_z), ("cscv-m", self.best_m)):
            point = next(pt for pt in self.points if pt.params == p)
            out.append((name, p.s_imgb, p.s_vvec, p.s_vxg, point.r_nnze))
        return out

    # ---- persistence (autotune results ride in the operator cache) ----

    def to_payload(self) -> dict:
        """JSON-safe dict round-tripping through :meth:`from_payload`."""
        return {
            "best_z": list(self.best_z.as_tuple()),
            "best_m": list(self.best_m.as_tuple()),
            "points": [
                {
                    "params": list(pt.params.as_tuple()),
                    "r_nnze": pt.r_nnze,
                    "memory_z": pt.memory_z,
                    "memory_m": pt.memory_m,
                    "gflops_z": pt.gflops_z,
                    "gflops_m": pt.gflops_m,
                }
                for pt in self.points
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AutotuneResult":
        return cls(
            best_z=CSCVParams(*payload["best_z"]),
            best_m=CSCVParams(*payload["best_m"]),
            points=[
                SweepPoint(
                    params=CSCVParams(*pt["params"]),
                    r_nnze=pt["r_nnze"],
                    memory_z=pt["memory_z"],
                    memory_m=pt["memory_m"],
                    gflops_z=pt["gflops_z"],
                    gflops_m=pt["gflops_m"],
                )
                for pt in payload["points"]
            ],
        )


def parameter_sweep(
    coo,
    geom: ParallelBeamGeometry,
    *,
    s_vvec_grid: Iterable[int] = DEFAULT_S_VVEC_GRID,
    s_imgb_grid: Iterable[int] = DEFAULT_S_IMGB_GRID,
    s_vxg_grid: Iterable[int] = DEFAULT_S_VXG_GRID,
    dtype=np.float32,
    measure: bool = False,
    iterations: int = 10,
) -> list[SweepPoint]:
    """Evaluate every parameter combination on one matrix.

    With ``measure=True`` each point also gets measured GFLOP/s (CSCV-Z
    and CSCV-M SpMV wall-clock, min-of-N protocol).
    """
    points = []
    x = np.ones(coo.shape[1], dtype=dtype)
    for s_vvec in s_vvec_grid:
        for s_imgb in s_imgb_grid:
            for s_vxg in s_vxg_grid:
                params = CSCVParams(s_vvec=s_vvec, s_imgb=s_imgb, s_vxg=s_vxg)
                data = build_cscv(coo.rows, coo.cols, coo.vals, geom, params, dtype)
                z = CSCVZMatrix(data)
                m = CSCVMMatrix(data)
                point = SweepPoint(
                    params=params,
                    r_nnze=data.r_nnze,
                    memory_z=float(z.memory_bytes()["total"]),
                    memory_m=float(m.memory_bytes()["total"]),
                )
                if measure:
                    y = np.zeros(coo.shape[0], dtype=dtype)
                    tz = min_time(lambda: z.spmv_into(x, y), iterations=iterations)
                    tm = min_time(lambda: m.spmv_into(x, y), iterations=iterations)
                    point.gflops_z = gflops(coo.nnz, tz)
                    point.gflops_m = gflops(coo.nnz, tm)
                points.append(point)
    return points


def _model_score(point: SweepPoint, which: str) -> float:
    """Analytic proxy when timing is unavailable: higher is better.

    CSCV-Z is latency/instruction bound: fewer executed slots and longer
    inner loops win; CSCV-M is bandwidth bound: less streamed memory wins.
    """
    if which == "z":
        # penalise padding work, reward instruction-pipeline depth (vxg_len)
        return 1.0 / ((1.0 + point.r_nnze) * (1.0 + 1.0 / point.params.vxg_len))
    return 1.0 / point.memory_m


def _autotune_key(coo, geom, dtype, scorer, iterations, grids) -> str:
    """Cache key: everything the sweep outcome depends on.

    Measured scores are host-specific, so the key includes the machine
    signature for ``scorer="measure"`` (the model scorer is portable).
    """
    import os
    import platform

    from repro.core.cache import operator_key

    extra = {
        "scorer": scorer,
        "nnz": int(coo.nnz),
        "grids": {k: list(v) for k, v in sorted(grids.items())},
    }
    if scorer == "measure":
        extra["iterations"] = int(iterations)
        extra["host"] = f"{platform.machine()}/{os.cpu_count()}"
    return operator_key(
        geom=geom, fmt="autotune", projector="-", dtype=dtype,
        kind="autotune", extra=extra,
    )


def autotune_parameters(
    coo,
    geom: ParallelBeamGeometry,
    *,
    dtype=np.float32,
    scorer: str = "measure",
    iterations: int = 10,
    cache: bool = True,
    **grids,
) -> AutotuneResult:
    """Run the sweep and apply the paper's selection rule.

    Parameters
    ----------
    scorer : str
        ``"measure"`` (default) picks by measured GFLOP/s; ``"model"``
        picks by the analytic proxy (deterministic, timing-free).
    cache : bool
        Persist/reuse the result through the operator cache (default on,
        also gated by ``REPRO_CACHE``) so the sweep is pay-once per
        (matrix, geometry, grids, scorer) — and per host when measuring.
    """
    if scorer not in ("measure", "model"):
        raise AutotuneError(f"unknown scorer {scorer!r}")
    store = None
    key = None
    if cache:
        from repro.core.cache import default_cache

        store = default_cache()
        if store.enabled:
            key = _autotune_key(coo, geom, dtype, scorer, iterations, grids)
            payload = store.load_json(key)
            if payload is not None:
                try:
                    return AutotuneResult.from_payload(payload)
                except (KeyError, TypeError, ValueError):
                    store.evict(key)  # stale/corrupt payload: re-sweep
    points = parameter_sweep(
        coo,
        geom,
        dtype=dtype,
        measure=(scorer == "measure"),
        iterations=iterations,
        **grids,
    )
    if not points:
        raise AutotuneError("empty parameter grid")
    if scorer == "measure":
        unmeasured = [
            p for p in points if p.gflops_z is None or p.gflops_m is None
        ]
        if unmeasured:
            combos = ", ".join(
                f"(s_vvec={p.params.s_vvec}, s_imgb={p.params.s_imgb}, "
                f"s_vxg={p.params.s_vxg})"
                for p in unmeasured
            )
            raise AutotuneError(
                f"scorer='measure' has no timing for parameter "
                f"combination(s) {combos}; re-run the sweep with "
                "measure=True or use scorer='model'"
            )
        best_z = max(points, key=lambda p: p.gflops_z).params
        best_m = max(points, key=lambda p: p.gflops_m).params
    else:
        best_z = max(points, key=lambda p: _model_score(p, "z")).params
        best_m = max(points, key=lambda p: _model_score(p, "m")).params
    result = AutotuneResult(best_z=best_z, best_m=best_m, points=points)
    if store is not None and key is not None:
        store.store_json(key, result.to_payload())
    return result
