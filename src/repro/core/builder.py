"""End-to-end CSCV construction: COO + geometry -> CSCV arrays.

The conversion implements the paper's Fig 7 pipeline ("matrix format
conversion before calculation") fully vectorised:

1. **classify** every nonzero into its matrix block (view group x image
   tile) and CSCVE lane (view within group);
2. transform sinogram bins to **curve offsets** ``d = bin - r(view,
   tile)`` against the per-tile reference curves (IOBLR);
3. group nonzeros into **CSCVEs** — unique ``(block, column, d)`` triples,
   each a dense ``s_vvec``-lane vector (missing lanes = padding zeros);
4. pack each column's CSCVEs into **VxGs**: windows of ``s_vxg``
   consecutive offsets anchored at the column's first offset (empty
   offsets inside a window become whole padding CSCVEs — the red boxes of
   Fig 6);
5. emit per-block ``ytilde`` **maps** (``iota_k`` and its inverse) sized to
   cover the offsets the block's VxGs reach.

The output :class:`CSCVData` holds both granularities: VxG-level arrays
(CSCV-Z streams these) and CSCVE-level masked/packed arrays (CSCV-M).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import INDEX_DTYPE, normalize_dtype
from repro.core.blocks import BlockGrid
from repro.core.params import CSCVParams
from repro.errors import FormatError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.obs import metrics as obs_metrics
from repro.obs.profile import profiled
from repro.obs.trace import span


@dataclass
class CSCVData:
    """All arrays produced by :func:`build_cscv` (shared by Z and M)."""

    shape: tuple[int, int]
    nnz: int
    params: CSCVParams
    dtype: np.dtype

    # ---- VxG granularity (CSCV-Z) ----
    #: dense values, ``num_vxg * vxg_len``, padding zeros included
    values: np.ndarray = field(default=None)
    #: global x column per VxG (int32)
    vxg_col: np.ndarray = field(default=None)
    #: start position in the block's ytilde per VxG (int32)
    vxg_start: np.ndarray = field(default=None)
    #: VxG ranges per (present) block, int64, len = num_blocks + 1
    blk_vxg_ptr: np.ndarray = field(default=None)

    # ---- VxG-aligned mask arrays (CSCV-M kernel granularity) ----
    #: packed-value offset of each VxG's first value (int64)
    vxg_voff: np.ndarray = field(default=None)
    #: lane bitmask per VxG slot, ``num_vxg * s_vxg`` (uint32, 0 = empty)
    vxg_masks: np.ndarray = field(default=None)

    # ---- CSCVE granularity (analysis + NumPy path) ----
    #: global x column per CSCVE (int32)
    e_col: np.ndarray = field(default=None)
    #: start position in ytilde per CSCVE (int32)
    e_start: np.ndarray = field(default=None)
    #: prefix offsets into ``packed`` per CSCVE (int64, len = num_e + 1)
    voff: np.ndarray = field(default=None)
    #: lane bitmask per CSCVE (uint32)
    masks: np.ndarray = field(default=None)
    #: packed nonzero values (length = nnz)
    packed: np.ndarray = field(default=None)
    #: CSCVE ranges per block (int64, len = num_blocks + 1)
    blk_e_ptr: np.ndarray = field(default=None)

    # ---- per-block reorder info ----
    #: ytilde length per block (int64)
    blk_ysize: np.ndarray = field(default=None)
    #: ranges into ``ymap`` per block (int64, len = num_blocks + 1)
    blk_map_ptr: np.ndarray = field(default=None)
    #: ytilde position -> global row (int32, -1 = discard slot)
    ymap: np.ndarray = field(default=None)
    #: ids of the non-empty blocks in the full grid (diagnostics)
    present_blocks: np.ndarray = field(default=None)

    @property
    def num_vxg(self) -> int:
        return self.vxg_col.shape[0]

    @property
    def num_cscve(self) -> int:
        return self.e_col.shape[0]

    @property
    def num_blocks(self) -> int:
        return self.blk_ysize.shape[0]

    @property
    def stored_slots(self) -> int:
        """Value slots in CSCV-Z storage (nnz + padding zeros)."""
        return int(self.values.size)

    @property
    def r_nnze(self) -> float:
        """The paper's zero-padding rate ``nnz(A~)/nnz(A) - 1``."""
        return self.stored_slots / self.nnz - 1.0 if self.nnz else 0.0

    @property
    def max_ysize(self) -> int:
        return int(self.blk_ysize.max()) if self.num_blocks else 0

    def padding_per_cscve(self) -> np.ndarray:
        """Padding zeros in each (non-empty) CSCVE — Fig 5 statistic."""
        fill = np.diff(self.voff)
        return self.params.s_vvec - fill


def build_cscv(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    geom: ParallelBeamGeometry,
    params: CSCVParams,
    dtype=None,
    *,
    reference_mode: str = "ioblr",
) -> CSCVData:
    """Convert COO triplets of a CT system matrix into CSCV arrays.

    Triplets must be deduplicated (each ``(row, col)`` at most once) —
    :class:`repro.sparse.COOMatrix` guarantees this.

    ``reference_mode`` selects the local-reordering ablation:

    * ``"ioblr"`` (default) — reference curves follow the tile's
      reference-pixel trajectory (the paper's design);
    * ``"btb"`` — the reference is held *constant* within each view
      group (the view-major / Block-Transpose-Buffer layout of [14]);
      CSCVEs then run along constant-bin lines, which Fig 4 shows fill
      far worse.  Results stay correct either way — only padding and
      performance change.
    """
    dtype = normalize_dtype(dtype if dtype is not None else vals.dtype)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=dtype)
    if not (rows.shape == cols.shape == vals.shape):
        raise FormatError("rows/cols/vals must have equal shapes")
    shape = (geom.num_rays, geom.num_pixels)
    nnz = rows.size
    s_vvec, s_vxg = params.s_vvec, params.s_vxg
    vxg_len = params.vxg_len

    if nnz == 0:
        return _empty_data(shape, params, dtype)

    if reference_mode not in ("ioblr", "btb"):
        raise FormatError(f"unknown reference_mode {reference_mode!r}")
    with span("build.cscv", nnz=nnz, reference_mode=reference_mode,
              s_vvec=s_vvec, s_imgb=params.s_imgb,
              s_vxg=s_vxg) as build_span, profiled("build.cscv"):
        with span("build.trajectory"):
            grid = BlockGrid(geom, params)
            block_id, lane, bin_, tile = grid.classify(rows, cols)
            refb = grid.reference_bins()                 # (views, tiles)
            if reference_mode == "btb":
                # view-major ablation: one constant reference per (group, tile)
                refb = refb.copy()
                for g in range(grid.num_view_groups):
                    v0 = g * s_vvec
                    v1 = min(v0 + s_vvec, geom.num_views)
                    refb[v0:v1] = refb[v0:v1].min(axis=0)
        with span("build.ioblr"):
            v = rows // geom.num_bins
            d = bin_ - refb[v, tile]

        # -------------------------------------------------------------- #
        # sort by (block, col, d, lane); build CSCVE ids
        with span("build.cscve"):
            d_shift = d - d.min()
            d_span = int(d_shift.max()) + 1
            col_key = block_id * geom.num_pixels + cols   # unique per (block,col)
            e_key = col_key * d_span + d_shift            # unique per CSCVE
            full_key = e_key * s_vvec + lane
            if np.log2(float(grid.num_blocks)) + np.log2(
                float(geom.num_pixels)
            ) + np.log2(float(d_span)) + np.log2(float(s_vvec)) > 62:
                raise FormatError("matrix too large for int64 CSCV sort keys")
            order = np.argsort(full_key, kind="stable")
            e_key_s = e_key[order]
            col_key_s = col_key[order]
            block_s = block_id[order]
            d_s = d[order]
            lane_s = lane[order]
            vals_s = vals[order]

            # CSCVE boundaries (sorted, so equal keys are adjacent)
            is_new_e = np.empty(nnz, dtype=bool)
            is_new_e[0] = True
            np.not_equal(e_key_s[1:], e_key_s[:-1], out=is_new_e[1:])
            e_starts = np.flatnonzero(is_new_e)
            num_e = e_starts.size
            e_of_nnz = np.cumsum(is_new_e) - 1

            e_block = block_s[e_starts]
            e_colkey = col_key_s[e_starts]
            e_col_global = (e_colkey % geom.num_pixels).astype(np.int64)
            e_d = d_s[e_starts]

            # duplicate (cscve, lane) pairs would mean duplicated COO entries
            if np.any((np.diff(e_of_nnz) == 0) & (np.diff(lane_s) == 0)):
                raise FormatError(
                    "duplicate (row, col) entries; coalesce the COO first"
                )

        # -------------------------------------------------------------- #
        # column groups over the CSCVE array; anchored VxG windows
        with span("build.vxg"):
            is_new_c = np.empty(num_e, dtype=bool)
            is_new_c[0] = True
            np.not_equal(e_colkey[1:], e_colkey[:-1], out=is_new_c[1:])
            c_starts = np.flatnonzero(is_new_c)
            c_sizes = np.diff(np.append(c_starts, num_e))
            # within a column CSCVEs are d-ascending, so first d is min
            d_anchor = np.repeat(e_d[c_starts], c_sizes)
            w = (e_d - d_anchor) // s_vxg                 # window per CSCVE

            is_new_g = is_new_c.copy()
            is_new_g[1:] |= w[1:] != w[:-1]
            g_starts = np.flatnonzero(is_new_g)
            num_g = g_starts.size
            g_of_e = np.cumsum(is_new_g) - 1

            g_block = e_block[g_starts]
            g_col = e_col_global[g_starts]
            g_window_d = d_anchor[g_starts] + w[g_starts] * s_vxg  # first offset

            # present blocks, ranges and ytilde geometry
            is_new_b = np.empty(num_g, dtype=bool)
            is_new_b[0] = True
            np.not_equal(g_block[1:], g_block[:-1], out=is_new_b[1:])
            b_starts_g = np.flatnonzero(is_new_b)
            present_blocks = g_block[b_starts_g]
            num_b = present_blocks.size
            blk_vxg_ptr = np.append(b_starts_g, num_g).astype(np.int64)

            # block ranges over the nonzero array (same ordering: block-major)
            is_new_b_nnz = np.empty(nnz, dtype=bool)
            is_new_b_nnz[0] = True
            np.not_equal(block_s[1:], block_s[:-1], out=is_new_b_nnz[1:])
            b_starts_nnz = np.flatnonzero(is_new_b_nnz)
            blk_dmin = np.minimum.reduceat(d_s, b_starts_nnz)

            # VxG overhang can extend past the largest nonzero offset
            g_window_end = g_window_d + s_vxg - 1
            blk_dmax = np.maximum.reduceat(g_window_end, b_starts_g)
            blk_ysize = (blk_dmax - blk_dmin + 1) * s_vvec

            # block ranges over the CSCVE array
            is_new_b_e = np.empty(num_e, dtype=bool)
            is_new_b_e[0] = True
            np.not_equal(e_block[1:], e_block[:-1], out=is_new_b_e[1:])
            blk_e_ptr = np.append(np.flatnonzero(is_new_b_e), num_e).astype(np.int64)

            # value placement
            b_of_g = np.cumsum(is_new_b) - 1              # block index per VxG
            b_of_e = b_of_g[g_of_e]
            b_of_nnz = b_of_e[e_of_nnz]

            vxg_start = ((g_window_d - blk_dmin[b_of_g]) * s_vvec).astype(INDEX_DTYPE)
            e_start = ((e_d - blk_dmin[b_of_e]) * s_vvec).astype(INDEX_DTYPE)

            values = np.zeros(num_g * vxg_len, dtype=dtype)
            e_local = e_d - g_window_d[g_of_e]            # CSCVE index in window
            slot = g_of_e[e_of_nnz] * vxg_len + e_local[e_of_nnz] * s_vvec + lane_s
            values[slot] = vals_s

            # CSCV-M: masks + packed values (vals_s is CSCVE/lane ordered)
            bits = (np.uint32(1) << lane_s.astype(np.uint32)).astype(np.uint32)
            masks = np.bitwise_or.reduceat(bits, e_starts).astype(np.uint32)
            voff = np.append(e_starts, nnz).astype(np.int64)

            # VxG-aligned mask grid + per-VxG packed offsets (the M kernel's
            # view: one (col, start, voff) triple per VxG, s_vxg masks,
            # empty slots = 0)
            vxg_masks = np.zeros(num_g * s_vxg, dtype=np.uint32)
            vxg_masks[g_of_e * s_vxg + e_local] = masks
            vxg_voff = voff[g_starts]

        # -------------------------------------------------------------- #
        # ytilde -> global row maps
        with span("build.ymap"):
            blk_map_ptr = np.zeros(num_b + 1, dtype=np.int64)
            np.cumsum(blk_ysize, out=blk_map_ptr[1:])
            total_slots = int(blk_map_ptr[-1])
            slot_block = np.repeat(np.arange(num_b), blk_ysize)
            slot_pos = np.arange(total_slots) - blk_map_ptr[slot_block]
            slot_lane = slot_pos % s_vvec
            slot_d = blk_dmin[slot_block] + slot_pos // s_vvec

            group_of_block = present_blocks // grid.num_img_blocks
            tile_of_block = present_blocks % grid.num_img_blocks
            slot_view = group_of_block[slot_block] * s_vvec + slot_lane
            view_ok = slot_view < geom.num_views
            slot_view_c = np.minimum(slot_view, geom.num_views - 1)
            slot_bin = refb[slot_view_c, tile_of_block[slot_block]] + slot_d
            valid = view_ok & (slot_bin >= 0) & (slot_bin < geom.num_bins)
            ymap = np.where(
                valid, slot_view * geom.num_bins + slot_bin, -1
            ).astype(np.int32)

        build_span.set(num_cscve=num_e, num_vxg=num_g, num_blocks=num_b)

    data = CSCVData(
        shape=shape,
        nnz=nnz,
        params=params,
        dtype=dtype,
        values=values,
        vxg_col=g_col.astype(INDEX_DTYPE),
        vxg_start=vxg_start,
        blk_vxg_ptr=blk_vxg_ptr,
        vxg_voff=vxg_voff.copy(),
        vxg_masks=vxg_masks,
        e_col=e_col_global.astype(INDEX_DTYPE),
        e_start=e_start,
        voff=voff,
        masks=masks,
        packed=vals_s.copy(),
        blk_e_ptr=blk_e_ptr,
        blk_ysize=blk_ysize.astype(np.int64),
        blk_map_ptr=blk_map_ptr,
        ymap=ymap,
        present_blocks=present_blocks.astype(np.int64),
    )
    _validate(data)
    obs_metrics.counter("build.calls", "CSCV conversions performed").inc()
    obs_metrics.histogram(
        "build.r_nnze", "zero-padding rate per built matrix",
        buckets=(0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4),
    ).observe(data.r_nnze)
    obs_metrics.gauge(
        "build.vxg_fill", "fraction of CSCV-Z value slots that are real nonzeros"
    ).set(data.nnz / data.stored_slots if data.stored_slots else 1.0)
    return data


def _empty_data(shape, params, dtype) -> CSCVData:
    return CSCVData(
        shape=shape,
        nnz=0,
        params=params,
        dtype=dtype,
        values=np.zeros(0, dtype=dtype),
        vxg_col=np.zeros(0, dtype=INDEX_DTYPE),
        vxg_start=np.zeros(0, dtype=INDEX_DTYPE),
        blk_vxg_ptr=np.zeros(1, dtype=np.int64),
        vxg_voff=np.zeros(0, dtype=np.int64),
        vxg_masks=np.zeros(0, dtype=np.uint32),
        e_col=np.zeros(0, dtype=INDEX_DTYPE),
        e_start=np.zeros(0, dtype=INDEX_DTYPE),
        voff=np.zeros(1, dtype=np.int64),
        masks=np.zeros(0, dtype=np.uint32),
        packed=np.zeros(0, dtype=dtype),
        blk_e_ptr=np.zeros(1, dtype=np.int64),
        blk_ysize=np.zeros(0, dtype=np.int64),
        blk_map_ptr=np.zeros(1, dtype=np.int64),
        ymap=np.zeros(0, dtype=np.int32),
        present_blocks=np.zeros(0, dtype=np.int64),
    )


def _validate(data: CSCVData) -> None:
    """Structural invariants; cheap checks always, deep checks when
    ``config.runtime.paranoid_checks`` is set."""
    from repro import config

    p = data.params
    if data.num_vxg and int(data.vxg_start.max()) + p.vxg_len > int(
        np.repeat(data.blk_ysize, np.diff(data.blk_vxg_ptr)).max()
        if data.num_blocks
        else 0
    ):
        # per-VxG bound: start + vxg_len <= its block's ysize
        ysz = np.repeat(data.blk_ysize, np.diff(data.blk_vxg_ptr))
        if np.any(data.vxg_start.astype(np.int64) + p.vxg_len > ysz):
            raise FormatError("VxG overruns its block's ytilde")
    if data.voff[-1] != data.nnz:
        raise FormatError("packed value count disagrees with nnz")
    if config.runtime.paranoid_checks and data.num_blocks:
        # every valid map slot must be a distinct global row per block
        for b in range(data.num_blocks):
            seg = data.ymap[data.blk_map_ptr[b] : data.blk_map_ptr[b + 1]]
            valid = seg[seg >= 0]
            if valid.size != np.unique(valid).size:
                raise FormatError(f"block {b}: ymap not injective")
