"""End-to-end CSCV construction: COO + geometry -> CSCV arrays.

The conversion implements the paper's Fig 7 pipeline ("matrix format
conversion before calculation") fully vectorised:

1. **classify** every nonzero into its matrix block (view group x image
   tile) and CSCVE lane (view within group);
2. transform sinogram bins to **curve offsets** ``d = bin - r(view,
   tile)`` against the per-tile reference curves (IOBLR);
3. group nonzeros into **CSCVEs** — unique ``(block, column, d)`` triples,
   each a dense ``s_vvec``-lane vector (missing lanes = padding zeros);
4. pack each column's CSCVEs into **VxGs**: windows of ``s_vxg``
   consecutive offsets anchored at the column's first offset (empty
   offsets inside a window become whole padding CSCVEs — the red boxes of
   Fig 6);
5. emit per-block ``ytilde`` **maps** (``iota_k`` and its inverse) sized to
   cover the offsets the block's VxGs reach.

The output :class:`CSCVData` holds both granularities: VxG-level arrays
(CSCV-Z streams these) and CSCVE-level masked/packed arrays (CSCV-M).

Parallel packing
----------------
Steps 3-5 are partitioned by *matrix block*: contiguous block ranges with
roughly equal nnz are packed independently (on the shared build pool when
``workers > 1``) and merged by concatenation plus integer pointer
rebasing.  The global CSCVE sort key is block-major, every equal-key tie
stays inside one block (hence one partition), and all per-element float
work is partition-local, so a per-partition stable sort followed by an
ordered merge reproduces the global stable sort **bitwise** — the output
arrays are identical for any ``workers`` / partition count.  The
partitioned path always runs (one partition when ``workers == 1``), which
makes that identity structural rather than best-effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import INDEX_DTYPE, normalize_dtype
from repro.core.blocks import BlockGrid
from repro.core.params import CSCVParams
from repro.errors import FormatError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.sweep import resolve_build_workers
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs.profile import profiled
from repro.obs.trace import span
from repro.utils.pool import build_pool, run_resilient


@dataclass
class CSCVData:
    """All arrays produced by :func:`build_cscv` (shared by Z and M)."""

    shape: tuple[int, int]
    nnz: int
    params: CSCVParams
    dtype: np.dtype

    # ---- VxG granularity (CSCV-Z) ----
    #: dense values, ``num_vxg * vxg_len``, padding zeros included
    values: np.ndarray = field(default=None)
    #: global x column per VxG (int32)
    vxg_col: np.ndarray = field(default=None)
    #: start position in the block's ytilde per VxG (int32)
    vxg_start: np.ndarray = field(default=None)
    #: VxG ranges per (present) block, int64, len = num_blocks + 1
    blk_vxg_ptr: np.ndarray = field(default=None)

    # ---- VxG-aligned mask arrays (CSCV-M kernel granularity) ----
    #: packed-value offset of each VxG's first value (int64)
    vxg_voff: np.ndarray = field(default=None)
    #: lane bitmask per VxG slot, ``num_vxg * s_vxg`` (uint32, 0 = empty)
    vxg_masks: np.ndarray = field(default=None)

    # ---- CSCVE granularity (analysis + NumPy path) ----
    #: global x column per CSCVE (int32)
    e_col: np.ndarray = field(default=None)
    #: start position in ytilde per CSCVE (int32)
    e_start: np.ndarray = field(default=None)
    #: prefix offsets into ``packed`` per CSCVE (int64, len = num_e + 1)
    voff: np.ndarray = field(default=None)
    #: lane bitmask per CSCVE (uint32)
    masks: np.ndarray = field(default=None)
    #: packed nonzero values (length = nnz)
    packed: np.ndarray = field(default=None)
    #: CSCVE ranges per block (int64, len = num_blocks + 1)
    blk_e_ptr: np.ndarray = field(default=None)

    # ---- per-block reorder info ----
    #: ytilde length per block (int64)
    blk_ysize: np.ndarray = field(default=None)
    #: ranges into ``ymap`` per block (int64, len = num_blocks + 1)
    blk_map_ptr: np.ndarray = field(default=None)
    #: ytilde position -> global row (int32, -1 = discard slot)
    ymap: np.ndarray = field(default=None)
    #: ids of the non-empty blocks in the full grid (diagnostics)
    present_blocks: np.ndarray = field(default=None)

    @property
    def num_vxg(self) -> int:
        return self.vxg_col.shape[0]

    @property
    def num_cscve(self) -> int:
        return self.e_col.shape[0]

    @property
    def num_blocks(self) -> int:
        return self.blk_ysize.shape[0]

    @property
    def stored_slots(self) -> int:
        """Value slots in CSCV-Z storage (nnz + padding zeros)."""
        return int(self.values.size)

    @property
    def r_nnze(self) -> float:
        """The paper's zero-padding rate ``nnz(A~)/nnz(A) - 1``."""
        return self.stored_slots / self.nnz - 1.0 if self.nnz else 0.0

    @property
    def max_ysize(self) -> int:
        return int(self.blk_ysize.max()) if self.num_blocks else 0

    def padding_per_cscve(self) -> np.ndarray:
        """Padding zeros in each (non-empty) CSCVE — Fig 5 statistic."""
        fill = np.diff(self.voff)
        return self.params.s_vvec - fill


def build_cscv(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    geom: ParallelBeamGeometry,
    params: CSCVParams,
    dtype=None,
    *,
    reference_mode: str = "ioblr",
    workers: int | None = None,
) -> CSCVData:
    """Convert COO triplets of a CT system matrix into CSCV arrays.

    Triplets must be deduplicated (each ``(row, col)`` at most once) —
    :class:`repro.sparse.COOMatrix` guarantees this.

    ``reference_mode`` selects the local-reordering ablation:

    * ``"ioblr"`` (default) — reference curves follow the tile's
      reference-pixel trajectory (the paper's design);
    * ``"btb"`` — the reference is held *constant* within each view
      group (the view-major / Block-Transpose-Buffer layout of [14]);
      CSCVEs then run along constant-bin lines, which Fig 4 shows fill
      far worse.  Results stay correct either way — only padding and
      performance change.

    ``workers`` overrides ``config.runtime.build_workers`` for the
    packing stages.  The output is bitwise-identical for every worker
    count (see the module docstring), so cache keys and file hashes
    never depend on it.
    """
    dtype = normalize_dtype(dtype if dtype is not None else vals.dtype)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=dtype)
    if not (rows.shape == cols.shape == vals.shape):
        raise FormatError("rows/cols/vals must have equal shapes")
    shape = (geom.num_rays, geom.num_pixels)
    nnz = rows.size
    s_vvec, s_vxg = params.s_vvec, params.s_vxg

    if nnz == 0:
        return _empty_data(shape, params, dtype)

    if reference_mode not in ("ioblr", "btb"):
        raise FormatError(f"unknown reference_mode {reference_mode!r}")
    workers = resolve_build_workers(workers)
    t0 = obs_perf.clock() if obs_perf.active else 0.0
    with span("build.cscv", nnz=nnz, reference_mode=reference_mode,
              s_vvec=s_vvec, s_imgb=params.s_imgb,
              s_vxg=s_vxg) as build_span, profiled("build.cscv"):
        with span("build.trajectory"):
            grid = BlockGrid(geom, params)
            block_id, lane, bin_, tile = grid.classify(rows, cols)
            refb = grid.reference_bins()                 # (views, tiles)
            if reference_mode == "btb":
                # view-major ablation: one constant reference per (group, tile)
                refb = refb.copy()
                for g in range(grid.num_view_groups):
                    v0 = g * s_vvec
                    v1 = min(v0 + s_vvec, geom.num_views)
                    refb[v0:v1] = refb[v0:v1].min(axis=0)
        with span("build.ioblr"):
            v = rows // geom.num_bins
            d = bin_ - refb[v, tile]

        # Global sort-key geometry, shared by every partition so the keys
        # (and therefore the packed output) cannot depend on the split.
        d_min = int(d.min())
        d_span = int(d.max()) - d_min + 1
        if np.log2(float(grid.num_blocks)) + np.log2(
            float(geom.num_pixels)
        ) + np.log2(float(d_span)) + np.log2(float(s_vvec)) > 62:
            raise FormatError("matrix too large for int64 CSCV sort keys")

        ranges = _partition_ranges(block_id, grid.num_blocks, workers)
        used = min(workers, len(ranges))
        shared = {
            "num_pixels": geom.num_pixels,
            "num_views": geom.num_views,
            "num_bins": geom.num_bins,
            "num_img_blocks": grid.num_img_blocks,
            "d_min": d_min,
            "d_span": d_span,
            "s_vvec": s_vvec,
            "s_vxg": s_vxg,
            "vxg_len": params.vxg_len,
            "dtype": dtype,
            "refb": refb,
        }
        parts = []
        for b0, b1 in ranges:
            if len(ranges) == 1:
                sel = slice(None)
            else:
                sel = np.flatnonzero((block_id >= b0) & (block_id < b1))
            parts.append({
                "shared": shared,
                "block": block_id[sel],
                "cols": cols[sel],
                "d": d[sel],
                "lane": lane[sel],
                "vals": vals[sel],
            })

        def run_stage(fn):
            # Barrier round over partitions; stage spans stay on the main
            # thread so the fig7 per-stage breakdown keeps working.
            if used <= 1:
                for p in parts:
                    fn(p)
            else:
                run_resilient(build_pool, fn, parts, used, label="pack")

        with span("build.pack", workers=used, partitions=len(parts)):
            with span("build.cscve"):
                run_stage(_pack_cscve)
            with span("build.vxg"):
                run_stage(_pack_vxg)
            with span("build.ymap"):
                run_stage(_pack_ymap)
            with span("build.merge"):
                merged = _merge_parts(parts)

        total_e = int(merged["e_col"].shape[0])
        total_g = int(merged["vxg_col"].shape[0])
        total_b = int(merged["blk_ysize"].shape[0])
        build_span.set(num_cscve=total_e, num_vxg=total_g,
                       num_blocks=total_b)
    obs_metrics.gauge(
        "build.pack.workers", "workers used by the last CSCV packing"
    ).set(used)

    data = CSCVData(
        shape=shape,
        nnz=nnz,
        params=params,
        dtype=dtype,
        **merged,
    )
    _validate(data)
    obs_metrics.counter("build.calls", "CSCV conversions performed").inc()
    obs_metrics.histogram(
        "build.r_nnze", "zero-padding rate per built matrix",
        buckets=(0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4),
    ).observe(data.r_nnze)
    obs_metrics.gauge(
        "build.vxg_fill", "fraction of CSCV-Z value slots that are real nonzeros"
    ).set(data.nnz / data.stored_slots if data.stored_slots else 1.0)
    if obs_perf.active:
        out_bytes = sum(
            v.nbytes for v in merged.values() if hasattr(v, "nbytes")
        )
        obs_perf.record_build(seconds=obs_perf.clock() - t0,
                              bytes_written=out_bytes, nnz=nnz)
    return data


def _partition_ranges(
    block_id: np.ndarray, num_blocks: int, parts_wanted: int
) -> list[tuple[int, int]]:
    """Contiguous block ranges with roughly equal nnz, all non-empty.

    Boundaries come from nnz quantiles over the per-block counts, so a
    skewed block population still balances; ranges that would carry zero
    nonzeros are dropped.
    """
    counts = np.bincount(block_id, minlength=num_blocks)
    cum = np.cumsum(counts)
    nnz = int(cum[-1])
    edges = [0]
    for k in range(1, max(1, parts_wanted)):
        t = k * nnz // parts_wanted
        b = int(np.searchsorted(cum, t, side="left")) + 1
        if edges[-1] < b < num_blocks:
            edges.append(b)
    edges.append(num_blocks)
    out = []
    for b0, b1 in zip(edges[:-1], edges[1:]):
        if int(cum[b1 - 1]) - (int(cum[b0 - 1]) if b0 else 0) > 0:
            out.append((b0, b1))
    return out or [(0, num_blocks)]


# --------------------------------------------------------------------- #
# per-partition packing stages (run on the build pool; every array they
# touch is partition-local, shared inputs are read-only)

def _pack_cscve(p: dict) -> None:
    """Sort one partition by (block, col, d, lane); find CSCVE bounds."""
    sh = p["shared"]
    nnz = p["vals"].size
    col_key = p["block"] * sh["num_pixels"] + p["cols"]  # unique per (block,col)
    e_key = col_key * sh["d_span"] + (p["d"] - sh["d_min"])
    full_key = e_key * sh["s_vvec"] + p["lane"]
    order = np.argsort(full_key, kind="stable")
    e_key_s = e_key[order]
    col_key_s = col_key[order]
    p["block_s"] = p["block"][order]
    p["d_s"] = p["d"][order]
    p["lane_s"] = p["lane"][order]
    p["vals_s"] = p["vals"][order]

    # CSCVE boundaries (sorted, so equal keys are adjacent)
    is_new_e = np.empty(nnz, dtype=bool)
    is_new_e[0] = True
    np.not_equal(e_key_s[1:], e_key_s[:-1], out=is_new_e[1:])
    e_starts = np.flatnonzero(is_new_e)
    p["e_starts"] = e_starts
    p["num_e"] = e_starts.size
    p["e_of_nnz"] = np.cumsum(is_new_e) - 1

    p["e_block"] = p["block_s"][e_starts]
    p["e_colkey"] = col_key_s[e_starts]
    p["e_col_global"] = (p["e_colkey"] % sh["num_pixels"]).astype(np.int64)
    p["e_d"] = p["d_s"][e_starts]

    # duplicate (cscve, lane) pairs would mean duplicated COO entries;
    # duplicates share a block, so the per-partition check is exhaustive
    # (same CSCVE <=> not a new one; cheaper than diffing e_of_nnz)
    lane_s = p["lane_s"]
    if np.any(~is_new_e[1:] & (lane_s[1:] == lane_s[:-1])):
        raise FormatError(
            "duplicate (row, col) entries; coalesce the COO first"
        )


def _pack_vxg(p: dict) -> None:
    """Column groups over the partition's CSCVEs; anchored VxG windows."""
    sh = p["shared"]
    s_vvec, s_vxg, vxg_len = sh["s_vvec"], sh["s_vxg"], sh["vxg_len"]
    num_e = p["num_e"]
    nnz = p["vals_s"].size
    e_colkey, e_block, e_d = p["e_colkey"], p["e_block"], p["e_d"]

    is_new_c = np.empty(num_e, dtype=bool)
    is_new_c[0] = True
    np.not_equal(e_colkey[1:], e_colkey[:-1], out=is_new_c[1:])
    c_starts = np.flatnonzero(is_new_c)
    c_sizes = np.diff(np.append(c_starts, num_e))
    # within a column CSCVEs are d-ascending, so first d is min
    d_anchor = np.repeat(e_d[c_starts], c_sizes)
    w = (e_d - d_anchor) // s_vxg                 # window per CSCVE

    is_new_g = is_new_c.copy()
    is_new_g[1:] |= w[1:] != w[:-1]
    g_starts = np.flatnonzero(is_new_g)
    num_g = g_starts.size
    g_of_e = np.cumsum(is_new_g) - 1

    g_block = e_block[g_starts]
    g_col = p["e_col_global"][g_starts]
    g_window_d = d_anchor[g_starts] + w[g_starts] * s_vxg  # first offset

    # present blocks, ranges and ytilde geometry
    is_new_b = np.empty(num_g, dtype=bool)
    is_new_b[0] = True
    np.not_equal(g_block[1:], g_block[:-1], out=is_new_b[1:])
    b_starts_g = np.flatnonzero(is_new_b)
    p["present_blocks"] = g_block[b_starts_g]
    num_b = p["present_blocks"].size
    p["blk_vxg_ptr"] = np.append(b_starts_g, num_g).astype(np.int64)

    # block ranges over the nonzero array (same ordering: block-major)
    block_s = p["block_s"]
    is_new_b_nnz = np.empty(nnz, dtype=bool)
    is_new_b_nnz[0] = True
    np.not_equal(block_s[1:], block_s[:-1], out=is_new_b_nnz[1:])
    b_starts_nnz = np.flatnonzero(is_new_b_nnz)
    blk_dmin = np.minimum.reduceat(p["d_s"], b_starts_nnz)
    p["blk_dmin"] = blk_dmin

    # VxG overhang can extend past the largest nonzero offset
    g_window_end = g_window_d + s_vxg - 1
    blk_dmax = np.maximum.reduceat(g_window_end, b_starts_g)
    p["blk_ysize"] = ((blk_dmax - blk_dmin + 1) * s_vvec).astype(np.int64)

    # block ranges over the CSCVE array
    is_new_b_e = np.empty(num_e, dtype=bool)
    is_new_b_e[0] = True
    np.not_equal(e_block[1:], e_block[:-1], out=is_new_b_e[1:])
    p["blk_e_ptr"] = np.append(np.flatnonzero(is_new_b_e), num_e).astype(np.int64)

    # value placement
    b_of_g = np.cumsum(is_new_b) - 1              # block index per VxG
    b_of_e = b_of_g[g_of_e]

    p["vxg_start"] = ((g_window_d - blk_dmin[b_of_g]) * s_vvec).astype(INDEX_DTYPE)
    p["e_start"] = ((e_d - blk_dmin[b_of_e]) * s_vvec).astype(INDEX_DTYPE)

    values = np.zeros(num_g * vxg_len, dtype=sh["dtype"])
    e_local = e_d - g_window_d[g_of_e]            # CSCVE index in window
    e_of_nnz, e_starts = p["e_of_nnz"], p["e_starts"]
    slot = g_of_e[e_of_nnz] * vxg_len + e_local[e_of_nnz] * s_vvec + p["lane_s"]
    values[slot] = p["vals_s"]
    p["values"] = values

    # CSCV-M: masks + packed values (vals_s is CSCVE/lane ordered)
    bits = (np.uint32(1) << p["lane_s"].astype(np.uint32)).astype(np.uint32)
    p["masks"] = np.bitwise_or.reduceat(bits, e_starts).astype(np.uint32)
    voff = np.append(e_starts, nnz).astype(np.int64)
    p["voff"] = voff

    # VxG-aligned mask grid + per-VxG packed offsets (the M kernel's
    # view: one (col, start, voff) triple per VxG, s_vxg masks,
    # empty slots = 0)
    vxg_masks = np.zeros(num_g * s_vxg, dtype=np.uint32)
    vxg_masks[g_of_e * s_vxg + e_local] = p["masks"]
    p["vxg_masks"] = vxg_masks
    p["vxg_voff"] = voff[g_starts]
    p["g_col"] = g_col
    p["num_g"] = num_g
    p["num_b"] = num_b


def _pack_ymap(p: dict) -> None:
    """ytilde -> global row map for the partition's blocks.

    Slot positions are relative to the *block*, so the local map equals
    the corresponding segment of the global one.
    """
    sh = p["shared"]
    s_vvec = sh["s_vvec"]
    num_b = p["num_b"]
    blk_ysize, blk_dmin = p["blk_ysize"], p["blk_dmin"]
    present_blocks = p["present_blocks"]
    refb = sh["refb"]

    blk_map_ptr = np.zeros(num_b + 1, dtype=np.int64)
    np.cumsum(blk_ysize, out=blk_map_ptr[1:])
    total_slots = int(blk_map_ptr[-1])
    slot_block = np.repeat(np.arange(num_b), blk_ysize)
    slot_pos = np.arange(total_slots) - blk_map_ptr[slot_block]
    slot_lane = slot_pos % s_vvec
    slot_d = blk_dmin[slot_block] + slot_pos // s_vvec

    group_of_block = present_blocks // sh["num_img_blocks"]
    tile_of_block = present_blocks % sh["num_img_blocks"]
    slot_view = group_of_block[slot_block] * s_vvec + slot_lane
    view_ok = slot_view < sh["num_views"]
    slot_view_c = np.minimum(slot_view, sh["num_views"] - 1)
    slot_bin = refb[slot_view_c, tile_of_block[slot_block]] + slot_d
    valid = view_ok & (slot_bin >= 0) & (slot_bin < sh["num_bins"])
    p["ymap"] = np.where(
        valid, slot_view * sh["num_bins"] + slot_bin, -1
    ).astype(np.int32)


def _merge_parts(parts: list[dict]) -> dict:
    """Ordered merge: concatenate arrays, rebase the integer pointers.

    Partitions hold disjoint, ascending block ranges, so concatenation in
    partition order reproduces the global block-major layout exactly;
    only the ``*_ptr`` / ``*_voff`` prefix arrays need offsetting.
    """
    cat = {k: [] for k in (
        "values", "vxg_col", "vxg_start", "blk_vxg_ptr", "vxg_voff",
        "vxg_masks", "e_col", "e_start", "voff", "masks", "packed",
        "blk_e_ptr", "blk_ysize", "ymap", "present_blocks",
    )}
    g_off = e_off = nnz_off = 0
    for p in parts:
        cat["values"].append(p["values"])
        cat["vxg_col"].append(p["g_col"].astype(INDEX_DTYPE))
        cat["vxg_start"].append(p["vxg_start"])
        cat["blk_vxg_ptr"].append(p["blk_vxg_ptr"][:-1] + g_off)
        cat["vxg_voff"].append(p["vxg_voff"] + nnz_off)
        cat["vxg_masks"].append(p["vxg_masks"])
        cat["e_col"].append(p["e_col_global"].astype(INDEX_DTYPE))
        cat["e_start"].append(p["e_start"])
        cat["voff"].append(p["voff"][:-1] + nnz_off)
        cat["masks"].append(p["masks"])
        cat["packed"].append(p["vals_s"])
        cat["blk_e_ptr"].append(p["blk_e_ptr"][:-1] + e_off)
        cat["blk_ysize"].append(p["blk_ysize"])
        cat["ymap"].append(p["ymap"])
        cat["present_blocks"].append(p["present_blocks"].astype(np.int64))
        g_off += p["num_g"]
        e_off += p["num_e"]
        nnz_off += p["vals_s"].size
    out = {k: np.concatenate(v) for k, v in cat.items()}
    out["blk_vxg_ptr"] = np.append(out["blk_vxg_ptr"], g_off)
    out["voff"] = np.append(out["voff"], nnz_off)
    out["blk_e_ptr"] = np.append(out["blk_e_ptr"], e_off)
    blk_map_ptr = np.zeros(out["blk_ysize"].size + 1, dtype=np.int64)
    np.cumsum(out["blk_ysize"], out=blk_map_ptr[1:])
    out["blk_map_ptr"] = blk_map_ptr
    return out


def _empty_data(shape, params, dtype) -> CSCVData:
    return CSCVData(
        shape=shape,
        nnz=0,
        params=params,
        dtype=dtype,
        values=np.zeros(0, dtype=dtype),
        vxg_col=np.zeros(0, dtype=INDEX_DTYPE),
        vxg_start=np.zeros(0, dtype=INDEX_DTYPE),
        blk_vxg_ptr=np.zeros(1, dtype=np.int64),
        vxg_voff=np.zeros(0, dtype=np.int64),
        vxg_masks=np.zeros(0, dtype=np.uint32),
        e_col=np.zeros(0, dtype=INDEX_DTYPE),
        e_start=np.zeros(0, dtype=INDEX_DTYPE),
        voff=np.zeros(1, dtype=np.int64),
        masks=np.zeros(0, dtype=np.uint32),
        packed=np.zeros(0, dtype=dtype),
        blk_e_ptr=np.zeros(1, dtype=np.int64),
        blk_ysize=np.zeros(0, dtype=np.int64),
        blk_map_ptr=np.zeros(1, dtype=np.int64),
        ymap=np.zeros(0, dtype=np.int32),
        present_blocks=np.zeros(0, dtype=np.int64),
    )


def _validate(data: CSCVData) -> None:
    """Structural invariants; cheap checks always, deep checks when
    ``config.runtime.paranoid_checks`` is set."""
    from repro import config

    p = data.params
    if data.num_vxg and int(data.vxg_start.max()) + p.vxg_len > int(
        np.repeat(data.blk_ysize, np.diff(data.blk_vxg_ptr)).max()
        if data.num_blocks
        else 0
    ):
        # per-VxG bound: start + vxg_len <= its block's ysize
        ysz = np.repeat(data.blk_ysize, np.diff(data.blk_vxg_ptr))
        if np.any(data.vxg_start.astype(np.int64) + p.vxg_len > ysz):
            raise FormatError("VxG overruns its block's ytilde")
    if data.voff[-1] != data.nnz:
        raise FormatError("packed value count disagrees with nnz")
    if config.runtime.paranoid_checks and data.num_blocks:
        # every valid map slot must be a distinct global row per block
        for b in range(data.num_blocks):
            seg = data.ymap[data.blk_map_ptr[b] : data.blk_map_ptr[b + 1]]
            valid = seg[seg >= 0]
            if valid.size != np.unique(valid).size:
                raise FormatError(f"block {b}: ymap not injective")
