"""SpMV / SpMM execution drivers for CSCV data.

Three execution paths, all numerically identical:

* **C blocked** — the faithful pipeline: per block, zero a ``ytilde``
  scratch, stream VxGs as contiguous vector FMAs, scatter-add through the
  inverse IOBLR map into per-thread private copies of ``y``, reduce
  (Section IV-E threading scheme) — OpenMP inside the compiled kernel;
* **NumPy flat** — a fully vectorised fallback: pre-resolved global row
  per value slot + one ``bincount`` scatter-add;
* **NumPy threaded** — the flat path split over block ranges across a
  thread pool with per-thread partial ``y`` and a final reduction,
  mirroring the paper's private-copy scheme in pure Python.

The multi-RHS drivers (:func:`spmm_z` / :func:`spmm_m`) run the same VxG
stream against ``X`` of shape ``(n, k)`` — the matrix streams from memory
once for all ``k`` right-hand sides, which is where the batched CT
workload (many slices, one system matrix) wins over looped SpMV.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import config
from repro.core.builder import CSCVData
from repro.kernels import dispatch
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs.trace import span
from repro.utils.pool import run_resilient, spmv_pool


def _shared_pool(workers: int) -> ThreadPoolExecutor:
    """The process-wide SpMV worker pool, grown to at least *workers*.

    Backed by :data:`repro.utils.pool.spmv_pool`, which also *shrinks*
    (recreates the pool smaller) when ``config.runtime.threads`` is
    lowered at runtime and the request fits under the new ceiling.
    """
    return spmv_pool.get(workers)


def _shutdown_pool() -> None:
    """Tear down the shared pool (atexit hook and test hook)."""
    spmv_pool.shutdown()


def __getattr__(name: str):
    # Back-compat introspection of the pool internals (test hooks).
    if name == "_pool":
        return spmv_pool._pool
    if name == "_pool_size":
        return spmv_pool.size
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _count_call(variant: str, backend: str) -> None:
    """Per-(variant, backend) SpMV call counters (cscv_z/c, cscv_m/flat...)."""
    obs_metrics.counter(
        f"spmv.calls.{variant}.{backend}",
        "SpMV executions by CSCV variant and execution backend",
    ).inc()


def resolve_flat_rows_z(data: CSCVData) -> np.ndarray:
    """Global row id (or -1) of every CSCV-Z value slot.

    Composes VxG placement with the per-block inverse map once, so the
    NumPy path needs no per-call permutation.
    """
    if data.num_vxg == 0:
        return np.zeros(0, dtype=np.int32)
    vxg_len = data.params.vxg_len
    b_of_g = np.repeat(np.arange(data.num_blocks), np.diff(data.blk_vxg_ptr))
    base = data.blk_map_ptr[b_of_g] + data.vxg_start.astype(np.int64)
    pos = base[:, None] + np.arange(vxg_len)[None, :]
    return data.ymap[pos.ravel()]


def resolve_flat_rows_m(data: CSCVData) -> np.ndarray:
    """Global row id of every packed CSCV-M value (always valid)."""
    if data.nnz == 0:
        return np.zeros(0, dtype=np.int32)
    s_vvec = data.params.s_vvec
    b_of_e = np.repeat(np.arange(data.num_blocks), np.diff(data.blk_e_ptr))
    base = data.blk_map_ptr[b_of_e] + data.e_start.astype(np.int64)
    # lane of each packed value from the mask bit order
    lanes = _mask_lanes(data.masks, s_vvec)
    pos = np.repeat(base, np.diff(data.voff)) + lanes
    return data.ymap[pos]


def _mask_lanes(masks: np.ndarray, s_vvec: int) -> np.ndarray:
    """Concatenated set-bit positions of every mask, mask-major order."""
    if masks.size == 0:
        return np.zeros(0, dtype=np.int64)
    bits = (masks[:, None] >> np.arange(s_vvec, dtype=np.uint32)[None, :]) & 1
    e_idx, lane = np.nonzero(bits)
    # np.nonzero iterates row-major: already (mask, lane-ascending) order
    return lane.astype(np.int64)


def spmv_z(data: CSCVData, x: np.ndarray, y: np.ndarray, *, threads: int | None = None,
           flat_rows: np.ndarray | None = None) -> np.ndarray:
    """CSCV-Z SpMV into *y* (overwritten)."""
    threads = threads or config.runtime.threads
    y[:] = 0
    if data.nnz == 0:
        return y
    t0 = obs_perf.clock() if obs_perf.active else 0.0
    fn = dispatch.get("cscv_z_spmv", data.dtype)
    if fn is not None:
        with span("spmv.z", backend="c", nnz=data.nnz,
                  blocks=data.num_blocks, threads=int(threads)):
            fn(
                data.shape[0],
                data.num_blocks,
                data.blk_vxg_ptr,
                data.vxg_col,
                data.vxg_start,
                data.values,
                data.params.vxg_len,
                data.blk_ysize,
                data.blk_map_ptr,
                data.ymap,
                x,
                y,
                data.max_ysize,
                int(threads),
            )
        _count_call("z", "c")
        if obs_perf.active:
            obs_perf.record_cscv("spmv", "z", "c", data, obs_perf.clock() - t0)
        return y
    rows = flat_rows if flat_rows is not None else resolve_flat_rows_z(data)
    if threads <= 1 or data.num_blocks < 2 * threads:
        with span("spmv.z", backend="flat", nnz=data.nnz, blocks=data.num_blocks):
            _accumulate_z(data, x, y, rows, 0, data.num_blocks)
        _count_call("z", "flat")
        if obs_perf.active:
            obs_perf.record_cscv("spmv", "z", "flat", data, obs_perf.clock() - t0)
        return y
    with span("spmv.z", backend="threaded", nnz=data.nnz,
              blocks=data.num_blocks, threads=int(threads)):
        _threaded(data, x, y, rows, threads, _accumulate_z)
    _count_call("z", "threaded")
    if obs_perf.active:
        obs_perf.record_cscv("spmv", "z", "threaded", data, obs_perf.clock() - t0)
    return y


def _accumulate_z(data, x, y, rows, b0, b1):
    vxg_len = data.params.vxg_len
    g0, g1 = int(data.blk_vxg_ptr[b0]), int(data.blk_vxg_ptr[b1])
    if g0 == g1:
        return
    vals = data.values[g0 * vxg_len : g1 * vxg_len].reshape(g1 - g0, vxg_len)
    contrib = (vals * x[data.vxg_col[g0:g1].astype(np.int64)][:, None]).ravel()
    r = rows[g0 * vxg_len : g1 * vxg_len]
    valid = r >= 0
    y += np.bincount(
        r[valid], weights=contrib[valid], minlength=data.shape[0]
    ).astype(data.dtype, copy=False)


def spmv_m(data: CSCVData, x: np.ndarray, y: np.ndarray, *, threads: int | None = None,
           flat_rows: np.ndarray | None = None) -> np.ndarray:
    """CSCV-M SpMV into *y* (overwritten) — packed values + soft-vexpand."""
    threads = threads or config.runtime.threads
    y[:] = 0
    if data.nnz == 0:
        return y
    t0 = obs_perf.clock() if obs_perf.active else 0.0
    fn = dispatch.get("cscv_m_spmv", data.dtype)
    if fn is not None:
        with span("spmv.m", backend="c", nnz=data.nnz,
                  blocks=data.num_blocks, threads=int(threads)):
            fn(
                data.shape[0],
                data.num_blocks,
                data.blk_vxg_ptr,
                data.vxg_col,
                data.vxg_start,
                data.vxg_voff,
                data.vxg_masks,
                data.packed,
                data.params.s_vxg,
                data.params.s_vvec,
                data.blk_ysize,
                data.blk_map_ptr,
                data.ymap,
                x,
                y,
                data.max_ysize,
                int(threads),
            )
        _count_call("m", "c")
        if obs_perf.active:
            obs_perf.record_cscv("spmv", "m", "c", data, obs_perf.clock() - t0)
        return y
    rows = flat_rows if flat_rows is not None else resolve_flat_rows_m(data)
    if threads <= 1 or data.num_blocks < 2 * threads:
        with span("spmv.m", backend="flat", nnz=data.nnz, blocks=data.num_blocks):
            _accumulate_m(data, x, y, rows, 0, data.num_blocks)
        _count_call("m", "flat")
        if obs_perf.active:
            obs_perf.record_cscv("spmv", "m", "flat", data, obs_perf.clock() - t0)
        return y
    with span("spmv.m", backend="threaded", nnz=data.nnz,
              blocks=data.num_blocks, threads=int(threads)):
        _threaded(data, x, y, rows, threads, _accumulate_m)
    _count_call("m", "threaded")
    if obs_perf.active:
        obs_perf.record_cscv("spmv", "m", "threaded", data, obs_perf.clock() - t0)
    return y


def _accumulate_m(data, x, y, rows, b0, b1):
    k0, k1 = int(data.voff[data.blk_e_ptr[b0]]), int(data.voff[data.blk_e_ptr[b1]])
    if k0 == k1:
        return
    e0, e1 = int(data.blk_e_ptr[b0]), int(data.blk_e_ptr[b1])
    counts = np.diff(data.voff[e0 : e1 + 1])
    xcols = np.repeat(data.e_col[e0:e1].astype(np.int64), counts)
    contrib = data.packed[k0:k1] * x[xcols]
    r = rows[k0:k1]
    y += np.bincount(r, weights=contrib, minlength=data.shape[0]).astype(
        data.dtype, copy=False
    )


def _threaded(data, x, y, rows, threads, accumulate):
    """Private-y-per-thread scheme over contiguous block ranges.

    Works for both SpMV (*y* 1-D) and SpMM (*y* 2-D) accumulators; the
    partials mirror *y*'s shape.
    """
    from repro.utils.partition import split_evenly

    ranges = [r for r in split_evenly(data.num_blocks, threads) if r[0] < r[1]]
    partials = [np.zeros_like(y) for _ in ranges]

    def work(idx: int):
        b0, b1 = ranges[idx]
        partials[idx][:] = 0  # idempotent under retry / serial fallback
        with span("spmv.block_range", b0=b0, b1=b1):
            accumulate(data, x, partials[idx], rows, b0, b1)

    run_resilient(spmv_pool, work, range(len(ranges)), len(ranges), label="spmv")
    for p in partials:  # deterministic reduction order
        y += p
    return y


# ---------------------------------------------------------------------- #
# multi-RHS (SpMM) drivers


def spmm_z(data: CSCVData, X: np.ndarray, Y: np.ndarray, *,
           threads: int | None = None,
           flat_rows: np.ndarray | None = None) -> np.ndarray:
    """CSCV-Z multi-RHS SpMV: ``Y[:] = A @ X`` with ``X`` of shape (n, k)."""
    threads = threads or config.runtime.threads
    Y[:] = 0
    k = X.shape[1]
    if data.nnz == 0 or k == 0:
        return Y
    t0 = obs_perf.clock() if obs_perf.active else 0.0
    fn = dispatch.get("cscv_z_spmm", data.dtype)
    if fn is not None:
        with span("spmm.z", backend="c", nnz=data.nnz, batch=k,
                  blocks=data.num_blocks, threads=int(threads)):
            fn(
                data.shape[0],
                k,
                data.num_blocks,
                data.blk_vxg_ptr,
                data.vxg_col,
                data.vxg_start,
                data.values,
                data.params.vxg_len,
                data.blk_ysize,
                data.blk_map_ptr,
                data.ymap,
                X,
                Y,
                data.max_ysize,
                int(threads),
            )
        _count_call("z_mm", "c")
        if obs_perf.active:
            obs_perf.record_cscv("spmm", "z", "c", data, obs_perf.clock() - t0, k)
        return Y
    rows = flat_rows if flat_rows is not None else resolve_flat_rows_z(data)
    if threads <= 1 or data.num_blocks < 2 * threads:
        with span("spmm.z", backend="flat", nnz=data.nnz, batch=k,
                  blocks=data.num_blocks):
            _accumulate_z_mm(data, X, Y, rows, 0, data.num_blocks)
        _count_call("z_mm", "flat")
        if obs_perf.active:
            obs_perf.record_cscv("spmm", "z", "flat", data,
                                 obs_perf.clock() - t0, k)
        return Y
    with span("spmm.z", backend="threaded", nnz=data.nnz, batch=k,
              blocks=data.num_blocks, threads=int(threads)):
        _threaded(data, X, Y, rows, threads, _accumulate_z_mm)
    _count_call("z_mm", "threaded")
    if obs_perf.active:
        obs_perf.record_cscv("spmm", "z", "threaded", data,
                             obs_perf.clock() - t0, k)
    return Y


def _accumulate_z_mm(data, X, Y, rows, b0, b1):
    """Reshaped-bincount scatter: row ids fan out to row*k + lane keys."""
    vxg_len = data.params.vxg_len
    k = X.shape[1]
    g0, g1 = int(data.blk_vxg_ptr[b0]), int(data.blk_vxg_ptr[b1])
    if g0 == g1:
        return
    vals = data.values[g0 * vxg_len : g1 * vxg_len].reshape(g1 - g0, vxg_len)
    xrows = X[data.vxg_col[g0:g1].astype(np.int64)]          # (G, k)
    contrib = (vals[:, :, None] * xrows[:, None, :]).reshape(-1, k)
    r = rows[g0 * vxg_len : g1 * vxg_len]
    valid = r >= 0
    keys = (r[valid].astype(np.int64)[:, None] * k + np.arange(k)).ravel()
    Y += np.bincount(
        keys, weights=contrib[valid].ravel(), minlength=data.shape[0] * k
    ).reshape(data.shape[0], k).astype(data.dtype, copy=False)


def spmm_m(data: CSCVData, X: np.ndarray, Y: np.ndarray, *,
           threads: int | None = None,
           flat_rows: np.ndarray | None = None) -> np.ndarray:
    """CSCV-M multi-RHS SpMV over the packed value stream."""
    threads = threads or config.runtime.threads
    Y[:] = 0
    k = X.shape[1]
    if data.nnz == 0 or k == 0:
        return Y
    t0 = obs_perf.clock() if obs_perf.active else 0.0
    fn = dispatch.get("cscv_m_spmm", data.dtype)
    if fn is not None:
        with span("spmm.m", backend="c", nnz=data.nnz, batch=k,
                  blocks=data.num_blocks, threads=int(threads)):
            fn(
                data.shape[0],
                k,
                data.num_blocks,
                data.blk_vxg_ptr,
                data.vxg_col,
                data.vxg_start,
                data.vxg_voff,
                data.vxg_masks,
                data.packed,
                data.params.s_vxg,
                data.params.s_vvec,
                data.blk_ysize,
                data.blk_map_ptr,
                data.ymap,
                X,
                Y,
                data.max_ysize,
                int(threads),
            )
        _count_call("m_mm", "c")
        if obs_perf.active:
            obs_perf.record_cscv("spmm", "m", "c", data, obs_perf.clock() - t0, k)
        return Y
    rows = flat_rows if flat_rows is not None else resolve_flat_rows_m(data)
    if threads <= 1 or data.num_blocks < 2 * threads:
        with span("spmm.m", backend="flat", nnz=data.nnz, batch=k,
                  blocks=data.num_blocks):
            _accumulate_m_mm(data, X, Y, rows, 0, data.num_blocks)
        _count_call("m_mm", "flat")
        if obs_perf.active:
            obs_perf.record_cscv("spmm", "m", "flat", data,
                                 obs_perf.clock() - t0, k)
        return Y
    with span("spmm.m", backend="threaded", nnz=data.nnz, batch=k,
              blocks=data.num_blocks, threads=int(threads)):
        _threaded(data, X, Y, rows, threads, _accumulate_m_mm)
    _count_call("m_mm", "threaded")
    if obs_perf.active:
        obs_perf.record_cscv("spmm", "m", "threaded", data,
                             obs_perf.clock() - t0, k)
    return Y


def _accumulate_m_mm(data, X, Y, rows, b0, b1):
    k = X.shape[1]
    k0, k1 = int(data.voff[data.blk_e_ptr[b0]]), int(data.voff[data.blk_e_ptr[b1]])
    if k0 == k1:
        return
    e0, e1 = int(data.blk_e_ptr[b0]), int(data.blk_e_ptr[b1])
    counts = np.diff(data.voff[e0 : e1 + 1])
    xcols = np.repeat(data.e_col[e0:e1].astype(np.int64), counts)
    contrib = data.packed[k0:k1, None] * X[xcols]             # (nnz_range, k)
    r = rows[k0:k1].astype(np.int64)
    keys = (r[:, None] * k + np.arange(k)).ravel()
    Y += np.bincount(
        keys, weights=contrib.ravel(), minlength=data.shape[0] * k
    ).reshape(data.shape[0], k).astype(data.dtype, copy=False)
