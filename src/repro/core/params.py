"""CSCV parameter triple and its constraints.

Three parameters shape the format (Section IV / V-D):

``s_vvec``
    CSCVE length — elements per vector, matched to SIMD width.  Also the
    number of views per view group (the paper: *"the number of views in
    the matrix block equals S_VVec"*).  Must fit in the CSCV-M mask word.
``s_imgb``
    Image-block edge length in pixels — columns per matrix block is
    ``s_imgb**2``.
``s_vxg``
    CSCVEs concatenated into one VxG (consecutive curve offsets).

The paper's key usability claim is that these do **not** need per-matrix
tuning — a good triple transfers across CT matrices because the padding
behaviour is a property of the integral operator.  The autotuner exists to
demonstrate (not to require) the selection procedure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.errors import ValidationError

#: CSCV-M masks are stored in uint32 words.
MAX_S_VVEC = 32

#: sane upper bounds used by validation (not hard algorithmic limits)
MAX_S_IMGB = 4096
MAX_S_VXG = 64


@dataclass(frozen=True)
class CSCVParams:
    """Validated (s_vvec, s_imgb, s_vxg) triple."""

    s_vvec: int = config.DEFAULT_S_VVEC
    s_imgb: int = config.DEFAULT_S_IMGB
    s_vxg: int = config.DEFAULT_S_VXG

    def __post_init__(self):
        if not (1 <= self.s_vvec <= MAX_S_VVEC):
            raise ValidationError(f"s_vvec must be in [1, {MAX_S_VVEC}], got {self.s_vvec}")
        if not (1 <= self.s_imgb <= MAX_S_IMGB):
            raise ValidationError(f"s_imgb must be in [1, {MAX_S_IMGB}], got {self.s_imgb}")
        if not (1 <= self.s_vxg <= MAX_S_VXG):
            raise ValidationError(f"s_vxg must be in [1, {MAX_S_VXG}], got {self.s_vxg}")

    @property
    def vxg_len(self) -> int:
        """Values per VxG: ``s_vxg * s_vvec``."""
        return self.s_vxg * self.s_vvec

    @property
    def cols_per_block(self) -> int:
        """Matrix columns per image block: ``s_imgb**2``."""
        return self.s_imgb * self.s_imgb

    def simd_lanes(self, dtype_itemsize: int, register_bits: int = 512) -> float:
        """How many hardware SIMD registers one CSCVE spans."""
        lane_count = register_bits // (8 * dtype_itemsize)
        return self.s_vvec / lane_count

    def replace(self, **kwargs) -> "CSCVParams":
        """Functional update returning a new validated triple."""
        data = {"s_vvec": self.s_vvec, "s_imgb": self.s_imgb, "s_vxg": self.s_vxg}
        data.update(kwargs)
        return CSCVParams(**data)

    def as_tuple(self) -> tuple[int, int, int]:
        """(s_vvec, s_imgb, s_vxg)."""
        return (self.s_vvec, self.s_imgb, self.s_vxg)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSCV(S_VVec={self.s_vvec}, S_ImgB={self.s_imgb}, S_VxG={self.s_vxg})"


#: Paper Table III — the parameter combinations selected for the parallel
#: tests, keyed by (platform, implementation, precision).
PAPER_TABLE3 = {
    ("skl", "cscv-z", "single"): CSCVParams(16, 16, 2),
    ("skl", "cscv-z", "double"): CSCVParams(16, 16, 2),
    ("skl", "cscv-m", "single"): CSCVParams(8, 32, 4),
    ("skl", "cscv-m", "double"): CSCVParams(16, 16, 2),
    ("zen2", "cscv-z", "single"): CSCVParams(8, 64, 4),
    ("zen2", "cscv-z", "double"): CSCVParams(8, 32, 2),
    ("zen2", "cscv-m", "single"): CSCVParams(4, 64, 1),
    ("zen2", "cscv-m", "double"): CSCVParams(8, 16, 1),
}

#: Paper Table III R_nnzE values for the same keys (for comparison output).
PAPER_TABLE3_RNNZE = {
    ("skl", "cscv-z", "single"): 0.417,
    ("skl", "cscv-z", "double"): 0.417,
    ("skl", "cscv-m", "single"): 0.365,
    ("skl", "cscv-m", "double"): 0.417,
    ("zen2", "cscv-z", "single"): 0.448,
    ("zen2", "cscv-z", "double"): 0.345,
    ("zen2", "cscv-m", "single"): 0.257,
    ("zen2", "cscv-m", "double"): 0.303,
}
