"""CSCV-M: the mask-compressed CSCV execution format.

CSCV-M removes the padding zeros from storage: each CSCVE keeps only its
real nonzeros plus an ``s_vvec``-bit occupancy mask, and the kernel
re-expands them at compute time (hardware ``vexpand`` on AVX-512, the
``soft-vexpand`` loop elsewhere).  Roughly 30% of the memory traffic
disappears (Section IV-E), which makes CSCV-M the **bandwidth-bound
champion** — best at high thread counts — at the price of the expansion
instruction overhead that hurts it at low thread counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.builder import CSCVData
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.core.spmv import resolve_flat_rows_m, spmm_m, spmv_m
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.sparse.matrix_base import SpMVFormat, register_format


@register_format
class CSCVMMatrix(SpMVFormat):
    """CSCV with padding removed behind per-CSCVE masks (paper's CSCV-M)."""

    name = "cscv-m"

    def __init__(self, data: CSCVData, threads: int | None = None):
        super().__init__(data.shape, data.nnz, data.dtype)
        self.data = data
        self.threads = threads
        self._flat_rows: np.ndarray | None = None

    @classmethod
    def from_ct(
        cls,
        coo,
        geom: ParallelBeamGeometry,
        params: CSCVParams | None = None,
        *,
        dtype=None,
        threads: int | None = None,
        reference_mode: str = "ioblr",
        build_workers: int | None = None,
    ) -> "CSCVMMatrix":
        """Build from a :class:`~repro.sparse.COOMatrix` and its geometry."""
        # identical construction; Z and M share CSCVData
        z = CSCVZMatrix.from_ct(
            coo, geom, params, dtype=dtype, reference_mode=reference_mode,
            build_workers=build_workers,
        )
        return cls(z.data, threads)

    @classmethod
    def from_data(cls, data: CSCVData, threads: int | None = None) -> "CSCVMMatrix":
        """Wrap already-built CSCV arrays (shares memory with Z)."""
        return cls(data, threads)

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, *, geom=None, params=None, **kwargs):
        """SpMVFormat contract; requires ``geom=``."""
        z = CSCVZMatrix.from_coo(shape, rows, cols, vals, geom=geom, params=params, **kwargs)
        return cls(z.data)

    # ------------------------------------------------------------------ #
    # persistence (operator-cache hooks; shared CSCVData layout with Z)

    cache_state = CSCVZMatrix.cache_state

    @classmethod
    def from_cache_state(cls, meta, arrays, *, threads=None, **kwargs):
        """Wrap cached (possibly memory-mapped) CSCV arrays directly."""
        z = CSCVZMatrix.from_cache_state(meta, arrays, threads=threads, **kwargs)
        return cls(z.data, threads)

    # ------------------------------------------------------------------ #

    def spmv_into(self, x, y):
        x = self._check_x(x)
        return spmv_m(self.data, x, y, threads=self.threads, flat_rows=self._rows())

    def spmm_into(self, X, Y):
        """Multi-RHS SpMV: one packed-value stream serves all k columns."""
        return spmm_m(self.data, X, Y, threads=self.threads, flat_rows=self._rows())

    def _rows(self) -> np.ndarray:
        if self._flat_rows is None:
            self._flat_rows = resolve_flat_rows_m(self.data)
        return self._flat_rows

    def transpose_spmv(self, y_in: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``x = A^T y`` over the packed value stream."""
        from repro.utils.arrays import check_1d, ensure_dtype

        y_in = ensure_dtype(check_1d(y_in, self.shape[0], "y"), self.dtype, "y")
        if out is None:
            out = np.zeros(self.shape[1], dtype=self.dtype)
        else:
            out[:] = 0
        d = self.data
        if d.nnz == 0:
            return out
        rows = self._rows()
        counts = np.diff(d.voff)
        xcols = np.repeat(d.e_col.astype(np.int64), counts)
        contrib = d.packed * y_in[rows]
        out += np.bincount(xcols, weights=contrib, minlength=self.shape[1]).astype(
            self.dtype, copy=False
        )
        return out

    def transpose_spmm(self, Y_in: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``X = A^T Y`` for a sinogram stack ``Y`` of shape (m, k)."""
        from repro.errors import ValidationError
        from repro.utils.arrays import ensure_dtype

        Y_in = np.asarray(Y_in)
        if Y_in.ndim != 2 or Y_in.shape[0] != self.shape[0]:
            raise ValidationError(f"Y must have shape ({self.shape[0]}, k)")
        Yc = ensure_dtype(Y_in, self.dtype, "Y")
        k = Yc.shape[1]
        if out is None:
            out = np.zeros((self.shape[1], k), dtype=self.dtype)
        else:
            out[:] = 0
        d = self.data
        if d.nnz == 0 or k == 0:
            return out
        rows = self._rows()
        counts = np.diff(d.voff)
        xcols = np.repeat(d.e_col.astype(np.int64), counts)
        contrib = d.packed[:, None] * Yc[rows]
        acc = np.zeros((self.shape[1], k), dtype=np.float64)
        np.add.at(acc, xcols, contrib)
        out += acc.astype(self.dtype, copy=False)
        return out

    # ------------------------------------------------------------------ #

    @property
    def r_nnze(self) -> float:
        """Logical zero-padding rate (storage itself holds no padding)."""
        return self.data.r_nnze

    @property
    def params(self) -> CSCVParams:
        return self.data.params

    def memory_bytes(self):
        """Paper-model traffic: packed values + masks + VxG index + maps.

        Versus CSCV-Z the padded value stream shrinks to exactly ``nnz``
        values; the masks add ``ceil(s_vvec/8)`` bytes per CSCVE (the
        paper: mask cost halves as ``S_VVec`` doubles per-byte
        efficiency).
        """
        d = self.data
        values = d.packed.nbytes
        mask_bytes = d.num_cscve * ((d.params.s_vvec + 7) // 8)
        idx = (
            mask_bytes
            + d.vxg_col.nbytes
            + d.vxg_start.nbytes
            + d.blk_e_ptr.nbytes
            + d.blk_ysize.nbytes
            + d.blk_map_ptr.nbytes
            + d.ymap.nbytes
        )
        return {"values": values, "indices": idx, "total": values + idx}

    def traffic_saving_vs_z(self) -> float:
        """Fraction of CSCV-Z's matrix traffic that CSCV-M avoids."""
        z_total = self.data.values.nbytes + self.memory_bytes()["indices"]
        m_total = self.memory_bytes()["total"]
        return 1.0 - m_total / z_total if z_total else 0.0

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        rows, cols, vals = self.to_coo_triplets()
        dense[rows, cols] = vals
        return dense

    def to_coo_triplets(self):
        d = self.data
        if d.nnz == 0:
            z = np.zeros(0, dtype=np.int64)
            return z, z, np.zeros(0, dtype=self.dtype)
        rows = self._rows()
        counts = np.diff(d.voff)
        cols = np.repeat(d.e_col.astype(np.int64), counts)
        return rows.astype(np.int64), cols, d.packed
