"""CSCV-Z: the padding-keeping CSCV execution format.

CSCV-Z streams every value slot, padding zeros included.  Its inner loop
is the cheapest possible — load a contiguous vector, FMA, store — with no
masks and no expansion, making it the **latency-bound champion** (best at
low thread counts, Section V-E).  The price is ``R_nnzE`` extra memory
traffic, which caps it once the machine becomes bandwidth-bound.
"""

from __future__ import annotations

import numpy as np

from repro.config import INDEX_DTYPE
from repro.core.builder import CSCVData, build_cscv
from repro.core.params import CSCVParams
from repro.core.spmv import resolve_flat_rows_z, spmm_z, spmv_z
from repro.errors import FormatError, ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.sparse.matrix_base import SpMVFormat, register_format


@register_format
class CSCVZMatrix(SpMVFormat):
    """CSCV with padding zeros stored (paper's CSCV-Z)."""

    name = "cscv-z"

    def __init__(self, data: CSCVData, threads: int | None = None):
        super().__init__(data.shape, data.nnz, data.dtype)
        self.data = data
        self.threads = threads
        self._flat_rows: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # construction

    @classmethod
    def from_ct(
        cls,
        coo,
        geom: ParallelBeamGeometry,
        params: CSCVParams | None = None,
        *,
        dtype=None,
        threads: int | None = None,
        reference_mode: str = "ioblr",
        build_workers: int | None = None,
    ) -> "CSCVZMatrix":
        """Build from a :class:`~repro.sparse.COOMatrix` and its geometry.

        ``reference_mode="btb"`` selects the view-major ablation layout
        (see :func:`repro.core.builder.build_cscv`);  ``build_workers``
        overrides ``REPRO_BUILD_WORKERS`` for the packing stages (the
        result is bitwise-identical for any value).
        """
        params = params or CSCVParams()
        if coo.shape != (geom.num_rays, geom.num_pixels):
            raise ValidationError(
                f"matrix shape {coo.shape} does not match geometry "
                f"{(geom.num_rays, geom.num_pixels)}"
            )
        data = build_cscv(
            coo.rows, coo.cols, coo.vals, geom, params, dtype,
            reference_mode=reference_mode, workers=build_workers,
        )
        return cls(data, threads)

    @classmethod
    def from_coo(cls, shape, rows, cols, vals, *, geom=None, params=None, **kwargs):
        """SpMVFormat contract; requires ``geom=`` (CSCV needs the operator)."""
        if geom is None:
            raise ValidationError(
                "CSCV requires geom= (the integral-operator geometry)"
            )
        from repro.sparse.coo import COOMatrix

        coo = COOMatrix.from_coo(shape, rows, cols, vals, dtype=kwargs.pop("dtype", None))
        return cls.from_ct(coo, geom, params, **kwargs)

    # ------------------------------------------------------------------ #
    # persistence (operator-cache hooks; arrays restore zero-copy)

    def cache_state(self):
        """Native CSCV arrays — restoring needs no conversion at all."""
        from repro.core.io import _ARRAYS, cscv_meta_array

        meta = {"kind": "cscv", "dtype": str(self.dtype)}
        arrays = {"_cscv_meta": cscv_meta_array(self.data)}
        for name in _ARRAYS:
            arrays[name] = getattr(self.data, name)
        return meta, arrays

    @classmethod
    def from_cache_state(cls, meta, arrays, *, threads=None, **kwargs):
        """Wrap cached (possibly memory-mapped) CSCV arrays directly."""
        if meta.get("kind") != "cscv":
            raise FormatError(
                f"{cls.__name__} cannot restore cache entries of kind "
                f"{meta.get('kind')!r}"
            )
        from repro.core.io import cscv_data_from_arrays

        data = cscv_data_from_arrays(
            arrays["_cscv_meta"], arrays, source="<operator-cache>"
        )
        return cls(data, threads)

    # ------------------------------------------------------------------ #
    # SpMV

    def spmv_into(self, x, y):
        x = self._check_x(x)
        return spmv_z(self.data, x, y, threads=self.threads, flat_rows=self._rows())

    def spmm_into(self, X, Y):
        """Multi-RHS SpMV: one VxG stream serves all k columns."""
        return spmm_z(self.data, X, Y, threads=self.threads, flat_rows=self._rows())

    def _rows(self) -> np.ndarray:
        if self._flat_rows is None:
            self._flat_rows = resolve_flat_rows_z(self.data)
        return self._flat_rows

    def transpose_spmv(self, y_in: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``x = A^T y`` — back-projection through the same VxG stream.

        For CSCV this direction is gather-only: load the contiguous
        ``ytilde`` slots, dot with the VxG values, accumulate into
        ``x[col]`` (the paper's announced future work, implemented here).
        """
        from repro import config
        from repro.kernels import dispatch
        from repro.utils.arrays import check_1d, ensure_dtype

        y_in = ensure_dtype(check_1d(y_in, self.shape[0], "y"), self.dtype, "y")
        if out is None:
            out = np.zeros(self.shape[1], dtype=self.dtype)
        else:
            out[:] = 0
        d = self.data
        if d.nnz == 0:
            return out
        fn = dispatch.get("cscv_z_tspmv", self.dtype)
        if fn is not None:
            fn(
                self.shape[1],
                d.num_blocks,
                d.blk_vxg_ptr,
                d.vxg_col,
                d.vxg_start,
                d.values,
                d.params.vxg_len,
                d.blk_ysize,
                d.blk_map_ptr,
                d.ymap,
                y_in,
                out,
                d.max_ysize,
                int(self.threads or config.runtime.threads),
            )
            return out
        rows = self._rows()
        valid = rows >= 0
        vxg_len = d.params.vxg_len
        contrib = np.zeros(d.num_vxg * vxg_len, dtype=np.float64)
        contrib[valid] = d.values[valid] * y_in[rows[valid]]
        per_vxg = contrib.reshape(d.num_vxg, vxg_len).sum(axis=1)
        out += np.bincount(
            d.vxg_col.astype(np.int64), weights=per_vxg, minlength=self.shape[1]
        ).astype(self.dtype, copy=False)
        return out

    def transpose_spmm(self, Y_in: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``X = A^T Y`` for a sinogram stack ``Y`` of shape (m, k)."""
        from repro.errors import ValidationError
        from repro.utils.arrays import ensure_dtype

        Y_in = np.asarray(Y_in)
        if Y_in.ndim != 2 or Y_in.shape[0] != self.shape[0]:
            raise ValidationError(f"Y must have shape ({self.shape[0]}, k)")
        Yc = ensure_dtype(Y_in, self.dtype, "Y")
        k = Yc.shape[1]
        if out is None:
            out = np.zeros((self.shape[1], k), dtype=self.dtype)
        else:
            out[:] = 0
        d = self.data
        if d.nnz == 0 or k == 0:
            return out
        rows = self._rows()
        valid = rows >= 0
        vxg_len = d.params.vxg_len
        contrib = np.zeros((d.num_vxg * vxg_len, k), dtype=np.float64)
        contrib[valid] = d.values[valid, None] * Yc[rows[valid]]
        per_vxg = contrib.reshape(d.num_vxg, vxg_len, k).sum(axis=1)
        acc = np.zeros((self.shape[1], k), dtype=np.float64)
        np.add.at(acc, d.vxg_col.astype(np.int64), per_vxg)
        out += acc.astype(self.dtype, copy=False)
        return out

    # ------------------------------------------------------------------ #
    # accounting

    @property
    def r_nnze(self) -> float:
        """Zero-padding rate of the stored values."""
        return self.data.r_nnze

    @property
    def params(self) -> CSCVParams:
        return self.data.params

    def memory_bytes(self):
        """Paper-model traffic: padded values + VxG index + reorder maps.

        Per VxG one ``(column, start)`` pair; per block the pointer/ysize
        metadata; the ``ymap`` permutation is streamed once per block
        during the reorder steps of Algorithm 3.
        """
        d = self.data
        values = d.values.nbytes
        idx = (
            d.vxg_col.nbytes
            + d.vxg_start.nbytes
            + d.blk_vxg_ptr.nbytes
            + d.blk_ysize.nbytes
            + d.blk_map_ptr.nbytes
            + d.ymap.nbytes
        )
        return {"values": values, "indices": idx, "total": values + idx}

    def index_compression_vs_csc(self) -> float:
        """Index bytes relative to CSC (paper: ~0.03x with VxGs)."""
        csc_idx = (self.shape[1] + 1 + self.nnz) * INDEX_DTYPE.itemsize
        return self.memory_bytes()["indices"] / csc_idx if csc_idx else 0.0

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=self.dtype)
        rows, cols, vals = self.to_coo_triplets()
        dense[rows, cols] = vals
        return dense

    def to_coo_triplets(self):
        d = self.data
        if d.nnz == 0:
            z = np.zeros(0, dtype=np.int64)
            return z, z, np.zeros(0, dtype=self.dtype)
        rows = self._rows()
        cols = np.repeat(d.vxg_col.astype(np.int64), d.params.vxg_len)
        valid = (rows >= 0) & (d.values != 0)
        return rows[valid].astype(np.int64), cols[valid], d.values[valid]
