"""Fan-beam CT geometry — the paper's announced geometry extension.

The conclusions section commits to "implementing CSCV for matrices from CT
imaging reconstruction with different geometries"; this module provides
the equiangular fan-beam case.  A point source rotates at radius
``source_radius`` around the object; rays fan out to a circular detector
arc of ``num_bins`` equiangular bins centred on the source-to-centre line.

CSCV carries over because the properties it relies on are properties of
*line-integral operators*, not of parallel beams: a pixel still projects
to one contiguous detector interval per view (P2), neighbouring pixels to
neighbouring intervals (P1), and per-column nnz stays balanced (P3).  The
trajectories are no longer sinusoids but remain piecewise-parallel
curves, which is all IOBLR needs.

The class mirrors :class:`~repro.geometry.parallel_beam.ParallelBeamGeometry`
closely enough that the CSCV builder works unchanged: it exposes the same
sizing/indexing surface plus the reference-curve grid hook
(:meth:`FanBeamGeometry.reference_bins_for`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError


@dataclass(frozen=True)
class FanBeamGeometry:
    """Equiangular fan-beam scan description.

    Parameters
    ----------
    image_size : int
        Square image edge length in pixels.
    num_bins : int
        Detector bins (equiangular) per view.
    num_views : int
        Source positions.
    delta_angle_deg : float
        Angular increment of the source between views.
    source_radius : float
        Distance from rotation centre to the source, in pixels; must
        clear the image circumradius.
    fan_angle_deg : float or None
        Full fan opening; default is sized to cover the image.
    start_angle_deg, pixel_size : float
        As in the parallel-beam geometry.
    """

    image_size: int
    num_bins: int
    num_views: int
    delta_angle_deg: float
    source_radius: float
    fan_angle_deg: float | None = None
    start_angle_deg: float = 0.0
    pixel_size: float = 1.0

    def __post_init__(self):
        if self.image_size < 1 or self.num_bins < 1 or self.num_views < 1:
            raise GeometryError("sizes must be >= 1")
        if self.delta_angle_deg <= 0 or self.pixel_size <= 0:
            raise GeometryError("delta_angle_deg and pixel_size must be positive")
        circum = self.image_size * self.pixel_size * math.sqrt(2) / 2
        if self.source_radius <= circum:
            raise GeometryError(
                f"source_radius {self.source_radius} must exceed the image "
                f"circumradius {circum:.1f}"
            )
        if self.fan_angle_deg is None:
            # smallest fan that sees the whole image, with 5% margin
            object.__setattr__(
                self,
                "fan_angle_deg",
                2.0 * math.degrees(math.asin(min(circum / self.source_radius, 1.0))) * 1.05,
            )
        if not (0 < self.fan_angle_deg < 180):
            raise GeometryError("fan_angle_deg must be in (0, 180)")

    # ------------------------------------------------------------------ #
    # sizing / indexing (same surface as the parallel geometry)

    @property
    def num_pixels(self) -> int:
        return self.image_size * self.image_size

    @property
    def num_rays(self) -> int:
        return self.num_bins * self.num_views

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rays, self.num_pixels)

    def row_index(self, view, bin_) -> np.ndarray:
        return np.asarray(view) * self.num_bins + np.asarray(bin_)

    def row_to_view_bin(self, row) -> tuple[np.ndarray, np.ndarray]:
        r = np.asarray(row)
        return r // self.num_bins, r % self.num_bins

    def pixel_index(self, i, j) -> np.ndarray:
        return np.asarray(i) * self.image_size + np.asarray(j)

    def pixel_centers(self) -> tuple[np.ndarray, np.ndarray]:
        n = self.image_size
        half = (n - 1) / 2.0
        x = (np.arange(n) - half) * self.pixel_size
        y = (half - np.arange(n)) * self.pixel_size
        X = np.broadcast_to(x, (n, n)).ravel().copy()
        Y = np.broadcast_to(y[:, None], (n, n)).ravel().copy()
        return X, Y

    def pixel_center(self, i: int, j: int) -> tuple[float, float]:
        n = self.image_size
        if not (0 <= i < n and 0 <= j < n):
            raise GeometryError(f"pixel ({i},{j}) outside image of size {n}")
        half = (n - 1) / 2.0
        return ((j - half) * self.pixel_size, (half - i) * self.pixel_size)

    # ------------------------------------------------------------------ #
    # fan-beam optics

    def source_position(self, view: int) -> tuple[float, float]:
        """Source location at *view* (rotating on the circle)."""
        beta = math.radians(self.start_angle_deg + self.delta_angle_deg * view)
        return (
            self.source_radius * math.cos(beta),
            self.source_radius * math.sin(beta),
        )

    def fan_coordinate(self, x, y, view: int) -> np.ndarray:
        """Ray angle gamma (radians) from the central ray to point(s).

        The central ray points from the source through the rotation
        centre; gamma is signed, positive counter-clockwise.
        """
        sx, sy = self.source_position(view)
        # direction source -> point
        dx = np.asarray(x, dtype=np.float64) - sx
        dy = np.asarray(y, dtype=np.float64) - sy
        ang = np.arctan2(dy, dx)
        beta = math.radians(self.start_angle_deg + self.delta_angle_deg * view)
        central = beta + math.pi  # from source toward the centre
        g = ang - central
        # wrap to (-pi, pi]
        return (g + np.pi) % (2 * np.pi) - np.pi

    @property
    def bin_pitch_rad(self) -> float:
        """Angular width of one detector bin."""
        return math.radians(self.fan_angle_deg) / self.num_bins

    def gamma_to_bin(self, gamma) -> np.ndarray:
        """Fractional bin index of fan angle(s) gamma."""
        return np.asarray(gamma) / self.bin_pitch_rad + self.num_bins / 2.0

    def pixel_footprint_halfangle(self, x, y, view: int) -> np.ndarray:
        """Half the fan angle subtended by a pixel at point(s) (x, y).

        A square of edge ``pixel_size`` at distance ``d`` from the source
        subtends ~``diag/2 / d`` radians at worst orientation.
        """
        sx, sy = self.source_position(view)
        d = np.hypot(np.asarray(x) - sx, np.asarray(y) - sy)
        halfdiag = self.pixel_size * math.sqrt(2) / 2.0
        return np.arctan2(halfdiag, d)

    def describe(self) -> dict:
        return {
            "geometry": "fan-beam (equiangular)",
            "img size": f"{self.image_size} x {self.image_size}",
            "num bin": self.num_bins,
            "num view": self.num_views,
            "delta angle": f"{self.delta_angle_deg:g} deg",
            "source radius": self.source_radius,
            "fan angle": f"{self.fan_angle_deg:.2f} deg",
        }

    @staticmethod
    def for_image(
        image_size: int,
        num_views: int | None = None,
        *,
        source_radius_factor: float = 2.0,
        angular_span_deg: float = 360.0,
    ) -> "FanBeamGeometry":
        """Sensible fan-beam geometry for an ``image_size``² image."""
        if num_views is None:
            num_views = max(1, image_size)
        radius = source_radius_factor * image_size
        circum = image_size * math.sqrt(2) / 2
        fan = 2.0 * math.degrees(math.asin(circum / radius)) * 1.05
        # bins so that a central pixel spans ~2 bins, like parallel beam
        pitch = math.atan2(1.0, radius)  # one pixel at the centre
        num_bins = int(math.ceil(math.radians(fan) / pitch)) + 2
        return FanBeamGeometry(
            image_size=image_size,
            num_bins=num_bins,
            num_views=num_views,
            delta_angle_deg=angular_span_deg / num_views,
            source_radius=radius,
            fan_angle_deg=fan,
        )
