"""Strip-integral (area-weighted) forward projector.

Each detector bin defines a strip of width ``bin_spacing`` through the
image; the matrix entry ``A[(v,b), p]`` is the area of the intersection of
pixel *p* with that strip, divided by ``bin_spacing`` so the entry has the
dimension of a path length.  This is the discretisation whose nnz density
(~2.6 per pixel per view at unit pitch) matches the paper's Table II
matrices.

The pixel's "shadow" on the detector axis at angle ``theta`` is the
convolution of two box functions of widths ``a = |cos| * ps`` and
``b = |sin| * ps`` — a trapezoid of total area ``ps**2`` with plateau
half-width ``|a-b|/2`` and support half-width ``(a+b)/2``.  The exact
integral of this trapezoid over a bin interval is evaluated through its
closed-form antiderivative, fully vectorised over pixels.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.parallel_beam import ParallelBeamGeometry


def _trapezoid_cdf(t: np.ndarray, r1: np.ndarray, r2: np.ndarray) -> np.ndarray:
    """Cumulative integral of the unit-area symmetric trapezoid at *t*.

    The trapezoid has support ``[-r2, r2]`` and plateau ``[-r1, r1]``
    (``0 <= r1 <= r2``), height ``1 / (r1 + r2)`` so its area is one.
    Vectorised; ``r1``/``r2`` broadcast against ``t``.
    """
    h = 1.0 / (r1 + r2)
    tc = np.clip(t, -r2, r2)
    out = np.zeros_like(tc, dtype=np.float64)

    # region 1: rising ramp  [-r2, -r1]
    ramp_w = np.maximum(r2 - r1, 1e-300)
    m = tc < -r1
    out = np.where(m, 0.5 * h / ramp_w * (tc + r2) ** 2, out)
    # region 2: plateau [-r1, r1]
    m = (tc >= -r1) & (tc <= r1)
    ramp_area = 0.5 * h * (r2 - r1)
    out = np.where(m, ramp_area + h * (tc + r1), out)
    # region 3: falling ramp [r1, r2]
    m = tc > r1
    out = np.where(m, 1.0 - 0.5 * h / ramp_w * (r2 - tc) ** 2, out)
    # fully past the support
    out = np.where(t >= r2, 1.0, out)
    out = np.where(t <= -r2, 0.0, out)
    return out


def strip_area_view(
    geom: ParallelBeamGeometry, view: int, *, eps: float = 1e-12
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets contributed by one view under the strip-area model."""
    if not (0 <= view < geom.num_views):
        raise GeometryError(f"view {view} out of range [0, {geom.num_views})")
    theta = math.radians(geom.start_angle_deg + geom.delta_angle_deg * view)
    ps, ds = geom.pixel_size, geom.bin_spacing
    a = abs(math.cos(theta)) * ps
    b = abs(math.sin(theta)) * ps
    r1 = abs(a - b) / 2.0
    r2 = (a + b) / 2.0
    if r2 == 0.0:  # degenerate (zero-size pixel) cannot happen post-validation
        raise GeometryError("pixel projects to a point")

    X, Y = geom.pixel_centers()
    s_center = geom.detector_coordinate(X, Y, view)

    # Bins possibly overlapped: centres fall within [s - r2, s + r2].
    first_bin = np.floor((s_center - r2) / ds + geom.num_bins / 2.0).astype(np.int64)
    # max bins any pixel can touch at this angle
    span = int(math.ceil(2.0 * r2 / ds)) + 1

    cols = np.arange(geom.num_pixels, dtype=np.int64)
    pixel_area = ps * ps

    rows_parts, cols_parts, vals_parts = [], [], []
    # CDF evaluated at the lower edge of first_bin, then edge by edge.
    prev_cdf = _trapezoid_cdf(geom.bin_lower_edge(first_bin) - s_center, r1, r2)
    for k in range(span):
        edge_hi = geom.bin_lower_edge(first_bin + k + 1) - s_center
        cdf_hi = _trapezoid_cdf(edge_hi, r1, r2)
        frac = cdf_hi - prev_cdf
        prev_cdf = cdf_hi
        bins = first_bin + k
        vals = frac * pixel_area / ds
        keep = (vals > eps) & (bins >= 0) & (bins < geom.num_bins)
        if np.any(keep):
            rows_parts.append(geom.row_index(view, bins[keep]))
            cols_parts.append(cols[keep])
            vals_parts.append(vals[keep])
    if not rows_parts:
        z = np.zeros(0, dtype=np.int64)
        return z, z.copy(), np.zeros(0)
    return (
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts),
    )


def strip_area_matrix(
    geom: ParallelBeamGeometry, dtype=np.float64, *, workers: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full strip-area system matrix as COO triplets ``(rows, cols, vals)``.

    Served by the compiled ``strip_footprint_views`` kernel across
    ``workers`` threads when available (:mod:`repro.geometry.sweep`),
    else by the per-view NumPy path.
    """
    from repro.geometry.sweep import sweep_views

    # per-view bound: footprint half-width r2 <= ps * sqrt(2) / 2
    span_max = int(
        math.ceil(math.sqrt(2.0) * geom.pixel_size / geom.bin_spacing)
    ) + 1
    return sweep_views(
        geom,
        kernel="strip_footprint_views",
        scalar_args=(
            geom.image_size, geom.num_bins, geom.delta_angle_deg,
            geom.start_angle_deg, geom.pixel_size, geom.bin_spacing,
        ),
        capacity_per_view=geom.num_pixels * span_max,
        view_fn=lambda v: strip_area_view(geom, v),
        dtype=dtype,
        workers=workers,
        projector="strip",
    )


def footprint_halfwidth(geom: ParallelBeamGeometry, view: int) -> float:
    """Half-width of a pixel's detector shadow at *view* (physical units)."""
    theta = math.radians(geom.start_angle_deg + geom.delta_angle_deg * view)
    return (abs(math.cos(theta)) + abs(math.sin(theta))) * geom.pixel_size / 2.0
