"""Fan-beam forward projector (angular strip model).

The fan-beam analogue of the parallel strip projector: each pixel's
angular footprint ``[gamma - w, gamma + w]`` on the detector arc is split
over the equiangular bins it overlaps, weighted by the overlap fraction
times the nominal chord length through the pixel.  This keeps the same
column-band structure the parallel projector has (2-4 bins per pixel per
view), so the CSCV builder consumes the output unchanged.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.fan_beam import FanBeamGeometry


def fan_strip_view(
    geom: FanBeamGeometry, view: int, *, eps: float = 1e-12
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets contributed by one fan-beam view."""
    if not (0 <= view < geom.num_views):
        raise GeometryError(f"view {view} out of range [0, {geom.num_views})")
    X, Y = geom.pixel_centers()
    gamma = geom.fan_coordinate(X, Y, view)
    w = geom.pixel_footprint_halfangle(X, Y, view)

    f_lo = geom.gamma_to_bin(gamma - w)
    f_hi = geom.gamma_to_bin(gamma + w)
    first = np.floor(f_lo).astype(np.int64)
    span = int(np.ceil((f_hi - f_lo).max())) + 1

    cols = np.arange(geom.num_pixels, dtype=np.int64)
    chord = geom.pixel_size  # nominal path length through the pixel

    rows_parts, cols_parts, vals_parts = [], [], []
    width = np.maximum(f_hi - f_lo, eps)
    for k in range(span):
        b = first + k
        # overlap of [f_lo, f_hi] with bin [b, b+1], in bin units
        overlap = np.minimum(f_hi, b + 1) - np.maximum(f_lo, b)
        frac = np.clip(overlap, 0.0, None) / width
        vals = frac * chord
        keep = (vals > eps) & (b >= 0) & (b < geom.num_bins)
        if np.any(keep):
            rows_parts.append(geom.row_index(view, b[keep]))
            cols_parts.append(cols[keep])
            vals_parts.append(vals[keep])
    if not rows_parts:
        z = np.zeros(0, dtype=np.int64)
        return z, z.copy(), np.zeros(0)
    return (
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts),
    )


def fan_strip_matrix(
    geom: FanBeamGeometry, dtype=np.float64, *, workers: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full fan-beam system matrix as COO triplets.

    Served by the compiled ``fan_strip_views`` kernel across ``workers``
    threads when available (:mod:`repro.geometry.sweep`), else by the
    per-view NumPy path.
    """
    from repro.geometry.sweep import sweep_views

    # widest footprint: the pixel closest to the source (distance >=
    # source_radius - image circumradius, positive post-validation)
    halfdiag = geom.pixel_size * math.sqrt(2.0) / 2.0
    d_min = geom.source_radius - geom.image_size * geom.pixel_size * math.sqrt(2.0) / 2.0
    span_max = int(
        math.ceil(2.0 * math.atan2(halfdiag, d_min) / geom.bin_pitch_rad)
    ) + 2
    return sweep_views(
        geom,
        kernel="fan_strip_views",
        scalar_args=(
            geom.image_size, geom.num_bins, geom.delta_angle_deg,
            geom.start_angle_deg, geom.pixel_size, geom.source_radius,
            geom.fan_angle_deg,
        ),
        capacity_per_view=geom.num_pixels * span_max,
        view_fn=lambda v: fan_strip_view(geom, v),
        dtype=dtype,
        workers=workers,
        projector="fan",
    )


def fan_reference_bins(geom: FanBeamGeometry, ref_i: np.ndarray, ref_j: np.ndarray) -> np.ndarray:
    """Reference curves for IOBLR under fan-beam geometry.

    ``r[view, tile] = floor(gamma_to_bin(gamma_ref - w_ref))`` — the
    minimum bin the reference pixel touches, the exact fan analogue of the
    parallel case.  ``ref_i/ref_j`` are per-tile reference pixel indices.
    """
    half = (geom.image_size - 1) / 2.0
    x = (np.asarray(ref_j) - half) * geom.pixel_size
    y = (half - np.asarray(ref_i)) * geom.pixel_size
    out = np.empty((geom.num_views, x.size), dtype=np.int64)
    for v in range(geom.num_views):
        gamma = geom.fan_coordinate(x, y, v)
        w = geom.pixel_footprint_halfangle(x, y, v)
        out[v] = np.floor(geom.gamma_to_bin(gamma - w) + 1e-12).astype(np.int64)
    return out
