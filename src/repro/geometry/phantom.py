"""Test phantoms: Shepp-Logan, disks, blocks.

Phantoms provide ground-truth images ``x`` for the reconstruction examples
and for end-to-end SpMV validation (forward-project a known image, compare
against every format's ``y = A x``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError

# (value, a, b, x0, y0, phi_deg) — the standard (modified, high-contrast)
# Shepp-Logan ellipse set on the [-1, 1]^2 plane.
_SHEPP_LOGAN_ELLIPSES = [
    (1.0, 0.69, 0.92, 0.0, 0.0, 0.0),
    (-0.8, 0.6624, 0.8740, 0.0, -0.0184, 0.0),
    (-0.2, 0.1100, 0.3100, 0.22, 0.0, -18.0),
    (-0.2, 0.1600, 0.4100, -0.22, 0.0, 18.0),
    (0.1, 0.2100, 0.2500, 0.0, 0.35, 0.0),
    (0.1, 0.0460, 0.0460, 0.0, 0.1, 0.0),
    (0.1, 0.0460, 0.0460, 0.0, -0.1, 0.0),
    (0.1, 0.0460, 0.0230, -0.08, -0.605, 0.0),
    (0.1, 0.0230, 0.0230, 0.0, -0.606, 0.0),
    (0.1, 0.0230, 0.0460, 0.06, -0.605, 0.0),
]


def _grid(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Pixel-centre coordinates on [-1, 1]^2 (y up, row 0 at the top)."""
    half = (n - 1) / 2.0
    j = np.arange(n)
    x = (j - half) / (n / 2.0)
    y = (half - np.arange(n)) / (n / 2.0)
    return np.meshgrid(x, y)  # X varies along columns, Y along rows


def shepp_logan(n: int, dtype=np.float64) -> np.ndarray:
    """Modified Shepp-Logan phantom of size ``n x n`` (values in [0, 1])."""
    if n < 1:
        raise GeometryError("n must be >= 1")
    X, Y = _grid(n)
    img = np.zeros((n, n), dtype=np.float64)
    for value, a, b, x0, y0, phi_deg in _SHEPP_LOGAN_ELLIPSES:
        phi = np.deg2rad(phi_deg)
        c, s = np.cos(phi), np.sin(phi)
        xr = (X - x0) * c + (Y - y0) * s
        yr = -(X - x0) * s + (Y - y0) * c
        img[(xr / a) ** 2 + (yr / b) ** 2 <= 1.0] += value
    return np.clip(img, 0.0, None).astype(dtype)


def disk_phantom(
    n: int,
    *,
    radius_frac: float = 0.4,
    value: float = 1.0,
    center: tuple[float, float] = (0.0, 0.0),
    dtype=np.float64,
) -> np.ndarray:
    """Uniform disk — its sinogram has a closed form, handy for tests.

    A disk of physical radius ``r`` has projection
    ``p(s) = 2 * sqrt(r^2 - s^2)`` for ``|s| <= r``, at every view.
    """
    if not (0.0 < radius_frac <= 1.0):
        raise GeometryError("radius_frac must be in (0, 1]")
    X, Y = _grid(n)
    img = np.zeros((n, n), dtype=np.float64)
    cx, cy = center
    img[(X - cx) ** 2 + (Y - cy) ** 2 <= radius_frac**2] = value
    return img.astype(dtype)


def blocks_phantom(n: int, *, levels: int = 4, dtype=np.float64) -> np.ndarray:
    """Piecewise-constant random blocks (seeded) — stresses edges."""
    if levels < 1:
        raise GeometryError("levels must be >= 1")
    rng = np.random.default_rng(1234)
    k = max(2, n // 8)
    coarse = rng.integers(0, levels, size=(k, k)).astype(np.float64) / max(levels - 1, 1)
    reps = int(np.ceil(n / k))
    img = np.kron(coarse, np.ones((reps, reps)))[:n, :n]
    return img.astype(dtype)


def disk_sinogram_exact(
    num_bins: int,
    num_views: int,
    *,
    radius: float,
    bin_spacing: float = 1.0,
    value: float = 1.0,
    dtype=np.float64,
) -> np.ndarray:
    """Closed-form sinogram of a centred disk, for projector validation."""
    s = (np.arange(num_bins) + 0.5 - num_bins / 2.0) * bin_spacing
    p = np.where(np.abs(s) <= radius, 2.0 * value * np.sqrt(np.maximum(radius**2 - s**2, 0.0)), 0.0)
    return np.tile(p, num_views).astype(dtype)
