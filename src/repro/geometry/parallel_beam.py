"""Parallel-beam CT acquisition geometry.

The geometry fixes the discretisation of the line-integral operator

.. math:: \\int L(o, q)\\, u(o + t q)\\, dt = f(o, q)

for 2-D parallel-beam CT: views are equally spaced angles
``theta_v = start_angle + v * delta_angle``; at each view the detector is a
line of ``num_bins`` equally spaced bins perpendicular to the ray direction.
A point ``(x, y)`` in the image plane projects to detector coordinate
``s = x cos(theta) + y sin(theta)``.

Conventions (used consistently across the whole library):

* the image is ``image_size x image_size`` pixels of edge ``pixel_size``,
  centred at the origin; pixel ``(i, j)`` (row i from the top, column j from
  the left) has centre ``x = (j - (n-1)/2) * pixel_size``,
  ``y = ((n-1)/2 - i) * pixel_size``;
* pixels are flattened row-major: ``pixel = i * n + j``;
* sinogram rows are **bin-major within view**: ``row = view * num_bins + bin``
  (the paper's Fig 4 calls this the typical CT layout);
* detector bin ``b`` covers ``s`` in
  ``[(b - num_bins/2) * bin_spacing, (b + 1 - num_bins/2) * bin_spacing)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import GeometryError


@dataclass(frozen=True)
class ParallelBeamGeometry:
    """Immutable description of a 2-D parallel-beam scan.

    Parameters
    ----------
    image_size : int
        Edge length of the square image in pixels (``n``); the unknown
        vector ``x`` has ``n*n`` entries.
    num_bins : int
        Detector bins per view.
    num_views : int
        Number of projection angles.
    delta_angle_deg : float
        Angular increment between consecutive views, in degrees.
    start_angle_deg : float
        Angle of view 0, in degrees (default 0).
    pixel_size : float
        Pixel edge length in physical units (default 1).
    bin_spacing : float
        Detector bin pitch in physical units (default 1).
    """

    image_size: int
    num_bins: int
    num_views: int
    delta_angle_deg: float
    start_angle_deg: float = 0.0
    pixel_size: float = 1.0
    bin_spacing: float = 1.0

    def __post_init__(self):
        if self.image_size < 1:
            raise GeometryError("image_size must be >= 1")
        if self.num_bins < 1:
            raise GeometryError("num_bins must be >= 1")
        if self.num_views < 1:
            raise GeometryError("num_views must be >= 1")
        if self.pixel_size <= 0 or self.bin_spacing <= 0:
            raise GeometryError("pixel_size and bin_spacing must be positive")
        if self.delta_angle_deg <= 0:
            raise GeometryError("delta_angle_deg must be positive")

    # ------------------------------------------------------------------ #
    # sizes

    @property
    def num_pixels(self) -> int:
        """Length of the image vector ``x``."""
        return self.image_size * self.image_size

    @property
    def num_rays(self) -> int:
        """Length of the sinogram vector ``y`` (= rows of the matrix)."""
        return self.num_bins * self.num_views

    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape ``(num_rays, num_pixels)``."""
        return (self.num_rays, self.num_pixels)

    # ------------------------------------------------------------------ #
    # angles & coordinates

    def view_angles(self, degrees: bool = False) -> np.ndarray:
        """Angles of all views (radians by default)."""
        deg = self.start_angle_deg + self.delta_angle_deg * np.arange(self.num_views)
        return deg if degrees else np.deg2rad(deg)

    def pixel_centers(self) -> tuple[np.ndarray, np.ndarray]:
        """``(x, y)`` coordinates of all pixel centres, flattened row-major."""
        n = self.image_size
        half = (n - 1) / 2.0
        j = np.arange(n, dtype=np.float64)
        i = np.arange(n, dtype=np.float64)
        x = (j - half) * self.pixel_size          # shape (n,) along columns
        y = (half - i) * self.pixel_size          # shape (n,) along rows
        X = np.broadcast_to(x, (n, n)).ravel()
        Y = np.broadcast_to(y[:, None], (n, n)).ravel()
        return X.copy(), Y.copy()

    def pixel_center(self, i: int, j: int) -> tuple[float, float]:
        """Centre of pixel at row *i*, column *j*."""
        n = self.image_size
        if not (0 <= i < n and 0 <= j < n):
            raise GeometryError(f"pixel ({i},{j}) outside image of size {n}")
        half = (n - 1) / 2.0
        return ((j - half) * self.pixel_size, (half - i) * self.pixel_size)

    def detector_coordinate(self, x, y, view: int) -> np.ndarray:
        """Signed detector coordinate of point(s) ``(x, y)`` at *view*."""
        theta = math.radians(self.start_angle_deg + self.delta_angle_deg * view)
        return np.asarray(x) * math.cos(theta) + np.asarray(y) * math.sin(theta)

    def s_to_bin(self, s) -> np.ndarray:
        """Continuous detector coordinate -> (float) fractional bin index.

        Bin ``b`` covers ``[(b - B/2) * ds, (b+1 - B/2) * ds)`` so that the
        detector is centred on the rotation axis.
        """
        return np.asarray(s) / self.bin_spacing + self.num_bins / 2.0

    def bin_lower_edge(self, b) -> np.ndarray:
        """Physical coordinate of bin *b*'s lower edge."""
        return (np.asarray(b, dtype=np.float64) - self.num_bins / 2.0) * self.bin_spacing

    # ------------------------------------------------------------------ #
    # index mapping

    def row_index(self, view, bin_) -> np.ndarray:
        """Sinogram row id of ``(view, bin)`` — bin-major within view."""
        return np.asarray(view) * self.num_bins + np.asarray(bin_)

    def row_to_view_bin(self, row) -> tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`row_index`."""
        r = np.asarray(row)
        return r // self.num_bins, r % self.num_bins

    def pixel_index(self, i, j) -> np.ndarray:
        """Flat column id of pixel at row *i*, column *j* (row-major)."""
        return np.asarray(i) * self.image_size + np.asarray(j)

    # ------------------------------------------------------------------ #
    # derived helpers

    def min_bins_for_coverage(self) -> int:
        """Bins needed so every pixel projects inside the detector at every view."""
        diag = self.image_size * self.pixel_size * math.sqrt(2.0)
        return int(math.ceil(diag / self.bin_spacing)) + 2

    def covers_image(self) -> bool:
        """True when the detector spans the image diagonal with margin."""
        return self.num_bins >= self.min_bins_for_coverage() - 2

    @staticmethod
    def for_image(
        image_size: int,
        num_views: int | None = None,
        *,
        angular_span_deg: float = 180.0,
        start_angle_deg: float = 0.0,
    ) -> "ParallelBeamGeometry":
        """Sensible geometry for an ``image_size``² reconstruction.

        Mirrors the paper's Table II proportions: bins cover the image
        diagonal (e.g. 512 -> 730 bins), views default to ``image_size // 2``
        spanning 180°.
        """
        if num_views is None:
            num_views = max(1, image_size // 2)
        num_bins = int(math.ceil(image_size * math.sqrt(2.0))) + 2
        return ParallelBeamGeometry(
            image_size=image_size,
            num_bins=num_bins,
            num_views=num_views,
            delta_angle_deg=angular_span_deg / num_views,
            start_angle_deg=start_angle_deg,
        )

    def describe(self) -> dict:
        """Summary dict in the shape of the paper's Table II columns."""
        return {
            "reconstructed img size": f"{self.image_size} x {self.image_size}",
            "num bin": self.num_bins,
            "num view": self.num_views,
            "delta angle": f"{self.delta_angle_deg:g} deg",
            "x size": self.num_pixels,
            "y size": self.num_rays,
        }
