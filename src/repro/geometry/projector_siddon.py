"""Ray-driven projector: exact line/pixel intersection lengths (Siddon).

For every ``(view, bin)`` the central ray of the bin is traced through the
pixel grid and the exact intersection length with each crossed pixel is
recorded (Siddon, *Med. Phys.* 1985).  Rows of the resulting matrix are
built ray by ray, so this projector is the natural generator for
*row-major* (CSR-friendly) construction, complementing the column-major
pixel/strip projectors.

This implementation favours clarity over speed (it loops over rays); the
library uses it for small validation matrices and cross-checking the
vectorised projectors, exactly the role exact ray tracing plays in CT
codes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError, ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry

#: Above this pixel count the per-ray NumPy tracer is impractically slow;
#: the compiled ``siddon_trace_views`` kernel has no such limit.
_NUMPY_PIXEL_CAP = 1 << 20


def _trace_ray(
    geom: ParallelBeamGeometry, theta: float, s: float
) -> tuple[np.ndarray, np.ndarray]:
    """Intersection of the ray ``x cos + y sin = s`` with the pixel grid.

    Returns ``(pixel_ids, lengths)``.  The ray direction is
    ``(-sin(theta), cos(theta))``; the grid spans
    ``[-n*ps/2, n*ps/2]`` in both axes.
    """
    n = geom.image_size
    ps = geom.pixel_size
    half = n * ps / 2.0
    ct, st = math.cos(theta), math.sin(theta)
    # Ray origin: closest point to the rotation centre; direction unit.
    ox, oy = s * ct, s * st
    dx, dy = -st, ct

    # Parametric entry/exit of the grid bounding box.
    t_lo, t_hi = -np.inf, np.inf
    for o, d in ((ox, dx), (oy, dy)):
        if abs(d) < 1e-15:
            if not (-half <= o <= half):
                return np.zeros(0, dtype=np.int64), np.zeros(0)
        else:
            t0 = (-half - o) / d
            t1 = (half - o) / d
            if t0 > t1:
                t0, t1 = t1, t0
            t_lo = max(t_lo, t0)
            t_hi = min(t_hi, t1)
    if t_hi <= t_lo:
        return np.zeros(0, dtype=np.int64), np.zeros(0)

    # Crossing parameters with vertical (x = const) and horizontal grid lines.
    ts = [t_lo, t_hi]
    if abs(dx) > 1e-15:
        k = np.arange(n + 1)
        tx = ((-half + k * ps) - ox) / dx
        ts.extend(tx[(tx > t_lo) & (tx < t_hi)].tolist())
    if abs(dy) > 1e-15:
        k = np.arange(n + 1)
        ty = ((-half + k * ps) - oy) / dy
        ts.extend(ty[(ty > t_lo) & (ty < t_hi)].tolist())
    t = np.unique(np.asarray(ts, dtype=np.float64))
    if t.size < 2:
        return np.zeros(0, dtype=np.int64), np.zeros(0)

    mid = (t[:-1] + t[1:]) / 2.0
    seg = np.diff(t)
    mx = ox + mid * dx
    my = oy + mid * dy
    j = np.floor((mx + half) / ps).astype(np.int64)
    i_from_bottom = np.floor((my + half) / ps).astype(np.int64)
    i = (n - 1) - i_from_bottom  # image rows count from the top
    keep = (j >= 0) & (j < n) & (i >= 0) & (i < n) & (seg > 1e-12)
    pix = i[keep] * n + j[keep]
    lengths = seg[keep]
    # merge duplicate pixels (possible at exact corner crossings)
    if pix.size:
        order = np.argsort(pix, kind="stable")
        pix = pix[order]
        lengths = lengths[order]
        uniq, start = np.unique(pix, return_index=True)
        sums = np.add.reduceat(lengths, start)
        return uniq, sums
    return pix, lengths


def siddon_view(
    geom: ParallelBeamGeometry, view: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets contributed by one view (per-ray NumPy tracer)."""
    if not (0 <= view < geom.num_views):
        raise GeometryError(f"view {view} out of range [0, {geom.num_views})")
    theta = float(geom.view_angles()[view])
    rows_parts, cols_parts, vals_parts = [], [], []
    for b in range(geom.num_bins):
        s = (b + 0.5 - geom.num_bins / 2.0) * geom.bin_spacing
        pix, lengths = _trace_ray(geom, theta, s)
        if pix.size:
            rows_parts.append(
                np.full(pix.size, geom.row_index(view, b), dtype=np.int64)
            )
            cols_parts.append(pix)
            vals_parts.append(lengths)
    if not rows_parts:
        z = np.zeros(0, dtype=np.int64)
        return z, z.copy(), np.zeros(0)
    return (
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts),
    )


def siddon_matrix(
    geom: ParallelBeamGeometry, dtype=np.float64, *, workers: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full Siddon system matrix as COO triplets ``(rows, cols, vals)``.

    Rays pass through bin centres.  With the compiled backend the sweep
    runs on ``siddon_trace_views`` across ``workers`` threads at any
    image size; the per-ray NumPy tracer serves smaller geometries only.
    """
    if geom.num_pixels > _NUMPY_PIXEL_CAP:
        from repro.kernels import dispatch

        if dispatch.get("siddon_trace_views", np.float64) is None:
            raise ValidationError(
                "siddon above 1024x1024 needs the compiled ray tracer "
                "(the per-ray NumPy fallback is a validation-scale path); "
                "enable it with REPRO_BACKEND=auto or c and a working C "
                "compiler, or use the strip/pixel projectors"
            )
    from repro.geometry.sweep import sweep_views

    # per-ray bound: <= 2n + 2 crossings -> <= 2n + 3 segments
    cap = geom.num_bins * (2 * geom.image_size + 3)
    return sweep_views(
        geom,
        kernel="siddon_trace_views",
        scalar_args=(
            geom.image_size, geom.num_bins, geom.delta_angle_deg,
            geom.start_angle_deg, geom.pixel_size, geom.bin_spacing,
        ),
        capacity_per_view=cap,
        view_fn=lambda v: siddon_view(geom, v),
        dtype=dtype,
        workers=workers,
        projector="siddon",
    )
