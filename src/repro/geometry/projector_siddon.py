"""Ray-driven projector: exact line/pixel intersection lengths (Siddon).

For every ``(view, bin)`` the central ray of the bin is traced through the
pixel grid and the exact intersection length with each crossed pixel is
recorded (Siddon, *Med. Phys.* 1985).  Rows of the resulting matrix are
built ray by ray, so this projector is the natural generator for
*row-major* (CSR-friendly) construction, complementing the column-major
pixel/strip projectors.

This implementation favours clarity over speed (it loops over rays); the
library uses it for small validation matrices and cross-checking the
vectorised projectors, exactly the role exact ray tracing plays in CT
codes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.parallel_beam import ParallelBeamGeometry


def _trace_ray(
    geom: ParallelBeamGeometry, theta: float, s: float
) -> tuple[np.ndarray, np.ndarray]:
    """Intersection of the ray ``x cos + y sin = s`` with the pixel grid.

    Returns ``(pixel_ids, lengths)``.  The ray direction is
    ``(-sin(theta), cos(theta))``; the grid spans
    ``[-n*ps/2, n*ps/2]`` in both axes.
    """
    n = geom.image_size
    ps = geom.pixel_size
    half = n * ps / 2.0
    ct, st = math.cos(theta), math.sin(theta)
    # Ray origin: closest point to the rotation centre; direction unit.
    ox, oy = s * ct, s * st
    dx, dy = -st, ct

    # Parametric entry/exit of the grid bounding box.
    t_lo, t_hi = -np.inf, np.inf
    for o, d in ((ox, dx), (oy, dy)):
        if abs(d) < 1e-15:
            if not (-half <= o <= half):
                return np.zeros(0, dtype=np.int64), np.zeros(0)
        else:
            t0 = (-half - o) / d
            t1 = (half - o) / d
            if t0 > t1:
                t0, t1 = t1, t0
            t_lo = max(t_lo, t0)
            t_hi = min(t_hi, t1)
    if t_hi <= t_lo:
        return np.zeros(0, dtype=np.int64), np.zeros(0)

    # Crossing parameters with vertical (x = const) and horizontal grid lines.
    ts = [t_lo, t_hi]
    if abs(dx) > 1e-15:
        k = np.arange(n + 1)
        tx = ((-half + k * ps) - ox) / dx
        ts.extend(tx[(tx > t_lo) & (tx < t_hi)].tolist())
    if abs(dy) > 1e-15:
        k = np.arange(n + 1)
        ty = ((-half + k * ps) - oy) / dy
        ts.extend(ty[(ty > t_lo) & (ty < t_hi)].tolist())
    t = np.unique(np.asarray(ts, dtype=np.float64))
    if t.size < 2:
        return np.zeros(0, dtype=np.int64), np.zeros(0)

    mid = (t[:-1] + t[1:]) / 2.0
    seg = np.diff(t)
    mx = ox + mid * dx
    my = oy + mid * dy
    j = np.floor((mx + half) / ps).astype(np.int64)
    i_from_bottom = np.floor((my + half) / ps).astype(np.int64)
    i = (n - 1) - i_from_bottom  # image rows count from the top
    keep = (j >= 0) & (j < n) & (i >= 0) & (i < n) & (seg > 1e-12)
    pix = i[keep] * n + j[keep]
    lengths = seg[keep]
    # merge duplicate pixels (possible at exact corner crossings)
    if pix.size:
        order = np.argsort(pix, kind="stable")
        pix = pix[order]
        lengths = lengths[order]
        uniq, start = np.unique(pix, return_index=True)
        sums = np.add.reduceat(lengths, start)
        return uniq, sums
    return pix, lengths


def siddon_matrix(
    geom: ParallelBeamGeometry, dtype=np.float64
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full Siddon system matrix as COO triplets ``(rows, cols, vals)``.

    Rays pass through bin centres.  Complexity is O(num_rays * n); intended
    for validation-scale geometries.
    """
    if geom.num_pixels > 1 << 20:
        raise GeometryError(
            "siddon_matrix is a validation projector; use strip/pixel "
            "projectors for images larger than 1024x1024"
        )
    angles = geom.view_angles()
    rows_parts, cols_parts, vals_parts = [], [], []
    for v in range(geom.num_views):
        theta = float(angles[v])
        for b in range(geom.num_bins):
            s = (b + 0.5 - geom.num_bins / 2.0) * geom.bin_spacing
            pix, lengths = _trace_ray(geom, theta, s)
            if pix.size:
                rows_parts.append(
                    np.full(pix.size, geom.row_index(v, b), dtype=np.int64)
                )
                cols_parts.append(pix)
                vals_parts.append(lengths)
    if not rows_parts:
        z = np.zeros(0, dtype=np.int64)
        return z, z.copy(), np.zeros(0, dtype=dtype)
    return (
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts).astype(dtype, copy=False),
    )
