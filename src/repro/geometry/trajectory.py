"""Projection trajectories and the integral-operator properties P1-P3.

A pixel's *trajectory* is the set of detector bins it touches at each view
— the sinusoid of Fig 2.  CSCV's IOBLR permutation is built from the
trajectory of a *reference pixel*; this module computes trajectories, the
reference curve (minimum touched bin per view), and provides checkers for
the three geometric properties the paper relies on:

* **P1** — contiguous pixels map to contiguous-or-identical bins;
* **P2** — a pixel maps to a closed interval on the bin line;
* **P3** — nnz per matrix column is similar across columns.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.projector_strip import footprint_halfwidth


def pixel_trajectory(
    geom: ParallelBeamGeometry,
    i: int,
    j: int,
    views: np.ndarray | None = None,
    *,
    clip: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Bin interval ``(lo, hi)`` touched by pixel ``(i, j)`` at each view.

    Uses the strip-footprint model (consistent with
    :func:`repro.geometry.projector_strip.strip_area_matrix`): the pixel's
    shadow at view *v* is ``[s - w_v, s + w_v]``.  Intervals are inclusive;
    with ``clip=False`` indices may fall outside ``[0, num_bins)``.
    """
    if views is None:
        views = np.arange(geom.num_views)
    views = np.asarray(views)
    x, y = geom.pixel_center(i, j)
    lo = np.empty(views.size, dtype=np.int64)
    hi = np.empty(views.size, dtype=np.int64)
    for k, v in enumerate(views):
        s = float(geom.detector_coordinate(x, y, int(v)))
        w = footprint_halfwidth(geom, int(v))
        f_lo = (s - w) / geom.bin_spacing + geom.num_bins / 2.0
        f_hi = (s + w) / geom.bin_spacing + geom.num_bins / 2.0
        lo[k] = math.floor(f_lo + 1e-12)
        # upper edge exactly on a bin boundary does not enter the next bin
        hi[k] = math.ceil(f_hi - 1e-12) - 1
        if hi[k] < lo[k]:
            hi[k] = lo[k]
    if clip:
        lo = np.clip(lo, 0, geom.num_bins - 1)
        hi = np.clip(hi, 0, geom.num_bins - 1)
    return lo, hi


def reference_trajectory(
    geom: ParallelBeamGeometry,
    i: int,
    j: int,
    views: np.ndarray | None = None,
) -> np.ndarray:
    """The IOBLR reference curve: minimum touched bin per view (unclipped).

    The paper: *"the shapes of parallel polylines are determined by the
    curve of the minimum bin number of the reference pixel"*.
    """
    lo, _ = pixel_trajectory(geom, i, j, views, clip=False)
    return lo


def trajectory_band(
    geom: ParallelBeamGeometry,
    pixels: list[tuple[int, int]],
    views: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Union bin band per view over a set of pixels (``(lo, hi)`` arrays)."""
    if not pixels:
        raise GeometryError("pixels must be non-empty")
    los, his = [], []
    for i, j in pixels:
        lo, hi = pixel_trajectory(geom, i, j, views, clip=False)
        los.append(lo)
        his.append(hi)
    return np.minimum.reduce(los), np.maximum.reduce(his)


def shared_bins(
    geom: ParallelBeamGeometry,
    pix_a: tuple[int, int],
    pix_b: tuple[int, int],
    views: np.ndarray | None = None,
) -> np.ndarray:
    """Per-view count of bins touched by *both* pixels (Fig 2's overlaps)."""
    lo_a, hi_a = pixel_trajectory(geom, *pix_a, views, clip=False)
    lo_b, hi_b = pixel_trajectory(geom, *pix_b, views, clip=False)
    lo = np.maximum(lo_a, lo_b)
    hi = np.minimum(hi_a, hi_b)
    return np.maximum(hi - lo + 1, 0)


# --------------------------------------------------------------------- #
# property checkers (P1-P3)

def check_p1_contiguity(
    geom: ParallelBeamGeometry, view: int, *, max_gap: int = 1
) -> bool:
    """P1: horizontally adjacent pixels land on adjacent-or-equal bins.

    Verified by checking that the reference curves of neighbouring pixels
    in a row differ by at most ``pixel_size/bin_spacing`` rounded up.
    """
    n = geom.image_size
    step = int(math.ceil(geom.pixel_size / geom.bin_spacing)) + max_gap - 1
    i = n // 2
    prev_lo, _ = pixel_trajectory(geom, i, 0, np.asarray([view]), clip=False)
    for j in range(1, n):
        lo, _ = pixel_trajectory(geom, i, j, np.asarray([view]), clip=False)
        if abs(int(lo[0]) - int(prev_lo[0])) > step:
            return False
        prev_lo = lo
    return True


def check_p2_interval(geom: ParallelBeamGeometry, i: int, j: int, view: int) -> bool:
    """P2: the footprint of a pixel at a view is one closed bin interval.

    True by construction for convex pixels under parallel projection; the
    checker recomputes the interval from the exact strip projector and
    verifies no holes exist.
    """
    from repro.geometry.projector_strip import strip_area_view

    rows, cols, _ = strip_area_view(geom, view)
    p = geom.pixel_index(i, j)
    bins = np.sort(rows[cols == p] % geom.num_bins)
    if bins.size <= 1:
        return True
    return bool(np.all(np.diff(bins) == 1))


def column_nnz_spread(rows: np.ndarray, cols: np.ndarray, num_cols: int) -> float:
    """P3 metric: relative spread of per-column nnz, ``std / mean``.

    Small values (<~0.3 away from image corners) support the paper's
    thread-balancing assumption.
    """
    counts = np.bincount(np.asarray(cols), minlength=num_cols).astype(np.float64)
    nz = counts[counts > 0]
    if nz.size == 0:
        return 0.0
    return float(nz.std() / nz.mean())
