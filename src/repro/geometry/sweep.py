"""Parallel projector sweeps: geometry -> COO triplets, across cores.

Every projector's ``*_matrix`` function is a sweep over independent
views, which makes the cold build embarrassingly parallel along the view
axis (the row-block decomposition the SpMV drivers already exploit).
This module is the one orchestrator they all share:

* when the compiled backend is available, the view range is split into
  chunks and each chunk is traced by a C kernel
  (``pixel_footprint_views`` / ``strip_footprint_views`` /
  ``siddon_trace_views`` / ``fan_strip_views``) into a caller-allocated
  triplet buffer — the kernels release the GIL, so chunks run
  concurrently on the shared build pool
  (:data:`repro.utils.pool.build_pool`);
* otherwise the per-view NumPy projector runs serially, exactly as
  before.

**Determinism contract**: chunk results are concatenated in ascending
view order and every triplet value depends only on its own ``(view,
pixel)``, so the emitted COO stream is identical for any worker count or
chunking — the canonical :class:`~repro.sparse.COOMatrix` (and
therefore every cache entry hash) never depends on
``REPRO_BUILD_WORKERS``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import normalize_dtype
from repro.errors import KernelError
from repro.kernels import dispatch
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.pool import build_pool, run_resilient

#: Soft cap on one chunk's triplet scratch buffer (bytes); chunks shrink
#: until their conservative capacity bound fits.  Only live chunks (at
#: most the pool width) hold scratch at any moment.
_CHUNK_BUFFER_BYTES = 64 << 20

_TRIPLET_BYTES = 8 + 8 + 8  # int64 row + int64 col + float64 val


def resolve_build_workers(workers: int | None) -> int:
    """Effective build worker count (arg, else ``runtime.build_workers``)."""
    from repro import config

    n = workers if workers is not None else config.runtime.build_workers
    return max(1, int(n))


def sweep_views(
    geom,
    *,
    kernel: str,
    scalar_args: tuple,
    capacity_per_view: int,
    view_fn,
    dtype,
    workers: int | None = None,
    projector: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run a full projector sweep, parallel when the C kernel exists.

    Parameters
    ----------
    geom
        Geometry providing ``num_views``.
    kernel : str
        Dispatch name of the C view-range kernel.
    scalar_args : tuple
        Geometry scalars passed before ``(v0, v1, cap, rows, cols,
        vals)``.
    capacity_per_view : int
        Conservative bound on triplets any single view can emit.
    view_fn : callable
        ``view_fn(v) -> (rows, cols, vals)`` NumPy fallback for one view.
    dtype
        Target value dtype (kernels always trace in float64).
    workers : int, optional
        Override for ``config.runtime.build_workers``.
    projector : str
        Name recorded on the ``build.sweep`` span and worker gauge.
    """
    dtype = normalize_dtype(dtype)
    workers = resolve_build_workers(workers)
    fn = dispatch.get(kernel, np.float64)
    num_views = geom.num_views
    backend = "c" if fn is not None else "numpy"
    used = workers if fn is not None else 1
    with span("build.sweep", projector=projector, views=num_views,
              backend=backend, workers=used):
        if fn is None:
            parts = [view_fn(v) for v in range(num_views)]
        else:
            ranges = _view_chunks(num_views, workers, capacity_per_view)

            def trace_range(vr: tuple[int, int]):
                v0, v1 = vr
                cap = capacity_per_view * (v1 - v0)
                rows = np.empty(cap, dtype=np.int64)
                cols = np.empty(cap, dtype=np.int64)
                vals = np.empty(cap, dtype=np.float64)
                written = int(fn(*scalar_args, v0, v1, cap, rows, cols, vals))
                if written < 0:
                    raise KernelError(
                        f"{kernel}: capacity {cap} overflowed for views "
                        f"[{v0}, {v1}) — per-view bound too small"
                    )
                return rows[:written].copy(), cols[:written].copy(), vals[:written].copy()

            if workers <= 1 or len(ranges) == 1:
                parts = [trace_range(r) for r in ranges]
            else:
                parts = run_resilient(
                    build_pool, trace_range, ranges,
                    min(workers, len(ranges)), label="sweep",
                )
        rows = np.concatenate([p[0] for p in parts])
        cols = np.concatenate([p[1] for p in parts])
        vals = np.concatenate([p[2] for p in parts]).astype(dtype, copy=False)
    obs_metrics.gauge(
        "build.sweep.workers", "workers used by the last projector sweep"
    ).set(used)
    return rows, cols, vals


def _view_chunks(
    num_views: int, workers: int, capacity_per_view: int
) -> list[tuple[int, int]]:
    """Contiguous view ranges: ~4 chunks per worker, memory-bounded."""
    by_workers = math.ceil(num_views / max(1, workers * 4))
    by_memory = max(1, _CHUNK_BUFFER_BYTES // max(1, capacity_per_view * _TRIPLET_BYTES))
    chunk = max(1, min(by_workers, by_memory))
    return [(v0, min(v0 + chunk, num_views)) for v0 in range(0, num_views, chunk)]
