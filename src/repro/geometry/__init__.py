"""CT geometry substrate: parallel-beam geometry, projectors, phantoms.

This package generates the sparse system matrices "arising from integral
equations" that the paper's CSCV format targets.  The discretised Radon
transform ``y = A x`` maps an image ``x`` (piecewise-constant pixels) to a
sinogram ``y`` indexed by ``(view, bin)``.

Three projector discretisations are provided:

* :func:`repro.geometry.projector_pixel.pixel_driven_matrix` — pixel-driven
  with linear detector interpolation (2 bins per pixel per view),
* :func:`repro.geometry.projector_strip.strip_area_matrix` — strip-integral
  (area-weighted; 2-4 bins per pixel per view, the paper's nnz density),
* :func:`repro.geometry.projector_siddon.siddon_matrix` — ray-driven exact
  line/pixel intersection lengths (Siddon's algorithm).
"""

from repro.geometry.attenuated import attenuated_strip_matrix
from repro.geometry.fan_beam import FanBeamGeometry
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.projector_fan import fan_strip_matrix
from repro.geometry.phantom import shepp_logan, disk_phantom, blocks_phantom
from repro.geometry.projector_pixel import pixel_driven_matrix
from repro.geometry.projector_siddon import siddon_matrix
from repro.geometry.projector_strip import strip_area_matrix
from repro.geometry.trajectory import (
    pixel_trajectory,
    reference_trajectory,
    trajectory_band,
)

__all__ = [
    "ParallelBeamGeometry",
    "FanBeamGeometry",
    "fan_strip_matrix",
    "attenuated_strip_matrix",
    "shepp_logan",
    "disk_phantom",
    "blocks_phantom",
    "pixel_driven_matrix",
    "strip_area_matrix",
    "siddon_matrix",
    "pixel_trajectory",
    "reference_trajectory",
    "trajectory_band",
]
