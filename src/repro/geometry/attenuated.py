"""Attenuated Radon transform — the SPECT imaging operator.

Equation (1) of the paper with ``L(o, q) != 1``: in single-photon
emission tomography the photon emitted at depth ``t`` along the ray is
attenuated by ``exp(-int_t^exit mu)`` before reaching the detector, so the
system matrix entry becomes the geometric weight times an exponential
attenuation factor.  The paper claims CSCV "can potentially accelerate
SpMV in imaging models involving ... attenuated X-ray transformation
(CT, PET, SPECT)"; this module makes the claim testable.

Implementation: take any parallel-beam strip-projector triplet set and
scale each entry by ``exp(-mu * depth)``, where ``depth`` is the distance
from the pixel centre to the detector-side exit of a uniform attenuating
disk (uniform ``mu`` is the classical Tretiak-Metz setting).  Crucially
the *sparsity pattern is untouched*, so every CSCV property (P1, P2, P3,
the trajectories, the padding behaviour) carries over verbatim — which is
exactly why the paper's claim holds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.projector_strip import strip_area_matrix


def attenuation_depths(geom: ParallelBeamGeometry, radius: float) -> np.ndarray:
    """Ray path length from each pixel centre to the edge of a centred
    attenuating disk, per view — shape (num_views, num_pixels).

    The ray direction at view ``theta`` is ``(-sin, cos)``; the photon
    travels toward the detector (the +direction).  For pixels outside the
    disk the depth is zero.
    """
    if radius <= 0:
        raise GeometryError("radius must be positive")
    X, Y = geom.pixel_centers()
    r2 = X**2 + Y**2
    thetas = geom.view_angles()
    depths = np.zeros((geom.num_views, geom.num_pixels))
    inside = r2 < radius**2
    for v, th in enumerate(thetas):
        dx, dy = -math.sin(th), math.cos(th)
        # distance along +d from (X, Y) to the circle |p + t d| = radius:
        # t = -(p.d) + sqrt(radius^2 - |p|^2 + (p.d)^2)
        pd = X * dx + Y * dy
        disc = radius**2 - r2 + pd**2
        t = -pd + np.sqrt(np.maximum(disc, 0.0))
        depths[v, inside] = t[inside]
    return depths


def attenuated_strip_matrix(
    geom: ParallelBeamGeometry,
    *,
    mu: float = 0.01,
    radius: float | None = None,
    dtype=np.float64,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SPECT-style system matrix: strip weights x exp(-mu * depth).

    Parameters
    ----------
    mu : float
        Uniform linear attenuation coefficient (per pixel unit).
    radius : float, optional
        Attenuating-disk radius; defaults to the inscribed circle.

    Returns COO triplets with the **same sparsity pattern** as
    :func:`~repro.geometry.projector_strip.strip_area_matrix`.
    """
    if mu < 0:
        raise GeometryError("mu must be >= 0")
    if radius is None:
        radius = geom.image_size * geom.pixel_size / 2.0
    rows, cols, vals = strip_area_matrix(geom, dtype=np.float64)
    depths = attenuation_depths(geom, radius)
    v = rows // geom.num_bins
    factor = np.exp(-mu * depths[v, cols])
    return rows, cols, (vals * factor).astype(dtype, copy=False)


def attenuation_factor_range(
    geom: ParallelBeamGeometry, mu: float, radius: float | None = None
) -> tuple[float, float]:
    """(min, max) attenuation factor over all (pixel, view) pairs."""
    if radius is None:
        radius = geom.image_size * geom.pixel_size / 2.0
    depths = attenuation_depths(geom, radius)
    return float(np.exp(-mu * depths.max())), 1.0
