"""Pixel-driven forward projector with linear detector interpolation.

For every pixel and view, the pixel centre is projected onto the detector
axis and its contribution (approximated as ``pixel_size`` of ray path) is
linearly split between the two nearest bins.  This is the classical
"pixel-driven" discretisation; each matrix column holds exactly
``<= 2 * num_views`` nonzeros, which makes the column-band structure CSCV
exploits particularly easy to see.

The builder is fully vectorised over pixels and loops only over views.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.parallel_beam import ParallelBeamGeometry


def pixel_driven_view(
    geom: ParallelBeamGeometry, view: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets ``(rows, cols, vals)`` contributed by one view.

    Entries whose target bin falls outside the detector are dropped.
    """
    if not (0 <= view < geom.num_views):
        raise GeometryError(f"view {view} out of range [0, {geom.num_views})")
    X, Y = geom.pixel_centers()
    s = geom.detector_coordinate(X, Y, view)
    # fractional bin-centre coordinate: pixel lands between bins b0 and b0+1
    f = np.asarray(geom.s_to_bin(s)) - 0.5
    b0 = np.floor(f).astype(np.int64)
    w1 = f - b0
    w0 = 1.0 - w1

    cols = np.arange(geom.num_pixels, dtype=np.int64)
    length = geom.pixel_size  # nominal ray path through a pixel

    all_rows = []
    all_cols = []
    all_vals = []
    for b, w in ((b0, w0), (b0 + 1, w1)):
        keep = (b >= 0) & (b < geom.num_bins) & (w > 0)
        all_rows.append(geom.row_index(view, b[keep]))
        all_cols.append(cols[keep])
        all_vals.append(w[keep] * length)
    return (
        np.concatenate(all_rows),
        np.concatenate(all_cols),
        np.concatenate(all_vals),
    )


def pixel_driven_matrix(
    geom: ParallelBeamGeometry, dtype=np.float64, *, workers: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full system matrix as COO triplets ``(rows, cols, vals)``.

    The sweep runs on the compiled ``pixel_footprint_views`` kernel
    across ``workers`` threads when available (see
    :mod:`repro.geometry.sweep`), falling back to the per-view NumPy
    path; both emit the same matrix.

    Returns
    -------
    rows, cols : int64 arrays
        Sinogram row (``view * num_bins + bin``) and pixel column ids.
    vals : array of *dtype*
        Interpolation-weighted path lengths.
    """
    from repro.geometry.sweep import sweep_views

    return sweep_views(
        geom,
        kernel="pixel_footprint_views",
        scalar_args=(
            geom.image_size, geom.num_bins, geom.delta_angle_deg,
            geom.start_angle_deg, geom.pixel_size, geom.bin_spacing,
        ),
        capacity_per_view=2 * geom.num_pixels,
        view_fn=lambda v: pixel_driven_view(geom, v),
        dtype=dtype,
        workers=workers,
        projector="pixel",
    )


def pixel_bin_support(geom: ParallelBeamGeometry, view: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-pixel ``(first_bin, last_bin)`` touched at *view* (clipped).

    Cheap trajectory helper used by :mod:`repro.geometry.trajectory`; a
    pixel driven by linear interpolation touches bins ``b0`` and ``b0+1``.
    """
    X, Y = geom.pixel_centers()
    s = geom.detector_coordinate(X, Y, view)
    f = np.asarray(geom.s_to_bin(s)) - 0.5
    b0 = np.floor(f).astype(np.int64)
    lo = np.clip(b0, 0, geom.num_bins - 1)
    hi = np.clip(b0 + 1, 0, geom.num_bins - 1)
    return lo, hi


def theoretical_nnz(geom: ParallelBeamGeometry) -> int:
    """Upper bound on nnz: two bins per pixel per view."""
    return 2 * geom.num_pixels * geom.num_views
