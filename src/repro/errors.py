"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class.  More specific subclasses distinguish user input
problems (:class:`ValidationError`), format conversion problems
(:class:`FormatError`), geometry construction problems
(:class:`GeometryError`) and backend/kernel problems (:class:`KernelError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, dtype, range, ...)."""


class FormatError(ReproError):
    """A sparse-matrix format could not be constructed or used."""


class GeometryError(ReproError):
    """A CT geometry is inconsistent or a projector failed to build."""


class KernelError(ReproError):
    """A compute backend (NumPy or compiled C) failed."""


class AutotuneError(ReproError):
    """Parameter autotuning could not find a feasible configuration."""


class NumericalError(ReproError):
    """Non-finite data detected by the numerical guards (``REPRO_GUARD``)."""


class SolverError(ReproError):
    """An iterative solver diverged and could not recover.

    Raised by the residual watchdog after its restart/backoff budget is
    exhausted.  ``history`` holds the per-iteration record that led here:
    a list of dicts with at least ``iteration`` and ``residual`` keys,
    plus ``action``/``relax`` entries for every watchdog intervention.
    """

    def __init__(self, message: str, *, history: list | None = None):
        super().__init__(message)
        self.history = history or []
