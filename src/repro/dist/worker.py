"""Shard worker process: materialize owned shards, serve SpMV/SpMM tasks.

Workers are spawned (never forked — the parent may hold thread pools,
an asyncio loop, or a loaded kernel library whose state must not be
inherited mid-flight), receive one picklable init payload, rebuild
their owned shards from the shared operator cache (warm path: the same
``np.load(mmap_mode="r")`` entries the parent stored — one physical
copy in the page cache across every process), and then loop on a duplex
pipe answering ``forward``/``adjoint`` commands whose operands travel
as :mod:`repro.dist.transport` descriptors.

Each worker clamps its kernels to the per-shard thread budget
(``runtime.threads // num_shards``, satellite of the OpenMP bugfix) via
:func:`repro.kernels.dispatch.set_omp_threads`, so the pool never
oversubscribes the host and the per-shard arithmetic is identical in
every execution mode.

Fault injection: the parent's ``REPRO_FAULTS`` plan travels in the init
payload, and every task evaluates the ``dist.worker.task`` site —
raising actions surface as error replies (the parent respawns once,
then degrades to serial), while the ``exit`` directive hard-kills the
process (``os._exit``), modelling an OOM kill or segfault.
"""

from __future__ import annotations

import os
import time
import traceback

import numpy as np

__all__ = ["worker_main", "spawn_worker", "WorkerHandle"]


def worker_main(conn, init: dict) -> None:
    """Entry point of one spawned shard worker (runs until ``stop``)."""
    from repro import config
    from repro.dist.sharding import ShardExecutor, ShardSpec, materialize_shard
    from repro.dist.transport import attach_view
    from repro.kernels import dispatch
    from repro.resilience import faults

    config.runtime.backend = init["backend"]
    config.runtime.faults = init.get("faults", "")
    ctx = init["ctx"]
    # Per-shard thread clamp: identical arithmetic in every mode, and
    # S shards x (threads // S) OpenMP threads never oversubscribe.
    dispatch.set_omp_threads(ctx.threads)

    cache = None
    if init.get("cache_root"):
        from repro.core.cache import OperatorCache

        cache = OperatorCache(root=init["cache_root"])

    specs = {
        index: ShardSpec(index=index, v0=v0, v1=v1, r0=r0, r1=r1, key=key)
        for index, v0, v1, r0, r1, key in init["shards"]
    }
    executors: dict[int, ShardExecutor] = {}

    def executor(index: int) -> ShardExecutor:
        ex = executors.get(index)
        if ex is None:
            ex = ShardExecutor(
                materialize_shard(ctx, specs[index], cache=cache)
            )
            executors[index] = ex
        return ex

    shm_cache: dict = {}
    owned = list(init["owned"])

    def run_task(cmd: dict) -> list[float]:
        # A dedicated frame so the numpy views over shared memory are
        # dropped on return — lingering views would pin the mmap and
        # make the final SharedMemory.close() raise BufferError.
        seconds: list[float] = []
        vector = bool(cmd["vector"])
        op = cmd["op"]
        if op == "forward":
            x_view = attach_view(cmd["x"], shm_cache)
            y_view = attach_view(cmd["y"], shm_cache)
            x = x_view[:, 0] if vector else x_view
            for index in owned:
                spec = specs[index]
                t0 = time.perf_counter()
                res = executor(index).forward(x, vector)
                seconds.append(time.perf_counter() - t0)
                y_view[spec.r0:spec.r1] = res.reshape(spec.num_rows, -1)
        elif op == "adjoint":
            y_view = attach_view(cmd["y"], shm_cache)
            p_view = attach_view(cmd["p"], shm_cache)
            n = p_view.shape[1]
            for index in owned:
                spec = specs[index]
                y = y_view[spec.r0:spec.r1]
                t0 = time.perf_counter()
                res = executor(index).adjoint(
                    y[:, 0] if vector else y, vector
                )
                seconds.append(time.perf_counter() - t0)
                p_view[spec.index] = res.reshape(n, -1)
        else:
            raise ValueError(f"unknown worker command {op!r}")
        return seconds

    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        op = cmd.get("op")
        if op == "stop":
            try:
                conn.send({"ok": True})
            except (BrokenPipeError, OSError):
                pass
            break
        if op == "ping":
            conn.send({"ok": True, "pid": os.getpid(), "owned": owned})
            continue
        try:
            directive = faults.fire("dist.worker.task", op=op)
            if directive == "exit":
                os._exit(1)
            conn.send({"ok": True, "seconds": run_task(cmd)})
        except BaseException:
            try:
                conn.send({"ok": False, "error": traceback.format_exc(limit=4)})
            except (BrokenPipeError, OSError):
                break
    for shm in shm_cache.values():
        try:
            shm.close()
        except (BufferError, OSError):
            pass


class WorkerHandle:
    """Parent-side handle: process + pipe + ownership bookkeeping."""

    def __init__(self, proc, conn, owned: list[int], respawned: bool = False):
        self.proc = proc
        self.conn = conn
        self.owned = owned
        self.respawned = respawned

    def request(self, cmd: dict, timeout: float) -> dict | None:
        """Round-trip one command; ``None`` means the worker is dead
        (send failed, reply timed out, or the pipe closed)."""
        try:
            self.conn.send(cmd)
            if not self.conn.poll(timeout):
                return None
            return self.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            return None

    def stop(self) -> None:
        """Graceful shutdown; escalates to kill after a short grace."""
        try:
            self.conn.send({"op": "stop"})
            self.conn.poll(2.0)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.terminate()
            self.proc.join(timeout=2.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def kill(self) -> None:
        try:
            self.proc.terminate()
            self.proc.join(timeout=2.0)
        except (OSError, ValueError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass


def spawn_worker(init: dict, respawned: bool = False) -> WorkerHandle:
    """Spawn one worker process and wait for its readiness ping."""
    import multiprocessing as mp

    ctx = mp.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    proc = ctx.Process(
        target=worker_main,
        args=(child_conn, init),
        name=f"repro-shard-worker-{'-'.join(map(str, init['owned']))}",
        daemon=True,
    )
    proc.start()
    child_conn.close()
    handle = WorkerHandle(proc, parent_conn, list(init["owned"]), respawned)
    reply = handle.request({"op": "ping"}, timeout=120.0)
    if reply is None or not reply.get("ok"):
        handle.kill()
        raise RuntimeError("shard worker failed to start")
    return handle
