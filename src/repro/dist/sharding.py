"""View-range sharded operators with a deterministic reduction.

The paper's multithreaded driver (section IV-E) row-partitions the
operator with per-thread private ``y`` and a fixed-order merge; this
module lifts the *same* partitioning across process boundaries, where
the NumPy backend and the serving layer previously lost all parallelism
to the GIL.

The design splits three concerns that are usually conflated:

**Partition** — :func:`plan_shards` cuts the geometry into ``S``
contiguous view ranges (rows ``[v0*num_bins, v1*num_bins)``), each
materialized as its own content-addressed cache entry (shard key =
parent build inputs + view range), so warm loads are per-shard
``np.load(mmap_mode="r")`` and any number of processes share one
physical copy through the page cache.

**Reduction order** — fixed by the *shard* partition, never by the
worker count.  Forward is a concatenation of disjoint row slices (no
reduction at all); adjoint folds per-shard back-projections in
shard-index order (:func:`~repro.dist.transport.fixed_order_sum`).
Per-shard kernels are clamped to ``runtime.threads // S`` in every
execution mode.  Consequently ``REPRO_SHARD_WORKERS`` ∈ {1, 2, 4, ...}
all produce bitwise-identical results at a given shard count — the
knob trades wall time only, exactly like ``REPRO_BUILD_WORKERS``.

**Execution** — in-process serial (``workers == 1``, also the
degraded-mode fallback) or a persistent pool of spawned worker
processes exchanging buffers through a
:class:`~repro.dist.transport.Transport`.  Worker death is routed
through :mod:`repro.resilience`: the pool respawns a dead worker once,
and on repeated failure degrades permanently to the serial path —
whose results are identical by construction.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from dataclasses import dataclass

import numpy as np

from repro import config
from repro.errors import ValidationError
from repro.recon.linops import ProjectionOperator
from repro.resilience import faults
from repro.resilience.guards import check as guard_check
from repro.utils.partition import split_evenly

__all__ = [
    "ShardSpec",
    "plan_shards",
    "shard_geometry",
    "ShardContext",
    "ShardExecutor",
    "materialize_shard",
    "resolve_shards",
    "ShardedOperator",
]


@dataclass
class ShardSpec:
    """One contiguous view-range shard of an operator.

    ``key`` is the shard's content-addressed cache key (None when built
    uncached); ``nnz`` is filled in once the parent COO is known.
    """

    index: int
    v0: int
    v1: int
    r0: int
    r1: int
    key: str | None = None
    nnz: int | None = None

    @property
    def num_views(self) -> int:
        return self.v1 - self.v0

    @property
    def num_rows(self) -> int:
        return self.r1 - self.r0


def resolve_shards(num_views: int, shards: int | None, workers: int) -> int:
    """Shard count for *num_views*: explicit > config > auto.

    Auto is ``max(4, workers)`` so the default partition stays stable
    when the worker count changes underneath it — that stability is the
    determinism guarantee.  Always clamped to ``num_views``.
    """
    n = shards if shards is not None else config.runtime.shards
    if n is None or n <= 0:
        n = max(4, workers)
    return max(1, min(int(n), num_views))


def plan_shards(geom, num_shards: int) -> list[ShardSpec]:
    """Cut *geom*'s views into *num_shards* contiguous, non-empty ranges."""
    ranges = split_evenly(geom.num_views, num_shards)
    specs = []
    for v0, v1 in ranges:
        if v0 == v1:
            continue
        specs.append(
            ShardSpec(
                index=len(specs),
                v0=v0,
                v1=v1,
                r0=v0 * geom.num_bins,
                r1=v1 * geom.num_bins,
            )
        )
    return specs


def shard_geometry(geom, spec: ShardSpec):
    """The sliced geometry a shard's format is built against.

    Same image grid and detector, only the view window moves: the
    shard's first view keeps the exact angle it has in the parent
    (``start + v0 * delta`` — the same float expression the projector
    sweep evaluates), so the shard's rows are bit-for-bit the parent's
    rows ``[r0, r1)``.
    """
    return dataclasses.replace(
        geom,
        num_views=spec.num_views,
        start_angle_deg=geom.start_angle_deg + spec.v0 * geom.delta_angle_deg,
    )


@dataclass
class ShardContext:
    """Everything needed to (re)materialize any shard of one operator.

    Picklable by construction — the worker processes receive one of
    these plus their owned shard list and rebuild locally, loading the
    same cache entries the parent stored.
    """

    geom: object
    fmt: str
    projector: str
    dtype: str
    params: object = None
    reference_mode: str = "ioblr"
    #: per-shard kernel thread budget (``runtime.threads // num_shards``)
    threads: int = 1
    build_workers: int | None = None

    def shard_key(self, spec: ShardSpec, num_shards: int) -> str:
        from repro.core.cache import operator_key

        return operator_key(
            geom=self.geom,
            fmt=self.fmt,
            projector=self.projector,
            dtype=np.dtype(self.dtype),
            params=self.params,
            reference_mode=self.reference_mode,
            kind="shard",
            extra={"views": [int(spec.v0), int(spec.v1)], "shards": int(num_shards)},
        )


def _shard_coo(coo, geom, spec: ShardSpec):
    """Slice the parent COO sweep to a shard's row range (rows rebased).

    The parent triplets are row-major sorted, so the slice is two
    binary searches — no scan, no re-sort, and bit-for-bit the values
    the full sweep produced for those rows.
    """
    from repro.sparse.coo import COOMatrix

    lo = int(np.searchsorted(coo.rows, spec.r0, side="left"))
    hi = int(np.searchsorted(coo.rows, spec.r1, side="left"))
    return COOMatrix.from_coo(
        (spec.num_rows, coo.shape[1]),
        coo.rows[lo:hi] - spec.r0,
        coo.cols[lo:hi],
        coo.vals[lo:hi],
        dtype=coo.dtype,
    )


def materialize_shard(ctx: ShardContext, spec: ShardSpec, cache=None, coo=None):
    """Build (or cache-load) the sparse format for one shard.

    Cold path: slice the parent COO (itself cached under its own key)
    by the shard's row range and construct the format against the
    sliced geometry.  Warm path: per-shard ``np.load(mmap_mode="r")``.
    """
    from repro import api

    def build():
        from repro.core.format_m import CSCVMMatrix
        from repro.core.format_z import CSCVZMatrix

        parent_coo = coo
        if parent_coo is None:
            parent_coo = api._cached_coo(
                ctx.geom, ctx.projector, np.dtype(ctx.dtype), cache,
                ctx.build_workers,
            )
        sub = _shard_coo(parent_coo, ctx.geom, spec)
        cls = api._resolve_format_class(ctx.fmt)
        is_cscv = issubclass(cls, (CSCVZMatrix, CSCVMMatrix))
        kwargs = {}
        if is_cscv:
            kwargs = {
                "reference_mode": ctx.reference_mode,
                "build_workers": ctx.build_workers,
                "threads": ctx.threads,
            }
        return api._construct_format(
            ctx.fmt, sub,
            geom=shard_geometry(ctx.geom, spec) if is_cscv else None,
            params=ctx.params, dtype=np.dtype(ctx.dtype), **kwargs,
        )

    if cache is None or spec.key is None:
        return build()
    cls = api._resolve_format_class(ctx.fmt)
    fmt, _ = cache.get_or_build(spec.key, cls, build, threads=ctx.threads)
    return fmt


class ShardExecutor:
    """Per-shard forward/adjoint compute, shared by every execution mode.

    The serial path and the worker processes run *this exact code* on
    identical shard formats — which is what makes degradation (and the
    ``workers=1`` reference) bitwise-equal to the distributed result.
    """

    def __init__(self, fmt):
        self.fmt = fmt
        self._tcsr = None

    def forward(self, x: np.ndarray, vector: bool) -> np.ndarray:
        return self.fmt.spmv(x) if vector else self.fmt.spmm(x)

    def adjoint(self, y: np.ndarray, vector: bool) -> np.ndarray:
        y = np.ascontiguousarray(y)
        if vector:
            native = getattr(self.fmt, "transpose_spmv", None)
            if native is not None:
                return native(y)
            return self._transposed().spmv(y)
        native_mm = getattr(self.fmt, "transpose_spmm", None)
        if native_mm is not None:
            return native_mm(y)
        native = getattr(self.fmt, "transpose_spmv", None)
        if native is not None:
            out = np.empty((self.fmt.shape[1], y.shape[1]), dtype=self.fmt.dtype)
            for j in range(y.shape[1]):
                out[:, j] = native(np.ascontiguousarray(y[:, j]))
            return out
        return self._transposed().spmm(y)

    def _transposed(self):
        """Transposed CSR fallback (same construction as linops)."""
        if self._tcsr is None:
            from repro.sparse.csr import CSRMatrix

            rows, cols, vals = self.fmt.to_coo_triplets()
            m, n = self.fmt.shape
            self._tcsr = CSRMatrix.from_coo(
                (n, m), cols, rows, vals, dtype=self.fmt.dtype
            )
        return self._tcsr


class _ShardedFormat:
    """Duck-typed format facade a :class:`ShardedOperator` exposes as
    ``op.fmt`` — concatenated triplets with row offsets back the
    ``to_csr``/norms paths (OS-SART), delegated SpMV/SpMM keep direct
    format users working."""

    def __init__(self, op: "ShardedOperator", base_name: str, shape, dtype):
        self._op = op
        self.name = f"sharded[{base_name}]"
        self.shape = shape
        self.dtype = dtype

    @property
    def nnz(self) -> int:
        return sum(s.nnz or 0 for s in self._op.shards)

    def to_coo_triplets(self):
        rows_all, cols_all, vals_all = [], [], []
        for spec, ex in zip(self._op.shards, self._op._executors()):
            r, c, v = ex.fmt.to_coo_triplets()
            rows_all.append(np.asarray(r, dtype=np.int64) + spec.r0)
            cols_all.append(np.asarray(c, dtype=np.int64))
            vals_all.append(v)
        return (
            np.concatenate(rows_all),
            np.concatenate(cols_all),
            np.concatenate(vals_all),
        )

    def memory_bytes(self):
        totals: dict[str, float] = {}
        for ex in self._op._executors():
            for k, v in ex.fmt.memory_bytes().items():
                totals[k] = totals.get(k, 0) + v
        return totals

    def spmv(self, x, out=None):
        return self._op.forward(x, out)

    def spmm(self, X, out=None):
        return self._op.forward(X, out)

    def transpose_spmv(self, y, out=None):
        return self._op.adjoint(y, out)


class ShardedOperator(ProjectionOperator):
    """A :class:`ProjectionOperator` executed shard-by-shard.

    Drop-in for the solvers: ``forward``/``adjoint`` keep the base
    class's guard screening and fault points, ``to_csr``/norms work via
    concatenated triplets.  ``workers == 1`` never spawns a process;
    ``workers > 1`` lazily starts a spawn-based pool on the first
    dispatch and keeps it until :meth:`close`.
    """

    #: worker reply timeout before the worker is declared dead (seconds)
    REPLY_TIMEOUT = 120.0

    def __init__(
        self,
        ctx: ShardContext,
        shards: list[ShardSpec],
        *,
        workers: int = 1,
        cache=None,
        transport: str | None = None,
    ):
        self.ctx = ctx
        self.shards = shards
        self.workers = max(1, min(int(workers), len(shards)))
        self.cache = cache
        self.transport_name = (
            transport or config.runtime.shard_transport
        ).strip().lower()
        self._mode = "serial" if self.workers == 1 else "distributed"
        self._execs: dict[int, ShardExecutor] = {}
        self._coo = None
        self._pool: list | None = None
        self._transport = None
        self._closed = False
        # Serialises distributed dispatches: the pipe protocol and the
        # shared buffers serve one in-flight collective at a time (the
        # serving layer runs batches on several threads against one op).
        self._dispatch_lock = threading.Lock()
        geom = ctx.geom
        super().__init__(
            _ShardedFormat(self, ctx.fmt, geom.shape, np.dtype(ctx.dtype))
        )

    # ------------------------------------------------------------------ #
    # materialization

    def _parent_coo(self):
        if self._coo is None:
            from repro import api

            self._coo = api._cached_coo(
                self.ctx.geom, self.ctx.projector, np.dtype(self.ctx.dtype),
                self.cache, self.ctx.build_workers,
            )
            rows = self._coo.rows
            for spec in self.shards:
                lo = int(np.searchsorted(rows, spec.r0, side="left"))
                hi = int(np.searchsorted(rows, spec.r1, side="left"))
                spec.nnz = hi - lo
        return self._coo

    def _executor(self, index: int) -> ShardExecutor:
        ex = self._execs.get(index)
        if ex is None:
            spec = self.shards[index]
            fmt = materialize_shard(
                self.ctx, spec, cache=self.cache, coo=self._parent_coo()
            )
            if spec.nnz is None:
                spec.nnz = int(fmt.nnz)
            ex = ShardExecutor(fmt)
            self._execs[index] = ex
        return ex

    def _executors(self) -> list[ShardExecutor]:
        return [self._executor(s.index) for s in self.shards]

    def ensure_cached(self) -> None:
        """Build-and-store every shard entry (cold path, parent-side).

        Called before the pool spawns so workers only ever warm-load;
        a no-op when the cache is disabled (workers then rebuild from
        the shared COO entry or, failing that, their own sweep).
        """
        if self.cache is None:
            return
        self._executors()

    # ------------------------------------------------------------------ #
    # topology (repro info / serve healthz)

    def topology(self) -> dict:
        """Shard layout for ``repro info`` and serve ``/healthz``."""
        self._parent_coo()
        return {
            "mode": self._mode,
            "workers": self.workers,
            "transport": self.transport_name,
            "num_shards": len(self.shards),
            "threads_per_shard": self.ctx.threads,
            "shards": [
                {
                    "index": s.index,
                    "views": [s.v0, s.v1],
                    "rows": [s.r0, s.r1],
                    "nnz": s.nnz,
                }
                for s in self.shards
            ],
        }

    # ------------------------------------------------------------------ #
    # ProjectionOperator interface

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = faults.corrupt_array("operator.input.forward", np.asarray(x))
        guard_check(x, "x", where="operator.forward")
        vector = x.ndim == 1
        n = self.shape[1]
        if x.shape[0] != n:
            raise ValidationError(f"x must have {n} rows, got {x.shape}")
        res = self._apply("forward", x, vector)
        guard_check(res, "A x", where="operator.forward", kind="output")
        if out is None:
            return res
        out[:] = res
        return out

    def adjoint(self, y: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        y = faults.corrupt_array("operator.input.adjoint", np.asarray(y))
        guard_check(y, "y", where="operator.adjoint")
        vector = y.ndim == 1
        m = self.shape[0]
        if y.shape[0] != m:
            raise ValidationError(f"y must have {m} rows, got {y.shape}")
        res = self._apply("adjoint", y, vector)
        guard_check(res, "A^T y", where="operator.adjoint", kind="output")
        if out is None:
            return res
        out[:] = res
        return out

    # ------------------------------------------------------------------ #
    # execution

    def _apply(self, op: str, operand: np.ndarray, vector: bool) -> np.ndarray:
        from repro.obs import metrics as obs_metrics

        operand = np.ascontiguousarray(operand, dtype=self.dtype)
        if self._mode == "distributed":
            try:
                with self._dispatch_lock:
                    res = self._apply_distributed(op, operand, vector)
                obs_metrics.counter(
                    "dist.dispatch.distributed",
                    "sharded dispatches executed on the worker pool",
                ).inc()
                return res
            except _PoolBroken as exc:
                self._degrade(str(exc))
        obs_metrics.counter(
            "dist.dispatch.serial",
            "sharded dispatches executed on the in-process serial path",
        ).inc()
        return self._apply_serial(op, operand, vector)

    def _apply_serial(self, op: str, operand: np.ndarray, vector: bool):
        from repro.dist.transport import fixed_order_sum
        from repro.obs import perf

        m, n = self.shape
        k = 1 if vector else operand.shape[1]
        if op == "forward":
            y = np.empty((m, k), dtype=self.dtype)
            for spec in self.shards:
                t0 = time.perf_counter()
                res = self._executor(spec.index).forward(operand, vector)
                perf.record_shard("forward", time.perf_counter() - t0)
                y[spec.r0:spec.r1] = res.reshape(spec.num_rows, k)
            return y[:, 0] if vector else y
        partials = np.empty((len(self.shards), n, k), dtype=self.dtype)
        for spec in self.shards:
            t0 = time.perf_counter()
            res = self._executor(spec.index).adjoint(
                operand[spec.r0:spec.r1], vector
            )
            perf.record_shard("adjoint", time.perf_counter() - t0)
            partials[spec.index] = res.reshape(n, k)
        t0 = time.perf_counter()
        acc = fixed_order_sum(partials)
        perf.record_reduce("adjoint", time.perf_counter() - t0)
        return acc[:, 0] if vector else acc

    def _apply_distributed(self, op: str, operand: np.ndarray, vector: bool):
        from repro.dist.transport import fixed_order_sum
        from repro.obs import perf

        self._ensure_pool()
        m, n = self.shape
        k = 1 if vector else operand.shape[1]
        tp = self._transport
        operand2d = operand.reshape(operand.shape[0], k)
        cmd: dict = {"op": op, "vector": vector}
        if op == "forward":
            cmd["x"] = tp.scatter("x", operand2d)
            cmd["y"], out_view = tp.allgather("y", (m, k), self.dtype)
        else:
            cmd["y"] = tp.scatter("yin", operand2d)
            cmd["p"], out_view = tp.reduce_slots(
                "p", (n, k), self.dtype, len(self.shards)
            )
        try:
            shard_seconds = self._dispatch(cmd)
        except _PoolBroken:
            # Drop the shm view before the exception propagates: the
            # traceback pins this frame, and a live view would make the
            # transport's close() unable to release the segment.
            out_view = None  # noqa: F841
            raise
        for sec in shard_seconds:
            perf.record_shard(op, sec)
        if op == "forward":
            res = np.array(out_view, copy=True)
            return res[:, 0] if vector else res
        t0 = time.perf_counter()
        acc = fixed_order_sum(out_view)
        perf.record_reduce(op, time.perf_counter() - t0)
        return acc[:, 0] if vector else acc

    # ------------------------------------------------------------------ #
    # pool management

    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        from repro.dist.transport import get_transport
        from repro.dist.worker import spawn_worker

        self.ensure_cached()
        self._parent_coo()
        self._transport = get_transport(self.transport_name)
        owned = split_evenly(len(self.shards), self.workers)
        pool = []
        try:
            for w, (s0, s1) in enumerate(owned):
                pool.append(
                    spawn_worker(self._worker_init(list(range(s0, s1))))
                )
        except Exception as exc:
            for handle in pool:
                handle.kill()
            self._transport.close()
            self._transport = None
            raise _PoolBroken(f"worker spawn failed: {exc}") from exc
        self._pool = pool

    def _worker_init(self, owned: list[int]) -> dict:
        cache_root = None
        if self.cache is not None:
            cache_root = str(self.cache.root)
        return {
            "ctx": self.ctx,
            "shards": [
                (s.index, s.v0, s.v1, s.r0, s.r1, s.key) for s in self.shards
            ],
            "owned": owned,
            "cache_root": cache_root,
            "backend": config.runtime.backend,
            "faults": config.runtime.faults,
        }

    def _dispatch(self, cmd: dict) -> list[float]:
        """Send *cmd* to every worker; one respawn per worker, then give up.

        Raises :class:`_PoolBroken` when a worker fails twice — the
        caller degrades to the serial path, which recomputes everything
        (partial shm writes from the failed attempt are simply unused).
        """
        from repro.obs import metrics as obs_metrics

        shard_seconds: list[float] = []
        for i, handle in enumerate(self._pool):
            reply = handle.request(cmd, timeout=self.REPLY_TIMEOUT)
            if reply is None or not reply.get("ok", False):
                why = "died" if reply is None else reply.get("error", "error")
                if handle.respawned:
                    raise _PoolBroken(
                        f"worker {i} failed twice ({why}); degrading"
                    )
                obs_metrics.counter(
                    "dist.respawns", "shard workers respawned after a failure"
                ).inc()
                handle.kill()
                from repro.dist.worker import spawn_worker

                handle = spawn_worker(
                    self._worker_init(handle.owned), respawned=True
                )
                self._pool[i] = handle
                reply = handle.request(cmd, timeout=self.REPLY_TIMEOUT)
                if reply is None or not reply.get("ok", False):
                    raise _PoolBroken(f"worker {i} failed after respawn")
            shard_seconds.extend(reply.get("seconds", ()))
        return shard_seconds

    def _degrade(self, reason: str) -> None:
        from repro.obs import metrics as obs_metrics

        obs_metrics.counter(
            "dist.degraded",
            "sharded operators degraded permanently to serial execution",
        ).inc()
        warnings.warn(
            f"sharded operator degraded to in-process serial execution: "
            f"{reason} (results are unchanged — the reduction order is "
            f"fixed by the shard partition)",
            RuntimeWarning,
            stacklevel=3,
        )
        self._stop_pool()
        self._mode = "degraded"

    def _stop_pool(self) -> None:
        if self._pool is not None:
            for handle in self._pool:
                handle.stop()
            self._pool = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def close(self) -> None:
        """Stop worker processes and release shared-memory segments."""
        if not self._closed:
            self._stop_pool()
            self._closed = True

    def __enter__(self) -> "ShardedOperator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


class _PoolBroken(RuntimeError):
    """Internal: the worker pool cannot serve this dispatch."""
