"""Multiprocess sharded operator execution (``repro.dist``).

Scales the paper's view-range row partitioning (section IV-E) across
*process* boundaries: :class:`~repro.dist.sharding.ShardedOperator`
splits an operator into contiguous view-range shards — each its own
content-addressed cache entry — and executes forward/adjoint over a
persistent pool of spawned workers exchanging buffers through
:class:`~repro.dist.transport.Transport` (shared memory today).

Determinism contract: the *shard partition* (``REPRO_SHARDS``), not the
worker count, fixes the floating-point reduction order, so
``REPRO_SHARD_WORKERS`` ∈ {1, 2, 4, ...} all produce bitwise-identical
results — including the in-process serial fallback the resilience
layer degrades to after repeated worker deaths.

Enable via ``repro.api.operator(..., shard_workers=4)`` or the
``REPRO_SHARD_WORKERS`` environment knob; see ``docs/distributed.md``.
"""

from repro.dist.sharding import (
    ShardContext,
    ShardedOperator,
    ShardExecutor,
    ShardSpec,
    materialize_shard,
    plan_shards,
    resolve_shards,
    shard_geometry,
)
from repro.dist.transport import (
    TRANSPORTS,
    SharedMemoryTransport,
    Transport,
    fixed_order_sum,
    get_transport,
)

__all__ = [
    "ShardContext",
    "ShardedOperator",
    "ShardExecutor",
    "ShardSpec",
    "materialize_shard",
    "plan_shards",
    "resolve_shards",
    "shard_geometry",
    "Transport",
    "SharedMemoryTransport",
    "TRANSPORTS",
    "fixed_order_sum",
    "get_transport",
]
