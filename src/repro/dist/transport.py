"""Transports moving operands and results between shard workers.

A :class:`Transport` owns the buffers a :class:`~repro.dist.sharding.
ShardedOperator` shares with its worker processes.  Three collective
shapes cover the whole execution model:

* :meth:`~Transport.scatter` — publish one operand array (``x`` for the
  forward sweep, ``y`` for the adjoint) so every worker can read it;
* :meth:`~Transport.allgather` — allocate an output whose *disjoint*
  row slices the workers fill in place (the forward ``y``: each shard
  owns rows ``[r0, r1)``, so concatenation needs no reduction at all);
* :meth:`~Transport.reduce_slots` — allocate one partial-result slot
  per shard (the adjoint back-projections); :func:`fixed_order_sum`
  then folds the slots **in shard-index order**, which is what makes
  the floating-point reduction independent of the worker count.

Workers receive plain-dict descriptors (shm segment name, shape, dtype)
inside command messages and attach with :func:`attach_view`; they never
see the transport object itself.  The shared-memory implementation is
the only one in-tree today — register alternatives (MPI windows, TCP
rings) in :data:`TRANSPORTS`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "Transport",
    "SharedMemoryTransport",
    "TRANSPORTS",
    "get_transport",
    "attach_view",
    "fixed_order_sum",
]


class Transport(ABC):
    """Buffer collectives between a sharded operator and its workers."""

    #: Registry name (mirrors the :data:`TRANSPORTS` key).
    name: str = "abstract"

    @abstractmethod
    def scatter(self, key: str, arr: np.ndarray) -> dict:
        """Publish *arr* under logical buffer *key*; returns a descriptor
        (plain JSON-safe dict) workers use to attach a read-only view."""

    @abstractmethod
    def allgather(self, key: str, shape: tuple, dtype) -> tuple[dict, np.ndarray]:
        """Allocate an output buffer whose disjoint slices workers fill.

        Returns ``(descriptor, parent_view)``: once every worker has
        acknowledged its slice, *parent_view* **is** the gathered result.
        """

    @abstractmethod
    def reduce_slots(
        self, key: str, shape: tuple, dtype, slots: int
    ) -> tuple[dict, np.ndarray]:
        """Allocate *slots* partial-result buffers of *shape* each.

        Returns ``(descriptor, parent_view)`` where the parent view has
        shape ``(slots,) + shape``; fold it with :func:`fixed_order_sum`.
        """

    @abstractmethod
    def close(self) -> None:
        """Release every buffer this transport owns."""


def fixed_order_sum(slots: np.ndarray) -> np.ndarray:
    """Fold partial-result slots in slot-index order, one add at a time.

    The explicit left-to-right loop (not ``slots.sum(axis=0)``, whose
    pairwise association may change with shape) pins the floating-point
    association to the shard partition, so any worker count — including
    the in-process serial path — produces bitwise-identical results.
    """
    acc = np.array(slots[0], copy=True)
    for s in range(1, slots.shape[0]):
        acc += slots[s]
    return acc


def _as_view(shm: shared_memory.SharedMemory, shape: tuple, dtype) -> np.ndarray:
    n = int(np.prod(shape, dtype=np.int64)) if shape else 1
    return np.frombuffer(
        shm.buf, dtype=dtype, count=n
    ).reshape(shape)


class SharedMemoryTransport(Transport):
    """POSIX shared-memory transport (``multiprocessing.shared_memory``).

    Each logical buffer key maps to one segment, grown (never shrunk)
    by replacing the segment when a publish outgrows it — the new
    segment name travels in the next command's descriptor, so workers
    simply attach the name they are told.  All segments are created and
    unlinked by the parent; on Linux an unlinked segment stays valid for
    processes that still map it, exactly like an unlinked file.
    """

    name = "shm"

    def __init__(self) -> None:
        self._segs: dict[str, shared_memory.SharedMemory] = {}
        self._bytes_created = 0

    # ------------------------------------------------------------------ #

    def _segment(self, key: str, nbytes: int) -> shared_memory.SharedMemory:
        seg = self._segs.get(key)
        if seg is not None and seg.size >= nbytes:
            return seg
        if seg is not None:
            _release(seg)
        seg = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        self._segs[key] = seg
        self._bytes_created += seg.size
        from repro.obs import metrics as obs_metrics

        obs_metrics.counter(
            "dist.shm_bytes",
            "bytes of shared-memory segments created by shard transports",
        ).inc(seg.size)
        return seg

    def _descriptor(self, seg, shape: tuple, dtype) -> dict:
        return {
            "transport": self.name,
            "shm": seg.name,
            "shape": [int(s) for s in shape],
            "dtype": str(np.dtype(dtype)),
        }

    # ------------------------------------------------------------------ #

    def scatter(self, key: str, arr: np.ndarray) -> dict:
        arr = np.ascontiguousarray(arr)
        seg = self._segment(key, arr.nbytes)
        _as_view(seg, arr.shape, arr.dtype)[...] = arr
        return self._descriptor(seg, arr.shape, arr.dtype)

    def allgather(self, key: str, shape: tuple, dtype) -> tuple[dict, np.ndarray]:
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        seg = self._segment(key, nbytes)
        view = _as_view(seg, tuple(shape), dtype)
        return self._descriptor(seg, shape, dtype), view

    def reduce_slots(
        self, key: str, shape: tuple, dtype, slots: int
    ) -> tuple[dict, np.ndarray]:
        full = (int(slots),) + tuple(int(s) for s in shape)
        return self.allgather(key, full, dtype)

    def close(self) -> None:
        for seg in self._segs.values():
            _release(seg)
        self._segs.clear()


def _release(seg: shared_memory.SharedMemory) -> None:
    """Unlink then close one segment, tolerating lingering array views.

    Unlink first: it needs no mapping and must happen even when a still
    -alive ``frombuffer`` view makes ``close()`` raise ``BufferError``
    (the mapping is reclaimed at process exit regardless).
    """
    try:
        seg.unlink()
    except (OSError, FileNotFoundError):  # already reclaimed
        pass
    try:
        seg.close()
    except (BufferError, OSError):
        pass


def attach_view(descriptor: dict, cache: dict) -> np.ndarray:
    """Worker-side attach: descriptor -> ndarray over the shared segment.

    *cache* maps segment names to open ``SharedMemory`` handles so a
    worker attaches each segment once per generation.  Spawned workers
    inherit the parent's resource-tracker process, and registering the
    same name twice is a set no-op there — so no unregister dance is
    needed: the parent (the creator) remains the only unlinker.
    """
    name = descriptor["shm"]
    shm = cache.get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        cache[name] = shm
    return _as_view(shm, tuple(descriptor["shape"]), np.dtype(descriptor["dtype"]))


#: Registered transport factories, selected by ``REPRO_SHARD_TRANSPORT``.
TRANSPORTS: dict[str, type[Transport]] = {
    "shm": SharedMemoryTransport,
}


def get_transport(name: str | None = None) -> Transport:
    """Instantiate the transport registered under *name* (default: config)."""
    from repro import config

    name = (name or config.runtime.shard_transport).strip().lower()
    try:
        cls = TRANSPORTS[name]
    except KeyError:
        raise ValidationError(
            f"unknown shard transport {name!r}; options: {sorted(TRANSPORTS)}"
        ) from None
    return cls()
