"""Convenience top-level API.

Small helpers wiring geometry -> matrix -> formats, so a downstream user
(or an example script) gets from "image size" to "benchmark every format"
in three calls.
"""

from __future__ import annotations

import numpy as np

from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.errors import ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.projector_pixel import pixel_driven_matrix
from repro.geometry.projector_siddon import siddon_matrix
from repro.geometry.projector_strip import strip_area_matrix
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat, available_formats, get_format

_PROJECTORS = {
    "strip": strip_area_matrix,
    "pixel": pixel_driven_matrix,
    "siddon": siddon_matrix,
}


def build_ct_matrix(
    image_size: int,
    *,
    num_views: int | None = None,
    projector: str = "strip",
    dtype=np.float64,
    geom: ParallelBeamGeometry | None = None,
) -> tuple[COOMatrix, ParallelBeamGeometry]:
    """Build a parallel-beam CT system matrix.

    Returns the canonical :class:`COOMatrix` plus the geometry (needed by
    the CSCV formats).  ``projector`` is ``"strip"`` (default, the paper's
    nnz density), ``"pixel"`` (2 bins/view) or ``"siddon"`` (exact rays).
    """
    if projector not in _PROJECTORS:
        raise ValidationError(
            f"unknown projector {projector!r}; options: {sorted(_PROJECTORS)}"
        )
    if geom is None:
        geom = ParallelBeamGeometry.for_image(image_size, num_views)
    rows, cols, vals = _PROJECTORS[projector](geom, dtype=dtype)
    coo = COOMatrix.from_coo(geom.shape, rows, cols, vals, dtype=dtype)
    return coo, geom


def build_format(
    name: str,
    coo: COOMatrix,
    *,
    geom: ParallelBeamGeometry | None = None,
    params: CSCVParams | None = None,
    dtype=None,
    **format_kwargs,
) -> SpMVFormat:
    """Instantiate any registered format from a COO matrix.

    CSCV formats additionally need ``geom`` (and optionally ``params``).
    """
    cls = get_format(name)
    if issubclass(cls, (CSCVZMatrix, CSCVMMatrix)):
        if geom is None:
            raise ValidationError(f"format {name!r} requires geom=")
        return cls.from_ct(coo, geom, params, dtype=dtype, **format_kwargs)
    kwargs = dict(format_kwargs)
    if dtype is not None:
        kwargs["dtype"] = dtype
    return cls.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, **kwargs)


def spmv_all_formats(
    coo: COOMatrix,
    x: np.ndarray,
    *,
    geom: ParallelBeamGeometry | None = None,
    formats: list[str] | None = None,
    params: CSCVParams | None = None,
) -> dict[str, np.ndarray]:
    """Run ``y = A x`` through every requested format; returns name -> y.

    Useful for cross-validation: every result should agree to rounding.
    Formats needing a geometry are skipped when ``geom`` is None.
    """
    names = formats if formats is not None else available_formats()
    out: dict[str, np.ndarray] = {}
    for name in names:
        cls = get_format(name)
        needs_geom = issubclass(cls, (CSCVZMatrix, CSCVMMatrix))
        if needs_geom and geom is None:
            continue
        fmt = build_format(name, coo, geom=geom if needs_geom else None, params=params)
        out[name] = fmt.spmv(np.asarray(x, dtype=fmt.dtype))
    return out
