"""Top-level API: one call from geometry to a ready operator, one more
call from operator to a reconstructed image.

:func:`operator` is the library's front door — it resolves the geometry,
runs the projector sweep, converts to the requested sparse format and
wraps the result in a :class:`~repro.recon.linops.ProjectionOperator`,
consulting the persistent operator cache (:mod:`repro.core.cache`) at
every step so repeat constructions are near-instant memory-mapped loads.
:func:`reconstruct` is the matching solver front door: any registered
solver (:data:`repro.recon.registry.SOLVERS`) by name, parameters
validated against the solver's schema, and a structured
:class:`ReconstructionResult` instead of a bare array.  The older
helpers :func:`build_ct_matrix` / :func:`build_format` /
``sirt_reconstruct`` et al. remain as thin equivalents.

Error semantics at this boundary are uniform: problems with *your
arguments* (unknown projector, format or solver name, missing ``geom``,
unknown or out-of-range solver parameters) raise
:class:`~repro.errors.ValidationError`; problems *loading or validating
stored data* raise :class:`~repro.errors.FormatError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.errors import FormatError, ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.projector_pixel import pixel_driven_matrix
from repro.geometry.projector_siddon import siddon_matrix
from repro.geometry.projector_strip import strip_area_matrix
from repro.sparse.coo import COOMatrix
from repro.sparse.matrix_base import SpMVFormat, available_formats, get_format

_PROJECTORS = {
    "strip": strip_area_matrix,
    "pixel": pixel_driven_matrix,
    "siddon": siddon_matrix,
}


def _resolve_geom(
    image_size_or_geom, num_views: int | None = None
) -> ParallelBeamGeometry:
    """Accept an image size (int) or a ready geometry object."""
    if isinstance(image_size_or_geom, ParallelBeamGeometry):
        if num_views is not None:
            raise ValidationError(
                "num_views cannot be combined with an explicit geometry"
            )
        return image_size_or_geom
    if isinstance(image_size_or_geom, (int, np.integer)):
        return ParallelBeamGeometry.for_image(int(image_size_or_geom), num_views)
    raise ValidationError(
        "expected an image size (int) or a ParallelBeamGeometry, got "
        f"{type(image_size_or_geom).__name__}"
    )


def _resolve_projector(projector: str):
    try:
        return _PROJECTORS[projector]
    except KeyError:
        raise ValidationError(
            f"unknown projector {projector!r}; options: {sorted(_PROJECTORS)}"
        ) from None


def _resolve_format_class(name: str):
    try:
        return get_format(name)
    except FormatError as exc:  # registry lookup failure = bad user argument
        raise ValidationError(str(exc)) from None


def _project_coo(
    geom: ParallelBeamGeometry, projector: str, dtype, workers: int | None = None
) -> COOMatrix:
    """Run the projector sweep: geometry -> canonical COO matrix."""
    rows, cols, vals = _resolve_projector(projector)(
        geom, dtype=dtype, workers=workers
    )
    return COOMatrix.from_coo(geom.shape, rows, cols, vals, dtype=dtype)


def _cached_coo(
    geom: ParallelBeamGeometry, projector: str, dtype, cache,
    workers: int | None = None,
) -> COOMatrix:
    """COO matrix for (geom, projector, dtype), through the cache.

    The projector sweep itself is expensive enough to persist: every
    format built for the same geometry shares one cached sweep.  The
    sweep emits identical triplets for any ``workers`` (see
    :mod:`repro.geometry.sweep`), so the key never includes it.
    """
    from repro.core.cache import operator_key

    if cache is None:
        return _project_coo(geom, projector, dtype, workers)
    _resolve_projector(projector)  # validate before hashing
    key = operator_key(
        geom=geom, fmt="coo", projector=projector, dtype=dtype, kind="coo"
    )
    coo, _ = cache.get_or_build(
        key, COOMatrix, lambda: _project_coo(geom, projector, dtype, workers)
    )
    return coo


def _construct_format(
    name: str,
    coo: COOMatrix,
    *,
    geom: ParallelBeamGeometry | None = None,
    params: CSCVParams | None = None,
    dtype=None,
    **format_kwargs,
) -> SpMVFormat:
    """Shared format construction used by the facade and build_format."""
    cls = _resolve_format_class(name)
    if issubclass(cls, (CSCVZMatrix, CSCVMMatrix)):
        if geom is None:
            raise ValidationError(f"format {name!r} requires geom=")
        return cls.from_ct(coo, geom, params, dtype=dtype, **format_kwargs)
    kwargs = dict(format_kwargs)
    kwargs.pop("reference_mode", None)   # CSCV-only knobs
    kwargs.pop("build_workers", None)
    if dtype is not None:
        kwargs["dtype"] = dtype
    return cls.from_coo(coo.shape, coo.rows, coo.cols, coo.vals, **kwargs)


def operator_cache_key(
    image_size_or_geom,
    *,
    fmt: str = "cscv-z",
    projector: str = "strip",
    params: CSCVParams | None = None,
    dtype=np.float32,
    num_views: int | None = None,
    reference_mode: str = "ioblr",
) -> str:
    """The content-addressed cache key :func:`operator` would use.

    Pure function of the operator-defining inputs — no build, no cache
    I/O.  The serving layer (:mod:`repro.serve`) coalesces jobs whose
    keys match into one batched solve; scripts can use it to check
    whether two requests share a physical operator.
    """
    from repro.core.cache import operator_key

    geom = _resolve_geom(image_size_or_geom, num_views)
    cls = _resolve_format_class(fmt)
    _resolve_projector(projector)
    is_cscv = issubclass(cls, (CSCVZMatrix, CSCVMMatrix))
    if is_cscv and params is None:
        params = CSCVParams()
    return operator_key(
        geom=geom,
        fmt=fmt,
        projector=projector,
        dtype=np.dtype(dtype),
        params=params if is_cscv else None,
        reference_mode=reference_mode if is_cscv else "ioblr",
    )


def _sharded_operator(
    geom, *, fmt, projector, params, dtype, reference_mode,
    build_workers, cache, workers, shards,
):
    """Assemble the :class:`~repro.dist.sharding.ShardedOperator` the
    facade returns when sharding is requested (workers > 1 or an
    explicit ``shards=``)."""
    from repro import config
    from repro.dist.sharding import (
        ShardContext,
        ShardedOperator,
        plan_shards,
        resolve_shards,
    )
    from repro.obs import metrics as obs_metrics

    num_shards = resolve_shards(geom.num_views, shards, workers)
    ctx = ShardContext(
        geom=geom,
        fmt=fmt,
        projector=projector,
        dtype=str(dtype),
        params=params,
        reference_mode=reference_mode,
        threads=max(1, config.runtime.threads // num_shards),
        build_workers=build_workers,
    )
    specs = plan_shards(geom, num_shards)
    if cache is not None:
        for spec in specs:
            spec.key = ctx.shard_key(spec, num_shards)
    obs_metrics.counter(
        "api.operator.sharded", "operator() calls served as sharded operators"
    ).inc()
    op = ShardedOperator(ctx, specs, workers=workers, cache=cache)
    # Same eager semantics as the plain path: the facade returns with the
    # cache entries built/loaded (a no-op when caching is disabled —
    # workers then materialize their own shards from the shared COO).
    op.ensure_cached()
    return op


def operator(
    image_size_or_geom,
    *,
    fmt: str = "cscv-z",
    projector: str = "strip",
    params: CSCVParams | None = None,
    dtype=np.float32,
    num_views: int | None = None,
    cache: bool = True,
    cache_obj=None,
    threads: int | None = None,
    reference_mode: str = "ioblr",
    build_workers: int | None = None,
    shard_workers: int | None = None,
    shards: int | None = None,
):
    """Build (or load from cache) a ready CT projection operator.

    The single choke point from "I want to reconstruct" to a forward/
    adjoint operator pair::

        op = repro.api.operator(256)           # cscv-z, strip, float32
        sino = op.forward(image)
        back = op.adjoint(sino)

    Parameters
    ----------
    image_size_or_geom : int or ParallelBeamGeometry
        Image edge length (geometry defaults via
        :meth:`ParallelBeamGeometry.for_image`) or a full geometry.
    fmt : str
        Any registered format name (``repro.available_formats()``).
    projector : str
        ``"strip"`` (paper default), ``"pixel"`` or ``"siddon"``.
    params : CSCVParams, optional
        CSCV parameter triple; ignored by non-CSCV formats.
    dtype : numpy dtype
        float32 (default) or float64.
    num_views : int, optional
        View count when *image_size_or_geom* is an int.
    cache : bool
        Consult/populate the persistent operator cache (default on; also
        gated globally by ``REPRO_CACHE``).
    cache_obj : OperatorCache, optional
        Explicit cache instance (tests, custom roots); defaults to the
        process-configured cache.
    threads : int, optional
        Thread count for formats with threaded drivers.
    reference_mode : str
        CSCV reference-curve ablation (``"ioblr"`` / ``"btb"``).
    build_workers : int, optional
        Worker threads for the cold build (projector sweep + CSCV
        packing); defaults to ``REPRO_BUILD_WORKERS``.  The built
        operator — and its cache entry — is bitwise-identical for any
        value, so this is purely a wall-clock knob.
    shard_workers : int, optional
        Worker *processes* for sharded execution (defaults to
        ``REPRO_SHARD_WORKERS``, i.e. 1).  Any value > 1 returns a
        :class:`~repro.dist.sharding.ShardedOperator` whose results are
        bitwise-identical for every worker count at a given shard
        count — like ``build_workers``, purely a wall-clock knob.
    shards : int, optional
        View-range shard count for sharded execution; passing it
        explicitly forces a sharded operator even at one worker
        (useful to pin the reduction order).  Defaults to
        ``REPRO_SHARDS`` (auto: ``max(4, shard_workers)``).

    Returns
    -------
    ProjectionOperator
        Wrapping the requested format; ``op.fmt`` is the format
        instance.  A :class:`~repro.dist.sharding.ShardedOperator`
        (still a ``ProjectionOperator``) when sharding is requested.
    """
    from repro.core.cache import default_cache
    from repro.obs import metrics as obs_metrics
    from repro.recon.linops import ProjectionOperator

    geom = _resolve_geom(image_size_or_geom, num_views)
    cls = _resolve_format_class(fmt)
    _resolve_projector(projector)
    dtype = np.dtype(dtype)
    is_cscv = issubclass(cls, (CSCVZMatrix, CSCVMMatrix))
    if is_cscv and params is None:
        params = CSCVParams()

    store = None
    if cache:
        store = cache_obj if cache_obj is not None else default_cache()
        if not store.enabled:
            store = None

    from repro import config

    workers = (
        shard_workers if shard_workers is not None
        else config.runtime.shard_workers
    )
    if workers > 1 or shards is not None:
        return _sharded_operator(
            geom, fmt=fmt, projector=projector,
            params=params if is_cscv else None, dtype=dtype,
            reference_mode=reference_mode if is_cscv else "ioblr",
            build_workers=build_workers, cache=store,
            workers=workers, shards=shards,
        )

    def build() -> SpMVFormat:
        coo = _cached_coo(geom, projector, dtype, store, build_workers)
        kwargs = (
            {"reference_mode": reference_mode, "build_workers": build_workers}
            if is_cscv else {}
        )
        if threads is not None and is_cscv:
            kwargs["threads"] = threads
        return _construct_format(
            fmt, coo, geom=geom if is_cscv else None, params=params,
            dtype=dtype, **kwargs,
        )

    if store is None:
        return ProjectionOperator(build())

    key = operator_cache_key(
        geom, fmt=fmt, projector=projector, params=params, dtype=dtype,
        reference_mode=reference_mode,
    )
    try:
        fmt_obj, cached = store.get_or_build(key, cls, build, threads=threads)
    except OSError as exc:
        # cache infrastructure broken beyond the cache's own degradation
        # (root unreadable, lock dir unwritable): build uncached
        import warnings

        obs_metrics.counter(
            "api.operator.cache_degraded",
            "operator() calls that bypassed a broken cache",
        ).inc()
        warnings.warn(
            f"operator cache unavailable ({exc}); building uncached",
            RuntimeWarning,
            stacklevel=2,
        )
        return ProjectionOperator(build())
    obs_metrics.counter(
        "api.operator." + ("cached" if cached else "built"),
        "operator() facade results served from cache vs built",
    ).inc()
    return ProjectionOperator(fmt_obj)


def build_ct_matrix(
    image_size: int,
    *,
    num_views: int | None = None,
    projector: str = "strip",
    dtype=np.float64,
    geom: ParallelBeamGeometry | None = None,
    cache: bool = False,
    build_workers: int | None = None,
) -> tuple[COOMatrix, ParallelBeamGeometry]:
    """Build a parallel-beam CT system matrix (thin facade wrapper).

    Returns the canonical :class:`COOMatrix` plus the geometry (needed by
    the CSCV formats).  ``projector`` is ``"strip"`` (default, the paper's
    nnz density), ``"pixel"`` (2 bins/view) or ``"siddon"`` (exact rays).
    With ``cache=True`` the projector sweep goes through the persistent
    operator cache (:func:`operator` always does).
    """
    geom = geom if geom is not None else _resolve_geom(image_size, num_views)
    dtype = np.dtype(dtype)
    if cache:
        from repro.core.cache import default_cache

        store = default_cache()
        coo = _cached_coo(
            geom, projector, dtype, store if store.enabled else None,
            build_workers,
        )
    else:
        coo = _project_coo(geom, projector, dtype, build_workers)
    return coo, geom


def build_format(
    name: str,
    coo: COOMatrix,
    *,
    geom: ParallelBeamGeometry | None = None,
    params: CSCVParams | None = None,
    dtype=None,
    **format_kwargs,
) -> SpMVFormat:
    """Instantiate any registered format from a COO matrix (thin wrapper).

    CSCV formats additionally need ``geom`` (and optionally ``params``).
    For the cached end-to-end path use :func:`operator` instead.
    """
    return _construct_format(
        name, coo, geom=geom, params=params, dtype=dtype, **format_kwargs
    )


@dataclass(frozen=True)
class ReconstructionResult:
    """Structured result of :func:`reconstruct`.

    Attributes
    ----------
    image : numpy.ndarray
        The reconstructed image vector (n,) — or stack (n, k) for a
        sinogram stack.
    history : tuple of IterationEvent
        One :class:`~repro.recon.events.IterationEvent` per completed
        iteration, iterate arrays stripped (``x is None``) so results
        stay light; empty for analytic solvers (FBP).
    iterations : int
        Iterations actually run (completed sweeps; watchdog-discarded
        sweeps do not count).  For a resumed run this is the *total*
        including the pre-checkpoint iterations; ``history`` covers only
        the post-resume part.
    stop_reason : str
        ``"max_iterations"`` (budget exhausted), ``"converged"``
        (tolerance or breakdown early-exit), ``"restarted"`` (watchdog
        interventions consumed part of the budget) or ``"analytic"``
        (non-iterative solver).
    wall_seconds : float
        End-to-end solver wall time.
    solver : str
        Registry name of the solver that ran.
    params : dict
        The validated parameters the run used, schema defaults applied —
        the exact parameterisation, reproducible by passing it back.
    """

    image: np.ndarray
    history: tuple = ()
    iterations: int = 0
    stop_reason: str = "max_iterations"
    wall_seconds: float = 0.0
    solver: str = ""
    params: dict = field(default_factory=dict)

    @property
    def residual_history(self) -> np.ndarray:
        """Driving residual norm per iteration (see ``residual_meaning``)."""
        return np.array([e.norm for e in self.history], dtype=np.float64)

    @property
    def residual_meaning(self) -> str:
        """What the driving norm measures (``"residual"`` for SIRT/ART/
        OS-SART, ``"normal_residual"`` for CGLS)."""
        return self.history[-1].meaning if self.history else "residual"


def reconstruct(
    op,
    sinogram: np.ndarray,
    *,
    solver: str = "sirt",
    geom=None,
    x0: np.ndarray | None = None,
    callback=None,
    watchdog=None,
    resume_from=None,
    **params,
) -> ReconstructionResult:
    """Run any registered solver on *op* — the unified reconstruction API.

    One facade over the four iterative solvers plus FBP::

        op = repro.operator(256)
        res = repro.reconstruct(op, sino, solver="cgls", iterations=25)
        res.image, res.residual_history, res.stop_reason

    Parameters
    ----------
    op : ProjectionOperator
        Forward/adjoint pair from :func:`operator` (any format;
        OS-SART extracts a CSR view via ``op.to_csr()``).
    sinogram : array
        Measured data: (m,) for one slice, (m, k) for a stack (the
        column-separable solvers run the whole stack in one batched
        SpMM pass).
    solver : str
        A :data:`repro.recon.registry.SOLVERS` name — ``"sirt"``,
        ``"cgls"``, ``"art"``, ``"os-sart"`` or ``"fbp"``.
    geom : ParallelBeamGeometry, optional
        Required by solvers with the ``needs_geom`` capability
        (OS-SART's view subsets, FBP's ramp filter).
    x0, callback, watchdog
        Passed through to iterative solvers; ``callback`` may be the
        legacy 3-argument form or an
        :class:`~repro.recon.events.IterationEvent` consumer.
    resume_from : CheckpointState, optional
        Continue an interrupted run from a
        :class:`~repro.recon.checkpoint.CheckpointState` (solvers with
        the ``resume`` capability).  The checkpoint must come from the
        same solver under the same validated parameterisation — the
        stored ``params_hash`` is checked and a mismatch raises
        :class:`~repro.errors.ValidationError` rather than resuming a
        silently different run.  The result is bitwise-identical to the
        uninterrupted run; ``iterations`` counts the pre-checkpoint
        iterations too.
    **params
        Solver parameters, validated against the solver's schema.
        Unknown or out-of-range names raise
        :class:`~repro.errors.ValidationError` messages naming the
        solver and its accepted parameters — nothing is silently
        ignored.

    Returns
    -------
    ReconstructionResult
    """
    from repro.recon.events import as_event_callback
    from repro.recon.registry import get_solver
    from repro.resilience.watchdog import resolve_watchdog

    spec = get_solver(solver)
    validated = spec.validate_params(params, apply_defaults=True)
    iterative = spec.supports("iterative")
    if not iterative:
        for name, value in (("x0", x0), ("callback", callback),
                            ("watchdog", watchdog)):
            if value is not None and value is not False:
                raise ValidationError(
                    f"solver {spec.name!r} is analytic; {name}= does not apply"
                )
    if spec.supports("needs_geom") and geom is None:
        raise ValidationError(
            f"solver {spec.name!r} requires geom= "
            f"(capability: needs_geom)"
        )

    start = 0
    if resume_from is not None:
        from repro.recon.checkpoint import solver_params_hash

        if not spec.supports("resume"):
            raise ValidationError(
                f"solver {spec.name!r} does not support resume_from "
                f"(capability: resume)"
            )
        ckpt_solver = resume_from.solver.replace("_", "-")
        if ckpt_solver != spec.name:
            raise ValidationError(
                f"resume_from is a {ckpt_solver!r} checkpoint; this run "
                f"is {spec.name!r}"
            )
        expected_hash = solver_params_hash(spec.name, validated)
        if resume_from.params_hash and resume_from.params_hash != expected_hash:
            raise ValidationError(
                f"resume_from was checkpointed under a different "
                f"{spec.name!r} parameterisation (params hash "
                f"{resume_from.params_hash} != {expected_hash}); "
                "resuming would not continue the same run"
            )
        start = resume_from.k + 1

    history: list = []
    user_cb = as_event_callback(callback)

    def _recorder(event) -> None:
        history.append(event.stripped())
        if user_cb is not None:
            user_cb(event)

    _recorder.accepts_events = True

    wd = resolve_watchdog(
        watchdog, solver=spec.name, relax=validated.get("relax")
    ) if iterative else None

    t0 = time.perf_counter()
    image = spec.runner(
        op, sinogram, geom=geom, x0=x0,
        callback=_recorder if iterative else None,
        watchdog=wd, resume_from=resume_from, **validated,
    )
    wall = time.perf_counter() - t0

    if not iterative:
        stop = "analytic"
    elif start + len(history) >= validated.get("iterations", 0):
        stop = "max_iterations"
    elif wd is not None and wd.restarts > 0:
        stop = "restarted"
    else:
        stop = "converged"
    return ReconstructionResult(
        image=image,
        history=tuple(history),
        iterations=start + len(history),
        stop_reason=stop,
        wall_seconds=wall,
        solver=spec.name,
        params=validated,
    )


@dataclass(frozen=True)
class SkippedFormat:
    """Marker returned by :func:`spmv_all_formats` for unrunnable formats.

    Falsy on purpose, so ``if results[name]`` distinguishes results from
    skips without an isinstance check.
    """

    reason: str

    def __bool__(self) -> bool:
        return False


def spmv_all_formats(
    coo: COOMatrix,
    x: np.ndarray,
    *,
    geom: ParallelBeamGeometry | None = None,
    formats: list[str] | None = None,
    params: CSCVParams | None = None,
) -> dict[str, np.ndarray | SkippedFormat]:
    """Run ``y = A x`` through every requested format; returns name -> y.

    Useful for cross-validation: every result should agree to rounding.
    Formats that cannot run (the CSCVs need a geometry) are never dropped
    silently — their entry holds a :class:`SkippedFormat` naming why.
    """
    names = formats if formats is not None else available_formats()
    out: dict[str, np.ndarray | SkippedFormat] = {}
    for name in names:
        cls = _resolve_format_class(name)
        needs_geom = issubclass(cls, (CSCVZMatrix, CSCVMMatrix))
        if needs_geom and geom is None:
            out[name] = SkippedFormat(
                reason=f"format {name!r} requires geom= (CSCV follows the "
                "integral-operator geometry); pass geom to include it"
            )
            continue
        fmt = _construct_format(
            name, coo, geom=geom if needs_geom else None, params=params
        )
        out[name] = fmt.spmv(np.asarray(x, dtype=fmt.dtype))
    return out
