"""repro — reproduction of the CSCV vectorized SpMV system (IPDPS 2022).

Public API highlights
---------------------
- :class:`repro.geometry.ParallelBeamGeometry` and the projectors build CT
  system matrices from integral operators.
- :mod:`repro.sparse` provides CSR/CSC/ELL/CSR5/SPC5/ESB/CVR/VHCC/Merge
  and scipy-backed vendor baselines, all behind one
  :class:`~repro.sparse.SpMVFormat` interface.
- :mod:`repro.core` implements the paper's contribution: the CSCV format
  (CSCV-Z / CSCV-M), IOBLR local reordering, VxG packing, the
  multi-threaded SpMV driver and the parameter autotuner.
- :mod:`repro.recon` applies it all to iterative CT reconstruction
  (ART, SIRT, CGLS, ICD) with FBP and image metrics.
- :mod:`repro.perfmodel` models GFLOP/s on the paper's SKL/Zen2 machines.
- :mod:`repro.bench` regenerates every table and figure of the paper.

Quick start
-----------
>>> import numpy as np
>>> import repro
>>> op = repro.operator(64)                     # 64x64 parallel-beam CT
>>> sino = op.forward(np.ones(op.shape[1], dtype=op.dtype))
>>> back = op.adjoint(sino)                     # x = A^T y

``operator()`` consults the persistent operator cache: the first call
builds and stores the CSCV arrays, every later call (any process) loads
them back memory-mapped in milliseconds.
"""

from repro._version import __version__
from repro.api import (
    ReconstructionResult,
    SkippedFormat,
    build_ct_matrix,
    build_format,
    operator,
    operator_cache_key,
    reconstruct,
    spmv_all_formats,
)
from repro.core import (
    CSCVMMatrix,
    CSCVParams,
    CSCVZMatrix,
    OperatorCache,
    autotune_parameters,
    default_cache,
)
from repro.geometry import ParallelBeamGeometry, shepp_logan
from repro.geometry.fan_beam import FanBeamGeometry
from repro.sparse import (
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    SpMVFormat,
    available_formats,
    get_format,
)

__all__ = [
    "__version__",
    "operator",
    "operator_cache_key",
    "reconstruct",
    "ReconstructionResult",
    "build_ct_matrix",
    "build_format",
    "spmv_all_formats",
    "SkippedFormat",
    "OperatorCache",
    "default_cache",
    "CSCVParams",
    "CSCVZMatrix",
    "CSCVMMatrix",
    "autotune_parameters",
    "ParallelBeamGeometry",
    "FanBeamGeometry",
    "shepp_logan",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "SpMVFormat",
    "available_formats",
    "get_format",
]
