"""repro — reproduction of the CSCV vectorized SpMV system (IPDPS 2022).

Public API highlights
---------------------
- :class:`repro.geometry.ParallelBeamGeometry` and the projectors build CT
  system matrices from integral operators.
- :mod:`repro.sparse` provides CSR/CSC/ELL/CSR5/SPC5/ESB/CVR/VHCC/Merge
  and scipy-backed vendor baselines, all behind one
  :class:`~repro.sparse.SpMVFormat` interface.
- :mod:`repro.core` implements the paper's contribution: the CSCV format
  (CSCV-Z / CSCV-M), IOBLR local reordering, VxG packing, the
  multi-threaded SpMV driver and the parameter autotuner.
- :mod:`repro.recon` applies it all to iterative CT reconstruction
  (ART, SIRT, CGLS, ICD) with FBP and image metrics.
- :mod:`repro.perfmodel` models GFLOP/s on the paper's SKL/Zen2 machines.
- :mod:`repro.bench` regenerates every table and figure of the paper.

Quick start
-----------
>>> import numpy as np
>>> from repro import build_ct_matrix, CSCVZMatrix
>>> coo, geom = build_ct_matrix(64)             # 64x64 parallel-beam CT
>>> a = CSCVZMatrix.from_ct(coo, geom)          # convert to CSCV
>>> y = a @ np.ones(coo.shape[1])               # vectorized SpMV
"""

from repro._version import __version__
from repro.api import build_ct_matrix, build_format, spmv_all_formats
from repro.core import (
    CSCVMMatrix,
    CSCVParams,
    CSCVZMatrix,
    autotune_parameters,
)
from repro.geometry import ParallelBeamGeometry, shepp_logan
from repro.geometry.fan_beam import FanBeamGeometry
from repro.sparse import (
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    SpMVFormat,
    available_formats,
    get_format,
)

__all__ = [
    "__version__",
    "build_ct_matrix",
    "build_format",
    "spmv_all_formats",
    "CSCVParams",
    "CSCVZMatrix",
    "CSCVMMatrix",
    "autotune_parameters",
    "ParallelBeamGeometry",
    "FanBeamGeometry",
    "shepp_logan",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "SpMVFormat",
    "available_formats",
    "get_format",
]
