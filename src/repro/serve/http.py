"""Stdlib HTTP JSON front-end for the reconstruction service.

Endpoints (all JSON unless noted):

* ``POST /v1/reconstruct`` — submit a job; ``202`` with the queued job
  snapshot, ``400`` on validation problems (body names the solver and
  its accepted parameters), ``429`` with a structured body when the
  tenant's queue is full.
* ``GET /v1/jobs/<id>`` — full job snapshot; when done it carries the
  image as lossless base64 (``{"b64":..., "dtype":..., "shape":...}``).
  Append ``?image=0`` to skip the payload.
* ``GET /v1/jobs/<id>/progress`` — the streamed residual history
  recorded so far from the solver's IterationEvent callbacks.
* ``GET /metrics`` — the whole metrics registry in Prometheus text
  (``serve.*`` series included), same exporter as
  :mod:`repro.obs.runtime`.
* ``GET /healthz`` — **liveness**: 200 whenever the process can answer,
  with queue/recovery stats.  A draining or recovering service is alive.
* ``GET /readyz`` — **readiness**: 200 only when the service is
  admitting jobs; 503 while the journal replay is still running or a
  drain is in progress.  Load balancers and ``repro bench serve`` gate
  on this, not on ``/healthz``.

A ``POST`` during drain/recovery gets 503 with a ``Retry-After`` header
and a structured retryable body.

Built on ``ThreadingHTTPServer`` only: handler threads call the
thread-safe :class:`~repro.serve.service.ServiceRunner` bridge, so no
async code leaks into the HTTP layer.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError, ValidationError
from repro.serve.jobs import QueueFullError, ServiceUnavailableError
from repro.serve.service import ServiceRunner

__all__ = ["ServeHTTPServer", "serve_http"]

_MAX_BODY = 256 * 1024 * 1024  # hard cap; a 4096² float64 sinogram fits


class _ServeHandler(BaseHTTPRequestHandler):
    """Routes /v1/* to the service runner; silent request logs."""

    server: "ServeHTTPServer"

    # ---------------------------------------------------------------- #
    # helpers

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: bytes, ctype: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValidationError("request body is required")
        if length > _MAX_BODY:
            raise ValidationError(f"request body exceeds {_MAX_BODY} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}") from exc

    # ---------------------------------------------------------------- #
    # routes

    def do_POST(self):  # noqa: N802 (stdlib naming)
        path = self.path.split("?")[0]
        if path != "/v1/reconstruct":
            self._send_json(404, {"error": "not_found", "path": path})
            return
        try:
            payload = self._read_json()
            job = self.server.runner.submit(payload)
        except ServiceUnavailableError as exc:
            body = json.dumps(exc.payload).encode("utf-8")
            self.send_response(503)
            self.send_header("Content-Type", "application/json; charset=utf-8")
            self.send_header("Retry-After", f"{exc.retry_after_s:g}")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except QueueFullError as exc:
            self._send_json(429, exc.payload)
        except ValidationError as exc:
            self._send_json(400, {"error": "validation", "message": str(exc)})
        except ReproError as exc:
            self._send_json(500, {"error": type(exc).__name__, "message": str(exc)})
        else:
            self._send_json(202, job.snapshot(include_image=False))

    def do_GET(self):  # noqa: N802 (stdlib naming)
        path, _, query = self.path.partition("?")
        if path == "/metrics":
            from repro.obs.export import prometheus_text
            from repro.obs.metrics import registry

            self._send_text(
                200, prometheus_text(registry).encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if path == "/healthz":
            self._send_json(200, {"status": "ok", **self.server.runner.stats()})
            return
        if path == "/readyz":
            if self.server.runner.ready:
                self._send_json(200, {"ready": True})
            else:
                stats = self.server.runner.stats()
                self._send_json(503, {
                    "ready": False,
                    "draining": stats.get("draining", False),
                    "recovery": stats.get("recovery", {}),
                })
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self.server.runner.get_job(job_id)
            if job is None:
                self._send_json(404, {"error": "unknown_job", "job_id": job_id})
            elif tail == "progress":
                self._send_json(200, job.progress_snapshot())
            elif tail == "":
                include_image = "image=0" not in query.split("&")
                self._send_json(200, job.snapshot(include_image=include_image))
            else:
                self._send_json(404, {"error": "not_found", "path": path})
            return
        self._send_json(404, {"error": "not_found", "path": path})

    def log_message(self, *args):  # pragma: no cover - silence stderr
        pass


class ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service runner for handlers."""

    daemon_threads = True

    def __init__(self, address, runner: ServiceRunner):
        super().__init__(address, _ServeHandler)
        self.runner = runner
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> "ServeHTTPServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def serve_http(
    runner: ServiceRunner, *, host: str = "127.0.0.1", port: int = 0
) -> ServeHTTPServer:
    """Bind the HTTP API to *runner* and serve from a daemon thread.

    Returns the server; read ``server.port`` for the bound port (port 0
    picks an ephemeral one) and call ``server.stop()`` to shut down.
    """
    return ServeHTTPServer((host, port), runner).start_background()
