"""Job model for the reconstruction service.

A **job** is one tenant's request to reconstruct one sinogram: geometry,
solver name + parameters, the measured data and an optional deadline.
Parsing happens here — against the solver registry
(:mod:`repro.recon.registry`) for parameters and against the geometry /
format / projector resolvers of :mod:`repro.api` for the operator — so a
request that reaches the scheduler is already fully validated and
carries its **batch key**: the operator-cache content hash joined with
the solver name and the canonicalised (defaults-applied) parameter set.
Two jobs with equal batch keys solve ``A X = [y1 y2]`` in one SpMM-backed
batch whose columns are bitwise-identical to solo runs.
"""

from __future__ import annotations

import base64
import binascii
import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError, ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.recon.registry import SolverSpec, get_solver

__all__ = [
    "Job",
    "JobRequest",
    "QueueFullError",
    "ServiceUnavailableError",
    "parse_job",
    "request_payload",
    "encode_array",
    "decode_sinogram",
    "advance_job_ids",
]

# Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

_ACCEPTED_KEYS = frozenset({
    "tenant", "solver", "params", "geometry", "sinogram",
    "fmt", "projector", "dtype", "deadline_s", "idempotency_key",
})
_ACCEPTED_GEOM_KEYS = frozenset({"size", "num_views"})
_DTYPES = ("float32", "float64")

_job_id_lock = threading.Lock()
_last_job_id = 0


def _next_job_id() -> int:
    global _last_job_id
    with _job_id_lock:
        _last_job_id += 1
        return _last_job_id


def advance_job_ids(past: int) -> None:
    """Ensure future job ids are numbered beyond *past*.

    Restart recovery calls this with the highest id found in the journal
    so re-enqueued jobs keep their identity and fresh submissions never
    collide with them.  Only ever moves forward.
    """
    global _last_job_id
    with _job_id_lock:
        if past > _last_job_id:
            _last_job_id = past


class QueueFullError(ReproError):
    """Admission control rejected a job (tenant queue at max depth).

    Maps to HTTP 429; :attr:`payload` is the structured error body.
    """

    def __init__(self, tenant: str, depth: int, max_depth: int):
        super().__init__(
            f"queue full for tenant {tenant!r}: "
            f"{depth} jobs queued (max {max_depth}); retry later"
        )
        self.payload = {
            "error": "queue_full",
            "tenant": tenant,
            "queued": depth,
            "max_queue_depth": max_depth,
            "retryable": True,
        }


class ServiceUnavailableError(ReproError):
    """The service is not admitting jobs (draining for shutdown, or still
    replaying its journal).  Maps to HTTP 503 with ``Retry-After``.
    """

    def __init__(self, reason: str = "draining", retry_after_s: float = 5.0):
        super().__init__(
            f"service unavailable ({reason}); retry in {retry_after_s:g}s"
        )
        self.retry_after_s = retry_after_s
        self.payload = {
            "error": "unavailable",
            "reason": reason,
            "retry_after_s": retry_after_s,
            "retryable": True,
        }


def encode_array(arr: np.ndarray) -> dict:
    """Lossless JSON encoding of an array: base64 raw bytes + dtype + shape.

    Base64 of the native little-endian bytes keeps the round trip exact —
    the service's bitwise-identity guarantee survives the wire.
    """
    a = np.ascontiguousarray(arr)
    if a.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
        a = a.astype(a.dtype.newbyteorder("<"))
    return {
        "b64": base64.b64encode(a.tobytes()).decode("ascii"),
        "dtype": a.dtype.name,
        "shape": list(a.shape),
    }


def decode_sinogram(value, m: int, dtype: np.dtype) -> np.ndarray:
    """Parse the ``sinogram`` field: a JSON list or an encode_array dict."""
    if isinstance(value, dict):
        b64 = value.get("b64")
        if not isinstance(b64, str):
            raise ValidationError("sinogram object must carry a 'b64' string")
        src_dtype = value.get("dtype", dtype.name)
        if src_dtype not in _DTYPES:
            raise ValidationError(
                f"sinogram dtype must be one of {list(_DTYPES)}, got {src_dtype!r}"
            )
        try:
            raw = base64.b64decode(b64, validate=True)
        except (binascii.Error, ValueError) as exc:
            raise ValidationError(f"sinogram b64 payload is invalid: {exc}") from exc
        flat = np.frombuffer(raw, dtype=np.dtype(src_dtype))
    elif isinstance(value, (list, tuple)):
        try:
            flat = np.asarray(value, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"sinogram list must be numeric: {exc}") from exc
        if flat.ndim != 1:
            raise ValidationError("sinogram list must be flat (one slice per job)")
    else:
        raise ValidationError(
            "sinogram must be a flat JSON list of numbers or a "
            "{'b64': ..., 'dtype': ...} object"
        )
    if flat.size != m:
        raise ValidationError(
            f"sinogram has {flat.size} samples but the geometry expects "
            f"{m} (num_views * num_bins)"
        )
    sino = flat.astype(dtype, copy=False)
    if not np.all(np.isfinite(sino)):
        raise ValidationError("sinogram contains non-finite values")
    return np.ascontiguousarray(sino)


@dataclass
class JobRequest:
    """A fully validated reconstruction request (see :func:`parse_job`)."""

    tenant: str
    solver: str
    params: dict                  # validated, defaults applied
    geom: ParallelBeamGeometry
    fmt: str
    projector: str
    dtype: np.dtype
    sinogram: np.ndarray          # (m,) contiguous, finite, dtype-matched
    deadline_s: float | None
    operator_key: str             # PR-3 content-addressed cache key
    batch_key: str                # operator_key + solver + canonical params
    coalescible: bool             # may share a batch with key-equal jobs
    no_batch_reason: str | None   # why not, when coalescible is False
    idempotency_key: str | None = None   # client-chosen submit dedup key
    #: CheckpointState a recovered job resumes from (forces a solo run:
    #: resuming mid-recurrence cannot join a fresh batch bitwise).
    resume_from: object = None


@dataclass
class Job:
    """One submitted job: request + mutable lifecycle state.

    Mutated by the scheduler / worker threads; HTTP handlers only read
    (via :meth:`snapshot`).  ``done`` is a ``threading.Event`` so
    synchronous callers can block on completion without polling.
    """

    id: str
    request: JobRequest
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    deadline_at: float | None = None          # time.monotonic() basis
    batch_id: int | None = None
    batch_width: int = 0
    coalesced: bool = False                   # rode a batch with width > 1
    progress: list = field(default_factory=list)
    result: np.ndarray | None = None
    iterations: int = 0
    stop_reason: str | None = None
    error: dict | None = None
    queue_wait_s: float | None = None
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline_at is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline_at

    def finish(self, state: str, *, error: dict | None = None) -> None:
        """Move to a terminal state exactly once and wake waiters."""
        if self.state in TERMINAL_STATES:
            return
        self.state = state
        self.error = error
        self.finished_at = time.time()
        self.done.set()

    def snapshot(self, *, include_image: bool = True) -> dict:
        """JSON-safe view of the job for the HTTP API."""
        req = self.request
        out = {
            "job_id": self.id,
            "state": self.state,
            "tenant": req.tenant,
            "solver": req.solver,
            "params": dict(req.params),
            "geometry": (
                {"size": req.geom.image_size, "num_views": req.geom.num_views}
                if req.geom is not None else None  # unrecoverable tombstones
            ),
            "fmt": req.fmt,
            "projector": req.projector,
            "operator_key": req.operator_key,
            "batch_key": req.batch_key,
            "coalescible": req.coalescible,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "batch_width": self.batch_width,
            "coalesced": self.coalesced,
            "iterations": self.iterations,
            "stop_reason": self.stop_reason,
            "queue_wait_s": self.queue_wait_s,
        }
        if self.error is not None:
            out["error"] = dict(self.error)
        if include_image and self.result is not None:
            out["image"] = encode_array(self.result)
        return out

    def progress_snapshot(self) -> dict:
        """The residual stream recorded so far (list.copy is GIL-atomic)."""
        events = list(self.progress)
        return {
            "job_id": self.id,
            "state": self.state,
            "solver": self.request.solver,
            "events": events,
            "count": len(events),
        }


def _canonical_params(spec: SolverSpec, validated: dict) -> str:
    """Deterministic text form of a defaults-applied parameter set."""
    return json.dumps(validated, sort_keys=True, separators=(",", ":"))


def parse_job(payload, *, default_deadline_s: float | None = None) -> JobRequest:
    """Validate a JSON job payload into a :class:`JobRequest`.

    Raises :class:`~repro.errors.ValidationError` naming the offending
    field (and, for solver parameters, the solver and its accepted
    parameters) on any problem — unknown top-level keys included, so
    typos fail loudly instead of silently running with defaults.
    """
    if not isinstance(payload, dict):
        raise ValidationError("job payload must be a JSON object")
    unknown = set(payload) - _ACCEPTED_KEYS
    if unknown:
        raise ValidationError(
            f"unknown job field(s) {sorted(unknown)}; "
            f"accepted fields: {sorted(_ACCEPTED_KEYS)}"
        )

    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
        raise ValidationError("tenant must be a non-empty string (max 64 chars)")

    solver_name = payload.get("solver", "sirt")
    if not isinstance(solver_name, str):
        raise ValidationError("solver must be a string")
    spec = get_solver(solver_name)

    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ValidationError("params must be a JSON object")
    validated = spec.validate_params(params, apply_defaults=True)

    geometry = payload.get("geometry")
    if not isinstance(geometry, dict):
        raise ValidationError(
            "geometry is required: {'size': <int>, 'num_views': <int, optional>}"
        )
    unknown = set(geometry) - _ACCEPTED_GEOM_KEYS
    if unknown:
        raise ValidationError(
            f"unknown geometry field(s) {sorted(unknown)}; "
            f"accepted fields: {sorted(_ACCEPTED_GEOM_KEYS)}"
        )
    size = geometry.get("size")
    if not isinstance(size, int) or isinstance(size, bool) or size < 1:
        raise ValidationError("geometry.size must be a positive integer")
    if size > 4096:
        raise ValidationError("geometry.size is capped at 4096 for the service")
    num_views = geometry.get("num_views")
    if num_views is not None and (
        not isinstance(num_views, int) or isinstance(num_views, bool) or num_views < 1
    ):
        raise ValidationError("geometry.num_views must be a positive integer")
    geom = ParallelBeamGeometry.for_image(size, num_views)

    fmt = payload.get("fmt", "cscv-z")
    projector = payload.get("projector", "strip")
    if not isinstance(fmt, str) or not isinstance(projector, str):
        raise ValidationError("fmt and projector must be strings")

    dtype_name = payload.get("dtype", "float32")
    if dtype_name not in _DTYPES:
        raise ValidationError(
            f"dtype must be one of {list(_DTYPES)}, got {dtype_name!r}"
        )
    dtype = np.dtype(dtype_name)

    deadline_s = payload.get("deadline_s", default_deadline_s)
    if deadline_s is not None:
        if isinstance(deadline_s, bool) or not isinstance(deadline_s, (int, float)):
            raise ValidationError("deadline_s must be a number of seconds")
        deadline_s = float(deadline_s)
        if not (deadline_s > 0):
            raise ValidationError("deadline_s must be > 0")

    idempotency_key = payload.get("idempotency_key")
    if idempotency_key is not None:
        if (not isinstance(idempotency_key, str) or not idempotency_key
                or len(idempotency_key) > 128):
            raise ValidationError(
                "idempotency_key must be a non-empty string (max 128 chars)"
            )

    # operator_cache_key re-validates fmt / projector names.
    from repro.api import operator_cache_key

    op_key = operator_cache_key(geom, fmt=fmt, projector=projector, dtype=dtype)

    sinogram = decode_sinogram(
        payload.get("sinogram"), geom.num_rays, dtype
    )

    no_batch_reason = spec.coalescible(validated)
    batch_key = ":".join(
        (op_key, spec.name, _canonical_params(spec, validated))
    )
    return JobRequest(
        tenant=tenant,
        solver=spec.name,
        params=validated,
        geom=geom,
        fmt=fmt,
        projector=projector,
        dtype=dtype,
        sinogram=sinogram,
        deadline_s=deadline_s,
        operator_key=op_key,
        batch_key=batch_key,
        coalescible=no_batch_reason is None,
        no_batch_reason=no_batch_reason,
        idempotency_key=idempotency_key,
    )


def request_payload(req: JobRequest) -> dict:
    """The JSON job payload equivalent to *req*, minus the sinogram.

    What the journal persists with a submit record: feeding it back
    through :func:`parse_job` (with the spilled sinogram re-attached)
    rebuilds an equivalent request on recovery.
    """
    out = {
        "tenant": req.tenant,
        "solver": req.solver,
        "params": dict(req.params),
        "geometry": {"size": req.geom.image_size,
                     "num_views": req.geom.num_views},
        "fmt": req.fmt,
        "projector": req.projector,
        "dtype": req.dtype.name,
    }
    if req.deadline_s is not None:
        out["deadline_s"] = req.deadline_s
    if req.idempotency_key is not None:
        out["idempotency_key"] = req.idempotency_key
    return out


def new_job(request: JobRequest, *, job_id: str | None = None) -> Job:
    """Wrap a request in a fresh queued :class:`Job`.

    ``job_id`` lets restart recovery re-instantiate a journaled job under
    its original identity; fresh submissions get the next counter id.
    """
    job = Job(id=job_id or f"job-{_next_job_id():06d}", request=request)
    if request.deadline_s is not None:
        job.deadline_at = time.monotonic() + request.deadline_s
    return job
