"""repro.serve — the asyncio batch-aggregating reconstruction service.

The serving layer ties together everything the library already provides
for multi-tenant traffic: the persistent operator cache shares one
physical operator across processes, the batched SpMM drivers turn k
concurrent sinograms into one kernel pass, and the obs/resilience layers
supply metrics, tracing and watchdogs.  This package adds the piece in
between — a service that

* accepts reconstruction **jobs** (geometry + sinogram + solver
  parameters) per tenant, validated against the solver registry;
* computes each job's **operator-cache key** (the PR-3 content hash) and
  **coalesces** jobs sharing a key *and* a compatible parameterisation
  into one SpMM-backed solver batch whose columns are bitwise-identical
  to solo runs;
* applies **admission control** (per-tenant FIFO queues with a bounded
  depth and a structured 429-style reject) and round-robin **fairness**
  across tenants;
* enforces per-job **deadlines** and streams **progress** from the
  solvers' typed :class:`~repro.recon.events.IterationEvent` stream;
* exposes everything over a stdlib-only HTTP JSON API
  (``POST /v1/reconstruct``, ``GET /v1/jobs/<id>``,
  ``GET /v1/jobs/<id>/progress``) next to the existing ``/metrics`` and
  ``/healthz`` endpoints, plus a ``/readyz`` readiness probe;
* survives crashes: a durable write-ahead **job journal**
  (:class:`JobJournal`) plus periodic solver checkpoints let a
  ``kill -9``'d service restart, replay, and finish interrupted jobs
  **bitwise-identical** to never-interrupted runs; SIGTERM triggers a
  graceful **drain** (stop admitting, checkpoint in-flight work).

Entry points: ``repro serve`` (CLI), :class:`ServiceRunner` (embedded,
thread-safe), :class:`ReconstructionService` (pure asyncio).
"""

from repro.serve.jobs import (
    Job,
    JobRequest,
    QueueFullError,
    ServiceUnavailableError,
    parse_job,
)
from repro.serve.journal import JobJournal, JournalReplay
from repro.serve.service import (
    ReconstructionService,
    ServeConfig,
    ServiceRunner,
)
from repro.serve.http import serve_http

__all__ = [
    "Job",
    "JobJournal",
    "JobRequest",
    "JournalReplay",
    "QueueFullError",
    "ServiceUnavailableError",
    "parse_job",
    "ReconstructionService",
    "ServeConfig",
    "ServiceRunner",
    "serve_http",
]
