"""Durable write-ahead job journal for the reconstruction service.

Every externally-visible job transition is appended to one JSONL file
(``<dir>/journal.jsonl``) with an fsync per record, so a crash — power
loss included — loses at most the record being written.  Large binary
payloads never go through the journal: sinograms (and result images) are
**spilled** to content-addressed ``.npy`` files under ``<dir>/payloads``
(named by the SHA-256 of their serialized bytes, written with the
fsync-before-replace discipline of :mod:`repro.utils.durable`) and the
journal carries only the reference.  Content addressing makes replayed
duplicate submits free: the same sinogram hashes to the same file, which
is never written twice.

Record grammar (one JSON object per line)::

    {"type": "submit",   "job_id", "t", "idempotency_key", "payload",
                         "sinogram_ref"}
    {"type": "start",    "job_id", "t", "batch_id", "batch_width"}
    {"type": "finish",   "job_id", "t", "state", "error", "result_ref",
                         "iterations", "stop_reason"}
    {"type": "shutdown", "t"}

``payload`` is the validated request minus the sinogram — everything
:func:`~repro.serve.jobs.parse_job` needs to rebuild the
:class:`~repro.serve.jobs.JobRequest` on recovery.  A trailing
``shutdown`` record marks a clean stop; a journal without one was a
crash and :meth:`JobJournal.replay` reports it as such.

Replay is **corrupt-tail tolerant**: a torn or garbage line (the record
being written when power died) ends the replay there, with the dropped
line count surfaced instead of an exception — recovery proceeds from
every record that survived.  Duplicate submits carrying the same
idempotency key collapse to the first occurrence.

Fault-injection sites (:mod:`repro.resilience.faults`): the append path
fires ``journal.append`` before writing and ``journal.fsync`` before
syncing, so chaos plans can make journaling fail deterministically; the
service degrades (counts, keeps serving) rather than dying.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.utils.durable import fsync_dir, write_bytes_durable

__all__ = [
    "JobJournal",
    "JournalReplay",
    "ReplayedJob",
]

#: Journal format version, stamped on every record.
_VERSION = 1

#: Job states as journaled (mirrors repro.serve.jobs without the import).
_TERMINAL = frozenset({"done", "failed", "cancelled"})


@dataclass
class ReplayedJob:
    """One job's state as reconstructed from the journal."""

    job_id: str
    payload: dict
    sinogram_ref: str
    idempotency_key: str | None = None
    state: str = "queued"
    submitted_at: float = 0.0
    error: dict | None = None
    result_ref: str | None = None
    iterations: int = 0
    stop_reason: str | None = None

    @property
    def live(self) -> bool:
        """True when the job never reached a terminal state (needs
        recovery: it was queued or mid-solve at the crash)."""
        return self.state not in _TERMINAL


@dataclass
class JournalReplay:
    """Everything :meth:`JobJournal.replay` learned from the log."""

    #: job_id -> ReplayedJob, in submit order.
    jobs: dict = field(default_factory=dict)
    #: The journal ended with a clean ``shutdown`` marker.
    clean_shutdown: bool = False
    #: Valid records applied.
    records: int = 0
    #: Lines dropped at a corrupt/truncated tail.
    dropped: int = 0
    #: Submits collapsed onto an earlier identical idempotency key.
    duplicates: int = 0
    #: Highest numeric job id seen (``job-000042`` -> 42); the restarted
    #: service advances its id counter past it so ids never collide.
    max_job_num: int = 0

    def live_jobs(self) -> list:
        return [j for j in self.jobs.values() if j.live]


def _job_num(job_id: str) -> int:
    try:
        return int(str(job_id).rsplit("-", 1)[-1])
    except (ValueError, IndexError):
        return 0


class JobJournal:
    """Append-only fsync'd JSONL journal + content-addressed payload spill.

    Thread-safe: one internal lock serialises appends (the scheduler and
    worker threads all log through the same instance).  ``append`` and
    the spill raise ``OSError`` on persistence failure — the service
    catches, counts and keeps serving (availability over durability once
    the disk itself is gone).
    """

    def __init__(self, root):
        self.root = Path(root)
        self.path = self.root / "journal.jsonl"
        self.payload_dir = self.root / "payloads"
        self.checkpoint_dir = self.root / "checkpoints"
        for d in (self.root, self.payload_dir, self.checkpoint_dir):
            d.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = None

    # ------------------------------------------------------------- append

    def append(self, type: str, **fields) -> None:
        """Append one record durably (write + flush + fsync).

        Fires the ``journal.append`` / ``journal.fsync`` fault sites.
        Raises ``OSError`` when persistence fails.
        """
        from repro.resilience.faults import fire

        record = {"type": type, "v": _VERSION, "t": time.time(), **fields}
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            fire("journal.append")
            if self._fh is None:
                fresh = not self.path.exists()
                self._fh = open(self.path, "a", encoding="utf-8")
                if fresh:
                    fsync_dir(self.root)
            self._fh.write(line)
            self._fh.flush()
            fire("journal.fsync")
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -------------------------------------------------------------- spill

    def spill_array(self, arr: np.ndarray) -> str:
        """Persist *arr* content-addressed; returns its reference.

        The reference is the SHA-256 of the serialized ``.npy`` bytes —
        identical arrays (replayed idempotent submits) share one file,
        and an existing file is never rewritten.
        """
        buf = io.BytesIO()
        np.save(buf, np.ascontiguousarray(arr), allow_pickle=False)
        blob = buf.getvalue()
        ref = hashlib.sha256(blob).hexdigest()
        path = self.payload_dir / f"{ref}.npy"
        if not path.exists():
            write_bytes_durable(path, blob)
        return ref

    def load_array(self, ref: str) -> np.ndarray:
        """Load a spilled array; raises ``OSError`` when missing and
        :class:`ValueError` when the content does not match its address
        (bit rot is detected, never silently served)."""
        path = self.payload_dir / f"{ref}.npy"
        blob = path.read_bytes()
        if hashlib.sha256(blob).hexdigest() != ref:
            raise ValueError(f"payload {ref} failed its content check")
        return np.load(io.BytesIO(blob), allow_pickle=False)

    def checkpoint_path(self, job_id: str) -> Path:
        """Where the solver checkpoint for *job_id* lives."""
        return self.checkpoint_dir / f"{job_id}.ckpt"

    # ------------------------------------------------------ record helpers

    def log_submit(self, job_id: str, payload: dict, sinogram_ref: str,
                   idempotency_key: str | None) -> None:
        self.append(
            "submit", job_id=job_id, payload=payload,
            sinogram_ref=sinogram_ref, idempotency_key=idempotency_key,
        )

    def log_start(self, job_id: str, *, batch_id=None,
                  batch_width: int = 0) -> None:
        self.append(
            "start", job_id=job_id, batch_id=batch_id,
            batch_width=batch_width,
        )

    def log_finish(self, job_id: str, state: str, *, error=None,
                   result_ref=None, iterations: int = 0,
                   stop_reason=None) -> None:
        self.append(
            "finish", job_id=job_id, state=state, error=error,
            result_ref=result_ref, iterations=iterations,
            stop_reason=stop_reason,
        )

    def log_shutdown(self) -> None:
        """Clean-shutdown marker: replay after this is a no-op restart,
        not crash recovery."""
        self.append("shutdown")

    # ------------------------------------------------------------- replay

    def replay(self) -> JournalReplay:
        """Reconstruct job states from the journal (corrupt-tail safe)."""
        out = JournalReplay()
        if not self.path.exists():
            out.clean_shutdown = True  # no journal = nothing was lost
            return out
        by_key: dict = {}    # idempotency_key -> canonical job_id
        alias: dict = {}     # duplicate job_id -> canonical job_id
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                if not isinstance(rec, dict):
                    raise ValueError("record is not an object")
                rtype = rec["type"]
            except (ValueError, KeyError):
                # torn tail: everything from here on is untrustworthy
                out.dropped = sum(1 for l in lines[i:] if l.strip())
                break
            out.records += 1
            out.clean_shutdown = rtype == "shutdown"
            if rtype == "submit":
                job_id = str(rec.get("job_id", ""))
                key = rec.get("idempotency_key")
                out.max_job_num = max(out.max_job_num, _job_num(job_id))
                if key and key in by_key:
                    alias[job_id] = by_key[key]
                    out.duplicates += 1
                    continue
                if key:
                    by_key[key] = job_id
                out.jobs[job_id] = ReplayedJob(
                    job_id=job_id,
                    payload=rec.get("payload") or {},
                    sinogram_ref=str(rec.get("sinogram_ref", "")),
                    idempotency_key=key,
                    submitted_at=float(rec.get("t", 0.0)),
                )
            elif rtype in ("start", "finish"):
                job_id = alias.get(
                    str(rec.get("job_id", "")), str(rec.get("job_id", ""))
                )
                job = out.jobs.get(job_id)
                if job is None:
                    continue  # start/finish without a surviving submit
                if rtype == "start":
                    job.state = "running"
                else:
                    job.state = str(rec.get("state", "failed"))
                    job.error = rec.get("error")
                    job.result_ref = rec.get("result_ref")
                    job.iterations = int(rec.get("iterations") or 0)
                    job.stop_reason = rec.get("stop_reason")
        return out

    # ------------------------------------------------------------ compact

    def compact(self, replay: JournalReplay) -> dict:
        """Rewrite the journal to just the live jobs; GC dead payloads.

        Atomically replaces the log with fresh ``submit`` records for
        every live job in *replay* — there is no window where a crash
        could lose them.  Terminal jobs (already restored to the
        in-memory history by recovery) are dropped from the log, and
        payload / checkpoint files no longer referenced by any live job
        are deleted.  Returns ``{"kept", "payloads_removed",
        "checkpoints_removed"}``.
        """
        live = replay.live_jobs()
        keep_refs = {j.sinogram_ref for j in live}
        keep_ids = {j.job_id for j in live}
        lines = [
            json.dumps(
                {
                    "type": "submit", "v": _VERSION, "t": j.submitted_at,
                    "job_id": j.job_id, "payload": j.payload,
                    "sinogram_ref": j.sinogram_ref,
                    "idempotency_key": j.idempotency_key,
                },
                separators=(",", ":"),
            ) + "\n"
            for j in live
        ]
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            write_bytes_durable(self.path, "".join(lines).encode("utf-8"))
        payloads_removed = 0
        for p in self.payload_dir.glob("*.npy"):
            if p.stem not in keep_refs:
                try:
                    p.unlink()
                    payloads_removed += 1
                except OSError:
                    pass
        checkpoints_removed = 0
        for p in self.checkpoint_dir.glob("*.ckpt"):
            if p.stem not in keep_ids:
                try:
                    p.unlink()
                    checkpoints_removed += 1
                except OSError:
                    pass
        return {
            "kept": len(keep_ids),
            "payloads_removed": payloads_removed,
            "checkpoints_removed": checkpoints_removed,
        }
