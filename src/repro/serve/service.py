"""The batch-aggregating reconstruction service.

:class:`ReconstructionService` is the pure-asyncio core: per-tenant FIFO
queues behind admission control, a round-robin scheduler that coalesces
key-compatible jobs into SpMM batches, and a bounded worker pool running
solves in threads (NumPy/C kernels release the GIL; the event loop stays
responsive).  :class:`ServiceRunner` wraps it for synchronous callers —
it owns a dedicated event-loop thread and bridges via
``run_coroutine_threadsafe`` — and is what the HTTP front-end
(:mod:`repro.serve.http`), the CLI and the tests use.

Scheduling walk-through
-----------------------
1. ``submit`` validates the payload (:func:`~repro.serve.jobs.parse_job`),
   applies admission control (tenant queue depth), enqueues and notifies.
2. The scheduler picks the next job **round-robin across tenants** so a
   saturating tenant cannot starve the others, then — if the job's solver
   is batch-capable and its parameters don't veto coalescing — waits one
   ``batch_window_s`` and drains up to ``max_batch - 1`` queued jobs with
   the **same batch key** (operator hash + solver + canonical params)
   from any tenant into the batch.
3. A worker slot is acquired (``workers`` concurrent batches at most) and
   the batch runs in a thread: one operator (served by the persistent
   cache), the k sinograms stacked to an (m, k) array, one call to
   :func:`repro.api.reconstruct`.  Column-separable solver recurrences
   make every column bitwise-identical to its solo run.
4. The solver's :class:`~repro.recon.events.IterationEvent` stream feeds
   each job's progress log and enforces mid-run deadlines; a batch whose
   jobs have all expired aborts early.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError, ValidationError
from repro.obs import metrics as obs_metrics
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobRequest,
    QueueFullError,
    ServiceUnavailableError,
    advance_job_ids,
    encode_array,
    new_job,
    parse_job,
    request_payload,
)

__all__ = ["ServeConfig", "ReconstructionService", "ServiceRunner"]

#: Buckets sized for batch widths rather than durations.
_WIDTH_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0)


class _BatchAbort(Exception):
    """Internal: raised by the progress callback when no job is left alive."""


class _BatchSuspend(Exception):
    """Internal: raised by the progress callback after a forced drain
    checkpoint — the batch stops here, its jobs go back to ``queued`` (in
    the journal they have no finish record), and restart recovery resumes
    them from the checkpoint just persisted."""


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the reconstruction service.

    Attributes
    ----------
    workers : int
        Concurrent solver batches (worker-pool bound).
    max_queue_depth : int
        Queued jobs allowed **per tenant**; submissions beyond raise
        :class:`~repro.serve.jobs.QueueFullError` (HTTP 429).
    max_batch : int
        Most jobs coalesced into one SpMM batch.
    batch_window_s : float
        How long the scheduler holds a coalescible job open for
        late-arriving key-mates (skipped when a full batch is already
        queued, or when 0).
    default_deadline_s : float or None
        Deadline applied to jobs that don't carry their own.
    cache : bool
        Consult the persistent operator cache (leave on; it is what
        makes operator reuse across batches and processes free).
    max_jobs_history : int
        Finished jobs retained for ``GET /v1/jobs/<id>`` before the
        oldest are dropped.
    shard_workers : int or None
        Worker *processes* per operator for sharded execution (process
        isolation for NumPy-path tenants; see :mod:`repro.dist`).
        ``None`` (default) inherits ``REPRO_SHARD_WORKERS``; 1 disables
        sharding.  Sharded operators are held (and their pools kept
        warm) for the runner's lifetime, keyed by operator hash.
    shard_transport : str or None
        Transport for shard workers (``None`` inherits
        ``REPRO_SHARD_TRANSPORT``).
    journal_dir : str or None
        Directory of the durable job journal
        (:class:`~repro.serve.journal.JobJournal`).  ``None`` (default)
        disables journaling entirely — the embedded/test mode.  The
        ``repro serve`` CLI defaults it on (``REPRO_JOURNAL_DIR``).
    recover : bool
        Replay the journal on start and re-enqueue interrupted jobs
        (only meaningful with ``journal_dir`` set).
    ckpt_every : int or None
        Persist a solver checkpoint every N iterations for journaled
        jobs; ``None`` inherits ``REPRO_CKPT_EVERY``.
    drain_timeout_s : float
        How long :meth:`ReconstructionService.drain` waits for in-flight
        batches to finish or checkpoint before giving up on them.
    """

    workers: int = 2
    max_queue_depth: int = 16
    max_batch: int = 8
    batch_window_s: float = 0.01
    default_deadline_s: float | None = None
    cache: bool = True
    max_jobs_history: int = 4096
    shard_workers: int | None = None
    shard_transport: str | None = None
    journal_dir: str | None = None
    recover: bool = True
    ckpt_every: int | None = None
    drain_timeout_s: float = 30.0

    def __post_init__(self):
        if self.workers < 1:
            raise ValidationError("workers must be >= 1")
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ValidationError("shard_workers must be >= 1")
        if self.max_queue_depth < 1:
            raise ValidationError("max_queue_depth must be >= 1")
        if self.max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        if self.batch_window_s < 0:
            raise ValidationError("batch_window_s must be >= 0")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValidationError("default_deadline_s must be > 0")
        if self.max_jobs_history < 1:
            raise ValidationError("max_jobs_history must be >= 1")
        if self.ckpt_every is not None and self.ckpt_every < 1:
            raise ValidationError("ckpt_every must be >= 1")
        if self.drain_timeout_s <= 0:
            raise ValidationError("drain_timeout_s must be > 0")


class ReconstructionService:
    """Asyncio core: queues, scheduler, coalescer, worker pool.

    Use from inside a running event loop (``await service.start()``), or
    through :class:`ServiceRunner` from synchronous code.
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self._jobs: dict[str, Job] = {}
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._rr: deque = deque()               # tenant rotation order
        self._cond: asyncio.Condition | None = None
        self._sem: asyncio.Semaphore | None = None
        self._scheduler: asyncio.Task | None = None
        self._inflight: set = set()
        self._batch_ids = itertools.count(1)
        self._stopping = False
        self._draining = False
        #: set during drain; worker threads poll it from the solver event
        #: callback to force-checkpoint and suspend in-flight batches
        self._drain_event = threading.Event()
        #: journaling is opt-in (None journal_dir = embedded/test mode)
        self.journal = None
        if self.config.journal_dir:
            from repro.serve.journal import JobJournal

            self.journal = JobJournal(self.config.journal_dir)
        #: idempotency_key -> job id of the canonical submission
        self._idem: dict[str, str] = {}
        #: readiness: false until start() (and recovery replay) completes
        self._ready = False
        self._recovery_task: asyncio.Task | None = None
        #: what recovery found/did, surfaced in stats() and /healthz
        self.recovery: dict = {
            "state": (
                "pending"
                if (self.journal is not None and self.config.recover)
                else "disabled"
            )
        }
        #: sharded operators kept (pools warm) for the service lifetime,
        #: keyed by operator hash; guarded by a thread lock because
        #: batches execute on worker threads
        self._sharded_ops: dict = {}
        self._ops_lock = threading.Lock()

        m = obs_metrics
        self._m_submitted = m.counter("serve.jobs.submitted", "jobs admitted")
        self._m_rejected = m.counter("serve.jobs.rejected", "jobs rejected by admission control")
        self._m_completed = m.counter("serve.jobs.completed", "jobs finished successfully")
        self._m_failed = m.counter("serve.jobs.failed", "jobs finished in error")
        self._m_cancelled = m.counter("serve.jobs.cancelled", "jobs cancelled (deadline or shutdown)")
        self._m_deadline = m.counter("serve.jobs.deadline_expired", "jobs cancelled by their deadline")
        self._m_batches = m.counter("serve.batches", "solver batches dispatched")
        self._m_coalesce_hits = m.counter(
            "serve.coalesce.hits", "jobs that rode a shared batch beyond the seed"
        )
        self._m_batch_width = m.histogram(
            "serve.batch_width", "jobs per dispatched batch", buckets=_WIDTH_BUCKETS
        )
        self._m_queue_depth = m.gauge("serve.queue_depth", "jobs queued across all tenants")
        self._m_inflight = m.gauge("serve.inflight_batches", "batches currently solving")
        self._m_queue_wait = m.histogram("serve.queue_wait_seconds", "submit-to-start wait")
        self._m_latency = m.histogram("serve.latency_seconds", "submit-to-done job latency")
        self._m_solve = m.histogram("serve.solve_seconds", "wall time of one solver batch")
        self._m_idem_hits = m.counter(
            "serve.idempotent_hits", "submits deduplicated by idempotency key"
        )
        self._m_journal = m.counter("serve.journal.appends", "journal records persisted")
        self._m_journal_err = m.counter(
            "serve.journal.errors", "journal persistence failures (service degraded)"
        )
        self._m_ckpt = m.counter("serve.ckpt.stored", "per-job solver checkpoints persisted")
        self._m_ckpt_err = m.counter(
            "serve.ckpt.errors", "per-job checkpoint persistence failures"
        )
        self._m_suspended = m.counter(
            "serve.jobs.suspended", "in-flight jobs checkpointed and re-queued by drain"
        )
        self._m_rec_resumed = m.counter(
            "serve.recovery.resumed", "jobs recovered mid-solve from a checkpoint"
        )
        self._m_rec_restarted = m.counter(
            "serve.recovery.restarted", "jobs recovered by restarting from scratch"
        )
        self._m_rec_restored = m.counter(
            "serve.recovery.restored", "finished jobs restored to history from the journal"
        )
        self._m_rec_failed = m.counter(
            "serve.recovery.failed", "journaled jobs that could not be recovered"
        )

    # ------------------------------------------------------------------ #
    # lifecycle

    async def start(self, *, run_scheduler: bool = True) -> None:
        """Create loop-bound primitives and launch the scheduler.

        ``run_scheduler=False`` admits and queues jobs without ever
        dispatching them — the deterministic mode the admission-control
        tests use.
        """
        if self._scheduler is not None or self._cond is not None:
            return
        self._cond = asyncio.Condition()
        self._sem = asyncio.Semaphore(self.config.workers)
        self._stopping = False
        self._draining = False
        self._drain_event.clear()
        if self.journal is not None and self.config.recover:
            # readiness stays false until the replay finishes; submits
            # in the meantime get 503 "recovering"
            self._recovery_task = asyncio.create_task(
                self._recover(), name="repro-serve-recovery"
            )
        else:
            self._ready = True
        if run_scheduler:
            self._scheduler = asyncio.create_task(
                self._schedule_loop(), name="repro-serve-scheduler"
            )

    @property
    def ready(self) -> bool:
        """Readiness (the ``/readyz`` answer): started, recovery replay
        done, and not draining.  Liveness is separate — a recovering or
        draining service is alive but not ready."""
        return self._ready and not self._draining and not self._stopping

    async def stop(self) -> None:
        """Cancel the scheduler, drain running batches, fail queued jobs.

        Queued jobs are failed **retryable** (``error: "shutdown"``) —
        with journaling on they carry no finish record, so a restart
        with recovery re-enqueues and completes them.
        """
        if self._cond is None:
            return
        self._stopping = True
        self._ready = False
        if self._recovery_task is not None:
            self._recovery_task.cancel()
            try:
                await self._recovery_task
            except asyncio.CancelledError:
                pass
            self._recovery_task = None
        if self._scheduler is not None:
            self._scheduler.cancel()
            try:
                await self._scheduler
            except asyncio.CancelledError:
                pass
            self._scheduler = None
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        async with self._cond:
            self._fail_queued_for_shutdown()
        with self._ops_lock:
            ops, self._sharded_ops = list(self._sharded_ops.values()), {}
        for op in ops:
            op.close()
        if self.journal is not None:
            try:
                if not self._draining:  # drain already wrote the marker
                    self.journal.log_shutdown()
                    self._m_journal.inc()
            except OSError:
                self._m_journal_err.inc()
            self.journal.close()

    def _fail_queued_for_shutdown(self) -> None:
        """Fail every queued job retryable-at-shutdown (hold ``_cond``).

        Deliberately NOT journaled as finished: with the journal on,
        these jobs stay pending in the log and restart recovery re-runs
        them — the structured error tells the client either outcome is
        safe to retry.
        """
        for q in self._queues.values():
            while q:
                job = q.popleft()
                job.stop_reason = "shutdown"
                job.finish(FAILED, error={
                    "error": "shutdown",
                    "message": "service shut down before the job ran; "
                               "safe to retry (or wait for restart "
                               "recovery when the journal is enabled)",
                    "retryable": True,
                })
                self._m_failed.inc()
        self._gauge_depth()

    async def drain(self, timeout: float | None = None) -> dict:
        """Graceful shutdown, phase one: stop admitting, settle in-flight.

        New submissions get 503 (``ServiceUnavailableError``) the moment
        this is called.  In-flight batches either finish inside
        *timeout* (default ``drain_timeout_s``) or — for checkpointable
        solves with journaling on — persist a forced checkpoint at their
        next iteration boundary and suspend; suspended jobs return to
        ``queued`` with no journal finish record, so restart recovery
        resumes them from the checkpoint.  Queued jobs fail retryable.
        A clean-shutdown marker is journaled when nothing was left
        hanging.  Returns a summary dict.
        """
        if self._cond is None:
            return {"drained": False}
        budget = self.config.drain_timeout_s if timeout is None else timeout
        self._draining = True
        self._ready = False
        self._drain_event.set()
        if self._recovery_task is not None:
            self._recovery_task.cancel()
            try:
                await self._recovery_task
            except asyncio.CancelledError:
                pass
            self._recovery_task = None
        if self._scheduler is not None:
            self._scheduler.cancel()
            try:
                await self._scheduler
            except asyncio.CancelledError:
                pass
            self._scheduler = None
        abandoned = 0
        if self._inflight:
            done, pending = await asyncio.wait(
                list(self._inflight), timeout=budget
            )
            abandoned = len(pending)  # still solving; we stop waiting
        suspended = sum(
            1 for j in self._jobs.values()
            if j.state == QUEUED and j.batch_id is not None
        )
        async with self._cond:
            queued_failed = sum(len(q) for q in self._queues.values())
            self._fail_queued_for_shutdown()
        clean = abandoned == 0
        if self.journal is not None and clean:
            try:
                self.journal.log_shutdown()
                self._m_journal.inc()
            except OSError:
                self._m_journal_err.inc()
        return {
            "drained": True,
            "clean": clean,
            "suspended": suspended,
            "abandoned": abandoned,
            "queued_failed": queued_failed,
        }

    # ------------------------------------------------------------------ #
    # submission & lookup

    async def submit(self, payload) -> Job:
        """Validate, admit, journal and enqueue one job.

        Raises :class:`~repro.errors.ValidationError` on a bad payload,
        :class:`~repro.serve.jobs.QueueFullError` when the tenant's
        queue is at ``max_queue_depth`` and
        :class:`~repro.serve.jobs.ServiceUnavailableError` (HTTP 503)
        while the service is draining or still replaying its journal.
        A resubmission carrying an already-seen ``idempotency_key``
        returns the existing job instead of enqueueing a duplicate.
        """
        request = parse_job(
            payload, default_deadline_s=self.config.default_deadline_s
        )
        async with self._cond:
            if self._stopping:
                raise ValidationError("service is shutting down; not accepting jobs")
            if self._draining:
                raise ServiceUnavailableError(reason="draining")
            if not self._ready:
                raise ServiceUnavailableError(reason="recovering", retry_after_s=1.0)
            key = request.idempotency_key
            if key is not None:
                existing = self._idem.get(key)
                if existing is not None and existing in self._jobs:
                    self._m_idem_hits.inc()
                    return self._jobs[existing]
            q = self._queues.get(request.tenant)
            if q is None:
                q = self._queues[request.tenant] = deque()
                self._rr.append(request.tenant)
            if len(q) >= self.config.max_queue_depth:
                self._m_rejected.inc()
                raise QueueFullError(
                    request.tenant, len(q), self.config.max_queue_depth
                )
            job = new_job(request)
            if self.journal is not None:
                # write-ahead: the submit record is durable before the
                # job becomes runnable (holding the condition keeps the
                # idempotency check and the record append atomic)
                await asyncio.to_thread(self._journal_submit, job)
            if key is not None:
                self._idem[key] = job.id
            self._jobs[job.id] = job
            self._trim_history()
            q.append(job)
            self._m_submitted.inc()
            self._gauge_depth()
            self._cond.notify_all()
        return job

    def _journal_submit(self, job: Job) -> None:
        """Durably record a submit (degrades on journal failure)."""
        try:
            ref = self.journal.spill_array(job.request.sinogram)
            self.journal.log_submit(
                job.id, request_payload(job.request), ref,
                job.request.idempotency_key,
            )
            self._m_journal.inc()
        except OSError:
            self._m_journal_err.inc()

    def _journal_start(self, job: Job) -> None:
        try:
            self.journal.log_start(
                job.id, batch_id=job.batch_id, batch_width=job.batch_width
            )
            self._m_journal.inc()
        except OSError:
            self._m_journal_err.inc()

    def _journal_finish(self, job: Job) -> None:
        """Durably record a terminal transition (degrades on failure)."""
        try:
            result_ref = None
            if job.state == DONE and job.result is not None:
                result_ref = self.journal.spill_array(job.result)
            self.journal.log_finish(
                job.id, job.state, error=job.error, result_ref=result_ref,
                iterations=job.iterations, stop_reason=job.stop_reason,
            )
            self._m_journal.inc()
        except OSError:
            self._m_journal_err.inc()

    def get_job(self, job_id: str) -> Job | None:
        """Look up a job by id (safe from any thread: plain dict read)."""
        return self._jobs.get(job_id)

    def stats(self) -> dict:
        """Queue/lifecycle counts for ``/healthz`` and the CLI."""
        states: dict[str, int] = {}
        for job in list(self._jobs.values()):
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "tenants": {t: len(q) for t, q in self._queues.items()},
            "queued_total": sum(len(q) for q in self._queues.values()),
            "jobs": states,
            "workers": self.config.workers,
            "max_queue_depth": self.config.max_queue_depth,
            "max_batch": self.config.max_batch,
            "sharding": self._sharding_stats(),
            "ready": self.ready,
            "draining": self._draining,
            "journal": {
                "enabled": self.journal is not None,
                "dir": self.config.journal_dir,
            },
            "recovery": dict(self.recovery),
        }

    def _sharding_stats(self) -> dict:
        """Shard topology block for ``/healthz`` / the CLI."""
        from repro import config as repro_config

        workers = self._resolved_shard_workers()
        info: dict = {
            "enabled": workers > 1,
            "workers": workers,
            "transport": (
                self.config.shard_transport
                or repro_config.runtime.shard_transport
            ),
        }
        with self._ops_lock:
            ops = list(self._sharded_ops.values())
        if ops:
            info["operators"] = [op.topology() for op in ops]
        return info

    # ------------------------------------------------------------------ #
    # restart recovery

    async def _recover(self) -> None:
        """Replay the journal and recover interrupted jobs (boot task).

        Readiness stays false until this finishes; submissions meanwhile
        get 503 "recovering".  A recovery failure degrades — the service
        comes up empty rather than refusing to boot.
        """
        rec = self.recovery
        rec["state"] = "replaying"
        try:
            to_enqueue = await asyncio.to_thread(self._recover_sync)
        except asyncio.CancelledError:
            rec["state"] = "cancelled"
            raise
        except Exception as exc:  # degraded boot beats no boot
            rec["state"] = "error"
            rec["error"] = f"{type(exc).__name__}: {exc}"
            self._ready = True
            return
        rec["state"] = "done"
        async with self._cond:
            for job in to_enqueue:
                q = self._queues.get(job.request.tenant)
                if q is None:
                    q = self._queues[job.request.tenant] = deque()
                    self._rr.append(job.request.tenant)
                q.append(job)
            self._ready = True
            self._gauge_depth()
            self._cond.notify_all()

    def _recover_sync(self) -> list:
        """Blocking half of recovery (runs in a thread): replay, restore
        finished jobs to history, rebuild interrupted ones, compact.

        Returns the jobs to re-enqueue.  Re-enqueued jobs are NOT
        re-journaled: :meth:`JobJournal.compact` atomically rewrites the
        log with their submit records, so there is no crash window.
        """
        journal = self.journal
        rec = self.recovery
        replay = journal.replay()
        advance_job_ids(replay.max_job_num)
        rec.update(
            records=replay.records,
            dropped=replay.dropped,
            duplicates=replay.duplicates,
            clean_shutdown=replay.clean_shutdown,
        )
        to_enqueue: list = []
        restored = resumed = restarted = failed = 0
        for rj in replay.jobs.values():
            if rj.idempotency_key:
                self._idem[rj.idempotency_key] = rj.job_id
            if not rj.live:
                job = self._restore_finished(rj)
                if job is not None:
                    self._jobs[rj.job_id] = job
                    restored += 1
                    self._m_rec_restored.inc()
                continue
            job, mode = self._rebuild_live(rj)
            self._jobs[rj.job_id] = job
            if mode == "failed":
                # drop it from the compacted journal — re-running on
                # every boot would fail identically forever
                rj.state = "failed"
                failed += 1
                self._m_rec_failed.inc()
                self._m_failed.inc()
            else:
                to_enqueue.append(job)
                if mode == "resumed":
                    resumed += 1
                    self._m_rec_resumed.inc()
                else:
                    restarted += 1
                    self._m_rec_restarted.inc()
        rec.update(
            restored=restored, resumed=resumed,
            restarted=restarted, failed=failed,
        )
        try:
            rec["compacted"] = journal.compact(replay)
        except OSError:
            self._m_journal_err.inc()
        self._trim_history()
        return to_enqueue

    def _restore_finished(self, rj) -> Job | None:
        """Rebuild a terminal job from the journal for the history map
        (``GET /v1/jobs/<id>`` keeps answering across one restart)."""
        try:
            sino = self.journal.load_array(rj.sinogram_ref)
            payload = dict(rj.payload)
            payload["sinogram"] = encode_array(sino)
            payload.pop("deadline_s", None)  # already ran; no new clock
            request = parse_job(payload)
            job = new_job(request, job_id=rj.job_id)
            job.submitted_at = rj.submitted_at
            job.state = rj.state
            job.error = rj.error
            job.iterations = rj.iterations
            job.stop_reason = rj.stop_reason
            if rj.result_ref:
                try:
                    job.result = self.journal.load_array(rj.result_ref)
                except (OSError, ValueError):
                    pass  # the history entry survives without its image
            job.done.set()
            return job
        except Exception:
            return None  # unreadable history entry: drop, don't brick boot

    def _rebuild_live(self, rj) -> tuple:
        """Rebuild one interrupted job.

        Returns ``(job, mode)`` with mode one of ``"resumed"`` (a valid
        checkpoint continues the solve bitwise), ``"restarted"`` (no or
        unusable checkpoint: from scratch) or ``"failed"``
        (unrecoverable: payload gone/unparseable — the job is failed
        with a structured, retryable reason).
        """
        from repro.errors import FormatError
        from repro.recon.checkpoint import load_checkpoint, solver_params_hash

        try:
            sino = self.journal.load_array(rj.sinogram_ref)
            payload = dict(rj.payload)
            payload["sinogram"] = encode_array(sino)
            request = parse_job(payload)
        except Exception as exc:
            job = Job(id=rj.job_id, request=self._dead_request(rj))
            job.submitted_at = rj.submitted_at
            job.stop_reason = "unrecoverable"
            job.finish(FAILED, error={
                "error": "unrecoverable",
                "message": "restart recovery could not rebuild the job "
                           f"({type(exc).__name__}: {exc}); "
                           "resubmit to retry",
                "retryable": True,
            })
            return job, "failed"
        mode = "restarted"
        try:
            state = load_checkpoint(self.journal.checkpoint_path(rj.job_id))
            expected = solver_params_hash(request.solver, request.params)
            if state.params_hash and state.params_hash != expected:
                raise FormatError("checkpoint parameterisation mismatch")
            request.resume_from = state
            # resuming mid-recurrence cannot join a fresh batch bitwise
            request.coalescible = False
            request.no_batch_reason = "resumed from checkpoint"
            mode = "resumed"
        except FileNotFoundError:
            pass  # never checkpointed: restart from scratch
        except (OSError, FormatError):
            pass  # corrupt or mismatched checkpoint: restart from scratch
        job = new_job(request, job_id=rj.job_id)
        job.submitted_at = rj.submitted_at
        return job, mode

    def _dead_request(self, rj):
        """Degenerate request for an unrecoverable job's tombstone."""
        payload = rj.payload if isinstance(rj.payload, dict) else {}
        return JobRequest(
            tenant=str(payload.get("tenant") or "default"),
            solver=str(payload.get("solver") or "unknown"),
            params=dict(payload.get("params") or {}),
            geom=None,
            fmt=str(payload.get("fmt") or "cscv-z"),
            projector=str(payload.get("projector") or "strip"),
            dtype=np.dtype("float32"),
            sinogram=np.zeros(0, dtype=np.float32),
            deadline_s=None,
            operator_key="",
            batch_key="",
            coalescible=False,
            no_batch_reason="unrecoverable",
            idempotency_key=rj.idempotency_key,
        )

    # ------------------------------------------------------------------ #
    # scheduling

    async def _schedule_loop(self) -> None:
        cfg = self.config
        while True:
            async with self._cond:
                while not any(self._queues.values()):
                    await self._cond.wait()
                seed = self._pop_next()
                if seed is not None and seed.request.coalescible:
                    ready = self._count_matching(seed)
                else:
                    ready = 0
            if seed is None:
                continue
            want_mates = seed.request.coalescible and cfg.max_batch > 1
            if (want_mates and cfg.batch_window_s > 0
                    and ready < cfg.max_batch - 1):
                # hold the seed open for late-arriving key-mates
                await asyncio.sleep(cfg.batch_window_s)
            batch = [seed]
            if want_mates:
                async with self._cond:
                    batch.extend(self._take_matching(seed))
            await self._sem.acquire()
            task = asyncio.create_task(self._dispatch(batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    def _pop_next(self) -> Job | None:
        """Next queued job, round-robin over tenants (hold ``_cond``)."""
        now = time.monotonic()
        for _ in range(len(self._rr)):
            tenant = self._rr[0]
            self._rr.rotate(-1)
            q = self._queues.get(tenant)
            while q:
                job = q.popleft()
                if job.expired(now):
                    self._expire(job)
                    continue
                self._gauge_depth()
                return job
        self._gauge_depth()
        return None

    def _count_matching(self, seed: Job) -> int:
        key = seed.request.batch_key
        return sum(
            1
            for q in self._queues.values()
            for job in q
            if job.request.batch_key == key
        )

    def _take_matching(self, seed: Job) -> list:
        """Drain queued jobs sharing *seed*'s batch key (hold ``_cond``)."""
        mates: list = []
        limit = self.config.max_batch - 1
        key = seed.request.batch_key
        now = time.monotonic()
        for q in self._queues.values():
            if not q or len(mates) >= limit:
                continue
            keep: deque = deque()
            while q:
                job = q.popleft()
                if job.expired(now):
                    self._expire(job)
                elif (len(mates) < limit
                        and job.request.coalescible
                        and job.request.batch_key == key):
                    mates.append(job)
                else:
                    keep.append(job)
            q.extend(keep)
        self._gauge_depth()
        return mates

    def _expire(self, job: Job) -> None:
        job.stop_reason = "deadline"
        job.finish(CANCELLED, error={
            "error": "deadline_exceeded",
            "message": f"deadline of {job.request.deadline_s}s expired "
                       f"before the job finished",
        })
        self._m_cancelled.inc()
        self._m_deadline.inc()
        if self.journal is not None:
            self._journal_finish(job)

    def _gauge_depth(self) -> None:
        self._m_queue_depth.set(sum(len(q) for q in self._queues.values()))

    # ------------------------------------------------------------------ #
    # execution (worker threads)

    async def _dispatch(self, batch: list) -> None:
        try:
            await asyncio.to_thread(self._execute_batch, batch)
        except Exception as exc:  # defense: a worker bug must not kill the loop
            err = {"error": type(exc).__name__, "message": str(exc)}
            for job in batch:
                if job.state not in TERMINAL_STATES:
                    job.finish(FAILED, error=err)
                    self._m_failed.inc()
        finally:
            self._sem.release()

    def _execute_batch(self, batch: list) -> None:
        from repro import api

        now = time.monotonic()
        live = []
        for job in batch:
            if job.expired(now):
                self._expire(job)
            else:
                live.append(job)
        if not live:
            return

        width = len(live)
        batch_id = next(self._batch_ids)
        t_start = time.time()
        for job in live:
            job.state = RUNNING
            job.started_at = t_start
            job.queue_wait_s = t_start - job.submitted_at
            job.batch_id = batch_id
            job.batch_width = width
            job.coalesced = width > 1
            self._m_queue_wait.observe(job.queue_wait_s)
        self._m_batches.inc()
        self._m_batch_width.observe(width)
        if width > 1:
            self._m_coalesce_hits.inc(width - 1)
        self._m_inflight.inc()

        from repro.recon.registry import get_solver
        from repro.resilience.faults import fire

        req = live[0].request
        spec = get_solver(req.solver)
        spec_iterative = spec.supports("iterative")

        if self.journal is not None:
            for job in live:
                self._journal_start(job)

        # checkpoint every N iterations when the journal is on and the
        # solver can resume; a recovered job's prior iterations resumed
        # from `resume_from` shift the cadence phase, which is harmless
        ckpt_on = (
            self.journal is not None
            and spec_iterative
            and spec.supports("resume")
        )
        params_hash = ""
        ckpt_every = 1
        if ckpt_on:
            from repro import config as repro_config
            from repro.recon.checkpoint import solver_params_hash

            params_hash = solver_params_hash(req.solver, req.params)
            ckpt_every = self.config.ckpt_every or repro_config.runtime.ckpt_every

        def on_event(event):
            rec = {
                "k": event.k,
                "residual": event.norm,
                "meaning": event.meaning,
                "t": time.time(),
            }
            tick = time.monotonic()
            alive = 0
            for job in live:
                if job.state in TERMINAL_STATES:
                    continue
                if job.expired(tick):
                    self._expire(job)
                    continue
                job.progress.append(rec)
                job.iterations = event.k + 1
                alive += 1
            if alive == 0:
                raise _BatchAbort()
            if ckpt_on and event.state_provider is not None:
                draining = self._drain_event.is_set()
                if draining or (event.k + 1) % ckpt_every == 0:
                    self._store_batch_checkpoints(event, live, params_hash)
                # chaos: kill the process right after a checkpoint
                # boundary — exactly where a real crash hurts most
                if fire("serve.crash") == "exit":
                    os._exit(137)
                if draining:
                    raise _BatchSuspend()

        on_event.accepts_events = True

        try:
            op = self._operator(req)
            if req.resume_from is not None:
                # recovered jobs run solo (resume vetoes coalescing);
                # column arrays in the checkpoint are (n, 1)
                y = req.sinogram
            elif req.coalescible:
                # always a 2-D (m, k) stack — even k=1 — so a job's column
                # is bitwise-identical regardless of who it batched with
                y = np.stack([j.request.sinogram for j in live], axis=1)
            else:
                y = live[0].request.sinogram
            res = api.reconstruct(
                op,
                y,
                solver=req.solver,
                geom=req.geom,
                callback=on_event if spec_iterative else None,
                resume_from=req.resume_from,
                **req.params,
            )
        except _BatchAbort:
            pass  # every job already moved to a terminal state
        except _BatchSuspend:
            # drain checkpointed this batch: jobs go back to queued with
            # no journal finish record — restart recovery resumes them
            for job in live:
                if job.state in TERMINAL_STATES:
                    continue
                job.state = QUEUED
                job.stop_reason = "suspended"
                self._m_suspended.inc()
        except ReproError as exc:
            err = {"error": type(exc).__name__, "message": str(exc)}
            for job in live:
                if job.state not in TERMINAL_STATES:
                    job.finish(FAILED, error=err)
                    self._m_failed.inc()
                    if self.journal is not None:
                        self._journal_finish(job)
        else:
            image = res.image if res.image.ndim == 2 else res.image[:, None]
            wall = time.time() - t_start
            self._m_solve.observe(wall)
            for idx, job in enumerate(live):
                if job.state in TERMINAL_STATES:
                    continue  # expired mid-run; discard its column
                job.result = np.ascontiguousarray(image[:, idx])
                job.iterations = res.iterations
                job.stop_reason = res.stop_reason
                job.finish(DONE)
                self._m_completed.inc()
                self._m_latency.observe(job.finished_at - job.submitted_at)
                if self.journal is not None:
                    self._journal_finish(job)
        finally:
            self._m_inflight.inc(-1)

    def _store_batch_checkpoints(self, event, live, params_hash) -> None:
        """Persist one per-job checkpoint for every non-terminal job of a
        batch, sliced out of the (possibly batched) solver state.

        Runs inside the solver callback (worker thread); persistence
        failures degrade — counted, never fatal to the solve.
        """
        from repro.recon.checkpoint import (
            CheckpointState,
            column_state,
            save_checkpoint,
        )

        state = CheckpointState(
            solver=event.solver,
            k=event.k,
            params_hash=params_hash,
            arrays=event.state_provider(),
            residuals=(),
        )
        for idx, job in enumerate(live):
            if job.state in TERMINAL_STATES:
                continue
            per = column_state(state, idx)
            per = CheckpointState(
                solver=per.solver, k=per.k, params_hash=per.params_hash,
                arrays=per.arrays,
                residuals=tuple(p["residual"] for p in job.progress),
            )
            try:
                save_checkpoint(per, self.journal.checkpoint_path(job.id))
                self._m_ckpt.inc()
            except OSError:
                self._m_ckpt_err.inc()

    def _resolved_shard_workers(self) -> int:
        if self.config.shard_workers is not None:
            return self.config.shard_workers
        from repro import config as repro_config

        return repro_config.runtime.shard_workers

    def _operator(self, req):
        """The batch's operator — sharded (and pooled) when configured.

        Sharded operators are cached per operator hash so their worker
        pools persist across batches; the plain path stays exactly the
        facade call it always was (the persistent operator cache makes
        repeat loads near-free).
        """
        from repro import api

        workers = self._resolved_shard_workers()
        if workers <= 1:
            return api.operator(
                req.geom,
                fmt=req.fmt,
                projector=req.projector,
                dtype=req.dtype,
                cache=self.config.cache,
            )
        key = api.operator_cache_key(
            req.geom, fmt=req.fmt, projector=req.projector, dtype=req.dtype
        )
        with self._ops_lock:
            op = self._sharded_ops.get(key)
            if op is None:
                op = api.operator(
                    req.geom,
                    fmt=req.fmt,
                    projector=req.projector,
                    dtype=req.dtype,
                    cache=self.config.cache,
                    shard_workers=workers,
                )
                if self.config.shard_transport is not None:
                    op.transport_name = self.config.shard_transport
                self._sharded_ops[key] = op
        return op

    def _trim_history(self) -> None:
        """Drop the oldest finished jobs beyond ``max_jobs_history``."""
        excess = len(self._jobs) - self.config.max_jobs_history
        if excess <= 0:
            return
        for jid in [
            jid for jid, j in self._jobs.items() if j.state in TERMINAL_STATES
        ][:excess]:
            del self._jobs[jid]


class ServiceRunner:
    """Thread-safe front door: owns an event-loop thread for the service.

    Synchronous callers (HTTP handler threads, the CLI, tests) talk to
    the asyncio service through ``run_coroutine_threadsafe``::

        with ServiceRunner(ServeConfig(workers=4)) as runner:
            job = runner.submit(payload)           # may raise 400/429 errors
            job = runner.wait(job.id, timeout=60)
    """

    def __init__(self, config: ServeConfig | None = None):
        self.service = ReconstructionService(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @property
    def config(self) -> ServeConfig:
        return self.service.config

    def start(self, *, run_scheduler: bool = True) -> "ServiceRunner":
        if self._loop is not None:
            return self
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run():
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(ready.set)
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=10.0)
        self._call(self.service.start(run_scheduler=run_scheduler))
        return self

    def _call(self, coro, timeout: float = 60.0):
        if self._loop is None:
            raise RuntimeError("ServiceRunner is not started")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def submit(self, payload) -> Job:
        """Thread-safe :meth:`ReconstructionService.submit`."""
        return self._call(self.service.submit(payload))

    def get_job(self, job_id: str) -> Job | None:
        return self.service.get_job(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        job = self.service.get_job(job_id)
        if job is None:
            raise ValidationError(f"unknown job id {job_id!r}")
        job.done.wait(timeout)
        return job

    def stats(self) -> dict:
        return self.service.stats()

    @property
    def ready(self) -> bool:
        """Readiness of the underlying service (``/readyz``)."""
        return self._loop is not None and self.service.ready

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Block until the service is ready (recovery replay finished)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.ready:
                return True
            time.sleep(0.02)
        return self.ready

    def drain(self, timeout: float | None = None) -> dict:
        """Thread-safe :meth:`ReconstructionService.drain`."""
        budget = self.config.drain_timeout_s if timeout is None else timeout
        return self._call(self.service.drain(timeout), timeout=budget + 30.0)

    def stop(self) -> None:
        if self._loop is None:
            return
        try:
            self._call(self.service.stop(), timeout=120.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop.close()
            self._loop = None
            self._thread = None

    def __enter__(self) -> "ServiceRunner":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
