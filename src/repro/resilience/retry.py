"""Retry/backoff primitives shared by the resilience call sites.

Two building blocks:

* :func:`backoff_delays` — capped exponential backoff with deterministic
  jitter.  Jitter decorrelates *processes* (cache-lock stampedes), so it
  is seeded per-process (pid) rather than per-plan: two workers hammering
  the same lock spread out, while one process replays identically.
* :func:`call_with_retries` — run a callable up to *attempts* times,
  sleeping a backoff delay between failures, counting every retry under
  ``retry.<site>.attempts``; the final failure propagates unchanged.

The pool-worker degradation policy (retry once on the pool, then run the
task serially on the caller thread) lives in
:func:`repro.utils.pool.run_resilient`, built on the same counters.
"""

from __future__ import annotations

import os
import random
import time
from collections.abc import Iterator


def backoff_delays(
    *,
    base: float = 0.05,
    cap: float = 2.0,
    jitter: float = 0.5,
    seed: int | None = None,
) -> Iterator[float]:
    """Yield ``base * 2^k`` capped at *cap*, each scaled by a random
    factor in ``[1 - jitter, 1 + jitter]``.

    ``seed=None`` seeds from the pid so concurrent processes
    decorrelate; pass an explicit seed for reproducible schedules.
    """
    rng = random.Random(os.getpid() if seed is None else seed)
    delay = base
    while True:
        yield delay * (1.0 - jitter + 2.0 * jitter * rng.random())
        delay = min(cap, delay * 2.0)


def call_with_retries(
    fn,
    *,
    site: str,
    attempts: int = 2,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    base: float = 0.0,
    cap: float = 2.0,
    sleep=time.sleep,
):
    """Call ``fn()``; on a *retry_on* failure, retry up to *attempts*
    total tries with backoff sleeps between them.

    ``base=0`` (default) skips sleeping entirely — right for in-process
    work where the failure is not time-correlated.  The last exception
    propagates; every extra try increments ``retry.<site>.attempts``.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    from repro.obs import metrics as obs_metrics

    delays = backoff_delays(base=base or 0.05, cap=cap)
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on:
            if attempt + 1 >= attempts:
                raise
            obs_metrics.counter(
                f"retry.{site}.attempts", "operations retried after a failure"
            ).inc()
            if base > 0:
                sleep(next(delays))
