"""Deterministic, seedable fault injection for the CSCV pipeline.

Production failure modes — a corrupt cache entry, a disk that fills up
mid-store, a crashed pool worker, a kernel library that no longer loads,
a sinogram with a NaN — are rare enough in the lab that the code paths
handling them rot.  This module lets tests (and whole CI jobs) *inject*
those failures at named points so every degradation path runs on every
commit instead of for the first time in production.

Injection points
----------------
Call sites declare a point with :func:`fire` (raise-or-directive) or
:func:`corrupt_array` (input poisoning).  The wired points:

================================ =========================================
site                             actions understood by the call site
================================ =========================================
``cache.load.read``              ``corrupt`` (checksum-style failure),
                                 ``short-read`` (truncated array file)
``cache.store.write``            ``enospc`` (disk full while staging)
``cache.lock``                   ``timeout`` (stampede lock never freed)
``kernel.build``                 any action (compiler failure)
``kernel.load``                  ``missing`` (.so vanished), ``corrupt``
                                 (unloadable .so)
``pool.task.<subsystem>``        ``raise`` (worker crash); subsystems:
                                 ``spmv``, ``pack``, ``sweep``
``dist.worker.task``             ``raise`` (shard-worker task failure,
                                 surfaces as an error reply) or ``exit``
                                 (hard ``os._exit`` — models an OOM
                                 kill; the pool respawns once, then
                                 degrades to in-process serial)
``operator.input.<direction>``   ``nan`` / ``inf`` (poisoned operand);
                                 directions: ``forward``, ``adjoint``
``journal.append``               ``oserror`` / ``enospc`` (job-journal
                                 record cannot be written; the service
                                 degrades and keeps serving)
``journal.fsync``                ``oserror`` (fsync of a journal record
                                 fails after the write)
``ckpt.store``                   ``enospc`` / ``oserror`` (solver
                                 checkpoint persistence fails; the
                                 solve itself continues)
``serve.crash``                  ``exit`` (hard ``os._exit(137)`` from
                                 the solver event callback, right after
                                 a checkpoint boundary — models a
                                 kill -9 mid-iteration for the
                                 crash-recovery CI job)
================================ =========================================

Plans
-----
A plan is a comma-separated rule list.  Each rule is
``site-pattern:action[:opt]...`` where the pattern may use ``*``
wildcards (:mod:`fnmatch`) and the options bound *when* the rule fires:

* ``p=0.3``     — fire with probability 0.3 (seeded PRNG, deterministic);
* ``every=4``   — fire on every 4th match of this rule;
* ``times=2``   — fire at most twice, then the rule is exhausted;
* ``after=5``   — skip the first 5 matches.

A global ``seed=N`` entry seeds the PRNGs (default 0); every rule gets
an independent stream derived from the seed and its own index, so two
runs of the same workload under the same plan inject identically.

Plans come from ``REPRO_FAULTS`` (a raw rule list or a profile name from
:data:`PROFILES`), from :func:`configure`, or — scoped — from the
:func:`inject` context manager, which *replaces* the active plan so
tests stay hermetic under a CI-wide chaos profile.  :func:`disabled`
scopes a no-fault window (for clean baselines).

Every firing increments ``faults.injected.<site>`` in the metrics
registry, so injected failures are observable exactly like real ones.
"""

from __future__ import annotations

import contextlib
import errno
import fnmatch
import random
import threading
from dataclasses import dataclass, field

import numpy as np

from repro import config

#: Named rule sets selectable via ``REPRO_FAULTS=<profile>``.  ``chaos``
#: only includes faults whose recovery is bitwise-safe (cache rebuilds,
#: lock timeouts, pool degradation, journal/checkpoint persistence
#: failures — durability degrades, results don't), so a reconstruction
#: under it must equal the clean run exactly.  ``kernel-chaos`` adds
#: backend degradation, which changes the execution path (NumPy
#: fallback).
PROFILES = {
    "chaos": (
        "cache.load.read:corrupt:every=3,"
        "cache.store.write:enospc:every=4,"
        "cache.lock:timeout:every=3,"
        "pool.task.*:raise:every=5,"
        "journal.append:oserror:every=7,"
        "ckpt.store:enospc:every=3"
    ),
    "kernel-chaos": "kernel.build:fail,kernel.load:corrupt",
}


class FaultInjected(RuntimeError):
    """The exception raised for ``raise``-action injection points.

    Deliberately *not* a :class:`~repro.errors.ReproError`: an injected
    worker crash models an arbitrary bug, and resilience code must not
    get to special-case it.
    """


#: Actions that raise at the injection point instead of returning a
#: directive for the call site to act on.
_RAISING_ACTIONS = {
    "raise": lambda site: FaultInjected(f"fault injected at {site}"),
    "enospc": lambda site: OSError(
        errno.ENOSPC, f"fault injected at {site}: no space left on device"
    ),
    "oserror": lambda site: OSError(f"fault injected at {site}"),
    "eof": lambda site: EOFError(f"fault injected at {site}"),
}


@dataclass
class FaultRule:
    """One parsed plan rule; mutable state tracks fire bookkeeping."""

    pattern: str
    action: str
    p: float = 1.0
    every: int = 1
    times: int | None = None
    after: int = 0
    matches: int = 0
    fires: int = 0
    rng: random.Random = field(default_factory=random.Random)

    def should_fire(self) -> bool:
        self.matches += 1
        if self.times is not None and self.fires >= self.times:
            return False
        if self.matches <= self.after:
            return False
        if (self.matches - self.after) % self.every != 0:
            return False
        if self.p < 1.0 and self.rng.random() >= self.p:
            return False
        self.fires += 1
        return True


class FaultPlan:
    """A compiled set of rules plus the lock serialising their state."""

    def __init__(self, rules: list[FaultRule]):
        self.rules = rules
        self._lock = threading.Lock()

    def match(self, site: str) -> FaultRule | None:
        """First rule whose pattern matches *site* and which elects to
        fire (bookkeeping updated under the plan lock)."""
        if not self.rules:
            return None
        with self._lock:
            for rule in self.rules:
                if not _site_matches(rule.pattern, site):
                    continue
                if rule.should_fire():
                    return rule
                return None  # first matching rule owns the site
        return None


def _site_matches(pattern: str, site: str) -> bool:
    if pattern == site:
        return True
    return fnmatch.fnmatchcase(site, pattern)


def parse_plan(spec: str) -> FaultPlan:
    """Compile a plan string (or profile name) into a :class:`FaultPlan`.

    Raises
    ------
    ValueError
        On malformed rules, unknown options, or out-of-range values.
    """
    spec = (spec or "").strip()
    if not spec:
        return FaultPlan([])
    spec = PROFILES.get(spec, spec)
    seed = 0
    raw_rules: list[tuple[str, str, dict]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if part.startswith("seed="):
            seed = int(part[len("seed="):])
            continue
        pieces = part.split(":")
        if len(pieces) < 2:
            raise ValueError(
                f"fault rule {part!r} must look like site:action[:opt]..."
            )
        pattern, action, opts = pieces[0], pieces[1], {}
        for opt in pieces[2:]:
            if "=" not in opt:
                raise ValueError(f"fault option {opt!r} must be key=value")
            k, v = opt.split("=", 1)
            if k == "p":
                opts["p"] = float(v)
                if not (0.0 <= opts["p"] <= 1.0):
                    raise ValueError(f"fault p={v} outside [0, 1]")
            elif k in ("every", "times", "after"):
                opts[k] = int(v)
                if opts[k] < (1 if k == "every" else 0):
                    raise ValueError(f"fault {k}={v} out of range")
            else:
                raise ValueError(f"unknown fault option {k!r} in {part!r}")
        raw_rules.append((pattern, action, opts))
    rules = [
        FaultRule(
            pattern=pattern,
            action=action,
            rng=random.Random(f"{seed}:{idx}"),
            **opts,
        )
        for idx, (pattern, action, opts) in enumerate(raw_rules)
    ]
    return FaultPlan(rules)


# --------------------------------------------------------------------- #
# active plan (config-seeded, overridable, scopable)

_active: FaultPlan | None = None
_active_spec: str | None = None
_state_lock = threading.Lock()


def _plan() -> FaultPlan:
    """The active plan, rebuilt whenever ``config.runtime.faults`` moves."""
    global _active, _active_spec
    spec = config.runtime.faults
    if _active is None or spec != _active_spec:
        with _state_lock:
            if _active is None or spec != _active_spec:
                _active = parse_plan(spec)
                _active_spec = spec
    return _active


def configure(spec: str) -> None:
    """Install *spec* as the process plan (also updates the config)."""
    config.runtime.faults = spec
    _plan()


def reset() -> None:
    """Drop any configured plan (nothing fires until reconfigured)."""
    configure("")


def active_spec() -> str:
    """The plan string currently in force (after profile expansion)."""
    return PROFILES.get(config.runtime.faults, config.runtime.faults)


@contextlib.contextmanager
def inject(spec: str):
    """Scoped plan override: *replaces* the active plan, restores on exit.

    Replacement (not stacking) keeps tests deterministic even when a
    CI-wide ``REPRO_FAULTS`` profile is active around them.
    """
    prev = config.runtime.faults
    configure(spec)
    try:
        yield _plan()
    finally:
        configure(prev)


def disabled():
    """Scoped no-fault window (clean baselines inside chaos runs)."""
    return inject("")


# --------------------------------------------------------------------- #
# injection points

def _count(site: str, action: str) -> None:
    from repro.obs import metrics as obs_metrics

    obs_metrics.counter(
        f"faults.injected.{site}",
        "fault-injection firings by site (see repro.resilience.faults)",
    ).inc()
    obs_metrics.counter(
        "faults.injected.total", "total fault-injection firings"
    ).inc()


def fire(site: str, **ctx) -> str | None:
    """Evaluate injection point *site*; raise or return a directive.

    Returns ``None`` (the overwhelmingly common case — one dict lookup
    and a truthiness check when no plan is active), raises the mapped
    exception for raising actions, or returns the action string for the
    call site to interpret (``corrupt``, ``timeout``, ``missing``, ...).
    """
    plan = _plan()
    if not plan.rules:
        return None
    rule = plan.match(site)
    if rule is None:
        return None
    _count(site, rule.action)
    builder = _RAISING_ACTIONS.get(rule.action)
    if builder is not None:
        raise builder(site)
    return rule.action


def corrupt_array(site: str, arr: np.ndarray) -> np.ndarray:
    """Return *arr*, or a poisoned copy when a ``nan``/``inf`` rule fires.

    The poison lands in a deterministic position (element 0 of the
    flattened view) so repeated runs corrupt identically.
    """
    act = fire(site)
    if act is None:
        return arr
    if act not in ("nan", "inf"):
        return arr
    poisoned = np.array(arr, dtype=arr.dtype if np.issubdtype(
        np.asarray(arr).dtype, np.floating) else np.float64, copy=True)
    poisoned.reshape(-1)[0] = np.nan if act == "nan" else np.inf
    return poisoned
