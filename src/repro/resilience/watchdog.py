"""Residual watchdog: divergence detection and recovery for solvers.

Iterative CT solvers diverge for mundane reasons — an over-relaxed
lambda, inconsistent or NaN-poisoned data, a badly scaled system — and
an unguarded loop happily iterates to overflow, returning garbage after
the full iteration budget.  The watchdog turns that failure mode into a
three-stage policy, applied per iteration from the residual stream the
solvers already compute (no extra SpMV):

1. **detect** — a residual that is non-finite, or that exceeds
   ``growth_factor`` x the best residual seen for ``patience``
   consecutive iterations, is declared divergence;
2. **recover** — the solver restarts from the best iterate seen so far
   and (for relaxation-based solvers) the relaxation factor is backed
   off by ``backoff``; up to ``max_restarts`` times;
3. **fail loudly** — when the restart budget is exhausted, a
   :class:`~repro.errors.SolverError` carries the full iteration
   history (residuals plus every watchdog action) for post-mortems.

Interventions count under ``guard.watchdog.restarts`` /
``guard.watchdog.failures``; the per-iteration bookkeeping is one float
compare plus an array copy on new-best iterations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SolverError


class ResidualWatchdog:
    """Divergence detector/recovery driver for one solver run.

    Parameters
    ----------
    solver : str
        Name used in messages and metrics (``"sirt"``, ``"cgls"``, ...).
    relax : float, optional
        Initial relaxation factor; tracked and backed off on every
        restart.  ``None`` for solvers without one (CGLS).
    patience : int
        Consecutive grown residuals that count as divergence.
    growth_factor : float
        A residual above ``growth_factor * best`` is "grown".
    backoff : float
        Multiplier applied to ``relax`` on each restart.
    max_restarts : int
        Restart budget before :class:`SolverError` is raised.
    min_relax : float
        Floor for the backed-off relaxation factor.
    """

    def __init__(
        self,
        *,
        solver: str,
        relax: float | None = None,
        patience: int = 3,
        growth_factor: float = 2.0,
        backoff: float = 0.5,
        max_restarts: int = 3,
        min_relax: float = 1e-3,
    ):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must be > 1")
        if not (0.0 < backoff < 1.0):
            raise ValueError("backoff must be in (0, 1)")
        self.solver = solver
        self.relax = relax
        self.patience = patience
        self.growth_factor = growth_factor
        self.backoff = backoff
        self.max_restarts = max_restarts
        self.min_relax = min_relax
        self.history: list[dict] = []
        self.restarts = 0
        self.best_residual = math.inf
        self.best_x: np.ndarray | None = None
        self._streak = 0

    def observe(self, iteration: int, residual: float, x: np.ndarray) -> str:
        """Record one iteration; return ``"ok"`` or ``"restart"``.

        *x* is the iterate the residual was measured against.  On
        ``"restart"`` the caller must resume from :attr:`best_x` (or its
        own initial guess when that is still ``None``) and re-read
        :attr:`relax`.

        Raises
        ------
        SolverError
            When divergence is detected with no restart budget left; the
            exception's ``history`` holds every observation and action.
        """
        residual = float(residual)
        self.history.append({"iteration": iteration, "residual": residual})
        if math.isfinite(residual) and residual < self.best_residual:
            self.best_residual = residual
            self.best_x = np.array(x, copy=True)
            self._streak = 0
            return "ok"
        diverged = not math.isfinite(residual)
        if not diverged:
            if (
                math.isfinite(self.best_residual)
                and residual > self.growth_factor * self.best_residual
            ):
                self._streak += 1
            else:
                self._streak = 0
            diverged = self._streak >= self.patience
        if not diverged:
            return "ok"
        return self._diverged(iteration, residual)

    def observe_event(self, event) -> str:
        """Typed-event form of :meth:`observe`.

        Consumes an :class:`~repro.recon.events.IterationEvent`, watching
        the event's *driving* norm (``event.norm``) so the same watchdog
        works on residual-driven (SIRT/ART/OS-SART) and normal-residual-
        driven (CGLS) solvers without knowing which it is attached to.
        """
        return self.observe(event.k, event.norm, event.x)

    def _diverged(self, iteration: int, residual: float) -> str:
        from repro.obs import metrics as obs_metrics

        self._streak = 0
        if self.restarts >= self.max_restarts:
            obs_metrics.counter(
                "guard.watchdog.failures",
                "solver runs the watchdog could not recover",
            ).inc()
            self.history.append(
                {"iteration": iteration, "residual": residual,
                 "action": "fail", "relax": self.relax}
            )
            raise SolverError(
                f"{self.solver} diverged (residual {residual:.3e}, best "
                f"{self.best_residual:.3e}) and exhausted its "
                f"{self.max_restarts} restart(s)",
                history=self.history,
            )
        self.restarts += 1
        if self.relax is not None:
            self.relax = max(self.min_relax, self.relax * self.backoff)
        obs_metrics.counter(
            "guard.watchdog.restarts",
            "solver restarts triggered by the residual watchdog",
        ).inc()
        self.history.append(
            {"iteration": iteration, "residual": residual,
             "action": "restart", "relax": self.relax}
        )
        return "restart"


def resolve_watchdog(
    watchdog, *, solver: str, relax: float | None = None
) -> ResidualWatchdog | None:
    """Normalise a solver's ``watchdog=`` argument.

    ``True`` builds a default :class:`ResidualWatchdog`, ``False``/
    ``None`` disables it, and a ready instance is used as-is (its
    ``relax`` is seeded from the solver's when unset).
    """
    if isinstance(watchdog, ResidualWatchdog):
        if watchdog.relax is None and relax is not None:
            watchdog.relax = relax
        return watchdog
    if watchdog:
        return ResidualWatchdog(solver=solver, relax=relax)
    return None
