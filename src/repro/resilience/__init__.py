"""repro.resilience — fault injection, numerical guards, and recovery.

The production posture of the pipeline: every failure mode is *injected*
(:mod:`~repro.resilience.faults`), *screened*
(:mod:`~repro.resilience.guards`), *retried*
(:mod:`~repro.resilience.retry`) or *recovered from*
(:mod:`~repro.resilience.watchdog`) — and every event is observable
through the :mod:`repro.obs` metrics registry as ``faults.*`` /
``guard.*`` / ``retry.*`` counters.

See ``docs/robustness.md`` for the operator-facing guide
(``REPRO_FAULTS`` plans, ``REPRO_GUARD`` levels, watchdog semantics).
"""

from __future__ import annotations

from repro.resilience.faults import (
    PROFILES,
    FaultInjected,
    FaultPlan,
    FaultRule,
    parse_plan,
)
from repro.resilience.guards import check as guard_check
from repro.resilience.retry import backoff_delays, call_with_retries
from repro.resilience.watchdog import ResidualWatchdog, resolve_watchdog

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "PROFILES",
    "parse_plan",
    "guard_check",
    "backoff_delays",
    "call_with_retries",
    "ResidualWatchdog",
    "resolve_watchdog",
]
