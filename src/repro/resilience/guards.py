"""Opt-in numerical guards: screen arrays for NaN/Inf at trust borders.

A single NaN in a sinogram silently poisons every downstream SpMV, turns
residual norms into NaN, and surfaces — if at all — as a garbage image
many iterations later.  Guards move the failure to the boundary where
the bad value *entered*, with a named array in the message.

Levels (``REPRO_GUARD`` / ``config.runtime.guard``):

* ``off``    (default) — zero checking, zero cost;
* ``inputs`` — operator operands and solver right-hand sides are
  screened on the way in (one ``isfinite`` reduction per call);
* ``full``   — additionally screens operator outputs and solver
  iterates, catching corruption that arises *inside* the pipeline
  (a miscompiled kernel, an injected fault, an overflowing iterate).

Violations raise :class:`~repro.errors.NumericalError` and count under
``guard.nonfinite.<where>``; passed checks cost one vectorised reduction
and are counted in aggregate under ``guard.checks``.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.errors import NumericalError


def level() -> str:
    """The active guard level (validated)."""
    lvl = config.runtime.guard
    if lvl not in config.GUARD_LEVELS:
        raise ValueError(
            f"config.runtime.guard must be one of {config.GUARD_LEVELS}, "
            f"got {lvl!r}"
        )
    return lvl


def enabled_for(kind: str) -> bool:
    """Whether arrays of *kind* (``input``/``output``) are screened."""
    lvl = level()
    if lvl == "off":
        return False
    if lvl == "inputs":
        return kind == "input"
    return True


def check(arr: np.ndarray, name: str, *, where: str, kind: str = "input"):
    """Screen *arr* for non-finite values per the active guard level.

    Parameters
    ----------
    arr : array
        The data crossing the boundary; returned unchanged on success.
    name : str
        Human name used in the error message (``"sinogram"``, ``"x"``).
    where : str
        Boundary label for the metrics counter (``"forward"``,
        ``"sirt"``, ...).
    kind : str
        ``"input"`` (screened at level ``inputs``+) or ``"output"``
        (screened only at level ``full``).

    Raises
    ------
    NumericalError
        When *arr* holds NaN/Inf, naming the array, the boundary and the
        non-finite count.
    """
    if not enabled_for(kind):
        return arr
    from repro.obs import metrics as obs_metrics

    arr = np.asarray(arr)
    finite = np.isfinite(arr)
    obs_metrics.counter(
        "guard.checks", "numerical guard screenings performed"
    ).inc()
    if finite.all():
        return arr
    bad = int(arr.size - int(finite.sum()))
    obs_metrics.counter(
        f"guard.nonfinite.{where}",
        "non-finite arrays caught by the numerical guards",
    ).inc()
    raise NumericalError(
        f"{name} at {where} contains {bad} non-finite value"
        f"{'s' if bad != 1 else ''} (guard level {level()!r}; "
        "set REPRO_GUARD=off to disable screening)"
    )
