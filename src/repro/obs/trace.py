"""Hierarchical tracing spans — the Fig-7 stage stopwatch, generalised.

A :class:`Span` is one timed region with a name, wall-clock bounds,
free-form attributes (nnz, bytes, block counts, backend tags ...) and a
parent id, so nested ``with span("build.ioblr"):`` blocks reconstruct the
pipeline tree the paper's stage breakdown plots.  The tracer is
process-wide and thread-aware: each thread keeps its own span stack, all
finished spans land in one shared list.

Work shipped to another thread would normally open *root* spans there
(the worker's stack starts empty).  :meth:`Tracer.current_context`
captures the submitting span's (id, depth) and :meth:`Tracer.attach`
re-establishes it as the ambient parent on the worker, so pool tasks
nest under the span that submitted them; :func:`repro.utils.pool.run_resilient`
does this automatically.

Overhead discipline: when tracing is disabled :func:`span` returns a
shared no-op context manager — one attribute load and one branch on the
hot path, nothing else.  ``min_time`` workloads therefore measure the
same numbers with the subsystem merely imported (see
``tests/test_obs.py``'s overhead smoke test).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "tracer", "span", "is_enabled"]


@dataclass
class Span:
    """One traced region (ids are assigned when the span opens)."""

    name: str
    start: float                       # perf_counter seconds
    end: float = 0.0
    id: int = -1
    parent: int = -1                   # parent span id, -1 = root
    depth: int = 0
    thread: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self


class _NoopSpan:
    """Shared do-nothing stand-in returned while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()

_UNSET = object()


class _Attached:
    """Scoped install of an ambient (parent id, depth) on this thread."""

    __slots__ = ("_tracer", "_ctx", "_prev")

    def __init__(self, tracer: "Tracer", ctx):
        self._tracer = tracer
        self._ctx = ctx
        self._prev = _UNSET

    def __enter__(self):
        if self._ctx is not None:
            local = self._tracer._local
            self._prev = getattr(local, "ambient", None)
            local.ambient = self._ctx
        return self

    def __exit__(self, *exc):
        if self._prev is not _UNSET:
            self._tracer._local.ambient = self._prev
        return False


class _Active:
    """Context manager recording one live span on the current thread."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span_: Span):
        self._tracer = tracer
        self._span = span_

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span.start = time.perf_counter()
        return self._span

    def __exit__(self, *exc):
        self._span.end = time.perf_counter()
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Process-wide span collector with per-thread nesting stacks."""

    def __init__(self):
        self.enabled = False
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # control

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans (keeps the enabled flag)."""
        with self._lock:
            self.spans = []
            self._local = threading.local()
            self._next_id = 0

    # ------------------------------------------------------------------ #
    # recording

    def span(self, name: str, **attrs):
        """Context manager timing *name*; no-op when tracing is off."""
        if not self.enabled:
            return _NOOP
        s = Span(name=name, start=0.0, thread=threading.get_ident())
        if attrs:
            s.attrs.update(attrs)
        return _Active(self, s)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, s: Span) -> None:
        stack = self._stack()
        with self._lock:
            s.id = self._next_id
            self._next_id += 1
        if stack:
            s.parent = stack[-1].id
            s.depth = stack[-1].depth + 1
        else:
            ambient = getattr(self._local, "ambient", None)
            if ambient is not None:
                s.parent, parent_depth = ambient
                s.depth = parent_depth + 1
        stack.append(s)

    def _pop(self, s: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is s:
            stack.pop()
        with self._lock:
            self.spans.append(s)

    # ------------------------------------------------------------------ #
    # cross-thread context propagation

    def current_context(self) -> tuple[int, int] | None:
        """(id, depth) of this thread's innermost open span, or None.

        Capture this on the submitting thread and hand it to
        :meth:`attach` on the worker so the worker's spans parent under
        the submitting span instead of becoming roots.
        """
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].id, stack[-1].depth
        return getattr(self._local, "ambient", None)

    def attach(self, ctx: tuple[int, int] | None):
        """Context manager installing *ctx* as this thread's ambient parent.

        New root-level spans opened while attached parent under
        ``ctx[0]`` at depth ``ctx[1] + 1``.  Nesting is saved/restored,
        and ``attach(None)`` is a cheap no-op (so callers can always
        pass whatever :meth:`current_context` returned).
        """
        return _Attached(self, ctx)

    # ------------------------------------------------------------------ #
    # queries

    def finished(self) -> list[Span]:
        """Snapshot of completed spans, in completion order."""
        with self._lock:
            return list(self.spans)

    def find(self, name: str) -> list[Span]:
        """All finished spans whose name equals *name*."""
        return [s for s in self.finished() if s.name == name]

    def total(self, name: str) -> float:
        """Summed wall-clock of every finished span named *name*."""
        return sum(s.seconds for s in self.find(name))


#: The process-wide tracer singleton.
tracer = Tracer()


def span(name: str, **attrs):
    """Module-level shortcut for ``tracer.span`` (the hot-path entry)."""
    if not tracer.enabled:
        return _NOOP
    return tracer.span(name, **attrs)


def is_enabled() -> bool:
    return tracer.enabled
