"""Exporters: JSON-lines traces, Prometheus text, human stage reports.

Three consumers, three shapes:

* **JSON lines** — one span per line, machine-readable, replayable
  (``load_jsonl`` round-trips what ``dump_jsonl`` wrote);
* **Prometheus text** — the registry in the standard exposition format
  (dots in metric names become underscores);
* **stage report** — the ``repro trace`` CLI view: the span tree with
  wall-clock, call counts and attributes, plus an aggregated by-name
  table — Fig 7's pipeline breakdown for any traced run.
"""

from __future__ import annotations

import json
import re
from collections import defaultdict

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

__all__ = [
    "dump_jsonl",
    "load_jsonl",
    "prometheus_text",
    "span_tree_report",
    "stage_summary",
]


# ---------------------------------------------------------------------- #
# JSON lines

def span_to_dict(s: Span) -> dict:
    """Plain-data form of one span (what lands on each JSONL line)."""
    return {
        "name": s.name,
        "start": s.start,
        "end": s.end,
        "seconds": s.seconds,
        "id": s.id,
        "parent": s.parent,
        "depth": s.depth,
        "thread": s.thread,
        "attrs": _jsonable(s.attrs),
    }


def _jsonable(attrs: dict) -> dict:
    out = {}
    for k, v in attrs.items():
        if hasattr(v, "item") and getattr(v, "ndim", 0) == 0:  # numpy scalar
            v = v.item()
        elif not isinstance(v, (str, int, float, bool, type(None))):
            v = str(v)
        out[k] = v
    return out


def dump_jsonl(spans: list[Span], path_or_file) -> int:
    """Write spans as JSON lines; returns the number of lines written."""
    if hasattr(path_or_file, "write"):
        for s in spans:
            path_or_file.write(json.dumps(span_to_dict(s)) + "\n")
        return len(spans)
    with open(path_or_file, "w", encoding="utf-8") as fh:
        return dump_jsonl(spans, fh)


def load_jsonl(path_or_file) -> list[Span]:
    """Parse a JSONL trace back into :class:`Span` objects."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
    else:
        with open(path_or_file, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    spans = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        d = json.loads(line)
        spans.append(
            Span(
                name=d["name"],
                start=d["start"],
                end=d["end"],
                id=d.get("id", -1),
                parent=d.get("parent", -1),
                depth=d.get("depth", 0),
                thread=d.get("thread", 0),
                attrs=d.get("attrs", {}),
            )
        )
    return spans


# ---------------------------------------------------------------------- #
# Prometheus text

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def prometheus_text(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render the registry in the Prometheus exposition format."""
    lines = []
    for name, snap in registry.snapshot().items():
        full = _prom_name(f"{prefix}_{name}" if prefix else name)
        kind = snap["type"]
        lines.append(f"# TYPE {full} {kind}")
        if kind == "histogram":
            acc = 0
            for ub, c in zip(snap["buckets"], snap["counts"]):
                acc += c
                lines.append(f'{full}_bucket{{le="{ub}"}} {acc}')
            acc += snap["counts"][-1]
            lines.append(f'{full}_bucket{{le="+Inf"}} {acc}')
            lines.append(f"{full}_sum {snap['sum']}")
            lines.append(f"{full}_count {snap['count']}")
            for label, value in snap.get("quantiles", {}).items():
                if value is not None:
                    q = float(label.lstrip("p")) / 100.0
                    lines.append(f'{full}{{quantile="{q:g}"}} {value}')
        else:
            lines.append(f"{full} {snap['value']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------- #
# human report

def _fmt_attrs(attrs: dict, limit: int = 4) -> str:
    if not attrs:
        return ""
    parts = []
    for k, v in list(attrs.items())[:limit]:
        if isinstance(v, float):
            v = f"{v:.4g}"
        parts.append(f"{k}={v}")
    if len(attrs) > limit:
        parts.append("...")
    return "  [" + " ".join(parts) + "]"


def span_tree_report(spans: list[Span], *, max_children: int = 12) -> str:
    """Indented tree of spans with durations (the ``repro trace`` view).

    Sibling runs longer than *max_children* are elided with a count so a
    100-iteration solve doesn't print 100 lines.
    """
    if not spans:
        return "(no spans recorded)"
    children: dict[int, list[Span]] = defaultdict(list)
    for s in spans:
        children[s.parent].append(s)
    for sibs in children.values():
        sibs.sort(key=lambda s: s.start)
    lines = []

    def emit(s: Span, indent: int) -> None:
        pad = "  " * indent
        lines.append(f"{pad}{s.name:<{max(1, 28 - 2 * indent)}s} "
                     f"{s.seconds * 1e3:10.3f} ms{_fmt_attrs(s.attrs)}")
        kids = children.get(s.id, [])
        shown = kids[:max_children]
        for k in shown:
            emit(k, indent + 1)
        if len(kids) > len(shown):
            rest = kids[len(shown):]
            total = sum(k.seconds for k in rest)
            lines.append(f"{'  ' * (indent + 1)}... {len(rest)} more "
                         f"({total * 1e3:.3f} ms)")

    for root in children.get(-1, []):
        emit(root, 0)
    return "\n".join(lines)


def _exact_quantile(sorted_values: list[float], q: float) -> float:
    """Exact q-quantile of a sorted sample (nearest-rank with interpolation)."""
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= len(sorted_values):
        return sorted_values[-1]
    return sorted_values[lo] * (1 - frac) + sorted_values[lo + 1] * frac


def stage_summary(spans: list[Span]) -> str:
    """Aggregate wall-clock by span name — the Fig-7-style breakdown.

    The p90/p99 columns are exact (computed from the raw per-span
    durations, not bucket estimates) — tail latency of solver iterations
    and pool tasks is exactly what regression hunts look at.
    """
    if not spans:
        return "(no spans recorded)"
    from repro.utils.tables import Table

    agg: dict[str, list[float]] = defaultdict(list)
    for s in spans:
        agg[s.name].append(s.seconds)
    total = sum(sum(v) for v in agg.values()) or 1.0
    t = Table(headers=["span", "calls", "total ms", "mean ms",
                       "p90 ms", "p99 ms", "share"],
              title="aggregate by span name")
    for name in sorted(agg, key=lambda n: -sum(agg[n])):
        v = sorted(agg[name])
        t.add_row(name, len(v), f"{sum(v) * 1e3:.3f}",
                  f"{sum(v) / len(v) * 1e3:.3f}",
                  f"{_exact_quantile(v, 0.90) * 1e3:.3f}",
                  f"{_exact_quantile(v, 0.99) * 1e3:.3f}",
                  f"{sum(v) / total:6.1%}")
    return t.render()
