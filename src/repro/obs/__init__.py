"""repro.obs — observability for the CSCV pipeline.

The paper's whole argument is a set of measurements (Fig 7 stage
breakdown, Fig 10 scalability, Fig 11 bandwidth ratios); this package
makes every run of the library produce the same kinds of evidence:

* :mod:`repro.obs.trace` — hierarchical spans (``with span("build.ioblr")``)
  covering the conversion pipeline, SpMV execution and solver iterations;
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms (spmv calls per backend, padding rates, VxG fill,
  residuals, dispatch hits vs. NumPy fallbacks);
* :mod:`repro.obs.export` — JSON-lines trace dumps, Prometheus text, and
  the human ``repro trace`` stage report;
* :mod:`repro.obs.profile` — opt-in cProfile hooks for drilling into a
  single stage.

Everything is off by default and costs one branch per call site when
disabled.  Enable via ``REPRO_TRACE=1`` (or ``REPRO_TRACE=/path/to.jsonl``
to pick the dump path), or programmatically::

    from repro import obs
    obs.enable()
    ... traced work ...
    obs.dump_trace("trace.jsonl")
    print(obs.trace_report())
"""

from __future__ import annotations

from repro import config
from repro.obs.export import (
    dump_jsonl,
    load_jsonl,
    prometheus_text,
    span_tree_report,
    stage_summary,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
)
from repro.obs.profile import profiled
from repro.obs.trace import Span, Tracer, is_enabled, span, tracer
from repro.obs import perf, runtime

__all__ = [
    "span",
    "Span",
    "Tracer",
    "tracer",
    "is_enabled",
    "enable",
    "disable",
    "reset",
    "counter",
    "gauge",
    "histogram",
    "registry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "profiled",
    "dump_jsonl",
    "load_jsonl",
    "prometheus_text",
    "span_tree_report",
    "stage_summary",
    "dump_trace",
    "trace_report",
    "env_trace",
    "default_trace_path",
    "status",
    "perf",
    "runtime",
    "start_metrics_runtime",
    "stop_metrics_runtime",
    "metrics_runtime_active",
]

#: Fallback dump path when ``REPRO_TRACE=1`` names no file.
DEFAULT_TRACE_PATH = "repro-trace.jsonl"

#: Re-exported so callers have one import site for the gate semantics.
env_trace = config.env_trace


def default_trace_path() -> str:
    """Where a trace dump goes when no path is given anywhere."""
    return config.runtime.trace_path or DEFAULT_TRACE_PATH


def enable() -> None:
    """Turn on span recording and bytes-moved perf accounting."""
    config.runtime.trace = True
    tracer.enable()
    perf.enable()


def disable() -> None:
    config.runtime.trace = False
    tracer.disable()
    if not runtime.is_active():  # the live exporter still needs perf data
        perf.disable()


def reset() -> None:
    """Clear recorded spans and all metric instruments."""
    tracer.reset()
    registry.reset()


#: Start the live metrics runtime (HTTP /metrics exporter + JSONL flusher).
start_metrics_runtime = runtime.start
stop_metrics_runtime = runtime.stop
metrics_runtime_active = runtime.is_active


def init_from_env() -> bool:
    """Apply ``REPRO_TRACE`` / ``REPRO_PROFILE``; returns tracing state.

    Called by the CLI entry point (library users call :func:`enable`
    explicitly) so importing repro never mutates global state.
    """
    if config.runtime.trace:
        tracer.enable()
        perf.enable()
    runtime.start_from_env()
    from repro.obs import profile as _profile

    prof_on, prof_path = _profile.env_profile()
    if prof_on:
        _profile.enable(prof_path)
    return tracer.enabled


def dump_trace(path: str | None = None) -> str:
    """Write all finished spans as JSON lines; returns the path used."""
    path = path or default_trace_path()
    dump_jsonl(tracer.finished(), path)
    return path


def trace_report(*, aggregate: bool = False) -> str:
    """Human-readable report of the recorded spans."""
    spans = tracer.finished()
    if aggregate:
        return stage_summary(spans)
    return span_tree_report(spans)


def status() -> dict:
    """Current observability state (what ``repro info`` prints)."""
    from repro.obs import profile as _profile

    return {
        "tracing": tracer.enabled,
        "trace_path": default_trace_path(),
        "spans_recorded": len(tracer.finished()),
        "metrics": registry.enabled,
        "metrics_registered": len(registry.names()),
        "profiling": _profile.is_enabled(),
        "perf_accounting": perf.is_active(),
        "metrics_runtime": runtime.is_active(),
        "metrics_port": runtime.server_port(),
    }
