"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Everything the paper's evaluation counts — SpMV calls per backend,
padding-zero rates, VxG fill, solver residuals — accumulates here so one
export (Prometheus text or a snapshot dict) answers "what did this
process actually do".  The registry is deliberately tiny: three
instrument types, flat string names (dots as namespace separators), no
label combinatorics.

Instruments are cheap (a guarded float add under the GIL, a lock only
for histograms), and the whole registry can be switched off, turning
every mutation into a single-branch no-op for overhead-critical runs.
"""

from __future__ import annotations

import threading
from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
]

#: Default histogram buckets: log-spaced, wide enough for ratios (padding
#: rates, fills in [0, 1+]) and for millisecond-scale durations.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

#: Default quantiles estimated in every histogram snapshot.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", _reg: "MetricsRegistry" = None):
        self.name = name
        self.help = help
        self.value = 0.0
        self._reg = _reg

    def inc(self, amount: float = 1.0) -> None:
        if self._reg is not None and not self._reg.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """Last-written value (residuals, fill ratios, sizes)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", _reg: "MetricsRegistry" = None):
        self.name = name
        self.help = help
        self.value = 0.0
        self._reg = _reg

    def set(self, value: float) -> None:
        if self._reg is not None and not self._reg.enabled:
            return
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._reg is not None and not self._reg.enabled:
            return
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with cumulative bucket counts.

    ``buckets`` are upper bounds (ascending); an implicit ``+Inf`` bucket
    catches the overflow, mirroring the Prometheus layout so the text
    exporter is a direct dump.  ``quantiles`` selects which tail
    estimates each snapshot carries (linear interpolation inside the
    containing bucket, clamped to the observed min/max).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple = DEFAULT_BUCKETS,
        quantiles: tuple = DEFAULT_QUANTILES,
        _reg: "MetricsRegistry" = None,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        if any(not (0.0 < q < 1.0) for q in quantiles):
            raise ValueError("quantiles must lie strictly inside (0, 1)")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.quantiles = tuple(float(q) for q in quantiles)
        self.counts = [0] * (len(self.buckets) + 1)  # + overflow
        self.sum = 0.0
        self.count = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()
        self._reg = _reg

    def observe(self, value: float) -> None:
        if self._reg is not None and not self._reg.enabled:
            return
        value = float(value)
        idx = bisect_right(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _quantile_locked(self, q: float) -> float:
        """Estimate the *q*-quantile from the bucket counts (lock held).

        Walks the cumulative counts to the containing bucket, then
        interpolates linearly inside it; the open ends (below the first
        bound, above the last) are clamped by the observed min/max.
        """
        target = q * self.count
        cum = 0
        for idx, n in enumerate(self.counts):
            if n == 0:
                continue
            if cum + n >= target:
                lo = self.buckets[idx - 1] if idx > 0 else self._min
                hi = self.buckets[idx] if idx < len(self.buckets) else self._max
                lo = max(lo, self._min)
                hi = min(hi, self._max)
                if hi <= lo:
                    return lo
                return lo + (target - cum) / n * (hi - lo)
            cum += n
        return self._max

    def quantile(self, q: float) -> float | None:
        """Estimated *q*-quantile of everything observed, or None if empty."""
        if not (0.0 < q < 1.0):
            raise ValueError("quantile must lie strictly inside (0, 1)")
        with self._lock:
            if not self.count:
                return None
            return self._quantile_locked(q)

    def snapshot(self) -> dict:
        with self._lock:
            quantiles = {
                f"p{q * 100:g}": self._quantile_locked(q) if self.count else None
                for q in self.quantiles
            }
            return {
                "type": self.kind,
                "buckets": list(self.buckets),
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
                "min": self._min if self.count else None,
                "max": self._max if self.count else None,
                "quantiles": quantiles,
            }


class MetricsRegistry:
    """Name -> instrument map; instruments are created on first use."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory):
        inst = self._instruments.get(name)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(name)
                if inst is None:
                    inst = self._instruments[name] = factory()
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        inst = self._get(name, lambda: Counter(name, help, _reg=self))
        if not isinstance(inst, Counter):
            raise TypeError(f"metric {name!r} already registered as {inst.kind}")
        return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        inst = self._get(name, lambda: Gauge(name, help, _reg=self))
        if not isinstance(inst, Gauge):
            raise TypeError(f"metric {name!r} already registered as {inst.kind}")
        return inst

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple = DEFAULT_BUCKETS,
        quantiles: tuple = DEFAULT_QUANTILES,
    ) -> Histogram:
        inst = self._get(
            name, lambda: Histogram(name, help, buckets, quantiles, _reg=self)
        )
        if not isinstance(inst, Histogram):
            raise TypeError(f"metric {name!r} already registered as {inst.kind}")
        return inst

    # ------------------------------------------------------------------ #

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str):
        """The instrument registered under *name*, or ``None``."""
        return self._instruments.get(name)

    def snapshot(self) -> dict:
        """Plain-data snapshot of every instrument (JSON-serialisable).

        The whole iteration runs under the registry lock so a concurrent
        first-use registration from a pool worker can't mutate the dict
        mid-iteration, and a concurrent :meth:`reset` can't swap the map
        out from under a half-built snapshot.
        """
        with self._lock:
            return {
                name: inst.snapshot()
                for name, inst in sorted(self._instruments.items())
            }

    def reset(self) -> None:
        """Drop every instrument (tests; keeps the enabled flag)."""
        with self._lock:
            self._instruments = {}


#: The process-wide registry singleton.
registry = MetricsRegistry()


def counter(name: str, help: str = "") -> Counter:
    return registry.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return registry.gauge(name, help)


def histogram(
    name: str,
    help: str = "",
    buckets: tuple = DEFAULT_BUCKETS,
    quantiles: tuple = DEFAULT_QUANTILES,
) -> Histogram:
    return registry.histogram(name, help, buckets, quantiles)
