"""Profiling hooks: opt-in cProfile capture around instrumented regions.

Tracing answers *where wall-clock went between stages*; profiling answers
*which Python frames burned it inside one stage*.  The hook is a context
manager gated by ``REPRO_PROFILE`` (or :func:`enable`), so production and
benchmark runs pay nothing — `cProfile` is only imported, started and
dumped when explicitly requested.

``REPRO_PROFILE`` accepts ``1`` (print top functions to stderr at exit of
each profiled region) or a path ending in ``.pstats`` / any file path
(accumulate and dump binary stats there for ``snakeviz``/``pstats``).
"""

from __future__ import annotations

import os
import sys

__all__ = ["profiled", "enable", "disable", "is_enabled", "env_profile"]

_state = {"enabled": False, "path": None, "profiler": None}


def env_profile() -> tuple[bool, str | None]:
    """Interpret ``REPRO_PROFILE``: (enabled, stats path or None)."""
    raw = os.environ.get("REPRO_PROFILE", "").strip()
    if not raw or raw in ("0", "false", "no", "off"):
        return False, None
    if raw in ("1", "true", "yes", "on"):
        return True, None
    return True, raw


def enable(path: str | None = None) -> None:
    _state["enabled"] = True
    _state["path"] = path


def disable() -> None:
    _state["enabled"] = False
    _state["path"] = None
    _state["profiler"] = None


def is_enabled() -> bool:
    return _state["enabled"]


class _NoopProfile:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP = _NoopProfile()


class _ActiveProfile:
    """Profile one region; print or dump on exit."""

    def __init__(self, label: str, top: int):
        self._label = label
        self._top = top
        self._prof = None

    def __enter__(self):
        import cProfile

        # one shared profiler when accumulating to a file, so repeated
        # regions (solver iterations) merge instead of overwriting
        if _state["path"] is not None:
            if _state["profiler"] is None:
                _state["profiler"] = cProfile.Profile()
            self._prof = _state["profiler"]
        else:
            self._prof = cProfile.Profile()
        self._prof.enable()
        return self

    def __exit__(self, *exc):
        self._prof.disable()
        if _state["path"] is not None:
            self._prof.dump_stats(_state["path"])
        else:
            import pstats

            st = pstats.Stats(self._prof, stream=sys.stderr)
            print(f"--- profile: {self._label} ---", file=sys.stderr)
            st.sort_stats("cumulative").print_stats(self._top)
        return False


def profiled(label: str = "region", *, top: int = 15):
    """Context manager profiling *label* when profiling is enabled.

    Near-zero cost when disabled (one dict lookup and a branch).
    """
    if not _state["enabled"]:
        return _NOOP
    return _ActiveProfile(label, top)
