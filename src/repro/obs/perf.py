"""Per-dispatch performance accounting: bytes moved, GB/s, roofline terms.

The paper's central claim is a memory-bandwidth argument — CSCV wins
because it moves fewer bytes per nnz, quantified by the ``E_M``/``R_EM``
efficiency model of Section V-C.  This module turns that model into live
telemetry: every SpMV/SpMM dispatch (and every cold build) computes its
*theoretical* bytes read/written from the format's layout — CSR streams,
CSCV-Z padded values, CSCV-M packed values + masks, plus the VxG index
and reorder-map traffic — and records the achieved GB/s, the fraction of
the host's measured STREAM bandwidth, and nnz/s into tagged histograms
in the process-wide registry.

Accounting is **off by default** and costs one module-attribute load and
one branch per dispatch when off.  It turns on together with tracing
(``REPRO_TRACE`` / ``obs.enable()``) or with the live metrics runtime
(``REPRO_METRICS_PORT`` / ``obs.start_metrics_runtime()``), so benchmark
numbers are unchanged unless somebody is looking.

The STREAM-bandwidth denominator comes from
:func:`measure_stream_bandwidth` (a tiny MLC stand-in), measured once
per host and cached in-process *and* on disk
(``<cache_root>/stream_bw.json``, keyed by host fingerprint) so no hot
path ever pays for the measurement: dispatch recording uses the cached
value when one exists and counts ``perf.stream_bw.unavailable``
otherwise; ``repro bench trajectory`` measures and persists it.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time

import numpy as np

__all__ = [
    "active",
    "enable",
    "disable",
    "is_active",
    "clock",
    "cscv_z_bytes",
    "cscv_m_bytes",
    "format_bytes",
    "host_fingerprint",
    "measure_stream_bandwidth",
    "stream_bandwidth",
    "record_dispatch",
    "record_cscv",
    "record_format",
    "record_build",
    "record_shard",
    "record_reduce",
    "ConvergenceMeter",
    "GBS_BUCKETS",
    "FRACTION_BUCKETS",
    "NNZS_BUCKETS",
]

#: Hot-path switch — read as ``perf.active`` at every dispatch site.
active: bool = False

#: Monotonic clock used by the dispatch sites (one name to patch in tests).
clock = time.perf_counter

#: Achieved-GB/s histogram buckets: spans a laptop core to a dual-socket
#: server (the paper's SKL peaks at 202.8 GB/s).
GBS_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
               100.0, 200.0, 400.0)

#: Fraction-of-STREAM buckets; > 1 is possible when the working set sits
#: in cache, which is itself a useful signal.
FRACTION_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.2, 0.35, 0.5, 0.65,
                    0.8, 0.9, 1.0, 1.25, 2.0)

#: nnz/s throughput buckets (log-spaced; Table II nnz counts reach 1e9+).
NNZS_BUCKETS = (1e5, 2.5e5, 1e6, 2.5e6, 1e7, 2.5e7, 1e8, 2.5e8,
                1e9, 2.5e9, 1e10)


def enable() -> None:
    """Turn dispatch accounting on (tracing/metrics runtime call this)."""
    global active
    active = True


def disable() -> None:
    global active
    active = False


def is_active() -> bool:
    return active


# ---------------------------------------------------------------------- #
# bytes-moved models (the E_M layout accounting, per dispatch)


def cscv_z_bytes(data, k: int = 1) -> dict[str, float]:
    """Theoretical bytes one CSCV-Z SpMV/SpMM with *k* RHS must move.

    Reads: the padded value stream (``num_vxg * vxg_len`` slots, padding
    zeros included — the cost CSCV-M removes), the per-VxG
    ``(column, start)`` index, block pointers/ysizes, the IOBLR reorder
    map streamed during the scatter, and ``k`` copies of ``x``.
    Writes: ``k`` copies of ``y`` (the ``ytilde`` scratch lives in cache
    by construction — blocks are sized for it — so it is not counted,
    exactly as in the paper's ``M_Rit``).
    """
    m, n = data.shape
    item = data.dtype.itemsize
    read = float(
        data.values.nbytes
        + data.vxg_col.nbytes
        + data.vxg_start.nbytes
        + data.blk_vxg_ptr.nbytes
        + data.blk_ysize.nbytes
        + data.blk_map_ptr.nbytes
        + data.ymap.nbytes
        + k * n * item
    )
    written = float(k * m * item)
    return {"read": read, "written": written, "total": read + written}


def cscv_m_bytes(data, k: int = 1) -> dict[str, float]:
    """Theoretical bytes one CSCV-M SpMV/SpMM with *k* RHS must move.

    Versus CSCV-Z the value stream shrinks to exactly ``nnz`` packed
    values, paid for with ``ceil(s_vvec/8)`` mask bytes per CSCVE and
    the per-VxG value offsets driving the (soft-)vexpand.
    """
    m, n = data.shape
    item = data.dtype.itemsize
    mask_bytes = data.num_cscve * ((data.params.s_vvec + 7) // 8)
    read = float(
        data.packed.nbytes
        + mask_bytes
        + data.vxg_voff.nbytes
        + data.vxg_col.nbytes
        + data.vxg_start.nbytes
        + data.blk_vxg_ptr.nbytes
        + data.blk_ysize.nbytes
        + data.blk_map_ptr.nbytes
        + data.ymap.nbytes
        + k * n * item
    )
    written = float(k * m * item)
    return {"read": read, "written": written, "total": read + written}


def format_bytes(fmt, k: int = 1) -> dict[str, float]:
    """Theoretical bytes per SpMV/SpMM for any :class:`SpMVFormat`.

    Uses the format's own exact layout accounting
    (:meth:`~repro.sparse.matrix_base.SpMVFormat.memory_bytes`, the
    paper's ``M(A)``) plus ``k`` vector reads and writes — i.e. the
    ``M_Rit`` of :func:`repro.sparse.stats.memory_requirement`
    generalised to multi-RHS.
    """
    m, n = fmt.shape
    item = fmt.dtype.itemsize
    read = float(fmt.memory_bytes()["total"] + k * n * item)
    written = float(k * m * item)
    return {"read": read, "written": written, "total": read + written}


# ---------------------------------------------------------------------- #
# STREAM bandwidth, measured once and cached per host


def host_fingerprint() -> str:
    """Stable id of this host for bandwidth caches and bench records."""
    return "-".join(
        str(part)
        for part in (
            platform.node() or "unknown",
            platform.machine() or "unknown",
            os.cpu_count() or 1,
        )
    )


def measure_stream_bandwidth(size_mb: int = 256, repeats: int = 5) -> float:
    """Host streaming-read bandwidth in GB/s (a tiny MLC stand-in).

    Times ``np.sum`` over a buffer much larger than cache; used to
    calibrate the HOST machine model and as the ``R_EM`` denominator.
    """
    from repro.utils.timing import min_time

    n = size_mb * (1 << 20) // 8
    buf = np.ones(n, dtype=np.float64)
    t = min_time(lambda: float(buf.sum()), iterations=repeats, max_seconds=5.0)
    return buf.nbytes / t / 1e9


_stream_gbs: float | None = None  # in-process cache


def _stream_cache_path() -> str:
    from repro import config

    return os.path.join(config.cache_root(), "stream_bw.json")


def stream_bandwidth(*, measure: bool = False, refresh: bool = False,
                     size_mb: int = 256) -> float | None:
    """The host's measured STREAM bandwidth in GB/s, cached per host.

    With ``measure=False`` (the hot-path default) only cached values are
    returned — in-process first, then the on-disk per-host cache — and
    ``None`` means "not measured yet" (record sites skip the fraction).
    ``measure=True`` runs the measurement on a miss and persists it;
    ``refresh=True`` forces a re-measurement.
    """
    global _stream_gbs
    if not refresh:
        if _stream_gbs is not None:
            return _stream_gbs
        cached = _load_stream_cache().get(host_fingerprint())
        if cached is not None:
            _stream_gbs = float(cached["gbs"])
            return _stream_gbs
    if not (measure or refresh):
        return None
    gbs = measure_stream_bandwidth(size_mb=size_mb)
    _stream_gbs = gbs
    _store_stream_cache(gbs)
    return gbs


def _load_stream_cache() -> dict:
    try:
        with open(_stream_cache_path(), "r", encoding="utf-8") as fh:
            data = json.load(fh)
        return data if isinstance(data, dict) else {}
    except (OSError, ValueError):
        return {}


def _store_stream_cache(gbs: float) -> None:
    path = _stream_cache_path()
    data = _load_stream_cache()
    data[host_fingerprint()] = {"gbs": gbs, "measured_at": time.time()}
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2)
        os.replace(tmp, path)
    except OSError:
        pass  # cache is best-effort; the in-process value still serves


def _reset_stream_cache() -> None:
    """Drop the in-process cached bandwidth (test hook)."""
    global _stream_gbs
    _stream_gbs = None


# ---------------------------------------------------------------------- #
# recording


def record_dispatch(op: str, variant: str, backend: str, *,
                    seconds: float, bytes_read: float,
                    bytes_written: float, nnz: int, k: int = 1) -> None:
    """Record one kernel dispatch into the tagged perf histograms.

    ``op`` is ``"spmv"`` or ``"spmm"``; ``variant`` names the format
    (``csr``, ``z``, ``m``); ``backend`` the execution path
    (``c``/``flat``/``threaded``/``numpy``).  Emits, per dispatch:

    * ``{op}.achieved_gbs.{variant}.{backend}`` — total traffic rate;
    * ``{op}.nnz_per_s.{variant}`` — useful-work throughput (× k RHS);
    * ``{op}.stream_fraction.{variant}`` — achieved GB/s over the host's
      measured STREAM bandwidth (only when a cached measurement exists);
    * cumulative ``perf.bytes_read`` / ``perf.bytes_written`` counters.
    """
    from repro.obs import metrics as obs_metrics

    if seconds <= 0:
        return
    total = bytes_read + bytes_written
    gbs = total / seconds / 1e9
    obs_metrics.histogram(
        f"{op}.achieved_gbs.{variant}.{backend}",
        "achieved effective traffic rate per dispatch (GB/s)",
        buckets=GBS_BUCKETS,
    ).observe(gbs)
    obs_metrics.histogram(
        f"{op}.nnz_per_s.{variant}",
        "nonzeros (x RHS count) processed per second",
        buckets=NNZS_BUCKETS,
    ).observe(nnz * k / seconds)
    obs_metrics.counter(
        "perf.bytes_read", "theoretical bytes read by accounted dispatches"
    ).inc(bytes_read)
    obs_metrics.counter(
        "perf.bytes_written", "theoretical bytes written by accounted dispatches"
    ).inc(bytes_written)
    bw = stream_bandwidth()
    if bw:
        obs_metrics.histogram(
            f"{op}.stream_fraction.{variant}",
            "achieved GB/s over the host's measured STREAM bandwidth (R_EM)",
            buckets=FRACTION_BUCKETS,
        ).observe(gbs / bw)
    else:
        obs_metrics.counter(
            "perf.stream_bw.unavailable",
            "dispatches recorded before STREAM bandwidth was measured "
            "(run `repro bench trajectory` once to calibrate)",
        ).inc()


def record_cscv(op: str, variant: str, backend: str, data, seconds: float,
                k: int = 1) -> None:
    """Dispatch recording for the CSCV drivers (layout-exact bytes)."""
    traffic = cscv_z_bytes(data, k) if variant == "z" else cscv_m_bytes(data, k)
    record_dispatch(op, variant, backend, seconds=seconds,
                    bytes_read=traffic["read"], bytes_written=traffic["written"],
                    nnz=data.nnz, k=k)


def record_format(op: str, fmt, backend: str, seconds: float, k: int = 1) -> None:
    """Dispatch recording for generic :class:`SpMVFormat` instances."""
    traffic = format_bytes(fmt, k)
    record_dispatch(op, fmt.name, backend, seconds=seconds,
                    bytes_read=traffic["read"], bytes_written=traffic["written"],
                    nnz=fmt.nnz, k=k)


def record_build(*, seconds: float, bytes_written: float, nnz: int) -> None:
    """Record one cold CSCV build: output-bytes rate and nnz/s."""
    from repro.obs import metrics as obs_metrics

    if seconds <= 0:
        return
    obs_metrics.histogram(
        "build.achieved_gbs",
        "CSCV output arrays written per second of packing (GB/s)",
        buckets=GBS_BUCKETS,
    ).observe(bytes_written / seconds / 1e9)
    obs_metrics.histogram(
        "build.nnz_per_s", "nonzeros packed per second of cold build",
        buckets=NNZS_BUCKETS,
    ).observe(nnz / seconds)
    obs_metrics.counter(
        "perf.bytes_written", "theoretical bytes written by accounted dispatches"
    ).inc(bytes_written)


# ---------------------------------------------------------------------- #
# sharded execution (repro.dist) — recorded unconditionally, like the
# serve metrics: shard dispatch is rare and coarse enough that the
# histogram cost is noise, and topology-level latency must be visible
# without flipping the tracing switch.

#: Per-shard SpMV/SpMM wall-time buckets (seconds).
SHARD_SECONDS_BUCKETS = (1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2,
                         0.1, 0.25, 1.0, 2.5, 10.0)


def record_shard(op: str, seconds: float) -> None:
    """Record one shard's forward/adjoint compute time (any mode)."""
    from repro.obs import metrics as obs_metrics

    obs_metrics.histogram(
        f"dist.shard_seconds.{op}",
        "per-shard SpMV/SpMM wall time in sharded execution (seconds)",
        buckets=SHARD_SECONDS_BUCKETS,
    ).observe(seconds)


def record_reduce(op: str, seconds: float) -> None:
    """Record one fixed-order reduction over per-shard partials."""
    from repro.obs import metrics as obs_metrics

    obs_metrics.histogram(
        f"dist.reduce_seconds.{op}",
        "fixed-order reduction time over per-shard partials (seconds)",
        buckets=SHARD_SECONDS_BUCKETS,
    ).observe(seconds)


# ---------------------------------------------------------------------- #
# solver convergence accounting


class ConvergenceMeter:
    """Per-solver aggregation: iteration throughput + convergence rate.

    One instance per solver run.  :meth:`observe` is called once per
    iteration with the residual norm (and, when perf accounting is
    active, the iteration wall time); it maintains:

    * ``{solver}.iter_seconds`` — histogram of per-iteration wall time
      (only while perf accounting is active);
    * ``{solver}.residual_slope`` — gauge, mean of
      ``log(r_k / r_{k-1})`` over the run so far (negative = converging;
      ``-0.1`` means the residual shrinks ~10% per iteration);
    * ``{solver}.iters_to_tol`` — gauge, the first iteration where
      ``r_k / y_norm`` dropped below ``rtol`` (only when a tolerance was
      requested and reached).
    """

    __slots__ = ("solver", "y_norm", "rtol", "_prev", "_slope_sum",
                 "_slope_n", "_tol_hit")

    def __init__(self, solver: str, *, y_norm: float = 1.0, rtol: float = 0.0):
        self.solver = solver
        self.y_norm = y_norm or 1.0
        self.rtol = rtol
        self._prev: float | None = None
        self._slope_sum = 0.0
        self._slope_n = 0
        self._tol_hit = False

    def observe(self, k: int, rnorm: float, seconds: float | None = None) -> None:
        from repro.obs import metrics as obs_metrics

        if seconds is not None:
            obs_metrics.histogram(
                f"{self.solver}.iter_seconds",
                "solver iteration wall time (seconds)",
            ).observe(seconds)
        if self._prev is not None and self._prev > 0 and rnorm > 0:
            self._slope_sum += math.log(rnorm / self._prev)
            self._slope_n += 1
            obs_metrics.gauge(
                f"{self.solver}.residual_slope",
                "mean log residual ratio per iteration (negative = converging)",
            ).set(self._slope_sum / self._slope_n)
        self._prev = rnorm
        if (not self._tol_hit and self.rtol > 0
                and rnorm / self.y_norm < self.rtol):
            self._tol_hit = True
            obs_metrics.gauge(
                f"{self.solver}.iters_to_tol",
                "iterations needed to reach the requested tolerance",
            ).set(k + 1)

    def observe_event(self, event, seconds: float | None = None) -> None:
        """Typed-event form of :meth:`observe`.

        Consumes an :class:`~repro.recon.events.IterationEvent`, reading
        the event's driving norm so the meter stays solver-agnostic.
        """
        self.observe(event.k, event.norm, seconds)
