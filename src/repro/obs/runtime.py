"""Live metrics runtime: an HTTP ``/metrics`` endpoint + JSONL flusher.

Long-running work (a big reconstruction, the serving layer) needs
its telemetry *while it runs*, not in a post-mortem dump.  This module
provides the two standard transports, built purely on the stdlib:

* **HTTP exporter** — a daemon-thread ``ThreadingHTTPServer`` serving
  the registry in the Prometheus exposition format at ``/metrics``
  (plus ``/healthz``).  Opt in with ``REPRO_METRICS_PORT=<port>`` (0
  picks an ephemeral port) or :func:`start`.
* **JSONL flusher** — a daemon thread appending one
  ``{"ts": ..., "metrics": {...}}`` snapshot line to a file every
  ``REPRO_METRICS_FLUSH_SEC`` seconds (default 10), with a final flush
  registered via ``atexit`` so the last state of a crashed-or-finished
  run is never lost.  Opt in with ``REPRO_METRICS_FLUSH=<path>``.

Starting either transport also enables :mod:`repro.obs.perf` dispatch
accounting, so the endpoint immediately carries achieved-GB/s and
stream-fraction histograms.  When neither is configured nothing is
imported at runtime and the hot paths stay single-branch no-ops.
"""

from __future__ import annotations

import atexit
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.config import DEFAULT_METRICS_FLUSH_SEC, env_metrics_flush, env_metrics_port

__all__ = [
    "env_metrics_port",
    "env_metrics_flush",
    "MetricsServer",
    "MetricsFlusher",
    "start",
    "stop",
    "is_active",
    "server_port",
    "start_from_env",
]

#: Default seconds between JSONL metric snapshots (re-exported from config).
DEFAULT_FLUSH_INTERVAL = DEFAULT_METRICS_FLUSH_SEC


class _Handler(BaseHTTPRequestHandler):
    """Serves /metrics (Prometheus text) and /healthz; silent logs."""

    def do_GET(self):  # noqa: N802 (stdlib naming)
        if self.path.split("?")[0] == "/metrics":
            from repro.obs.export import prometheus_text
            from repro.obs.metrics import registry

            body = prometheus_text(registry).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
        elif self.path.split("?")[0] == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        else:
            body = b"not found; try /metrics\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # pragma: no cover - silence stderr
        pass


class MetricsServer:
    """Background HTTP server exposing the metrics registry."""

    def __init__(self, port: int = 0, host: str = "127.0.0.1"):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        """The actually-bound port (resolves port 0 requests)."""
        return self._httpd.server_address[1]

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)


class MetricsFlusher:
    """Periodic JSONL snapshots of the registry, with a final atexit flush."""

    def __init__(self, path: str, interval: float = DEFAULT_FLUSH_INTERVAL):
        if interval <= 0:
            raise ValueError("flush interval must be > 0")
        self.path = path
        self.interval = interval
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-flush", daemon=True
        )
        atexit.register(self._final_flush)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.flush()

    def flush(self) -> None:
        """Append one snapshot line (no-op when the registry is empty)."""
        from repro.obs.metrics import registry

        snap = registry.snapshot()
        if not snap:
            return
        line = json.dumps({"ts": time.time(), "metrics": snap})
        with self._lock:
            try:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
            except OSError:
                pass  # telemetry must never take the workload down

    def _final_flush(self) -> None:
        if not self._stop.is_set():
            self.stop()

    def stop(self) -> None:
        self._stop.set()
        self.flush()
        if self._thread.is_alive() and self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)


_server: MetricsServer | None = None
_flusher: MetricsFlusher | None = None
_lock = threading.Lock()


def start(*, port: int | None = None, flush_path: str | None = None,
          flush_interval: float = DEFAULT_FLUSH_INTERVAL) -> int | None:
    """Start the requested transports; returns the bound HTTP port (or None).

    Idempotent per transport: an already-running server/flusher is kept.
    Enables :mod:`repro.obs.perf` accounting as a side effect.
    """
    from repro.obs import perf

    global _server, _flusher
    with _lock:
        if port is not None and _server is None:
            _server = MetricsServer(port)
        if flush_path is not None and _flusher is None:
            _flusher = MetricsFlusher(flush_path, flush_interval)
        if _server is not None or _flusher is not None:
            perf.enable()
        return _server.port if _server is not None else None


def stop() -> None:
    """Stop both transports (perf accounting stays with the tracer state)."""
    from repro.obs import perf
    from repro.obs.trace import tracer

    global _server, _flusher
    with _lock:
        if _server is not None:
            _server.stop()
            _server = None
        if _flusher is not None:
            _flusher.stop()
            _flusher = None
        if not tracer.enabled:
            perf.disable()


def is_active() -> bool:
    return _server is not None or _flusher is not None


def server_port() -> int | None:
    """Port of the running exporter, or None."""
    return _server.port if _server is not None else None


def start_from_env() -> bool:
    """Apply ``REPRO_METRICS_*``; returns whether anything started."""
    port = env_metrics_port()
    flush_path, interval = env_metrics_flush()
    if port is None and flush_path is None:
        return False
    start(port=port, flush_path=flush_path, flush_interval=interval)
    return True
