"""Unified solver registry: one schema-checked entry point per solver.

The four reconstruction entry points grew up separately and diverged:
``sirt_reconstruct(op, y, relax=...)``, ``cgls_reconstruct(op, y,
damping=...)``, ``art_reconstruct(op, y, relax=...)`` and
``os_sart_reconstruct(csr, geom, y, num_subsets=...)`` each accept a
different parameter set, and nothing rejected a parameter the chosen
solver silently ignores.  This module puts them behind one registry of
:class:`SolverSpec` objects carrying

* a **parameter schema** — name, type, default, bounds — used to
  validate caller parameters *by name* (unknown or out-of-range
  parameters raise :class:`~repro.errors.ValidationError` messages that
  name the solver and its accepted parameters);
* **capabilities** — ``iterative``, ``batch`` (accepts an (m, k)
  sinogram stack), ``relax``, ``damping``, ``needs_geom``, ``resume``
  (accepts ``resume_from=`` checkpoints) — so generic
  callers (the :func:`repro.api.reconstruct` facade, the CLI, the
  serving layer) can branch on declared facts instead of solver names;
* a **batch guard** — whether a *specific* parameterisation may be
  coalesced into a shared SpMM batch without changing any column's
  bits (e.g. SIRT's ``rtol`` couples columns through the stacked norm,
  so ``rtol > 0`` jobs must run solo).

The legacy functions remain importable and unchanged; the registry
runners delegate to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "Param",
    "SolverSpec",
    "SOLVERS",
    "get_solver",
    "available_solvers",
]


_REQUIRED = object()


@dataclass(frozen=True)
class Param:
    """One solver parameter: type, default and bounds.

    ``low``/``high`` bound numeric parameters; ``low_open``/``high_open``
    make the corresponding bound exclusive.  ``choices`` restricts string
    parameters.  A default of ``None`` means "optional, solver decides".
    """

    name: str
    kind: type
    default: Any = None
    low: float | None = None
    high: float | None = None
    low_open: bool = False
    high_open: bool = False
    choices: tuple[str, ...] | None = None
    doc: str = ""

    def coerce(self, value, solver: str):
        """Validate and coerce *value*; raises :class:`ValidationError`."""
        where = f"solver {solver!r}: parameter {self.name!r}"
        if self.kind is bool:
            if isinstance(value, (bool, np.bool_)):
                return bool(value)
            raise ValidationError(f"{where} must be a bool, got {value!r}")
        if self.kind is int:
            # bool is an int subclass; reject it explicitly
            if isinstance(value, bool) or not isinstance(
                value, (int, np.integer)
            ):
                raise ValidationError(f"{where} must be an int, got {value!r}")
            value = int(value)
        elif self.kind is float:
            if isinstance(value, bool) or not isinstance(
                value, (int, float, np.integer, np.floating)
            ):
                raise ValidationError(f"{where} must be a number, got {value!r}")
            value = float(value)
        elif self.kind is str:
            if not isinstance(value, str):
                raise ValidationError(f"{where} must be a string, got {value!r}")
            if self.choices and value not in self.choices:
                raise ValidationError(
                    f"{where} must be one of {sorted(self.choices)}, got {value!r}"
                )
            return value
        if self.low is not None or self.high is not None:
            lo_ok = self.low is None or (
                value > self.low if self.low_open else value >= self.low
            )
            hi_ok = self.high is None or (
                value < self.high if self.high_open else value <= self.high
            )
            if not (lo_ok and hi_ok):
                lo = "(" if self.low_open else "["
                hi = ")" if self.high_open else "]"
                lo_v = "-inf" if self.low is None else f"{self.low:g}"
                hi_v = "inf" if self.high is None else f"{self.high:g}"
                raise ValidationError(
                    f"{where} must be in {lo}{lo_v}, {hi_v}{hi}, got {value!r}"
                )
        return value


@dataclass(frozen=True)
class SolverSpec:
    """One registered solver: schema, capabilities and a uniform runner.

    ``run(op, sinogram, *, geom=None, x0=None, callback=None,
    watchdog=None, **params)`` delegates to the legacy function with the
    solver's own calling convention (OS-SART extracts a CSR matrix from
    the operator, FBP passes the geometry positionally).
    """

    name: str
    doc: str
    runner: Callable[..., np.ndarray]
    params: tuple[Param, ...] = ()
    capabilities: frozenset = field(default_factory=frozenset)
    #: Returns a reason string when the given (validated) parameters
    #: prevent bitwise-safe batch coalescing, else None.
    batch_guard: Callable[[dict], str | None] | None = None

    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def supports(self, capability: str) -> bool:
        return capability in self.capabilities

    def defaults(self) -> dict:
        """Schema defaults (``None`` entries omitted)."""
        return {
            p.name: p.default
            for p in self.params
            if p.default is not None and p.default is not _REQUIRED
        }

    def validate_params(self, params: dict, *, apply_defaults: bool = False) -> dict:
        """Coerce *params* against the schema.

        Unknown names raise a :class:`ValidationError` naming this
        solver and every accepted parameter — the fix for solver-
        inapplicable flags being silently ignored.  With
        ``apply_defaults`` the returned dict also carries every schema
        default, so two callers passing equivalent parameterisations
        canonicalise to the same dict (the serving layer batches on it).
        """
        by_name = {p.name: p for p in self.params}
        unknown = sorted(set(params) - set(by_name))
        if unknown:
            accepted = ", ".join(self.param_names()) or "(none)"
            raise ValidationError(
                f"solver {self.name!r} does not accept parameter(s) "
                f"{', '.join(unknown)}; accepted parameters: {accepted}"
            )
        out = dict(self.defaults()) if apply_defaults else {}
        for name, value in params.items():
            out[name] = by_name[name].coerce(value, self.name)
        return out

    def coalescible(self, params: dict) -> str | None:
        """Why these parameters cannot join a shared batch (None = can).

        Solvers without the ``batch`` capability never coalesce; beyond
        that the spec's own guard may veto specific parameterisations.
        """
        if "batch" not in self.capabilities:
            return f"solver {self.name!r} does not support batched sinograms"
        if self.batch_guard is not None:
            return self.batch_guard(params)
        return None


# --------------------------------------------------------------------- #
# runners: adapt each legacy entry point to the uniform signature


def _run_sirt(op, sinogram, *, geom=None, x0=None, callback=None,
              watchdog=None, resume_from=None, **params):
    from repro.recon.sirt import sirt_reconstruct

    return sirt_reconstruct(
        op, sinogram, x0=x0, callback=callback, watchdog=watchdog,
        resume_from=resume_from, **params,
    )


def _run_cgls(op, sinogram, *, geom=None, x0=None, callback=None,
              watchdog=None, resume_from=None, **params):
    from repro.recon.cgls import cgls_reconstruct

    return cgls_reconstruct(
        op, sinogram, x0=x0, callback=callback, watchdog=watchdog,
        resume_from=resume_from, **params,
    )


def _run_art(op, sinogram, *, geom=None, x0=None, callback=None,
             watchdog=None, resume_from=None, **params):
    from repro.recon.art import art_reconstruct

    if resume_from is not None:
        raise ValidationError(
            "solver 'art' does not support resume_from (capability: "
            "resume)"
        )
    return art_reconstruct(
        op, sinogram, x0=x0, callback=callback, watchdog=watchdog, **params
    )


def _run_os_sart(op, sinogram, *, geom=None, x0=None, callback=None,
                 watchdog=None, resume_from=None, **params):
    from repro.recon.os_sart import os_sart_reconstruct

    if geom is None:
        raise ValidationError(
            "solver 'os-sart' requires geom= (its ordered subsets "
            "partition the view axis)"
        )
    return os_sart_reconstruct(
        op.to_csr(), geom, sinogram,
        x0=x0, callback=callback, watchdog=watchdog,
        resume_from=resume_from, **params,
    )


def _run_fbp(op, sinogram, *, geom=None, x0=None, callback=None,
             watchdog=None, resume_from=None, **params):
    from repro.recon.fbp import fbp_reconstruct

    if geom is None:
        raise ValidationError(
            "solver 'fbp' requires geom= (the ramp filter needs the "
            "angular sampling)"
        )
    if resume_from is not None:
        raise ValidationError(
            "solver 'fbp' is analytic; resume_from= does not apply"
        )
    return fbp_reconstruct(op, sinogram, geom, **params)


def _sirt_batch_guard(params: dict) -> str | None:
    if params.get("rtol", 0.0):
        return ("sirt with rtol > 0 couples batch columns through the "
                "stacked residual norm")
    return None


_ITERATIONS = Param("iterations", int, 50, low=1,
                    doc="iteration budget (full sweeps)")
_NONNEG = Param("nonneg", bool, True,
                doc="project onto the nonnegative orthant each iteration")


SOLVERS: dict[str, SolverSpec] = {
    spec.name: spec
    for spec in (
        SolverSpec(
            name="sirt",
            doc="Simultaneous Iterative Reconstruction Technique",
            runner=_run_sirt,
            params=(
                _ITERATIONS,
                Param("relax", float, 1.0, low=0.0, high=4.0, low_open=True,
                      doc="relaxation factor (values > 2 need a watchdog "
                          "to recover)"),
                _NONNEG,
                Param("rtol", float, 0.0, low=0.0,
                      doc="stop once ||resid||/||y|| falls below this "
                          "(0 disables)"),
            ),
            capabilities=frozenset({"iterative", "batch", "relax", "resume"}),
            batch_guard=_sirt_batch_guard,
        ),
        SolverSpec(
            name="cgls",
            doc="Conjugate gradients on the normal equations",
            runner=_run_cgls,
            params=(
                Param("iterations", int, 30, low=1,
                      doc="iteration budget"),
                Param("rtol", float, 1e-8, low=0.0,
                      doc="per-column stop on ||A^T r||/||A^T y||"),
                Param("damping", float, 0.0, low=0.0,
                      doc="Tikhonov parameter lambda >= 0"),
            ),
            capabilities=frozenset(
                {"iterative", "batch", "damping", "resume"}
            ),
            # per-column gamma/alpha/beta and the active-column freeze
            # keep every column bitwise equal to its solo run, rtol
            # included — no guard needed
        ),
        SolverSpec(
            name="art",
            doc="Blocked ART (SART weighting, row-action flavour)",
            runner=_run_art,
            params=(
                Param("iterations", int, 10, low=1, doc="full sweeps"),
                Param("relax", float, 0.5, low=0.0, high=2.0,
                      low_open=True, high_open=True,
                      doc="relaxation factor in (0, 2)"),
                _NONNEG,
            ),
            capabilities=frozenset({"iterative", "relax"}),
        ),
        SolverSpec(
            name="os-sart",
            doc="Ordered-subsets SART",
            runner=_run_os_sart,
            params=(
                Param("iterations", int, 5, low=1,
                      doc="full passes over all subsets"),
                Param("num_subsets", int, 8, low=1,
                      doc="interleaved view subsets per pass"),
                Param("relax", float, 1.0, low=0.0, high=4.0, low_open=True,
                      doc="relaxation factor"),
                _NONNEG,
            ),
            capabilities=frozenset(
                {"iterative", "batch", "relax", "needs_geom", "resume"}
            ),
        ),
        SolverSpec(
            name="fbp",
            doc="Filtered back-projection through the matrix adjoint",
            runner=_run_fbp,
            params=(
                Param("window", str, "ramlak",
                      choices=("ramlak", "hann"),
                      doc="ramp-filter apodisation window"),
                _NONNEG,
            ),
            capabilities=frozenset({"needs_geom"}),
        ),
    )
}


def available_solvers() -> list[str]:
    """Registered solver names, sorted."""
    return sorted(SOLVERS)


def get_solver(name) -> SolverSpec:
    """Look up a solver by name (``_``/``-`` are interchangeable)."""
    if not isinstance(name, str):
        raise ValidationError(
            f"solver must be a string, got {type(name).__name__}"
        )
    key = name.strip().lower().replace("_", "-")
    try:
        return SOLVERS[key]
    except KeyError:
        raise ValidationError(
            f"unknown solver {name!r}; options: {available_solvers()}"
        ) from None
