"""Solver checkpoint/resume: crash-safe iterative reconstruction.

A long SIRT/CGLS/OS-SART run that dies at iteration 40 of 50 should not
restart from zero.  This module defines the resumable unit of solver
state and the machinery around it:

* :class:`CheckpointState` — the *complete* internal state of a solver
  after iteration ``k``: the exact recurrence arrays (not just the
  iterate), the solver name, a hash of the validated parameters, and the
  residual history so far.  Resuming from it continues the run
  **bitwise-identically** to one that was never interrupted — the solvers
  restore the arrays verbatim and start the loop at ``k + 1``, executing
  the exact floating-point operations the uninterrupted run would have.
* :func:`save_checkpoint` / :func:`load_checkpoint` — atomic *and
  durable* persistence (single ``.npz`` blob staged through
  :func:`~repro.utils.durable.write_bytes_durable`), with the
  ``ckpt.store`` fault-injection site for chaos testing.  Corrupt or
  truncated files load as :class:`~repro.errors.FormatError`, never as
  silently-wrong state.
* :class:`CheckpointWriter` — an :class:`~repro.recon.events
  .IterationEvent` consumer that persists a checkpoint every
  ``REPRO_CKPT_EVERY`` iterations via the event's lazy
  ``state_provider``, plus a ``store()`` method for forced checkpoints
  (graceful drain).  Store failures degrade: counted, never fatal to the
  solve.
* :func:`column_state` — slices one column out of a *batched* checkpoint
  so a job that ran coalesced in a shared SpMM batch can be recovered
  solo.  Valid because every batch-capable solver here keeps each column
  bitwise equal to its solo run.

What the state arrays are per solver (all shapes are the solvers'
internal 2-D batch forms; ``k_cols`` is the batch width):

=========  =============================================================
solver     arrays
=========  =============================================================
sirt       ``x`` (n, k_cols) in the operator dtype
cgls       ``x, r, s, p`` (2-D float64), ``gamma, gamma0`` (k_cols,)
           float64, ``active`` (k_cols,) bool — the full CG recurrence,
           from which the resumed run re-derives every later step
os-sart    ``x`` (n, k_cols) float64
=========  =============================================================
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import FormatError, ValidationError
from repro.utils.durable import write_bytes_durable

__all__ = [
    "CheckpointState",
    "CheckpointWriter",
    "solver_params_hash",
    "save_checkpoint",
    "load_checkpoint",
    "column_state",
]

#: On-disk container version (bump on incompatible layout changes).
_VERSION = 1

#: npz entry prefix for state arrays (keeps meta/array namespaces apart).
_ARR = "arr_"


@dataclass(frozen=True)
class CheckpointState:
    """Resumable solver state captured after completing iteration ``k``.

    Attributes
    ----------
    solver : str
        Registry name of the solver that produced the state.
    k : int
        Zero-based index of the last *completed* iteration; resuming
        starts the loop at ``k + 1``.
    params_hash : str
        :func:`solver_params_hash` of the validated parameterisation the
        run used.  Resume refuses a mismatch — continuing a run under
        different parameters would be silently wrong, not resumed.
    arrays : mapping of str to numpy.ndarray
        The solver's internal recurrence arrays (see the module table).
    residuals : tuple of float
        Driving residual norm of every completed iteration up to and
        including ``k`` (progress-history continuity for consumers).
    """

    solver: str
    k: int
    params_hash: str
    arrays: Mapping[str, np.ndarray]
    residuals: tuple = field(default_factory=tuple)

    def require(self, solver: str, keys: frozenset | set) -> dict:
        """Validate this state belongs to *solver* and carries *keys*.

        Returns the arrays dict.  Raises :class:`ValidationError` on a
        solver mismatch or missing arrays — the errors a caller gets for
        feeding a CGLS checkpoint to SIRT.
        """
        if self.solver != solver:
            raise ValidationError(
                f"resume_from is a {self.solver!r} checkpoint; this run "
                f"is {solver!r}"
            )
        missing = sorted(set(keys) - set(self.arrays))
        if missing:
            raise ValidationError(
                f"{solver!r} checkpoint is missing state array(s): "
                f"{', '.join(missing)}"
            )
        if self.k < 0:
            raise ValidationError("checkpoint k must be >= 0")
        return dict(self.arrays)


def solver_params_hash(solver: str, params: Mapping) -> str:
    """Content hash of a validated solver parameterisation.

    Canonical JSON (sorted keys) over the solver name and its
    schema-validated parameters — two equivalent parameterisations hash
    equal, anything differing (even a default made explicit *after*
    validation applied defaults) does not.
    """
    doc = json.dumps(
        {"solver": solver, "params": dict(params)},
        sort_keys=True, separators=(",", ":"), default=str,
    )
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:32]


def save_checkpoint(state: CheckpointState, path) -> None:
    """Persist *state* to *path* atomically and durably.

    One ``.npz`` blob holding the state arrays plus a JSON meta entry,
    staged next to *path* and renamed in with full fsync discipline — a
    crash leaves either the previous checkpoint or the new one, never a
    torn file.  Fires the ``ckpt.store`` fault site first (chaos tests
    make this raise ``OSError``; callers that can degrade catch it).
    """
    from repro.resilience.faults import fire

    fire("ckpt.store")
    meta = {
        "version": _VERSION,
        "solver": state.solver,
        "k": int(state.k),
        "params_hash": state.params_hash,
        "residuals": [float(v) for v in state.residuals],
    }
    buf = io.BytesIO()
    np.savez(
        buf,
        __meta__=np.frombuffer(
            json.dumps(meta, separators=(",", ":")).encode("utf-8"),
            dtype=np.uint8,
        ),
        **{_ARR + name: np.asarray(a) for name, a in state.arrays.items()},
    )
    write_bytes_durable(path, buf.getvalue())


def load_checkpoint(path) -> CheckpointState:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Raises
    ------
    FormatError
        On a truncated, corrupt or wrong-version file.  (A *missing*
        file raises ``OSError`` — absence and corruption are different
        recovery decisions.)
    """
    try:
        with np.load(path) as z:
            meta = json.loads(bytes(z["__meta__"]))
            arrays = {
                name[len(_ARR):]: np.ascontiguousarray(z[name])
                for name in z.files
                if name.startswith(_ARR)
            }
    except FileNotFoundError:
        raise
    except (OSError, ValueError, KeyError, json.JSONDecodeError,
            EOFError, zipfile.BadZipFile) as exc:
        raise FormatError(f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(meta, dict) or meta.get("version") != _VERSION:
        raise FormatError(
            f"checkpoint {path}: unsupported version {meta.get('version')!r}"
        )
    try:
        return CheckpointState(
            solver=str(meta["solver"]),
            k=int(meta["k"]),
            params_hash=str(meta["params_hash"]),
            arrays=arrays,
            residuals=tuple(float(v) for v in meta["residuals"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"checkpoint {path}: bad meta ({exc})") from exc


def column_state(state: CheckpointState, j: int) -> CheckpointState:
    """Slice column *j* out of a batched checkpoint.

    Every batch-capable solver keeps each column of a coalesced run
    bitwise equal to the same job run solo, so resuming column *j* alone
    from the sliced state completes it with exactly the bits the solo
    uninterrupted run would have produced.  Arrays whose trailing
    (2-D) or only (1-D) axis spans the batch are sliced to width 1;
    anything else is copied whole.  The stacked-norm ``residuals``
    history is dropped — it measured the whole batch, not this column.
    """
    x = np.asarray(state.arrays["x"])
    if x.ndim != 2:
        raise ValidationError(
            "column_state needs a batched checkpoint (2-D x); got "
            f"x with shape {x.shape}"
        )
    width = x.shape[1]
    if not (0 <= j < width):
        raise ValidationError(
            f"column {j} out of range for batch width {width}"
        )
    arrays = {}
    for name, a in state.arrays.items():
        a = np.asarray(a)
        if a.ndim == 2 and a.shape[1] == width:
            arrays[name] = np.ascontiguousarray(a[:, j:j + 1])
        elif a.ndim == 1 and a.shape[0] == width:
            arrays[name] = a[j:j + 1].copy()
        else:
            arrays[name] = a.copy()
    return CheckpointState(
        solver=state.solver, k=state.k, params_hash=state.params_hash,
        arrays=arrays, residuals=(),
    )


class CheckpointWriter:
    """Event consumer that persists a checkpoint every *every* iterations.

    Attach as (or chain from) a solver ``callback``.  On each event it
    appends the driving norm to its residual history; every *every*
    iterations (``REPRO_CKPT_EVERY`` by default) it captures the solver
    state through the event's lazy ``state_provider`` and persists it
    with :func:`save_checkpoint`.  A persistence failure (disk full,
    injected fault) increments :attr:`errors` and the
    ``ckpt.store.errors`` metric but never aborts the solve — a solver
    that cannot checkpoint still reconstructs.

    :meth:`store` forces a checkpoint of the most recent event outside
    the cadence — the graceful-drain path.  It must be called from the
    solver's callback context (synchronously, while the iteration's
    state is live); see ``IterationEvent.state_provider``.
    """

    accepts_events = True

    def __init__(self, path, *, every: int | None = None,
                 params_hash: str = "", residuals: tuple = (), chain=None):
        from repro import config

        self.path = path
        self.params_hash = params_hash
        self.every = int(every) if every else config.runtime.ckpt_every
        if self.every < 1:
            raise ValidationError("checkpoint cadence must be >= 1")
        #: Residual norms of every iteration seen (seeded with the prior
        #: run's history when resuming, so the stream stays continuous).
        self.residuals: list = list(residuals)
        #: Most recently persisted state (None until the first store).
        self.last_state: CheckpointState | None = None
        self.stored = 0
        self.errors = 0
        self._last_event = None
        self._chain = chain

    def __call__(self, event) -> None:
        self.residuals.append(event.norm)
        self._last_event = event
        if (event.k + 1) % self.every == 0:
            self.store()
        if self._chain is not None:
            self._chain(event)

    def store(self) -> CheckpointState | None:
        """Capture and persist the state of the last event seen, now.

        Returns the captured :class:`CheckpointState` (even when
        persistence failed — the in-memory state is still good for an
        in-process resume), or None when no checkpointable event has
        arrived yet.
        """
        from repro.obs import metrics as obs_metrics

        event = self._last_event
        if event is None or event.state_provider is None:
            return None
        state = CheckpointState(
            solver=event.solver,
            k=event.k,
            params_hash=self.params_hash,
            arrays=event.state_provider(),
            residuals=tuple(self.residuals),
        )
        try:
            save_checkpoint(state, self.path)
        except OSError:
            self.errors += 1
            obs_metrics.counter(
                "ckpt.store.errors",
                "checkpoint persistence failures (solve continued)",
            ).inc()
        else:
            self.stored += 1
            obs_metrics.counter(
                "ckpt.stored", "solver checkpoints persisted"
            ).inc()
        self.last_state = state
        return state
