"""ART (Kaczmarz) reconstruction — the classical row-action solver.

ART sweeps the sinogram rows; each row update

.. math:: x \\leftarrow x + \\lambda \\frac{y_i - a_i^T x}{\\|a_i\\|^2} a_i

needs row access, which is why "CSR-based SpMV does well in ART-type
algorithms" (Section III).  The implementation here performs *blocked*
ART: rows are processed in view-sized batches with SpMV on the batch
(this is also called OS-SART), so the per-iteration cost is dominated by
the SpMV kernels being benchmarked.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs.trace import span
from repro.recon.events import IterationEvent, as_event_callback
from repro.recon.linops import ProjectionOperator
from repro.resilience.guards import check as guard_check
from repro.resilience.watchdog import resolve_watchdog
from repro.sparse.csr import CSRMatrix
from repro.utils.arrays import check_1d, ensure_dtype


def kaczmarz_sweep(
    csr: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    row_norms_sq: np.ndarray,
    relax: float = 1.0,
) -> np.ndarray:
    """One full classical Kaczmarz sweep (row by row, in place on *x*).

    Exact row-action reference; O(nnz) per sweep but Python-loop based —
    use for validation-scale problems and convergence tests.
    """
    row_ptr, col_idx, vals = csr.row_ptr, csr.col_idx, csr.vals
    for i in range(csr.shape[0]):
        a, b = int(row_ptr[i]), int(row_ptr[i + 1])
        if a == b or row_norms_sq[i] == 0.0:
            continue
        cols = col_idx[a:b]
        av = vals[a:b]
        resid = y[i] - av @ x[cols]
        x[cols] += relax * resid / row_norms_sq[i] * av
    return x


def art_reconstruct(
    op: ProjectionOperator,
    sinogram: np.ndarray,
    *,
    iterations: int = 10,
    relax: float = 0.5,
    x0: np.ndarray | None = None,
    nonneg: bool = True,
    callback=None,
    watchdog=None,
) -> np.ndarray:
    """Blocked ART / SIRT-flavoured row-action reconstruction.

    Each iteration performs ``x += relax * D_c A^T D_r (y - A x)`` where
    ``D_r`` and ``D_c`` are inverse row-sum and column-sum diagonal
    weights (the SART weighting, convergent for consistent data).

    Parameters
    ----------
    op : ProjectionOperator
        Forward/adjoint pair (any format).
    sinogram : array
        Measured data ``y`` of length ``shape[0]``.
    iterations : int
        Full sweeps to run.
    relax : float
        Relaxation factor in (0, 2).
    nonneg : bool
        Project onto the nonnegative orthant each iteration (attenuation
        cannot be negative).
    callback : callable, optional
        Per-iteration hook: legacy ``callback(k, x, residual_norm)`` or
        an :class:`~repro.recon.events.IterationEvent` consumer.
    watchdog : bool or ResidualWatchdog, optional
        Divergence guard; see :func:`repro.recon.sirt.sirt_reconstruct`.
    """
    if iterations < 1:
        raise ValidationError("iterations must be >= 1")
    if not (0.0 < relax < 2.0):
        raise ValidationError("relax must be in (0, 2)")
    m, n = op.shape
    y = ensure_dtype(check_1d(sinogram, m, "sinogram"), op.dtype, "sinogram")
    guard_check(y, "sinogram", where="art")
    x = (
        np.zeros(n, dtype=op.dtype)
        if x0 is None
        else ensure_dtype(check_1d(x0, n, "x0"), op.dtype, "x0").copy()
    )

    ones_n = np.ones(n, dtype=op.dtype)
    ones_m = np.ones(m, dtype=op.dtype)
    row_sums = np.asarray(op.forward(ones_n), dtype=np.float64)
    col_sums = np.asarray(op.adjoint(ones_m), dtype=np.float64)
    inv_row = np.divide(1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 1e-12)
    inv_col = np.divide(1.0, col_sums, out=np.zeros_like(col_sums), where=col_sums > 1e-12)

    wd = resolve_watchdog(watchdog, solver="art", relax=relax)
    x_init = x.copy() if wd is not None else None
    cb = as_event_callback(callback)

    residual_gauge = obs_metrics.gauge("art.residual", "last ART residual norm")
    iter_counter = obs_metrics.counter("art.iterations", "ART sweeps run")
    meter = obs_perf.ConvergenceMeter("art", y_norm=float(np.linalg.norm(y)))
    for k in range(iterations):
        it_t0 = obs_perf.clock() if obs_perf.active else 0.0
        with span("art.iter", k=k) as it_span:
            resid = y - op.forward(x)
            rnorm = float(np.linalg.norm(resid))
            event = IterationEvent(
                k=k, x=x, residual_norm=rnorm, normal_residual_norm=None,
                solver="art",
            )
            if wd is not None and wd.observe_event(event) == "restart":
                x = np.asarray(
                    wd.best_x if wd.best_x is not None else x_init,
                    dtype=op.dtype,
                ).copy()
                relax = wd.relax
                it_span.set(residual=rnorm, restart=True)
                continue
            weighted = (resid.astype(np.float64) * inv_row).astype(op.dtype)
            update = op.adjoint(weighted).astype(np.float64) * inv_col
            x = (x.astype(np.float64) + relax * update).astype(op.dtype)
            if nonneg:
                np.maximum(x, 0, out=x)
            it_span.set(residual=rnorm)
        residual_gauge.set(rnorm)
        iter_counter.inc()
        meter.observe_event(
            event,
            seconds=obs_perf.clock() - it_t0 if obs_perf.active else None,
        )
        if cb is not None:
            cb(event.with_x(x))
    return x
