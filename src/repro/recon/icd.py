"""ICD — Iterative Coordinate Descent reconstruction.

The MBIR-family solver ([10], [12] in the paper) that updates one pixel at
a time: with residual ``r = y - A x``,

.. math:: \\Delta_j = \\frac{a_j^T r}{\\|a_j\\|^2},\\quad
          x_j \\leftarrow x_j + \\Delta_j,\\quad r \\leftarrow r - \\Delta_j a_j.

Every update reads and writes one matrix **column** — the access pattern
that makes CSC-style storage (and hence CSCV) "have a wider application
range than CSR" (Section III): CSR cannot serve ICD without a transposed
copy.

Supports plain sweeps, random-order sweeps, and greedy updates, plus an
optional quadratic regulariser (``theta`` smoothing toward the current
neighbourhood mean is deliberately omitted — out of the paper's scope).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sparse.csc import CSCMatrix
from repro.utils.arrays import check_1d, ensure_dtype


def icd_reconstruct(
    csc: CSCMatrix,
    sinogram: np.ndarray,
    *,
    sweeps: int = 5,
    x0: np.ndarray | None = None,
    nonneg: bool = True,
    order: str = "sequential",
    seed: int = 0,
    callback=None,
) -> np.ndarray:
    """Run ICD sweeps over all pixels.

    Parameters
    ----------
    csc : CSCMatrix
        The system matrix in column-major form (ICD's native layout).
    order : str
        ``"sequential"`` or ``"random"`` column visit order per sweep.
    callback : callable, optional
        ``callback(sweep, x, residual_norm)`` after each sweep.
    """
    if sweeps < 1:
        raise ValidationError("sweeps must be >= 1")
    if order not in ("sequential", "random"):
        raise ValidationError("order must be 'sequential' or 'random'")
    m, n = csc.shape
    y = ensure_dtype(check_1d(sinogram, m, "sinogram"), csc.dtype, "sinogram")
    x = (
        np.zeros(n, dtype=np.float64)
        if x0 is None
        else ensure_dtype(check_1d(x0, n, "x0"), np.float64, "x0").copy()
    )

    col_ptr, row_idx, vals = csc.col_ptr, csc.row_idx, csc.vals
    # residual in float64 to keep thousands of rank-1 updates stable
    r = y.astype(np.float64) - _forward(csc, x.astype(csc.dtype)).astype(np.float64)
    norms = np.zeros(n)
    np.add.at(norms, np.repeat(np.arange(n), np.diff(col_ptr)), vals.astype(np.float64) ** 2)

    rng = np.random.default_rng(seed)
    for sweep in range(sweeps):
        cols = np.arange(n)
        if order == "random":
            rng.shuffle(cols)
        for j in cols:
            a, b = int(col_ptr[j]), int(col_ptr[j + 1])
            if a == b or norms[j] == 0.0:
                continue
            rows = row_idx[a:b]
            av = vals[a:b].astype(np.float64)
            delta = (av @ r[rows]) / norms[j]
            if nonneg and x[j] + delta < 0.0:
                delta = -x[j]  # clamp at the constraint
            if delta != 0.0:
                x[j] += delta
                r[rows] -= delta * av
        if callback is not None:
            callback(sweep, x.astype(csc.dtype), float(np.linalg.norm(r)))
    return x.astype(csc.dtype)


def icd_single_update(
    csc: CSCMatrix, x: np.ndarray, r: np.ndarray, j: int, norms: np.ndarray
) -> float:
    """One exact coordinate update (exposed for tests); returns delta."""
    a, b = int(csc.col_ptr[j]), int(csc.col_ptr[j + 1])
    if a == b or norms[j] == 0.0:
        return 0.0
    rows = csc.row_idx[a:b]
    av = csc.vals[a:b].astype(np.float64)
    delta = float(av @ r[rows]) / float(norms[j])
    x[j] += delta
    r[rows] -= delta * av
    return delta


def _forward(csc: CSCMatrix, x: np.ndarray) -> np.ndarray:
    y = np.zeros(csc.shape[0], dtype=csc.dtype)
    return csc.spmv_into(x, y)
