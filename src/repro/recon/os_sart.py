"""OS-SART — ordered-subsets SART.

The acceleration used by clinical iterative reconstructors: partition the
views into ``num_subsets`` interleaved subsets and apply a SART update
per subset instead of per full sweep, multiplying the effective iteration
count.  Each subset update is SpMV over a row slice of the matrix — the
workload distribution the paper's row-partitioned threading mirrors.

The sinogram may be a single vector (m,) or a stack (m, k); a stack runs
every subset update as a batched SpMM over the row slice and returns an
(n, k) image stack with each slice equal to its single-sinogram run.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs.trace import span
from repro.recon.events import IterationEvent, as_event_callback
from repro.resilience.guards import check as guard_check
from repro.resilience.watchdog import resolve_watchdog
from repro.sparse.csr import CSRMatrix
from repro.utils.arrays import as_column_batch


def view_subsets(geom: ParallelBeamGeometry, num_subsets: int) -> list[np.ndarray]:
    """Interleaved view subsets (maximally spread angles per subset)."""
    if num_subsets < 1 or num_subsets > geom.num_views:
        raise ValidationError("num_subsets must be in [1, num_views]")
    return [np.arange(s, geom.num_views, num_subsets) for s in range(num_subsets)]


def _row_slice(csr: CSRMatrix, rows: np.ndarray) -> CSRMatrix:
    """CSR sub-matrix containing only *rows* (same column space)."""
    ptr = csr.row_ptr
    counts = np.diff(ptr)[rows]
    new_ptr = np.zeros(rows.size + 1, dtype=ptr.dtype)
    np.cumsum(counts, out=new_ptr[1:])
    take = np.concatenate(
        [np.arange(ptr[r], ptr[r + 1]) for r in rows]
    ) if rows.size else np.zeros(0, dtype=np.int64)
    return CSRMatrix(
        (rows.size, csr.shape[1]), new_ptr, csr.col_idx[take], csr.vals[take]
    )


def os_sart_reconstruct(
    csr: CSRMatrix,
    geom: ParallelBeamGeometry,
    sinogram: np.ndarray,
    *,
    num_subsets: int = 8,
    iterations: int = 5,
    relax: float = 1.0,
    x0: np.ndarray | None = None,
    nonneg: bool = True,
    callback=None,
    watchdog=None,
    resume_from=None,
) -> np.ndarray:
    """Run OS-SART for *iterations* full passes over all subsets.

    With ``num_subsets=1`` this reduces to plain SART.

    ``resume_from`` continues an interrupted run from a
    :class:`~repro.recon.checkpoint.CheckpointState` captured after pass
    ``k``: the float64 iterate is restored verbatim and the loop starts
    at ``k + 1``, bitwise-identical to the uninterrupted run (the subset
    scalings are recomputed deterministically from the matrix).
    Incompatible with ``x0`` and ``watchdog``.

    ``watchdog`` (bool or ResidualWatchdog) enables the divergence
    guard; its residual stream is a per-pass proxy — the root of the
    summed squared per-subset residual norms already computed during
    the pass, costing no extra SpMM.  Relax values above 2 are accepted
    so a guarded run can recover from over-relaxation (see
    :func:`repro.recon.sirt.sirt_reconstruct`).
    """
    if iterations < 1:
        raise ValidationError("iterations must be >= 1")
    if not (0.0 < relax <= 4.0):
        raise ValidationError("relax must be in (0, 4]")
    m, n = csr.shape
    y, was_1d = as_column_batch(sinogram, m, "sinogram", csr.dtype)
    guard_check(y, "sinogram", where="os_sart")
    k_cols = y.shape[1]
    start = 0
    if resume_from is not None:
        if x0 is not None:
            raise ValidationError(
                "x0 cannot be combined with resume_from (the checkpoint "
                "is the starting iterate)"
            )
        arrays = resume_from.require("os_sart", {"x"})
        xr = np.asarray(arrays["x"])
        if xr.shape != (n, k_cols):
            raise ValidationError(
                f"os_sart checkpoint x has shape {xr.shape}; this "
                f"problem needs {(n, k_cols)}"
            )
        x = np.array(xr, dtype=np.float64, copy=True)
        start = resume_from.k + 1
    elif x0 is None:
        x = np.zeros((n, k_cols), dtype=np.float64)
    else:
        x0b, x0_1d = as_column_batch(x0, n, "x0", np.float64)
        if x0_1d != was_1d or x0b.shape[1] != k_cols:
            raise ValidationError("x0 must match the sinogram batch shape")
        x = x0b.copy()

    subsets = view_subsets(geom, num_subsets)
    pieces = []
    for views in subsets:
        rows = (views[:, None] * geom.num_bins + np.arange(geom.num_bins)[None, :]).ravel()
        sub = _row_slice(csr, rows)
        row_sums = np.asarray(sub.spmv(np.ones(n, dtype=csr.dtype)), dtype=np.float64)
        col_sums = sub.transpose_spmv(np.ones(rows.size, dtype=csr.dtype)).astype(np.float64)
        inv_r = np.divide(1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 1e-12)
        inv_c = np.divide(1.0, col_sums, out=np.zeros_like(col_sums), where=col_sums > 1e-12)
        pieces.append((sub, rows, inv_r, inv_c))

    wd = resolve_watchdog(watchdog, solver="os_sart", relax=relax)
    if wd is not None and resume_from is not None:
        raise ValidationError(
            "watchdog cannot be combined with resume_from (restart "
            "interventions make the run non-resumable bitwise)"
        )
    x_init = x.copy() if wd is not None else None
    cb = as_event_callback(callback)

    def _state() -> dict:
        # lazy checkpoint capture: x is mutated in place, so a call from
        # the callback copies the post-pass iterate
        return {"x": x.copy()}

    iter_counter = obs_metrics.counter("os_sart.iterations", "OS-SART passes run")
    meter = obs_perf.ConvergenceMeter(
        "os_sart", y_norm=float(np.linalg.norm(y)) or 1.0
    )
    for it in range(start, iterations):
        it_t0 = obs_perf.clock() if obs_perf.active else 0.0
        with span("os_sart.iter", k=it, subsets=len(pieces), batch=k_cols) as it_span:
            x_pass = x.copy() if wd is not None else None
            resid_sq = 0.0
            for sub, rows, inv_r, inv_c in pieces:
                resid = y[rows].astype(np.float64) - sub.spmm(x.astype(csr.dtype)).astype(
                    np.float64
                )
                resid_sq += float(np.linalg.norm(resid)) ** 2
                scaled = np.ascontiguousarray((resid * inv_r[:, None]).astype(csr.dtype))
                back = sub.transpose_spmm(scaled).astype(np.float64)
                x += relax * inv_c[:, None] * back
                if nonneg:
                    np.maximum(x, 0, out=x)
            if wd is not None and wd.observe_event(IterationEvent(
                k=it, x=x_pass, residual_norm=float(np.sqrt(resid_sq)),
                normal_residual_norm=None, solver="os_sart",
            )) == "restart":
                # discard the pass, resume from the best iterate with
                # the backed-off relaxation
                x = np.array(
                    wd.best_x if wd.best_x is not None else x_init, copy=True
                )
                relax = wd.relax
                it_span.set(restart=True)
                continue
        iter_counter.inc()
        meter.observe(
            it, float(np.sqrt(resid_sq)),
            seconds=obs_perf.clock() - it_t0 if obs_perf.active else None,
        )
        if cb is not None:
            full_resid = y.astype(np.float64) - csr.spmm(x.astype(csr.dtype)).astype(np.float64)
            rnorm = float(np.linalg.norm(full_resid))
            obs_metrics.gauge("os_sart.residual", "last OS-SART residual norm").set(rnorm)
            xk = x.astype(csr.dtype)
            cb(IterationEvent(
                k=it, x=xk[:, 0] if was_1d else xk, residual_norm=rnorm,
                normal_residual_norm=None, solver="os_sart",
                state_provider=_state,
            ))
    out = x.astype(csr.dtype)
    return out[:, 0] if was_1d else out
