"""Linear-operator facade over any SpMV format.

Solvers in this package only speak :class:`ProjectionOperator`:
``op.forward(x)`` is ``A x`` (forward projection) and ``op.adjoint(y)``
is ``A^T y`` (back-projection).  Formats that implement
``transpose_spmv`` (CSR, CSC, MKL-like, both CSCVs) get a native adjoint;
anything else falls back to an internally-built CSC copy, so every format
can drive every solver.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sparse.matrix_base import SpMVFormat
from repro.utils.arrays import check_1d, ensure_dtype


class ProjectionOperator:
    """Forward/adjoint operator pair over one sparse format."""

    def __init__(self, fmt: SpMVFormat):
        self.fmt = fmt
        self._adj_fallback: SpMVFormat | None = None

    @property
    def shape(self) -> tuple[int, int]:
        return self.fmt.shape

    @property
    def dtype(self) -> np.dtype:
        return self.fmt.dtype

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A x``."""
        return self.fmt.spmv(x, out)

    def adjoint(self, y: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``x = A^T y``; uses the format's native transpose when present."""
        native = getattr(self.fmt, "transpose_spmv", None)
        if native is not None:
            return native(y, out)
        if self._adj_fallback is None:
            self._adj_fallback = self._build_fallback()
        res = self._adj_fallback.spmv(
            ensure_dtype(check_1d(y, self.shape[0], "y"), self.dtype, "y")
        )
        if out is None:
            return res
        out[:] = res
        return out

    def _build_fallback(self) -> SpMVFormat:
        from repro.sparse.coo import COOMatrix
        from repro.sparse.csr import CSRMatrix

        dense_like = getattr(self.fmt, "to_dense", None)
        if dense_like is None:  # pragma: no cover - ABC guarantees to_dense
            raise ValidationError("format cannot provide an adjoint")
        m, n = self.shape
        dense = self.fmt.to_dense()
        coo = COOMatrix.from_dense(dense.T, dtype=self.dtype)
        return CSRMatrix.from_coo_matrix(coo)

    # ------------------------------------------------------------------ #
    # derived quantities the solvers need

    def row_norms_sq(self) -> np.ndarray:
        """``||a_i||^2`` per row — ART step sizes.

        Computed with two SpMV-style passes so it works for every format:
        ``A^T`` applied to unit vectors is wasteful, so instead square via
        ``(A .* A) 1`` using the dense fallback only if the format exposes
        no value array.
        """
        vals, rows = self._values_and_rows()
        return np.bincount(rows, weights=vals.astype(np.float64) ** 2, minlength=self.shape[0])

    def col_norms_sq(self) -> np.ndarray:
        """``||a_j||^2`` per column — ICD/SIRT normalisation."""
        vals, _, cols = self._values_rows_cols()
        return np.bincount(cols, weights=vals.astype(np.float64) ** 2, minlength=self.shape[1])

    def _values_and_rows(self):
        vals, rows, _ = self._values_rows_cols()
        return vals, rows

    def _values_rows_cols(self):
        """(vals, rows, cols) triplets of the underlying matrix."""
        dense = self.fmt.to_dense() if self.shape[0] * self.shape[1] <= 1 << 22 else None
        if dense is not None:
            r, c = np.nonzero(dense)
            return dense[r, c], r, c
        # large matrix: all formats we ship can rebuild triplets cheaply
        from repro.sparse.csr import CSRMatrix

        if isinstance(self.fmt, CSRMatrix):
            rows = np.repeat(np.arange(self.shape[0]), np.diff(self.fmt.row_ptr))
            return self.fmt.vals, rows, self.fmt.col_idx.astype(np.int64)
        raise ValidationError(
            "row/col norms for large matrices need a CSRMatrix operator"
        )
