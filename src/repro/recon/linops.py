"""Linear-operator facade over any SpMV format.

Solvers in this package only speak :class:`ProjectionOperator`:
``op.forward(x)`` is ``A x`` (forward projection) and ``op.adjoint(y)``
is ``A^T y`` (back-projection).  Both accept a single vector or a 2-D
stack of ``k`` vectors (multi-slice CT: ``x`` of shape (n, k), ``y`` of
shape (m, k)) and return the matching shape.  Formats that implement
``transpose_spmv`` (CSR, CSC, MKL-like, both CSCVs) get a native adjoint;
anything else falls back to an internally-built transposed CSR, assembled
directly from the format's COO triplets — O(nnz) extra memory, never a
dense copy — so every format can drive every solver.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.resilience import faults
from repro.resilience.guards import check as guard_check
from repro.sparse.matrix_base import SpMVFormat
from repro.utils.arrays import check_1d, ensure_dtype


class ProjectionOperator:
    """Forward/adjoint operator pair over one sparse format."""

    def __init__(self, fmt: SpMVFormat):
        self.fmt = fmt
        self._adj_fallback: SpMVFormat | None = None
        self._csr = None

    @property
    def shape(self) -> tuple[int, int]:
        return self.fmt.shape

    @property
    def dtype(self) -> np.dtype:
        return self.fmt.dtype

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A x`` — batched (SpMM) when *x* is a 2-D stack.

        Under ``REPRO_GUARD`` the operand is screened for non-finite
        values on the way in (and, at level ``full``, the product on the
        way out); the ``operator.input.forward`` fault point can poison
        the operand for chaos tests.
        """
        x = faults.corrupt_array("operator.input.forward", np.asarray(x))
        guard_check(x, "x", where="operator.forward")
        if x.ndim == 2:
            res = self.fmt.spmm(x, out)
        else:
            res = self.fmt.spmv(x, out)
        guard_check(res, "A x", where="operator.forward", kind="output")
        return res

    def adjoint(self, y: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``x = A^T y``; uses the format's native transpose when present.

        A 2-D *y* of shape (m, k) back-projects the whole stack at once
        through ``transpose_spmm`` when the format has one, else column
        by column.  Guarded and fault-injectable like :meth:`forward`
        (``operator.input.adjoint``).
        """
        y = faults.corrupt_array("operator.input.adjoint", np.asarray(y))
        guard_check(y, "y", where="operator.adjoint")
        if y.ndim == 2:
            res = self._adjoint_batch(y, out)
            guard_check(res, "A^T y", where="operator.adjoint", kind="output")
            return res
        native = getattr(self.fmt, "transpose_spmv", None)
        if native is not None:
            res = native(y, out)
            guard_check(res, "A^T y", where="operator.adjoint", kind="output")
            return res
        if self._adj_fallback is None:
            self._adj_fallback = self._build_fallback()
        res = self._adj_fallback.spmv(
            ensure_dtype(check_1d(y, self.shape[0], "y"), self.dtype, "y")
        )
        guard_check(res, "A^T y", where="operator.adjoint", kind="output")
        if out is None:
            return res
        out[:] = res
        return out

    def _adjoint_batch(self, Y: np.ndarray, out: np.ndarray | None) -> np.ndarray:
        if Y.shape[0] != self.shape[0]:
            raise ValidationError(f"y must have shape ({self.shape[0]}, k), got {Y.shape}")
        k = Y.shape[1]
        native_mm = getattr(self.fmt, "transpose_spmm", None)
        if native_mm is not None:
            return native_mm(Y, out)
        native = getattr(self.fmt, "transpose_spmv", None)
        if native is None:
            if self._adj_fallback is None:
                self._adj_fallback = self._build_fallback()
            Yc = np.ascontiguousarray(Y, dtype=self.dtype)
            return self._adj_fallback.spmm(Yc, out)
        if out is None:
            out = np.zeros((self.shape[1], k), dtype=self.dtype)
        elif out.shape != (self.shape[1], k):
            raise ValidationError(f"out must have shape ({self.shape[1]}, {k})")
        for j in range(k):
            out[:, j] = native(np.ascontiguousarray(Y[:, j]))
        return out

    def _build_fallback(self) -> SpMVFormat:
        """Transposed CSR assembled from the format's own COO triplets.

        Swapping (rows, cols) and re-sorting is O(nnz) peak extra memory;
        the matrix is never densified on this path.
        """
        from repro.sparse.csr import CSRMatrix

        rows, cols, vals = self.fmt.to_coo_triplets()
        m, n = self.shape
        return CSRMatrix.from_coo((n, m), cols, rows, vals, dtype=self.dtype)

    def to_csr(self):
        """The operator's matrix as a :class:`CSRMatrix` (memoised).

        Row-sliced solvers (OS-SART) need CSR access regardless of the
        format the operator was built with; the conversion runs once per
        operator via the O(nnz) COO-triplet hook.
        """
        from repro.sparse.csr import CSRMatrix

        if isinstance(self.fmt, CSRMatrix):
            return self.fmt
        if self._csr is None:
            rows, cols, vals = self.fmt.to_coo_triplets()
            self._csr = CSRMatrix.from_coo(
                self.shape, rows, cols, vals, dtype=self.dtype
            )
        return self._csr

    # ------------------------------------------------------------------ #
    # derived quantities the solvers need

    def row_norms_sq(self) -> np.ndarray:
        """``||a_i||^2`` per row — ART step sizes."""
        vals, rows = self._values_and_rows()
        return np.bincount(rows, weights=vals.astype(np.float64) ** 2, minlength=self.shape[0])

    def col_norms_sq(self) -> np.ndarray:
        """``||a_j||^2`` per column — ICD/SIRT normalisation."""
        vals, _, cols = self._values_rows_cols()
        return np.bincount(cols, weights=vals.astype(np.float64) ** 2, minlength=self.shape[1])

    def _values_and_rows(self):
        vals, rows, _ = self._values_rows_cols()
        return vals, rows

    def _values_rows_cols(self):
        """(vals, rows, cols) triplets of the underlying matrix."""
        rows, cols, vals = self.fmt.to_coo_triplets()
        return vals, rows, cols
