"""SIRT — Simultaneous Iterative Reconstruction Technique.

The fully simultaneous relative of ART: every iteration is exactly one
forward SpMV plus one back-projection SpMV over the whole system,

.. math:: x^{k+1} = x^k + \\lambda\\, C A^T R (y - A x^k),

with ``R = diag(1/row\\_sum)`` and ``C = diag(1/col\\_sum)``.  SIRT is the
workload whose inner loop the paper's benchmarks time directly (same
matrix, high-frequency SpMV), making it the natural end-to-end demo for
CSCV formats.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.recon.linops import ProjectionOperator
from repro.utils.arrays import check_1d, ensure_dtype


def sirt_reconstruct(
    op: ProjectionOperator,
    sinogram: np.ndarray,
    *,
    iterations: int = 50,
    relax: float = 1.0,
    x0: np.ndarray | None = None,
    nonneg: bool = True,
    rtol: float = 0.0,
    callback=None,
) -> np.ndarray:
    """Run SIRT for *iterations* sweeps (early-exit on relative tolerance).

    Parameters
    ----------
    rtol : float
        Stop once ``||resid|| / ||y||`` falls below this (0 disables).
    callback : callable, optional
        ``callback(k, x, residual_norm)`` per iteration.
    """
    if iterations < 1:
        raise ValidationError("iterations must be >= 1")
    if not (0.0 < relax <= 2.0):
        raise ValidationError("relax must be in (0, 2]")
    m, n = op.shape
    y = ensure_dtype(check_1d(sinogram, m, "sinogram"), op.dtype, "sinogram")
    x = (
        np.zeros(n, dtype=op.dtype)
        if x0 is None
        else ensure_dtype(check_1d(x0, n, "x0"), op.dtype, "x0").copy()
    )
    y_norm = float(np.linalg.norm(y)) or 1.0

    row_sums = np.asarray(op.forward(np.ones(n, dtype=op.dtype)), dtype=np.float64)
    col_sums = np.asarray(op.adjoint(np.ones(m, dtype=op.dtype)), dtype=np.float64)
    inv_r = np.divide(1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 1e-12)
    inv_c = np.divide(1.0, col_sums, out=np.zeros_like(col_sums), where=col_sums > 1e-12)

    residual_gauge = obs_metrics.gauge("sirt.residual", "last SIRT residual norm")
    iter_counter = obs_metrics.counter("sirt.iterations", "SIRT iterations run")
    for k in range(iterations):
        with span("sirt.iter", k=k) as it_span:
            resid = (y - op.forward(x)).astype(np.float64)
            back = op.adjoint((resid * inv_r).astype(op.dtype)).astype(np.float64)
            x = (x.astype(np.float64) + relax * inv_c * back).astype(op.dtype)
            if nonneg:
                np.maximum(x, 0, out=x)
            rnorm = float(np.linalg.norm(resid))
            it_span.set(residual=rnorm)
        residual_gauge.set(rnorm)
        iter_counter.inc()
        if callback is not None:
            callback(k, x, rnorm)
        if rtol > 0 and rnorm / y_norm < rtol:
            break
    return x
