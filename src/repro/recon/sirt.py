"""SIRT — Simultaneous Iterative Reconstruction Technique.

The fully simultaneous relative of ART: every iteration is exactly one
forward SpMV plus one back-projection SpMV over the whole system,

.. math:: x^{k+1} = x^k + \\lambda\\, C A^T R (y - A x^k),

with ``R = diag(1/row\\_sum)`` and ``C = diag(1/col\\_sum)``.  SIRT is the
workload whose inner loop the paper's benchmarks time directly (same
matrix, high-frequency SpMV), making it the natural end-to-end demo for
CSCV formats.

The sinogram may be a single vector (m,) or a stack (m, k) of sinograms
sharing the system matrix (multi-slice CT); a stack runs through the
batched SpMM path — one matrix stream serves all slices — and returns an
(n, k) image stack.  The iteration is column-separable, so each slice of
the batched result equals the corresponding single-sinogram run.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs.trace import span
from repro.recon.events import IterationEvent, as_event_callback
from repro.recon.linops import ProjectionOperator
from repro.resilience.guards import check as guard_check
from repro.resilience.watchdog import resolve_watchdog
from repro.utils.arrays import as_column_batch


def sirt_reconstruct(
    op: ProjectionOperator,
    sinogram: np.ndarray,
    *,
    iterations: int = 50,
    relax: float = 1.0,
    x0: np.ndarray | None = None,
    nonneg: bool = True,
    rtol: float = 0.0,
    callback=None,
    watchdog=None,
    resume_from=None,
) -> np.ndarray:
    """Run SIRT for *iterations* sweeps (early-exit on relative tolerance).

    Parameters
    ----------
    rtol : float
        Stop once ``||resid|| / ||y||`` falls below this (0 disables).
        For a sinogram stack both norms are Frobenius norms of the stack.
    callback : callable, optional
        Per-iteration hook.  Either the legacy ``callback(k, x,
        residual_norm)`` form or an event consumer taking one
        :class:`~repro.recon.events.IterationEvent` (see
        :func:`~repro.recon.events.as_event_callback`).
    watchdog : bool or ResidualWatchdog, optional
        Divergence guard (:mod:`repro.resilience.watchdog`): ``True``
        for the defaults, or a configured instance.  On detection the
        run restarts from the best iterate with ``relax`` backed off;
        when the restart budget is exhausted a
        :class:`~repro.errors.SolverError` carries the history.  Relax
        values above 2 (the classical convergence bound) are accepted
        precisely so a guarded run can recover from them.
    resume_from : CheckpointState, optional
        Continue an interrupted run from a
        :class:`~repro.recon.checkpoint.CheckpointState` captured after
        iteration ``k``: the iterate is restored verbatim and the loop
        starts at ``k + 1``, producing output bitwise-identical to the
        uninterrupted run under the same parameters.  Incompatible with
        ``x0`` (the checkpoint *is* the start) and ``watchdog`` (a
        restart-adjusted run is not bitwise-resumable).
    """
    if iterations < 1:
        raise ValidationError("iterations must be >= 1")
    if not (0.0 < relax <= 4.0):
        raise ValidationError("relax must be in (0, 4]")
    m, n = op.shape
    y, was_1d = as_column_batch(sinogram, m, "sinogram", op.dtype)
    guard_check(y, "sinogram", where="sirt")
    k_cols = y.shape[1]
    start = 0
    if resume_from is not None:
        if x0 is not None:
            raise ValidationError(
                "x0 cannot be combined with resume_from (the checkpoint "
                "is the starting iterate)"
            )
        arrays = resume_from.require("sirt", {"x"})
        xr = np.asarray(arrays["x"])
        if xr.shape != (n, k_cols):
            raise ValidationError(
                f"sirt checkpoint x has shape {xr.shape}; this problem "
                f"needs {(n, k_cols)}"
            )
        x = np.array(xr, dtype=op.dtype, copy=True)
        start = resume_from.k + 1
    elif x0 is None:
        x = np.zeros((n, k_cols), dtype=op.dtype)
    else:
        x0b, x0_1d = as_column_batch(x0, n, "x0", op.dtype)
        if x0_1d != was_1d or x0b.shape[1] != k_cols:
            raise ValidationError("x0 must match the sinogram batch shape")
        x = x0b.copy()
    y_norm = float(np.linalg.norm(y)) or 1.0

    row_sums = np.asarray(op.forward(np.ones(n, dtype=op.dtype)), dtype=np.float64)
    col_sums = np.asarray(op.adjoint(np.ones(m, dtype=op.dtype)), dtype=np.float64)
    inv_r = np.divide(1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 1e-12)
    inv_c = np.divide(1.0, col_sums, out=np.zeros_like(col_sums), where=col_sums > 1e-12)

    wd = resolve_watchdog(watchdog, solver="sirt", relax=relax)
    if wd is not None and resume_from is not None:
        raise ValidationError(
            "watchdog cannot be combined with resume_from (restart "
            "interventions make the run non-resumable bitwise)"
        )
    x_init = x.copy() if wd is not None else None
    cb = as_event_callback(callback)

    def _state() -> dict:
        # lazy checkpoint capture: reads the live iterate at call time
        # (i.e. post-update when called from the callback)
        return {"x": x.copy()}

    residual_gauge = obs_metrics.gauge("sirt.residual", "last SIRT residual norm")
    iter_counter = obs_metrics.counter("sirt.iterations", "SIRT iterations run")
    meter = obs_perf.ConvergenceMeter("sirt", y_norm=y_norm, rtol=rtol)
    for k in range(start, iterations):
        it_t0 = obs_perf.clock() if obs_perf.active else 0.0
        with span("sirt.iter", k=k, batch=k_cols) as it_span:
            resid = (y - op.forward(x)).astype(np.float64)
            rnorm = float(np.linalg.norm(resid))
            event = IterationEvent(
                k=k, x=x, residual_norm=rnorm, normal_residual_norm=None,
                solver="sirt", state_provider=_state,
            )
            if wd is not None and wd.observe_event(event) == "restart":
                # discard this sweep: resume from the best iterate with
                # the backed-off relaxation the watchdog just set
                x = np.asarray(
                    wd.best_x if wd.best_x is not None else x_init,
                    dtype=op.dtype,
                ).copy()
                relax = wd.relax
                it_span.set(residual=rnorm, restart=True)
                continue
            back = op.adjoint((resid * inv_r[:, None]).astype(op.dtype)).astype(np.float64)
            x = (x.astype(np.float64) + relax * inv_c[:, None] * back).astype(op.dtype)
            if nonneg:
                np.maximum(x, 0, out=x)
            it_span.set(residual=rnorm)
        residual_gauge.set(rnorm)
        iter_counter.inc()
        meter.observe_event(
            event,
            seconds=obs_perf.clock() - it_t0 if obs_perf.active else None,
        )
        if cb is not None:
            cb(event.with_x(x[:, 0] if was_1d else x))
        if rtol > 0 and rnorm / y_norm < rtol:
            break
    return x[:, 0] if was_1d else x
