"""Image-quality metrics for reconstruction validation."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def _pair(a, b) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValidationError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a.ravel(), b.ravel()


def rmse(image, reference) -> float:
    """Root mean squared error."""
    a, b = _pair(image, reference)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def relative_error(image, reference) -> float:
    """``||image - reference|| / ||reference||`` (2-norm)."""
    a, b = _pair(image, reference)
    denom = float(np.linalg.norm(b)) or 1.0
    return float(np.linalg.norm(a - b)) / denom


def psnr(image, reference, data_range: float | None = None) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical inputs)."""
    a, b = _pair(image, reference)
    if data_range is None:
        data_range = float(b.max() - b.min()) or 1.0
    mse = float(np.mean((a - b) ** 2))
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(data_range**2 / mse)


def correlation(image, reference) -> float:
    """Pearson correlation of pixel values (1.0 = perfect structure)."""
    a, b = _pair(image, reference)
    sa, sb = a.std(), b.std()
    if sa == 0.0 or sb == 0.0:
        return 1.0 if np.allclose(a, b) else 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (sa * sb))
