"""Iterative CT imaging reconstruction — the paper's application.

The paper motivates CSCV with iterative reconstruction (MBIR-family),
where ``y = A x`` (forward projection) and ``x = A^T y`` (back-projection)
run at high frequency with a fixed matrix.  This package provides:

* :class:`~repro.recon.linops.ProjectionOperator` — wraps any
  :class:`~repro.sparse.SpMVFormat` as forward/adjoint operator;
* ART/Kaczmarz (:mod:`repro.recon.art`), SIRT (:mod:`repro.recon.sirt`),
  CGLS (:mod:`repro.recon.cgls`) — row-action and gradient solvers that
  consume CSR-style access;
* ICD — Iterative Coordinate Descent (:mod:`repro.recon.icd`), the
  column-action solver whose access pattern is *why* CSC-style formats
  (and hence CSCV) matter (Section III);
* FBP (:mod:`repro.recon.fbp`) as the analytic reference;
* image metrics (:mod:`repro.recon.metrics`).
"""

from repro.recon.art import art_reconstruct, kaczmarz_sweep
from repro.recon.cgls import cgls_reconstruct
from repro.recon.checkpoint import (
    CheckpointState,
    CheckpointWriter,
    column_state,
    load_checkpoint,
    save_checkpoint,
    solver_params_hash,
)
from repro.recon.events import IterationEvent, as_event_callback
from repro.recon.fbp import fbp_reconstruct
from repro.recon.icd import icd_reconstruct
from repro.recon.linops import ProjectionOperator
from repro.recon.metrics import psnr, rmse, relative_error
from repro.recon.os_sart import os_sart_reconstruct
from repro.recon.registry import (
    SOLVERS,
    Param,
    SolverSpec,
    available_solvers,
    get_solver,
)
from repro.recon.sirt import sirt_reconstruct

__all__ = [
    "ProjectionOperator",
    "IterationEvent",
    "as_event_callback",
    "CheckpointState",
    "CheckpointWriter",
    "column_state",
    "load_checkpoint",
    "save_checkpoint",
    "solver_params_hash",
    "SOLVERS",
    "Param",
    "SolverSpec",
    "available_solvers",
    "get_solver",
    "art_reconstruct",
    "kaczmarz_sweep",
    "sirt_reconstruct",
    "cgls_reconstruct",
    "os_sart_reconstruct",
    "icd_reconstruct",
    "fbp_reconstruct",
    "rmse",
    "psnr",
    "relative_error",
]
