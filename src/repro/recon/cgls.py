"""CGLS — conjugate gradients on the normal equations.

Solves ``min_x ||A x - y||_2`` without ever forming ``A^T A``; each
iteration costs one forward and one adjoint SpMV.  The fastest-converging
of the classical iterative methods for consistent CT data and a good
stress of numerical robustness (breakdown guards, early exit).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.recon.linops import ProjectionOperator
from repro.utils.arrays import check_1d, ensure_dtype


def cgls_reconstruct(
    op: ProjectionOperator,
    sinogram: np.ndarray,
    *,
    iterations: int = 30,
    x0: np.ndarray | None = None,
    rtol: float = 1e-8,
    damping: float = 0.0,
    callback=None,
) -> np.ndarray:
    """Run CGLS; returns the iterate with all math in float64 accumulators.

    Parameters
    ----------
    rtol : float
        Stop when ``||A^T r|| / ||A^T y||`` drops below this.
    damping : float
        Tikhonov parameter ``lambda >= 0``: solves
        ``min ||A x - y||^2 + lambda ||x||^2`` (regularised CGLS, the
        standard stabiliser for noisy/limited-angle data).
    callback : callable, optional
        ``callback(k, x, normal_residual_norm)`` per iteration.
    """
    if iterations < 1:
        raise ValidationError("iterations must be >= 1")
    if damping < 0:
        raise ValidationError("damping must be >= 0")
    m, n = op.shape
    y = ensure_dtype(check_1d(sinogram, m, "sinogram"), op.dtype, "sinogram")
    x = (
        np.zeros(n, dtype=np.float64)
        if x0 is None
        else ensure_dtype(check_1d(x0, n, "x0"), np.float64, "x0").copy()
    )

    r = (y - op.forward(x.astype(op.dtype))).astype(np.float64)
    s = op.adjoint(r.astype(op.dtype)).astype(np.float64) - damping * x
    p = s.copy()
    gamma = float(s @ s)
    gamma0 = gamma or 1.0

    residual_gauge = obs_metrics.gauge(
        "cgls.residual", "last CGLS normal-equation residual norm"
    )
    iter_counter = obs_metrics.counter("cgls.iterations", "CGLS iterations run")
    for k in range(iterations):
        if gamma <= rtol * rtol * gamma0:
            break
        with span("cgls.iter", k=k) as it_span:
            q = op.forward(p.astype(op.dtype)).astype(np.float64)
            qq = float(q @ q) + damping * float(p @ p)
            if qq == 0.0:  # p in the null space; nothing more to gain
                break
            alpha = gamma / qq
            x += alpha * p
            r -= alpha * q
            s = op.adjoint(r.astype(op.dtype)).astype(np.float64) - damping * x
            gamma_new = float(s @ s)
            rnorm = float(np.sqrt(gamma_new))
            it_span.set(residual=rnorm)
        residual_gauge.set(rnorm)
        iter_counter.inc()
        if callback is not None:
            callback(k, x.astype(op.dtype), rnorm)
        beta = gamma_new / gamma
        p = s + beta * p
        gamma = gamma_new
    return x.astype(op.dtype)
