"""CGLS — conjugate gradients on the normal equations.

Solves ``min_x ||A x - y||_2`` without ever forming ``A^T A``; each
iteration costs one forward and one adjoint SpMV.  The fastest-converging
of the classical iterative methods for consistent CT data and a good
stress of numerical robustness (breakdown guards, early exit).

The sinogram may be a single vector (m,) or a stack (m, k); a stack is
solved with batched SpMM products and *per-column* step sizes — every
scalar of the classical recurrence (``gamma``, ``alpha``, ``beta``)
becomes a k-vector, and converged or broken-down columns freeze while the
rest keep iterating, so each slice matches its own single-vector run.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs.trace import span
from repro.recon.events import NORMAL_RESIDUAL, IterationEvent, as_event_callback
from repro.recon.linops import ProjectionOperator
from repro.resilience.guards import check as guard_check
from repro.resilience.watchdog import resolve_watchdog
from repro.utils.arrays import as_column_batch


def cgls_reconstruct(
    op: ProjectionOperator,
    sinogram: np.ndarray,
    *,
    iterations: int = 30,
    x0: np.ndarray | None = None,
    rtol: float = 1e-8,
    damping: float = 0.0,
    callback=None,
    watchdog=None,
    resume_from=None,
) -> np.ndarray:
    """Run CGLS; returns the iterate with all math in float64 accumulators.

    Parameters
    ----------
    rtol : float
        Stop when ``||A^T r|| / ||A^T y||`` drops below this (checked per
        column for a sinogram stack).
    damping : float
        Tikhonov parameter ``lambda >= 0``: solves
        ``min ||A x - y||^2 + lambda ||x||^2`` (regularised CGLS, the
        standard stabiliser for noisy/limited-angle data).
    callback : callable, optional
        Per-iteration hook: the legacy ``callback(k, x,
        normal_residual_norm)`` form, or an event consumer taking one
        :class:`~repro.recon.events.IterationEvent` whose ``meaning`` is
        ``"normal_residual"`` (CGLS drives on ``||A^T r||``; the event
        carries the plain ``||r||`` too).
    watchdog : bool or ResidualWatchdog, optional
        Divergence guard.  CGLS has no relaxation to back off; a restart
        instead re-initialises the whole CG recurrence (``r``, ``s``,
        ``p``, ``gamma``) from the best iterate seen — the standard cure
        for a recurrence drifting from the true residual.
    resume_from : CheckpointState, optional
        Continue an interrupted run from a
        :class:`~repro.recon.checkpoint.CheckpointState`: the complete
        CG recurrence (``x``, ``r``, ``s``, ``p``, ``gamma``,
        ``gamma0``, ``active``) is restored verbatim — *not* re-derived
        from the iterate, which would change the bits — and the loop
        starts at ``k + 1``, matching the uninterrupted run exactly.
        Incompatible with ``x0`` and ``watchdog``.
    """
    if iterations < 1:
        raise ValidationError("iterations must be >= 1")
    if damping < 0:
        raise ValidationError("damping must be >= 0")
    m, n = op.shape
    y, was_1d = as_column_batch(sinogram, m, "sinogram", op.dtype)
    guard_check(y, "sinogram", where="cgls")
    k_cols = y.shape[1]
    if resume_from is not None and x0 is not None:
        raise ValidationError(
            "x0 cannot be combined with resume_from (the checkpoint is "
            "the starting iterate)"
        )
    if x0 is None:
        x = np.zeros((n, k_cols), dtype=np.float64)
    else:
        x0b, x0_1d = as_column_batch(x0, n, "x0", np.float64)
        if x0_1d != was_1d or x0b.shape[1] != k_cols:
            raise ValidationError("x0 must match the sinogram batch shape")
        x = x0b.copy()

    def init_recurrence(xk):
        r = (y - op.forward(xk.astype(op.dtype))).astype(np.float64)
        s = op.adjoint(r.astype(op.dtype)).astype(np.float64) - damping * xk
        return r, s, s.copy(), np.einsum("ij,ij->j", s, s)

    start = 0
    if resume_from is not None:
        # restore the recurrence verbatim: re-deriving it from x alone
        # (init_recurrence) would change the conjugate directions and
        # with them the bits of every later iterate
        arrays = resume_from.require(
            "cgls", {"x", "r", "s", "p", "gamma", "gamma0", "active"}
        )
        expected = {
            "x": (n, k_cols), "r": (m, k_cols), "s": (n, k_cols),
            "p": (n, k_cols), "gamma": (k_cols,), "gamma0": (k_cols,),
            "active": (k_cols,),
        }
        for name, shape in expected.items():
            got = np.asarray(arrays[name]).shape
            if got != shape:
                raise ValidationError(
                    f"cgls checkpoint {name} has shape {got}; this "
                    f"problem needs {shape}"
                )
        x = np.array(arrays["x"], dtype=np.float64, copy=True)
        r = np.array(arrays["r"], dtype=np.float64, copy=True)
        s = np.array(arrays["s"], dtype=np.float64, copy=True)
        p = np.array(arrays["p"], dtype=np.float64, copy=True)
        gamma = np.array(arrays["gamma"], dtype=np.float64, copy=True)
        gamma0 = np.array(arrays["gamma0"], dtype=np.float64, copy=True)
        active = np.array(arrays["active"], dtype=bool, copy=True)
        start = resume_from.k + 1
    else:
        r, s, p, gamma = init_recurrence(x)
        gamma0 = np.where(gamma > 0, gamma, 1.0)
        active = np.ones(k_cols, dtype=bool)

    wd = resolve_watchdog(watchdog, solver="cgls")
    if wd is not None and resume_from is not None:
        raise ValidationError(
            "watchdog cannot be combined with resume_from (restart "
            "interventions make the run non-resumable bitwise)"
        )
    x_init = x.copy() if wd is not None else None
    cb = as_event_callback(callback)

    def _state() -> dict:
        # lazy checkpoint capture; called from the callback it sees the
        # top-of-next-iteration recurrence (the beta/p/gamma advance runs
        # before the callback — see the loop tail)
        return {
            "x": x.copy(), "r": r.copy(), "s": s.copy(), "p": p.copy(),
            "gamma": gamma.copy(), "gamma0": gamma0.copy(),
            "active": active.copy(),
        }

    residual_gauge = obs_metrics.gauge(
        "cgls.residual", "last CGLS normal-equation residual norm"
    )
    iter_counter = obs_metrics.counter("cgls.iterations", "CGLS iterations run")
    rnorm = float(np.sqrt(gamma.sum()))
    meter = obs_perf.ConvergenceMeter(
        "cgls", y_norm=float(np.sqrt(gamma0.sum())) or 1.0, rtol=rtol
    )
    for k in range(start, iterations):
        active &= gamma > rtol * rtol * gamma0
        if not active.any():
            break
        it_t0 = obs_perf.clock() if obs_perf.active else 0.0
        with span("cgls.iter", k=k, batch=k_cols) as it_span:
            q = op.forward(p.astype(op.dtype)).astype(np.float64)
            qq = np.einsum("ij,ij->j", q, q) + damping * np.einsum("ij,ij->j", p, p)
            active &= qq > 0.0  # p column in the null space: freeze it
            if not active.any():
                break
            alpha = np.zeros(k_cols)
            np.divide(gamma, qq, out=alpha, where=active)
            x += alpha[None, :] * p
            r -= alpha[None, :] * q
            s = op.adjoint(r.astype(op.dtype)).astype(np.float64) - damping * x
            gamma_new = np.einsum("ij,ij->j", s, s)
            rnorm = float(np.sqrt(gamma_new[active].sum()))
            event = IterationEvent(
                k=k, x=x, residual_norm=float(np.linalg.norm(r)),
                normal_residual_norm=rnorm, meaning=NORMAL_RESIDUAL,
                solver="cgls", state_provider=_state,
            )
            if wd is not None and wd.observe_event(event) == "restart":
                x = np.array(
                    wd.best_x if wd.best_x is not None else x_init, copy=True
                )
                r, s, p, gamma = init_recurrence(x)
                active = np.ones(k_cols, dtype=bool)
                it_span.set(residual=rnorm, restart=True)
                continue
            it_span.set(residual=rnorm)
        residual_gauge.set(rnorm)
        iter_counter.inc()
        meter.observe_event(
            event,
            seconds=obs_perf.clock() - it_t0 if obs_perf.active else None,
        )
        # advance the recurrence BEFORE the callback (bitwise-neutral
        # reorder: nothing in between reads beta/p/gamma) so a checkpoint
        # captured at callback time holds top-of-next-iteration state
        beta = np.zeros(k_cols)
        np.divide(gamma_new, gamma, out=beta, where=active & (gamma > 0))
        p = s + beta[None, :] * p
        gamma = gamma_new
        if cb is not None:
            xk = x.astype(op.dtype)
            cb(event.with_x(xk[:, 0] if was_1d else xk))
    out = x.astype(op.dtype)
    return out[:, 0] if was_1d else out
