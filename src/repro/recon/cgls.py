"""CGLS — conjugate gradients on the normal equations.

Solves ``min_x ||A x - y||_2`` without ever forming ``A^T A``; each
iteration costs one forward and one adjoint SpMV.  The fastest-converging
of the classical iterative methods for consistent CT data and a good
stress of numerical robustness (breakdown guards, early exit).

The sinogram may be a single vector (m,) or a stack (m, k); a stack is
solved with batched SpMM products and *per-column* step sizes — every
scalar of the classical recurrence (``gamma``, ``alpha``, ``beta``)
becomes a k-vector, and converged or broken-down columns freeze while the
rest keep iterating, so each slice matches its own single-vector run.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.recon.linops import ProjectionOperator
from repro.utils.arrays import as_column_batch


def cgls_reconstruct(
    op: ProjectionOperator,
    sinogram: np.ndarray,
    *,
    iterations: int = 30,
    x0: np.ndarray | None = None,
    rtol: float = 1e-8,
    damping: float = 0.0,
    callback=None,
) -> np.ndarray:
    """Run CGLS; returns the iterate with all math in float64 accumulators.

    Parameters
    ----------
    rtol : float
        Stop when ``||A^T r|| / ||A^T y||`` drops below this (checked per
        column for a sinogram stack).
    damping : float
        Tikhonov parameter ``lambda >= 0``: solves
        ``min ||A x - y||^2 + lambda ||x||^2`` (regularised CGLS, the
        standard stabiliser for noisy/limited-angle data).
    callback : callable, optional
        ``callback(k, x, normal_residual_norm)`` per iteration.
    """
    if iterations < 1:
        raise ValidationError("iterations must be >= 1")
    if damping < 0:
        raise ValidationError("damping must be >= 0")
    m, n = op.shape
    y, was_1d = as_column_batch(sinogram, m, "sinogram", op.dtype)
    k_cols = y.shape[1]
    if x0 is None:
        x = np.zeros((n, k_cols), dtype=np.float64)
    else:
        x0b, x0_1d = as_column_batch(x0, n, "x0", np.float64)
        if x0_1d != was_1d or x0b.shape[1] != k_cols:
            raise ValidationError("x0 must match the sinogram batch shape")
        x = x0b.copy()

    r = (y - op.forward(x.astype(op.dtype))).astype(np.float64)
    s = op.adjoint(r.astype(op.dtype)).astype(np.float64) - damping * x
    p = s.copy()
    gamma = np.einsum("ij,ij->j", s, s)
    gamma0 = np.where(gamma > 0, gamma, 1.0)
    active = np.ones(k_cols, dtype=bool)

    residual_gauge = obs_metrics.gauge(
        "cgls.residual", "last CGLS normal-equation residual norm"
    )
    iter_counter = obs_metrics.counter("cgls.iterations", "CGLS iterations run")
    rnorm = float(np.sqrt(gamma.sum()))
    for k in range(iterations):
        active &= gamma > rtol * rtol * gamma0
        if not active.any():
            break
        with span("cgls.iter", k=k, batch=k_cols) as it_span:
            q = op.forward(p.astype(op.dtype)).astype(np.float64)
            qq = np.einsum("ij,ij->j", q, q) + damping * np.einsum("ij,ij->j", p, p)
            active &= qq > 0.0  # p column in the null space: freeze it
            if not active.any():
                break
            alpha = np.zeros(k_cols)
            np.divide(gamma, qq, out=alpha, where=active)
            x += alpha[None, :] * p
            r -= alpha[None, :] * q
            s = op.adjoint(r.astype(op.dtype)).astype(np.float64) - damping * x
            gamma_new = np.einsum("ij,ij->j", s, s)
            rnorm = float(np.sqrt(gamma_new[active].sum()))
            it_span.set(residual=rnorm)
        residual_gauge.set(rnorm)
        iter_counter.inc()
        if callback is not None:
            xk = x.astype(op.dtype)
            callback(k, xk[:, 0] if was_1d else xk, rnorm)
        beta = np.zeros(k_cols)
        np.divide(gamma_new, gamma, out=beta, where=active & (gamma > 0))
        p = s + beta[None, :] * p
        gamma = gamma_new
    out = x.astype(op.dtype)
    return out[:, 0] if was_1d else out
