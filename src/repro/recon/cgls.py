"""CGLS — conjugate gradients on the normal equations.

Solves ``min_x ||A x - y||_2`` without ever forming ``A^T A``; each
iteration costs one forward and one adjoint SpMV.  The fastest-converging
of the classical iterative methods for consistent CT data and a good
stress of numerical robustness (breakdown guards, early exit).

The sinogram may be a single vector (m,) or a stack (m, k); a stack is
solved with batched SpMM products and *per-column* step sizes — every
scalar of the classical recurrence (``gamma``, ``alpha``, ``beta``)
becomes a k-vector, and converged or broken-down columns freeze while the
rest keep iterating, so each slice matches its own single-vector run.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs.trace import span
from repro.recon.events import NORMAL_RESIDUAL, IterationEvent, as_event_callback
from repro.recon.linops import ProjectionOperator
from repro.resilience.guards import check as guard_check
from repro.resilience.watchdog import resolve_watchdog
from repro.utils.arrays import as_column_batch


def cgls_reconstruct(
    op: ProjectionOperator,
    sinogram: np.ndarray,
    *,
    iterations: int = 30,
    x0: np.ndarray | None = None,
    rtol: float = 1e-8,
    damping: float = 0.0,
    callback=None,
    watchdog=None,
) -> np.ndarray:
    """Run CGLS; returns the iterate with all math in float64 accumulators.

    Parameters
    ----------
    rtol : float
        Stop when ``||A^T r|| / ||A^T y||`` drops below this (checked per
        column for a sinogram stack).
    damping : float
        Tikhonov parameter ``lambda >= 0``: solves
        ``min ||A x - y||^2 + lambda ||x||^2`` (regularised CGLS, the
        standard stabiliser for noisy/limited-angle data).
    callback : callable, optional
        Per-iteration hook: the legacy ``callback(k, x,
        normal_residual_norm)`` form, or an event consumer taking one
        :class:`~repro.recon.events.IterationEvent` whose ``meaning`` is
        ``"normal_residual"`` (CGLS drives on ``||A^T r||``; the event
        carries the plain ``||r||`` too).
    watchdog : bool or ResidualWatchdog, optional
        Divergence guard.  CGLS has no relaxation to back off; a restart
        instead re-initialises the whole CG recurrence (``r``, ``s``,
        ``p``, ``gamma``) from the best iterate seen — the standard cure
        for a recurrence drifting from the true residual.
    """
    if iterations < 1:
        raise ValidationError("iterations must be >= 1")
    if damping < 0:
        raise ValidationError("damping must be >= 0")
    m, n = op.shape
    y, was_1d = as_column_batch(sinogram, m, "sinogram", op.dtype)
    guard_check(y, "sinogram", where="cgls")
    k_cols = y.shape[1]
    if x0 is None:
        x = np.zeros((n, k_cols), dtype=np.float64)
    else:
        x0b, x0_1d = as_column_batch(x0, n, "x0", np.float64)
        if x0_1d != was_1d or x0b.shape[1] != k_cols:
            raise ValidationError("x0 must match the sinogram batch shape")
        x = x0b.copy()

    def init_recurrence(xk):
        r = (y - op.forward(xk.astype(op.dtype))).astype(np.float64)
        s = op.adjoint(r.astype(op.dtype)).astype(np.float64) - damping * xk
        return r, s, s.copy(), np.einsum("ij,ij->j", s, s)

    r, s, p, gamma = init_recurrence(x)
    gamma0 = np.where(gamma > 0, gamma, 1.0)
    active = np.ones(k_cols, dtype=bool)

    wd = resolve_watchdog(watchdog, solver="cgls")
    x_init = x.copy() if wd is not None else None
    cb = as_event_callback(callback)

    residual_gauge = obs_metrics.gauge(
        "cgls.residual", "last CGLS normal-equation residual norm"
    )
    iter_counter = obs_metrics.counter("cgls.iterations", "CGLS iterations run")
    rnorm = float(np.sqrt(gamma.sum()))
    meter = obs_perf.ConvergenceMeter(
        "cgls", y_norm=float(np.sqrt(gamma0.sum())) or 1.0, rtol=rtol
    )
    for k in range(iterations):
        active &= gamma > rtol * rtol * gamma0
        if not active.any():
            break
        it_t0 = obs_perf.clock() if obs_perf.active else 0.0
        with span("cgls.iter", k=k, batch=k_cols) as it_span:
            q = op.forward(p.astype(op.dtype)).astype(np.float64)
            qq = np.einsum("ij,ij->j", q, q) + damping * np.einsum("ij,ij->j", p, p)
            active &= qq > 0.0  # p column in the null space: freeze it
            if not active.any():
                break
            alpha = np.zeros(k_cols)
            np.divide(gamma, qq, out=alpha, where=active)
            x += alpha[None, :] * p
            r -= alpha[None, :] * q
            s = op.adjoint(r.astype(op.dtype)).astype(np.float64) - damping * x
            gamma_new = np.einsum("ij,ij->j", s, s)
            rnorm = float(np.sqrt(gamma_new[active].sum()))
            event = IterationEvent(
                k=k, x=x, residual_norm=float(np.linalg.norm(r)),
                normal_residual_norm=rnorm, meaning=NORMAL_RESIDUAL,
                solver="cgls",
            )
            if wd is not None and wd.observe_event(event) == "restart":
                x = np.array(
                    wd.best_x if wd.best_x is not None else x_init, copy=True
                )
                r, s, p, gamma = init_recurrence(x)
                active = np.ones(k_cols, dtype=bool)
                it_span.set(residual=rnorm, restart=True)
                continue
            it_span.set(residual=rnorm)
        residual_gauge.set(rnorm)
        iter_counter.inc()
        meter.observe_event(
            event,
            seconds=obs_perf.clock() - it_t0 if obs_perf.active else None,
        )
        if cb is not None:
            xk = x.astype(op.dtype)
            cb(event.with_x(xk[:, 0] if was_1d else xk))
        beta = np.zeros(k_cols)
        np.divide(gamma_new, gamma, out=beta, where=active & (gamma > 0))
        p = s + beta[None, :] * p
        gamma = gamma_new
    out = x.astype(op.dtype)
    return out[:, 0] if was_1d else out
