"""Measurement noise models for realistic reconstruction experiments.

CT measures photon counts, not line integrals: a detector bin with ideal
line integral ``y`` receives on average ``I0 * exp(-y)`` photons, Poisson
distributed.  The log transform recovers a noisy sinogram whose variance
grows with attenuation — the physically-correct noise the iterative
solvers are evaluated under (and the reason low-dose CT needs them).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def transmission_counts(
    sinogram: np.ndarray, i0: float, *, seed: int | None = 0
) -> np.ndarray:
    """Poisson photon counts for ideal line integrals *sinogram*.

    Parameters
    ----------
    i0 : float
        Incident photon count per ray (the dose knob); typical clinical
        values are 1e4-1e6.
    """
    if i0 <= 0:
        raise ValidationError("i0 must be positive")
    y = np.asarray(sinogram, dtype=np.float64)
    if np.any(y < 0):
        raise ValidationError("line integrals must be non-negative")
    rng = np.random.default_rng(seed)
    expected = i0 * np.exp(-y)
    return rng.poisson(expected).astype(np.float64)


def log_transform(counts: np.ndarray, i0: float) -> np.ndarray:
    """Recover a noisy sinogram from counts: ``y = -log(max(c, 1) / I0)``.

    Zero-count bins (photon starvation) are clamped to one photon, the
    standard pre-correction.
    """
    if i0 <= 0:
        raise ValidationError("i0 must be positive")
    c = np.maximum(np.asarray(counts, dtype=np.float64), 1.0)
    return -np.log(c / i0)


def add_poisson_noise(
    sinogram: np.ndarray, *, i0: float = 1e5, seed: int | None = 0
) -> np.ndarray:
    """Convenience: ideal sinogram -> Poisson-noisy sinogram."""
    return log_transform(transmission_counts(sinogram, i0, seed=seed), i0)


def sinogram_snr(clean: np.ndarray, noisy: np.ndarray) -> float:
    """Signal-to-noise ratio in dB of a noisy sinogram."""
    clean = np.asarray(clean, dtype=np.float64)
    noisy = np.asarray(noisy, dtype=np.float64)
    if clean.shape != noisy.shape:
        raise ValidationError("shape mismatch")
    noise_power = float(np.mean((noisy - clean) ** 2))
    if noise_power == 0.0:
        return float("inf")
    return 10.0 * np.log10(float(np.mean(clean**2)) / noise_power)


def dose_sweep_snrs(
    sinogram: np.ndarray, doses=(1e3, 1e4, 1e5, 1e6), seed: int = 0
) -> dict[float, float]:
    """SNR at several dose levels — monotone increasing in I0."""
    return {
        float(i0): sinogram_snr(sinogram, add_poisson_noise(sinogram, i0=i0, seed=seed))
        for i0 in doses
    }
