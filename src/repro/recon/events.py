"""Typed per-iteration events: one callback contract for every solver.

Historically each solver invoked ``callback(k, x, resid)`` with a bare
float whose *meaning* differed: SIRT/ART/OS-SART report the data-space
residual ``||y - A x||`` while CGLS drives its recurrence with the
normal-equation residual ``||A^T r||``.  Consumers (the watchdog,
progress streaming in :mod:`repro.serve`, the
:class:`~repro.obs.perf.ConvergenceMeter`) had to know which solver they
were attached to in order to interpret the number.

:class:`IterationEvent` makes the meaning explicit.  Solvers construct
one event per iteration carrying *both* norms when both are cheap (CGLS
maintains ``r`` anyway) and a ``meaning`` tag naming the driving norm;
:attr:`IterationEvent.norm` returns that driving norm so generic
consumers never branch on the solver name.

Backwards compatibility: :func:`as_event_callback` adapts any consumer.
A callable taking a single positional argument (or marked with
``accepts_events = True``) receives the event itself; the legacy
three-argument form keeps receiving ``(k, x, driving_norm)`` unchanged.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

__all__ = ["IterationEvent", "as_event_callback"]

#: ``meaning`` value for solvers driven by the data-space residual norm.
RESIDUAL = "residual"
#: ``meaning`` value for solvers driven by the normal-equation residual.
NORMAL_RESIDUAL = "normal_residual"


@dataclass(frozen=True)
class IterationEvent:
    """One solver iteration, with explicitly-labelled residual norms.

    Attributes
    ----------
    k : int
        Zero-based iteration index.
    x : numpy.ndarray
        The iterate the norms were measured against (the solver's output
        shape: 1-D for a single sinogram, (n, k) for a batch).
    residual_norm : float or None
        ``||y - A x||`` (Frobenius norm for a batch), when the solver
        computed it this iteration.
    normal_residual_norm : float or None
        ``||A^T (y - A x)||``, when available (CGLS always has it).
    meaning : str
        Which of the two norms drives the solver's own convergence
        checks: ``"residual"`` or ``"normal_residual"``.
    solver : str
        Registry name of the emitting solver (``"sirt"``, ``"cgls"``, ...).
    state_provider : callable or None
        Zero-argument callable returning a dict of the solver's *complete*
        internal state arrays (named copies), from which a
        :class:`~repro.recon.checkpoint.CheckpointState` can be built that
        resumes the run bitwise-identically.  Lazy on purpose — capturing
        state copies every array, so consumers that don't checkpoint pay
        nothing.  Contract: call it *during* the callback, synchronously;
        it reads the solver's live locals and a deferred call would see a
        later iteration's state.
    """

    k: int
    x: np.ndarray
    residual_norm: float | None
    normal_residual_norm: float | None
    meaning: str = RESIDUAL
    solver: str = ""
    state_provider: Callable[[], dict] | None = None

    @property
    def norm(self) -> float:
        """The driving norm (the value legacy callbacks received)."""
        if self.meaning == NORMAL_RESIDUAL:
            return float(self.normal_residual_norm)
        return float(self.residual_norm)

    def with_x(self, x: np.ndarray) -> "IterationEvent":
        """Copy of this event against a different iterate (same norms)."""
        return replace(self, x=x)

    def stripped(self) -> "IterationEvent":
        """Copy with the heavy payloads removed (``x`` and
        ``state_provider``) — the form history keeps so results stay light
        and no solver locals are pinned alive."""
        return replace(self, x=None, state_provider=None)


def _positional_arity(fn: Callable) -> int | None:
    """Number of required positional parameters, or None when unknowable."""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return None
    count = 0
    for p in sig.parameters.values():
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD):
            count += 1
        elif p.kind == p.VAR_POSITIONAL:
            return None  # *args: ambiguous, treat as legacy
    return count


def as_event_callback(callback) -> Callable[[IterationEvent], None] | None:
    """Normalise a solver ``callback=`` argument to an event consumer.

    * ``None`` stays ``None`` (the solvers skip event construction).
    * A callable with ``accepts_events = True`` (class attribute or
      function attribute) or exactly one required positional parameter
      is called with the :class:`IterationEvent`.
    * Anything else is treated as the legacy three-argument contract and
      called with ``(event.k, event.x, event.norm)`` — bit-for-bit what
      those callbacks always received.
    """
    if callback is None:
        return None
    if getattr(callback, "accepts_events", False):
        return callback
    if _positional_arity(callback) == 1:
        return callback

    def _legacy(event: IterationEvent) -> None:
        callback(event.k, event.x, event.norm)

    return _legacy
