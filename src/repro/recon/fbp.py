"""FBP — filtered back-projection, the analytic reference reconstruction.

Implements the classical parallel-beam FBP: ramp-filter every view's
projection in Fourier space (Ram-Lak with optional Hann apodisation),
then back-project with the adjoint operator.  Iterative methods are
compared against FBP both for image quality (examples) and to show the
SpMV-heavy methods' quality advantage under few views/noise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.recon.linops import ProjectionOperator
from repro.utils.arrays import check_1d, ensure_dtype


def ramp_filter(num_bins: int, *, window: str = "ramlak") -> np.ndarray:
    """Frequency response of the ramp filter over an FFT of ``2*num_bins``.

    ``window`` is ``"ramlak"`` (pure ramp) or ``"hann"`` (apodised).
    """
    size = 2 * int(num_bins)
    if size < 2:
        raise ValidationError("num_bins must be >= 1")
    freqs = np.fft.fftfreq(size)
    filt = 2.0 * np.abs(freqs)
    if window == "hann":
        filt *= 0.5 * (1.0 + np.cos(2.0 * np.pi * freqs))
    elif window != "ramlak":
        raise ValidationError("window must be 'ramlak' or 'hann'")
    return filt


def filter_sinogram(
    sinogram: np.ndarray, geom: ParallelBeamGeometry, *, window: str = "ramlak"
) -> np.ndarray:
    """Apply the ramp filter view by view (zero-padded FFT)."""
    y = np.asarray(sinogram, dtype=np.float64).reshape(geom.num_views, geom.num_bins)
    filt = ramp_filter(geom.num_bins, window=window)
    padded = np.zeros((geom.num_views, filt.size))
    padded[:, : geom.num_bins] = y
    spectrum = np.fft.fft(padded, axis=1) * filt[None, :]
    filtered = np.real(np.fft.ifft(spectrum, axis=1))[:, : geom.num_bins]
    return filtered.reshape(-1)


def fbp_reconstruct(
    op: ProjectionOperator,
    sinogram: np.ndarray,
    geom: ParallelBeamGeometry,
    *,
    window: str = "ramlak",
    nonneg: bool = True,
) -> np.ndarray:
    """FBP through the *matrix* adjoint (matched discretisation).

    Using ``A^T`` as the back-projector keeps FBP consistent with the
    iterative solvers' operator, at the price of the adjoint's pixel
    weighting; the angular step scaling follows the Radon inversion
    formula ``pi / (2 * num_views)``.
    """
    m, _ = op.shape
    y = ensure_dtype(check_1d(sinogram, m, "sinogram"), op.dtype, "sinogram")
    filtered = filter_sinogram(y, geom, window=window).astype(op.dtype)
    img = op.adjoint(filtered).astype(np.float64)
    img *= np.pi / (2.0 * geom.num_views)
    # undo the adjoint's per-pixel weight (sum of column entries)
    col_sums = np.asarray(
        op.adjoint(np.ones(m, dtype=op.dtype)), dtype=np.float64
    )
    scale = np.divide(
        geom.num_views * geom.pixel_size,
        col_sums,
        out=np.zeros_like(col_sums),
        where=col_sums > 1e-12,
    )
    img *= scale
    if nonneg:
        np.maximum(img, 0, out=img)
    return img.astype(op.dtype)
