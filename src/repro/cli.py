"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``         environment, backend, registered formats, datasets
``spmv``         benchmark formats on a dataset or generated matrix
``bench``        targeted micro-benchmarks (``spmm``: batched vs looped;
                 ``cache``: cold operator build vs warm mmap load;
                 ``build``: cold-build wall time vs worker count;
                 ``trajectory``: append a pinned-suite point to the
                 committed BENCH_trajectory.json; ``compare``: noise-aware
                 diff of two trajectory points, nonzero on regression)
``cache``        operator cache management (``ls``/``info``/``clear``/``warm``)
``convert``      build a CSCV matrix and save it to .npz
``kernels``      compiled-kernel status, or force a rebuild (clears the
                 persistent compile-failure marker)
``reconstruct``  run an iterative solver on a phantom, report quality
``experiment``   regenerate one of the paper's tables/figures
``calibrate``    measure this host and validate the performance model
``trace``        render a JSONL trace (or this process's spans) as a report
``metrics``      dump the metrics registry in Prometheus text format

Set ``REPRO_TRACE=1`` (or ``REPRO_TRACE=/path/to.jsonl``) to record spans
during any command and dump them as JSON lines on exit.  Set
``REPRO_METRICS_PORT`` to serve live Prometheus metrics at ``/metrics``
(and/or ``REPRO_METRICS_FLUSH=<path>`` for periodic JSONL snapshots)
while a command runs.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_info(args) -> int:
    from repro import __version__, available_formats, obs
    from repro.bench.datasets import DATASETS
    from repro.core.cache import default_cache
    from repro.kernels import dispatch

    from repro import config

    st = obs.status()
    print(f"repro {__version__}")
    print(f"backend in use : {dispatch.backend_in_use()}")
    print(f"omp max threads: {dispatch.omp_threads()}")
    print(f"build workers  : {config.runtime.build_workers} "
          f"(REPRO_BUILD_WORKERS; parallel sweep + CSCV packing, "
          f"output identical for any value)")
    shards = config.runtime.shards
    print(f"shard workers  : {config.runtime.shard_workers} "
          f"(REPRO_SHARD_WORKERS; transport: {config.runtime.shard_transport}, "
          f"shards: {'auto' if shards <= 0 else shards}, "
          f"output identical for any worker count)")
    if getattr(args, "shard_topology", None):
        _print_shard_topology(args)
    print(f"tracing        : {'on' if st['tracing'] else 'off'} "
          f"(REPRO_TRACE; exporter: jsonl -> {st['trace_path']})")
    print(f"metrics        : {'on' if st['metrics'] else 'off'} "
          f"({st['metrics_registered']} instruments registered)")
    runtime_desc = "off"
    if st["metrics_runtime"]:
        port = st["metrics_port"]
        runtime_desc = (f"serving http://127.0.0.1:{port}/metrics"
                        if port is not None else "flushing JSONL")
    print(f"metrics runtime: {runtime_desc} "
          f"(REPRO_METRICS_PORT / REPRO_METRICS_FLUSH)")
    print(f"perf accounting: {'on' if st['perf_accounting'] else 'off'} "
          f"(bytes-moved/GB/s histograms; on with tracing or the runtime)")
    print(f"profiling      : {'on' if st['profiling'] else 'off'} (REPRO_PROFILE)")
    cs = default_cache().stats()
    print(f"operator cache : {'on' if cs['enabled'] else 'off'} "
          f"({cs['entries']} entries, {cs['bytes'] / 1e6:.1f} MB of "
          f"{cs['max_bytes'] / 1e9:.1f} GB) at {cs['root']}")
    from repro.resilience import faults

    spec = faults.active_spec()
    print(f"guards         : {config.runtime.guard} (REPRO_GUARD: off/inputs/full)")
    print(f"fault plan     : {spec if spec else 'none'} (REPRO_FAULTS; "
          f"profiles: {', '.join(sorted(faults.PROFILES))})")
    print(f"formats        : {', '.join(available_formats())}")
    print("datasets       :")
    for name, ds in DATASETS.items():
        print(f"  {name:16s} {ds.image_size}^2 image, {ds.num_views} views "
              f"(paper: {ds.paper.img})")
    return 0


def _print_shard_topology(args) -> None:
    """Shard layout (view ranges, per-shard nnz) for ``repro info``."""
    from repro import api, config
    from repro.dist import plan_shards, resolve_shards

    size = int(args.shard_topology)
    geom = api._resolve_geom(size)
    workers = config.runtime.shard_workers
    num_shards = resolve_shards(geom.num_views, None, workers)
    coo, _ = api.build_ct_matrix(size, cache=True)
    specs = plan_shards(geom, num_shards)
    print(f"shard topology : {size}^2 image, {geom.num_views} views -> "
          f"{num_shards} shards on {workers} worker(s)")
    for spec in specs:
        lo = int(np.searchsorted(coo.rows, spec.r0, side="left"))
        hi = int(np.searchsorted(coo.rows, spec.r1, side="left"))
        print(f"  shard {spec.index}: views [{spec.v0:4d}, {spec.v1:4d})  "
              f"rows [{spec.r0:6d}, {spec.r1:6d})  nnz {hi - lo}")


def _cmd_spmv(args) -> int:
    from repro.bench.datasets import get_dataset
    from repro.bench.harness import run_suite
    from repro.core.params import CSCVParams
    from repro.utils.tables import Table

    dtype = np.float64 if args.double else np.float32
    coo, geom = get_dataset(args.dataset).load(dtype=dtype)
    names = args.formats.split(",") if args.formats else [
        "csr", "mkl-csr", "spc5", "cscv-z", "cscv-m",
    ]
    params = CSCVParams(args.s_vvec, args.s_imgb, args.s_vxg)
    records = run_suite(coo, geom, names, dtype=dtype, params=params,
                        iterations=args.iterations)
    t = Table(headers=["format", "GFLOP/s", "min ms", "mean ms", "p50 ms",
                       "noise", "BW GB/s"], fmt=".2f",
              title=f"{args.dataset} ({np.dtype(dtype)}, nnz {coo.nnz:,})")
    for r in records:
        t.add_row(r.format_name, r.gflops, r.seconds * 1e3, r.mean_seconds * 1e3,
                  r.p50_seconds * 1e3, f"{r.noise:.1%}", r.bw_gbs)
    t.mark_extremes(1)
    print(t.render())
    return 0


def _cmd_bench(args) -> int:
    from repro.core.params import CSCVParams

    dtype = np.float64 if args.double else np.float32
    params = CSCVParams(args.s_vvec, args.s_imgb, args.s_vxg)
    if args.what == "spmm":
        from repro.bench.spmm import render, run_spmm_bench

        batches = tuple(int(b) for b in args.batches.split(","))
        names = tuple(args.formats.split(",")) if args.formats else (
            "csr", "cscv-z", "cscv-m",
        )
        records = run_spmm_bench(
            size=args.size, batch_sizes=batches, format_names=names,
            dtype=dtype, params=params, iterations=args.iterations,
        )
        print(render(records, title=f"SpMM vs looped SpMV, {args.size}^2 image "
                                    f"({np.dtype(dtype)})"))
        return 0
    if args.what == "cache":
        from repro.bench.cache import render, run_cache_bench

        names = tuple(args.formats.split(",")) if args.formats else (
            "cscv-z", "cscv-m",
        )
        records = run_cache_bench(
            size=args.size, format_names=names, dtype=dtype, params=params,
        )
        print(render(records, title=f"operator cache: cold build vs warm mmap "
                                    f"load, {args.size}^2 image ({np.dtype(dtype)})"))
        bad = [r for r in records if not (r.spmv_identical and r.spmm_identical)]
        if bad:
            print("error: warm operator output differs from cold build",
                  file=sys.stderr)
            return 1
        return 0
    if args.what == "build":
        from repro.bench.build import render, run_build_bench, save_records

        projectors = tuple(args.projectors.split(","))
        workers = tuple(int(w) for w in args.workers.split(","))
        records = run_build_bench(
            size=args.size, projectors=projectors, worker_counts=workers,
            dtype=dtype, params=params, repeats=args.repeats,
        )
        print(render(records, title=f"cold operator build vs workers, "
                                    f"{args.size}^2 image ({np.dtype(dtype)})"))
        path = save_records(records, args.out or "BENCH_build.json",
                            fresh=args.fresh)
        print(f"records {'written' if args.fresh else 'appended'} to {path}")
        return 0
    if args.what == "trajectory":
        from repro.bench.trajectory import (
            DEFAULT_TRAJECTORY_PATH,
            append_point,
            render_point,
            run_trajectory,
        )

        point = run_trajectory(quick=args.quick)
        path = args.out or DEFAULT_TRAJECTORY_PATH
        payload = append_point(point, path)
        print(render_point(point))
        print(f"point {len(payload['points'])} appended to {path}")
        return 0
    if args.what == "serve":
        from repro.bench.serve import render, run_serve_bench

        levels = tuple(int(c) for c in args.concurrency.split(","))
        records = run_serve_bench(
            size=args.size,
            jobs_per_level=args.jobs,
            concurrency_levels=levels,
            solver=args.solver,
            iterations=args.iterations,
            workers=args.serve_workers,
            quick=args.quick,
        )
        print(render(records,
                     title=f"serve load sweep, {args.size}^2 image, "
                           f"{args.solver} ({args.jobs} jobs/level)"))
        serial = next((r for r in records if r.concurrency == 1), None)
        top = max(records, key=lambda r: r.concurrency)
        if serial and top.concurrency > 1:
            print(f"concurrency {top.concurrency}: "
                  f"{top.jobs_per_s / serial.jobs_per_s:.2f}x the serial "
                  f"jobs/s (mean batch width {top.mean_batch_width:.1f})")
        return 1 if any(r.failed for r in records) else 0
    if args.what == "shard":
        from repro.bench.shard import render, run_shard_bench

        names = tuple(args.formats.split(",")) if args.formats else ("csr",)
        workers = tuple(int(w) for w in args.workers.split(","))
        records = run_shard_bench(
            size=args.size, format_names=names, worker_counts=workers,
            dtype=dtype, iterations=args.iterations, quick=args.quick,
        )
        print(render(records,
                     title=f"sharded operator scaling, {args.size}^2 image "
                           f"({np.dtype(dtype)}, numpy backend)"))
        bad = [r for r in records if not r.identical]
        if bad:
            print("error: sharded output differs across worker counts",
                  file=sys.stderr)
            return 1
        return 0
    if args.what == "compare":
        from repro.bench.trajectory import (
            DEFAULT_TRAJECTORY_PATH,
            compare_points,
            load_trajectory,
            render_compare,
        )

        path = args.out or DEFAULT_TRAJECTORY_PATH
        points = load_trajectory(path)["points"]
        if len(points) < 2:
            print(f"error: {path} has {len(points)} point(s); need two to "
                  f"compare (run `repro bench trajectory` first)",
                  file=sys.stderr)
            return 2
        old = points[args.baseline]
        new = points[args.candidate]
        results = compare_points(old, new)
        print(render_compare(
            results,
            title=f"{old.get('git_rev', '?')} -> {new.get('git_rev', '?')}",
        ))
        regressions = [r for r in results if r["status"] == "regression"]
        if regressions:
            print(f"{len(regressions)} regression(s) above the noise-aware "
                  f"threshold", file=sys.stderr)
            return 0 if args.report_only else 1
        return 0
    print(f"unknown bench {args.what!r}; options: spmm, cache, build, "
          f"trajectory, compare, serve, shard", file=sys.stderr)
    return 2


def _cmd_cache(args) -> int:
    from repro.core.cache import default_cache
    from repro.utils.tables import Table

    cache = default_cache()
    if args.action == "ls":
        entries = cache.entries()
        if not entries:
            print(f"(cache empty: {cache.root})")
            return 0
        import datetime

        t = Table(headers=["key", "kind", "format", "shape", "MB", "last used"],
                  title=str(cache.root))
        for e in entries:
            shape = "x".join(str(s) for s in e.shape) if e.shape else "-"
            t.add_row(
                e.key[:16], e.kind, e.format or "-", shape,
                f"{e.nbytes / 1e6:.1f}",
                datetime.datetime.fromtimestamp(e.last_used).isoformat(
                    sep=" ", timespec="seconds"),
            )
        print(t.render())
        return 0
    if args.action == "info":
        st = cache.stats()
        life = cache.lifetime_stats()
        print(f"root     : {st['root']}")
        print(f"enabled  : {st['enabled']} (REPRO_CACHE)")
        print(f"verify   : {st['verify']} (REPRO_CACHE_VERIFY)")
        print(f"entries  : {st['entries']}")
        print(f"bytes    : {st['bytes']:,} of {st['max_bytes']:,} "
              f"(REPRO_CACHE_MAX_BYTES)")
        print(f"lifetime : hits {life.get('hits', 0)}, "
              f"misses {life.get('misses', 0)}, "
              f"stores {life.get('stores', 0)}, "
              f"evictions {life.get('evictions', 0)}, "
              f"corrupt {life.get('corrupt', 0)}")
        return 0
    if args.action == "clear":
        n = len(cache.entries())
        cache.clear()
        print(f"removed {n} entr{'y' if n == 1 else 'ies'} from {cache.root}")
        return 0
    if args.action == "warm":
        from repro.api import operator
        from repro.core.params import CSCVParams

        dtype = np.float64 if args.double else np.float32
        params = CSCVParams(args.s_vvec, args.s_imgb, args.s_vxg)
        for name in args.formats.split(","):
            import time

            t0 = time.perf_counter()
            operator(args.size, fmt=name, projector=args.projector,
                     dtype=dtype, params=params, cache_obj=cache)
            print(f"warmed {name:8s} ({args.size}^2, {args.projector}) "
                  f"in {time.perf_counter() - t0:.2f}s")
        return 0
    print(f"unknown cache action {args.action!r}", file=sys.stderr)
    return 2


def _cmd_convert(args) -> int:
    from repro.bench.datasets import get_dataset
    from repro.core.builder import build_cscv
    from repro.core.io import save_cscv
    from repro.core.params import CSCVParams

    dtype = np.float64 if args.double else np.float32
    coo, geom = get_dataset(args.dataset).load(dtype=dtype)
    params = CSCVParams(args.s_vvec, args.s_imgb, args.s_vxg)
    data = build_cscv(coo.rows, coo.cols, coo.vals, geom, params, dtype,
                      reference_mode=args.reference_mode)
    save_cscv(args.output, data)
    print(f"wrote {args.output}: nnz {data.nnz:,}, R_nnzE {data.r_nnze:.3f}, "
          f"{data.num_vxg:,} VxGs in {data.num_blocks:,} blocks")
    return 0


def _parse_cli_params(items) -> dict:
    """``--param key=value`` pairs -> solver kwargs (JSON-typed values).

    Values parse as JSON when possible (``0.5`` -> float, ``true`` ->
    bool) and fall back to plain strings (``hann``); the solver registry
    does the real validation and names the accepted parameters on error.
    """
    import json

    from repro.errors import ValidationError

    params = {}
    for item in items or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ValidationError(
                f"--param expects key=value, got {item!r}"
            )
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def _cmd_reconstruct(args) -> int:
    from repro.api import operator, reconstruct
    from repro.core.params import CSCVParams
    from repro.errors import ValidationError
    from repro.geometry.parallel_beam import ParallelBeamGeometry
    from repro.geometry.phantom import shepp_logan
    from repro.recon import relative_error
    from repro.recon.registry import get_solver

    try:
        spec = get_solver(args.solver)
    except ValidationError as exc:
        # usage error, not a library failure: same exit code argparse
        # would use for a bad choice
        print(f"error: {exc}", file=sys.stderr)
        return 2

    geom = ParallelBeamGeometry.for_image(args.size, 2 * args.size)
    truth = shepp_logan(args.size).ravel()
    op = operator(geom, fmt="cscv-z", params=CSCVParams(8, 16, 2),
                  dtype=np.float64, cache=not args.no_cache)
    sino = op.forward(truth)

    # only explicitly-set flags reach the registry, so each solver keeps
    # its own schema defaults and unknown parameters fail with the
    # solver's accepted-parameter list; the shared convenience flags
    # (--iterations/--relax) only apply where the schema accepts them
    # (e.g. fbp takes neither), matching the old CLI's behaviour
    params = _parse_cli_params(args.param)
    accepted = spec.param_names()
    if args.iterations is not None and "iterations" in accepted:
        params["iterations"] = args.iterations
    if args.relax is not None and "relax" in accepted:
        params["relax"] = args.relax
    extra = {"watchdog": True} if args.watchdog else {}

    from repro.obs import profiled

    with profiled(f"reconstruct.{args.solver}"):
        res = reconstruct(op, sino, solver=args.solver, geom=geom,
                          **extra, **params)
    print(f"{args.solver} on {args.size}^2 Shepp-Logan: "
          f"relative error {relative_error(res.image, truth):.4f} "
          f"({res.iterations} iterations, stop: {res.stop_reason}, "
          f"{res.wall_seconds:.2f}s)")
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading as _threading

    from repro import config as repro_config
    from repro.serve import ServeConfig, ServiceRunner, serve_http

    journal_dir = args.journal_dir
    if journal_dir is None:
        journal_dir = repro_config.journal_dir()
    elif journal_dir.lower() == "none":
        journal_dir = None

    config = ServeConfig(
        workers=args.workers,
        max_queue_depth=args.max_queue_depth,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window,
        default_deadline_s=args.deadline,
        shard_workers=args.shard_workers,
        shard_transport=args.shard_transport,
        journal_dir=journal_dir,
        recover=args.recover,
        ckpt_every=args.ckpt_every,
        drain_timeout_s=args.drain_timeout,
    )
    runner = ServiceRunner(config).start()
    server = serve_http(runner, host=args.host, port=args.port)
    stop_event = _threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop_event.set())
    signal.signal(signal.SIGINT, lambda *_: stop_event.set())
    shard_note = ""
    if (config.shard_workers or 0) > 1:
        shard_note = f", shard_workers={config.shard_workers}"
    journal_note = f", journal={journal_dir}" if journal_dir else ", no journal"
    print(f"repro serve listening on http://{args.host}:{server.port} "
          f"(workers={config.workers}, max_batch={config.max_batch}, "
          f"queue depth {config.max_queue_depth}/tenant"
          f"{shard_note}{journal_note})")
    print("endpoints: POST /v1/reconstruct, GET /v1/jobs/<id>[/progress], "
          "GET /metrics, GET /healthz, GET /readyz")
    if journal_dir and config.recover:
        runner.wait_ready(timeout=600.0)
        rec = runner.stats().get("recovery", {})
        print(f"recovery: {rec.get('state')} "
              f"(records={rec.get('records', 0)}, "
              f"resumed={rec.get('resumed', 0)}, "
              f"restarted={rec.get('restarted', 0)}, "
              f"restored={rec.get('restored', 0)}, "
              f"failed={rec.get('failed', 0)})")
    try:
        stop_event.wait()
        print("\nsignal received; draining "
              f"(timeout {config.drain_timeout_s:g}s)", file=sys.stderr)
        summary = runner.drain()
        print(f"drain: suspended={summary.get('suspended', 0)} "
              f"abandoned={summary.get('abandoned', 0)} "
              f"queued_failed={summary.get('queued_failed', 0)} "
              f"clean={summary.get('clean')}", file=sys.stderr)
    finally:
        server.stop()
        runner.stop()
    return 0


def _cmd_experiment(args) -> int:
    import importlib

    mod = importlib.import_module(f"repro.bench.experiments.{args.name}")
    print(mod.run())
    return 0


def _cmd_calibrate(args) -> int:
    from repro.bench.calibrate import calibrate_host, validation_report

    machine = calibrate_host()
    print(validation_report(machine))
    return 0


def _cmd_trace(args) -> int:
    from repro import obs

    if args.file:
        import json

        try:
            spans = obs.load_jsonl(args.file)
        except FileNotFoundError:
            print(f"error: no such trace file: {args.file}", file=sys.stderr)
            return 2
        except (json.JSONDecodeError, KeyError) as exc:
            print(f"error: {args.file} is not a JSONL trace: {exc}",
                  file=sys.stderr)
            return 2
        report = (obs.stage_summary(spans) if args.aggregate
                  else obs.span_tree_report(spans))
        print(report)
        return 0
    # no file: report whatever this process recorded (plus metrics)
    print(obs.trace_report(aggregate=args.aggregate))
    if args.metrics:
        print()
        print(obs.prometheus_text(obs.registry))
    return 0


def _cmd_kernels(args) -> int:
    from repro.kernels import cbuild, dispatch

    if args.action == "build":
        from repro.kernels.cbindings import reset_load_state

        path = cbuild.build_library(verbose=True)  # KernelError on failure
        cbuild.reset_cache_state()
        reset_load_state()
        print(f"kernel library ready: {path}")
        return 0
    marker = cbuild.failure_marker_path()
    print(f"backend in use : {dispatch.backend_in_use()}")
    print(f"failure marker : {marker if marker.is_file() else 'none'}")
    return 0


def _cmd_metrics(args) -> int:
    from repro import obs

    text = obs.prometheus_text(obs.registry)
    if not text:
        print("(no metrics recorded in this process; metrics are "
              "process-wide — see `repro trace`)", file=sys.stderr)
        return 0
    print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    p.add_argument("--debug", action="store_true",
                   help="show full tracebacks for repro errors instead of "
                        "one-line messages")
    sub = p.add_subparsers(dest="command", required=True)

    si = sub.add_parser("info", help="environment and registry summary")
    si.add_argument("--shard-topology", type=int, metavar="SIZE", default=None,
                    help="also print the shard layout (view ranges, per-shard "
                         "nnz) for a SIZE^2 operator")

    sp = sub.add_parser("spmv", help="benchmark SpMV formats")
    sp.add_argument("--dataset", default="clinical-small")
    sp.add_argument("--formats", default="", help="comma-separated names")
    sp.add_argument("--double", action="store_true")
    sp.add_argument("--iterations", type=int, default=30)
    sp.add_argument("--s-vvec", type=int, default=16)
    sp.add_argument("--s-imgb", type=int, default=16)
    sp.add_argument("--s-vxg", type=int, default=2)

    bn = sub.add_parser("bench", help="targeted micro-benchmarks")
    bn.add_argument("what", help="which bench to run (spmm, cache, build, "
                                 "trajectory, compare, serve, shard)")
    bn.add_argument("--size", type=int, default=256,
                    help="image side length (matrix is ~2*size^2 x size^2)")
    bn.add_argument("--formats", default="", help="comma-separated names")
    bn.add_argument("--batches", default="1,2,4,8,16",
                    help="comma-separated batch sizes k")
    bn.add_argument("--double", action="store_true")
    bn.add_argument("--iterations", type=int, default=20)
    bn.add_argument("--s-vvec", type=int, default=16)
    bn.add_argument("--s-imgb", type=int, default=16)
    bn.add_argument("--s-vxg", type=int, default=2)
    bn.add_argument("--projectors", default="strip,pixel,siddon",
                    help="projector sweeps to time (bench build)")
    bn.add_argument("--workers", default="1,2,4",
                    help="comma-separated worker counts (bench build: "
                         "build workers; bench shard: shard workers)")
    bn.add_argument("--repeats", type=int, default=1,
                    help="best-of repeats per cold build (bench build)")
    bn.add_argument("--out", default=None,
                    help="JSON record path (default BENCH_build.json for "
                         "bench build, BENCH_trajectory.json for "
                         "trajectory/compare)")
    bn.add_argument("--fresh", action="store_true",
                    help="truncate the record file instead of appending "
                         "(bench build)")
    bn.add_argument("--quick", action="store_true",
                    help="small sizes / few iterations (bench trajectory)")
    bn.add_argument("--report-only", action="store_true",
                    help="print regressions but exit 0 (bench compare)")
    bn.add_argument("--baseline", type=int, default=-2,
                    help="trajectory point index to compare against "
                         "(bench compare; default: second to last)")
    bn.add_argument("--candidate", type=int, default=-1,
                    help="trajectory point index under test "
                         "(bench compare; default: last)")
    bn.add_argument("--concurrency", default="1,2,4,8",
                    help="comma-separated closed-loop client counts "
                         "(bench serve)")
    bn.add_argument("--jobs", type=int, default=24,
                    help="jobs per concurrency level (bench serve)")
    bn.add_argument("--solver", default="sirt",
                    help="registry solver the load runs (bench serve)")
    bn.add_argument("--serve-workers", type=int, default=2,
                    help="service worker-pool size (bench serve)")

    ca = sub.add_parser("cache", help="inspect/manage the operator cache")
    casub = ca.add_subparsers(dest="action", required=True)
    casub.add_parser("ls", help="list cache entries (LRU order)")
    casub.add_parser("info", help="cache location, size and lifetime counters")
    casub.add_parser("clear", help="remove every cache entry")
    cw = casub.add_parser("warm", help="pre-build operators into the cache")
    cw.add_argument("--size", type=int, default=256)
    cw.add_argument("--formats", default="cscv-z,cscv-m",
                    help="comma-separated format names")
    cw.add_argument("--projector", default="strip",
                    choices=["strip", "pixel", "siddon"])
    cw.add_argument("--double", action="store_true")
    cw.add_argument("--s-vvec", type=int, default=16)
    cw.add_argument("--s-imgb", type=int, default=16)
    cw.add_argument("--s-vxg", type=int, default=2)

    cv = sub.add_parser("convert", help="build + save a CSCV matrix")
    cv.add_argument("output")
    cv.add_argument("--dataset", default="clinical-small")
    cv.add_argument("--double", action="store_true")
    cv.add_argument("--s-vvec", type=int, default=16)
    cv.add_argument("--s-imgb", type=int, default=16)
    cv.add_argument("--s-vxg", type=int, default=2)
    cv.add_argument("--reference-mode", default="ioblr", choices=["ioblr", "btb"])

    rc = sub.add_parser("reconstruct", help="reconstruct a phantom")
    rc.add_argument("--solver", default="sirt",
                    help="any registry solver (repro.recon.available_solvers())")
    rc.add_argument("--size", type=int, default=64)
    rc.add_argument("--iterations", type=int, default=None,
                    help="iteration budget (default: the solver's schema "
                         "default)")
    rc.add_argument("--relax", type=float, default=None,
                    help="relaxation factor (solvers with the 'relax' "
                         "capability; >2 needs --watchdog to recover)")
    rc.add_argument("--param", action="append", metavar="KEY=VALUE",
                    help="extra solver parameter (repeatable); validated "
                         "against the solver's registry schema")
    rc.add_argument("--watchdog", action="store_true",
                    help="enable the residual watchdog (divergence detection "
                         "+ restart with backed-off relaxation)")
    rc.add_argument("--no-cache", action="store_true",
                    help="bypass the persistent operator cache")

    sv = sub.add_parser("serve", help="run the reconstruction service "
                                      "(HTTP JSON API)")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8471,
                    help="listen port (0 picks an ephemeral port)")
    sv.add_argument("--workers", type=int, default=2,
                    help="concurrent solver batches")
    sv.add_argument("--max-queue-depth", type=int, default=16,
                    help="queued jobs allowed per tenant before 429")
    sv.add_argument("--max-batch", type=int, default=8,
                    help="most jobs coalesced into one SpMM batch")
    sv.add_argument("--batch-window", type=float, default=0.01,
                    help="seconds a coalescible job waits for key-mates")
    sv.add_argument("--deadline", type=float, default=None,
                    help="default per-job deadline in seconds")
    sv.add_argument("--shard-workers", type=int, default=None,
                    help="worker processes per sharded operator "
                         "(default: REPRO_SHARD_WORKERS; 1 disables)")
    sv.add_argument("--shard-transport", default=None,
                    help="shard transport (default: REPRO_SHARD_TRANSPORT)")
    sv.add_argument("--journal-dir", default=None,
                    help="durable job journal directory (default: "
                         "REPRO_JOURNAL_DIR or <cache>/journal; "
                         "'none' disables journaling)")
    sv.add_argument("--recover", dest="recover", action="store_true",
                    default=True,
                    help="replay the journal on boot and resume "
                         "interrupted jobs (default)")
    sv.add_argument("--no-recover", dest="recover", action="store_false",
                    help="skip journal replay on boot")
    sv.add_argument("--ckpt-every", type=int, default=None,
                    help="solver checkpoint cadence in iterations "
                         "(default: REPRO_CKPT_EVERY)")
    sv.add_argument("--drain-timeout", type=float, default=30.0,
                    help="seconds SIGTERM/SIGINT drain waits for "
                         "in-flight batches to finish or checkpoint")

    kn = sub.add_parser("kernels", help="compiled kernel library status / build")
    kn.add_argument("action", nargs="?", choices=("status", "build"),
                    default="status",
                    help="'build' recompiles and clears any persistent "
                         "compile-failure marker")

    ex = sub.add_parser("experiment", help="regenerate a paper table/figure")
    ex.add_argument("name", help="table1..table4, fig1..fig11")

    sub.add_parser("calibrate", help="calibrate the host performance model")

    tr = sub.add_parser("trace", help="render a JSONL trace as a stage report")
    tr.add_argument("file", nargs="?", default="",
                    help="trace file (default: this process's spans)")
    tr.add_argument("--aggregate", action="store_true",
                    help="aggregate wall-clock by span name (Fig-7 style)")
    tr.add_argument("--metrics", action="store_true",
                    help="also print the Prometheus metrics text")

    sub.add_parser("metrics", help="dump the metrics registry (Prometheus text)")
    return p


_COMMANDS = {
    "info": _cmd_info,
    "spmv": _cmd_spmv,
    "bench": _cmd_bench,
    "cache": _cmd_cache,
    "convert": _cmd_convert,
    "kernels": _cmd_kernels,
    "reconstruct": _cmd_reconstruct,
    "serve": _cmd_serve,
    "experiment": _cmd_experiment,
    "calibrate": _cmd_calibrate,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Honours ``REPRO_TRACE``: when set, spans recorded during the command
    are dumped as JSON lines on exit and the path is printed to stderr.

    Library failures (:class:`~repro.errors.ReproError` — bad arguments,
    corrupt files, diverged solvers, unavailable kernels) exit non-zero
    with a one-line message; pass ``--debug`` for the full traceback.
    """
    from repro import obs
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    tracing = obs.init_from_env()
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        if args.debug:
            raise
        first_line = (str(exc).splitlines() or [""])[0]
        print(f"error: {type(exc).__name__}: {first_line}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); not an error
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    finally:
        if tracing and args.command not in ("trace", "metrics"):
            spans = obs.tracer.finished()
            if spans:
                path = obs.dump_trace()
                print(f"[obs] {len(spans)} spans -> {path}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
