"""Fig 9: best GFLOP/s and chosen S_VxG per (S_VVec, S_ImgB)."""

import numpy as np
from conftest import emit

from repro.bench.experiments import fig9
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams


def test_fig9_parameter_performance(benchmark, quick_matrix):
    coo, geom = quick_matrix
    z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(16, 16, 2))
    x = np.ones(coo.shape[1], dtype=np.float32)
    y = np.zeros(coo.shape[0], dtype=np.float32)
    benchmark(z.spmv_into, x, y)
    emit(fig9.run(iterations=8))
