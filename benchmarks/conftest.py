"""Shared fixtures for the table/figure benchmarks.

Each bench file regenerates one table or figure of the paper (printed to
stdout; run with ``-s`` to see them) and times its representative kernel
through pytest-benchmark.  Matrices are cached on disk after the first
build, so the first invocation is slower than the rest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.datasets import get_dataset


@pytest.fixture(scope="session")
def quick_matrix():
    """The small clinical dataset in float32 (shared across bench files)."""
    return get_dataset("clinical-small").load(dtype=np.float32)


@pytest.fixture(scope="session")
def mid_matrix():
    """The mid clinical dataset in float32."""
    return get_dataset("clinical-mid").load(dtype=np.float32)


def emit(report: str) -> None:
    """Print a regenerated table/figure under a visible rule."""
    print("\n" + "=" * 72)
    print(report)
    print("=" * 72)
