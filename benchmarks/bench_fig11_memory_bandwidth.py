"""Fig 11: memory requirements, performance, bandwidth usage per impl."""

import numpy as np
from conftest import emit

from repro.bench.experiments import fig11
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import PAPER_TABLE3


def test_fig11_memory_bandwidth(benchmark, mid_matrix):
    coo, geom = mid_matrix
    z = CSCVZMatrix.from_ct(coo, geom, PAPER_TABLE3[("skl", "cscv-z", "single")])
    m = CSCVMMatrix.from_data(z.data)
    x = np.ones(coo.shape[1], dtype=np.float32)
    y = np.zeros(coo.shape[0], dtype=np.float32)
    benchmark(m.spmv_into, x, y)
    emit(fig11.run())
