"""Table IV: best GFLOP/s per implementation (measured + modelled)."""

import numpy as np
from conftest import emit

from repro.bench.experiments import table4
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import PAPER_TABLE3


def test_table4_single_precision(benchmark, quick_matrix):
    coo, geom = quick_matrix
    z = CSCVZMatrix.from_ct(coo, geom, PAPER_TABLE3[("skl", "cscv-z", "single")])
    m = CSCVMMatrix.from_data(z.data)
    x = np.ones(coo.shape[1], dtype=np.float32)
    y = np.zeros(coo.shape[0], dtype=np.float32)
    benchmark(m.spmv_into, x, y)
    emit(table4.run(dtype=np.float32))
    s = table4.speedup_summary()
    emit(
        f"headline: CSCV best {s['cscv_best']:.2f} GF = {s['vs_mkl_csr']:.2f}x "
        f"MKL-CSR, {s['vs_second']:.2f}x second place ({s['second_name']}) "
        f"[paper: 1.89-3.70x MKL, 1.05-3.48x second]"
    )


def test_table4_double_precision(benchmark, quick_matrix):
    coo64, geom = quick_matrix
    coo = coo64.astype(np.float64)
    z = CSCVZMatrix.from_ct(coo, geom, PAPER_TABLE3[("skl", "cscv-z", "double")])
    m = CSCVMMatrix.from_data(z.data)
    x = np.ones(coo.shape[1], dtype=np.float64)
    y = np.zeros(coo.shape[0], dtype=np.float64)
    benchmark(m.spmv_into, x, y)
    emit(table4.run(dtype=np.float64, dataset_names=["clinical-small"]))
