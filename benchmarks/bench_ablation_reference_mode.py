"""Ablation: IOBLR reference curves vs the view-major (BTB) layout.

The end-to-end version of Fig 4: build CSCV with the paper's
trajectory-following reference curves and with the constant-per-group
reference of the BTB layout [14]; compare padding, traffic and measured
SpMV speed.  IOBLR must win on all three.
"""

import numpy as np
from conftest import emit

from repro.core.builder import build_cscv
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.bench.harness import measure_format
from repro.utils.tables import Table


def test_ablation_reference_mode(benchmark, quick_matrix):
    coo, geom = quick_matrix
    params = CSCVParams(8, 16, 2)
    t = Table(
        headers=["reference mode", "R_nnzE", "matrix MiB", "GFLOP/s"],
        fmt=".3f", title="ablation: local reordering strategy",
    )
    fmts = {}
    for mode in ("ioblr", "btb"):
        data = build_cscv(coo.rows, coo.cols, coo.vals, geom, params,
                          np.float32, reference_mode=mode)
        z = CSCVZMatrix(data)
        fmts[mode] = z
        rec = measure_format(z, iterations=15, max_seconds=1.5)
        t.add_row(mode, data.r_nnze, z.memory_bytes()["total"] / 2**20, rec.gflops)
    emit(t.render())
    assert fmts["btb"].r_nnze > fmts["ioblr"].r_nnze

    x = np.ones(coo.shape[1], dtype=np.float32)
    y = np.zeros(coo.shape[0], dtype=np.float32)
    benchmark(fmts["ioblr"].spmv_into, x, y)
