"""Fig 3: CSCVE memory layout along the reference polyline."""

from conftest import emit

from repro.bench.experiments import fig3, table1
from repro.core.cscve import column_cscves


def test_fig3_cscve_layout(benchmark):
    geom = table1.sample_geometry()
    block = table1.sample_block()
    s_vvec = table1.sample_params().s_vvec
    benchmark(column_cscves, geom, block, (7, 7), block.reference_pixel, s_vvec)
    emit(fig3.run())
