"""Ablation: general formats on non-CT workloads — CSCV's scope boundary.

CSCV converts only integral-operator matrices (it needs the geometry's
reference trajectories); PDE stencils and power-law graphs exercise the
*general* formats and show each one's comfort zone: ELL on the regular
Laplacian, merge-path CSR on the skewed graph.  The paper's positioning —
a domain-specific format that wins inside its domain — demands showing
the domain's edge honestly.
"""

import numpy as np
from conftest import emit

from repro.bench.harness import measure_format
from repro.bench.workloads import laplacian_2d, powerlaw_graph, random_banded, row_skew
from repro.sparse import (
    CSRMatrix, ELLMatrix, HYBMatrix, MergeCSRMatrix, MKLLikeCSR,
)
from repro.utils.tables import Table

FORMATS = (CSRMatrix, ELLMatrix, HYBMatrix, MergeCSRMatrix, MKLLikeCSR)


def _workloads():
    return [
        ("laplacian 96x96 grid", laplacian_2d(96, dtype=np.float32)),
        ("power-law graph n=4096", powerlaw_graph(4096, m=8, dtype=np.float32)),
        ("banded n=8192 bw=16", random_banded(8192, bandwidth=16, dtype=np.float32)),
    ]


def test_ablation_workloads(benchmark):
    bench_target = None
    for wname, coo in _workloads():
        t = Table(headers=["format", "GFLOP/s", "pad ratio"],
                  fmt=".3f", title=f"{wname} (skew {row_skew(coo):.1f})")
        for cls in FORMATS:
            try:
                fmt = cls.from_coo(coo.shape, coo.rows, coo.cols, coo.vals)
            except Exception as exc:  # ELL may refuse extreme skew
                t.add_row(cls.name, f"n/a ({type(exc).__name__})", None)
                continue
            rec = measure_format(fmt, iterations=10, max_seconds=1.0)
            pad = fmt.padding_ratio() if hasattr(fmt, "padding_ratio") else 0.0
            t.add_row(cls.name, rec.gflops, pad)
            if bench_target is None:
                bench_target = fmt
        t.mark_extremes(1)
        emit(t.render())
    emit("note: CSCV formats are absent by design — they require the "
         "integral-operator geometry (see repro.bench.workloads docstring)")

    x = np.ones(bench_target.shape[1], dtype=np.float32)
    y = np.zeros(bench_target.shape[0], dtype=np.float32)
    benchmark(bench_target.spmv_into, x, y)
