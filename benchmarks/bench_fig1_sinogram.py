"""Fig 1: forward projection and sinogram."""

import numpy as np
from conftest import emit

from repro.api import build_ct_matrix
from repro.bench.experiments import fig1
from repro.geometry.phantom import shepp_logan
from repro.sparse.csr import CSRMatrix


def test_fig1_sinogram(benchmark):
    coo, geom = build_ct_matrix(64, num_views=60)
    csr = CSRMatrix.from_coo_matrix(coo)
    x = shepp_logan(64).ravel()
    y = np.zeros(coo.shape[0])
    benchmark(csr.spmv_into, x, y)  # the forward projection itself
    emit(fig1.run())
