"""Fig 6: constructing and ordering VxGs."""

from conftest import emit

from repro.bench.experiments import fig6
from repro.core.vxg import construct_vxgs


def test_fig6_vxg_construction(benchmark):
    offsets = fig6._column_offsets()
    benchmark(construct_vxgs, offsets, 2)
    emit(fig6.run())
