"""Ablation: compiled C kernels vs the NumPy fallback.

Quantifies what compiler auto-vectorization buys per format — the
portability story of Section IV-E (the library stays correct and usable
without any compiler, just slower).
"""

import numpy as np
from conftest import emit

from repro import config
from repro.api import build_format
from repro.bench.harness import measure_format
from repro.core.params import CSCVParams
from repro.utils.tables import Table

FORMATS = ("csr", "csc", "spc5", "cscv-z", "cscv-m")


def test_ablation_backend(benchmark, quick_matrix):
    coo, geom = quick_matrix
    params = CSCVParams(16, 16, 2)
    t = Table(headers=["format", "C GF", "NumPy GF", "C speedup"],
              fmt=".2f", title="ablation: backend")
    prev = config.runtime.backend
    z = None
    try:
        for name in FORMATS:
            fmt = build_format(name, coo, geom=geom, params=params)
            if name == "cscv-z":
                z = fmt
            config.runtime.backend = "auto"
            g_c = measure_format(fmt, iterations=10, max_seconds=1.0).gflops
            config.runtime.backend = "numpy"
            g_np = measure_format(fmt, iterations=5, max_seconds=1.0).gflops
            t.add_row(name, g_c, g_np, g_c / g_np)
    finally:
        config.runtime.backend = prev
    emit(t.render())

    x = np.ones(coo.shape[1], dtype=np.float32)
    y = np.zeros(coo.shape[0], dtype=np.float32)
    benchmark(z.spmv_into, x, y)
