"""Table I: reconstruct the paper's sample matrix block."""

from conftest import emit

from repro.bench.experiments import table1
from repro.core.builder import build_cscv
from repro.geometry.projector_strip import strip_area_matrix


def test_table1_sample_block(benchmark):
    geom = table1.sample_geometry()
    rows, cols, vals = strip_area_matrix(geom)
    params = table1.sample_params()
    benchmark(build_cscv, rows, cols, vals, geom, params)
    emit(table1.run())
