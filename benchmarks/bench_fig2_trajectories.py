"""Fig 2: pixel trajectories in the projection domain."""

import numpy as np
from conftest import emit

from repro.bench.experiments import fig2
from repro.geometry.trajectory import pixel_trajectory


def test_fig2_trajectories(benchmark):
    geom = fig2.default_geometry()
    views = np.arange(geom.num_views)
    benchmark(pixel_trajectory, geom, 7, 7, views)
    emit(fig2.run())
