"""Fig 10: scalability in GFLOP/s (model curves + measured 1T anchor)."""

import numpy as np
from conftest import emit

from repro.bench.experiments import fig10
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import PAPER_TABLE3


def test_fig10_scalability_single(benchmark, quick_matrix):
    coo, geom = quick_matrix
    z = CSCVZMatrix.from_ct(coo, geom, PAPER_TABLE3[("skl", "cscv-z", "single")])
    m = CSCVMMatrix.from_data(z.data)
    x = np.ones(coo.shape[1], dtype=np.float32)
    y = np.zeros(coo.shape[0], dtype=np.float32)
    benchmark(m.spmv_into, x, y)
    emit(fig10.run(dtype=np.float32))


def test_fig10_scalability_double(benchmark, quick_matrix):
    coo, geom = quick_matrix
    coo = coo.astype(np.float64)
    z = CSCVZMatrix.from_ct(coo, geom, PAPER_TABLE3[("skl", "cscv-z", "double")])
    x = np.ones(coo.shape[1], dtype=np.float64)
    y = np.zeros(coo.shape[0], dtype=np.float64)
    benchmark(z.spmv_into, x, y)
    emit(fig10.run(dtype=np.float64, measure_host=False))
