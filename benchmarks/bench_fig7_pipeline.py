"""Fig 7: the whole CSCV-based SpMV process (stage breakdown)."""

import numpy as np
from conftest import emit

from repro.bench.experiments import fig7
from repro.core.builder import build_cscv
from repro.core.params import CSCVParams


def test_fig7_pipeline(benchmark, quick_matrix):
    coo, geom = quick_matrix
    params = CSCVParams(16, 16, 2)
    benchmark.pedantic(
        build_cscv, args=(coo.rows, coo.cols, coo.vals, geom, params, np.float32),
        rounds=3, iterations=1,
    )
    emit(fig7.run())
