"""Ablation: the VxG knob (S_VxG) — index compression vs padding.

Sweeps S_VxG and reports the trade the paper describes in IV-D: larger
groups shrink index data (toward the quoted 0.25x / 0.03x) and lengthen
the inner loop, at the cost of extra window-padding zeros.
"""

import numpy as np
from conftest import emit

from repro.bench.harness import measure_format
from repro.core.builder import build_cscv
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.core.vxg import index_data_ratio
from repro.utils.tables import Table


def test_ablation_vxg(benchmark, quick_matrix):
    coo, geom = quick_matrix
    t = Table(
        headers=["S_VxG", "R_nnzE", "VxGs", "idx vs CSCVE", "idx vs CSC", "GFLOP/s"],
        fmt=".3f", title="ablation: VxG size",
    )
    best = None
    for s_vxg in (1, 2, 4, 8):
        params = CSCVParams(8, 16, s_vxg)
        data = build_cscv(coo.rows, coo.cols, coo.vals, geom, params, np.float32)
        z = CSCVZMatrix(data)
        ratios = index_data_ratio(data.num_vxg, data.num_cscve, data.nnz)
        rec = measure_format(z, iterations=15, max_seconds=1.5)
        t.add_row(s_vxg, data.r_nnze, data.num_vxg,
                  ratios["vs_cscve"], ratios["vs_csc"], rec.gflops)
        if best is None or rec.gflops > best[1]:
            best = (s_vxg, rec.gflops, z)
    emit(t.render())
    emit(f"best S_VxG on this host: {best[0]} at {best[1]:.2f} GFLOP/s")

    x = np.ones(coo.shape[1], dtype=np.float32)
    y = np.zeros(coo.shape[0], dtype=np.float32)
    benchmark(best[2].spmv_into, x, y)
