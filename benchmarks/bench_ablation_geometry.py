"""Ablation: CSCV across imaging geometries / operators.

The paper claims IOBLR works for any line-integral imaging operator.
Build CSCV on (a) parallel beam, (b) fan beam, (c) the attenuated
(SPECT) operator, and show padding stays in the same band and SpMV
stays correct and fast.
"""

import numpy as np
from conftest import emit

from repro.bench.harness import measure_format
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.geometry.attenuated import attenuated_strip_matrix
from repro.geometry.fan_beam import FanBeamGeometry
from repro.geometry.parallel_beam import ParallelBeamGeometry
from repro.geometry.projector_fan import fan_strip_matrix
from repro.geometry.projector_strip import strip_area_matrix
from repro.sparse import COOMatrix, CSRMatrix
from repro.utils.tables import Table


def _cases():
    pg = ParallelBeamGeometry.for_image(48, num_views=96)
    fg = FanBeamGeometry.for_image(48, num_views=96)
    return [
        ("parallel", pg, strip_area_matrix(pg, dtype=np.float32)),
        ("fan-beam", fg, fan_strip_matrix(fg, dtype=np.float32)),
        ("attenuated (SPECT)", pg, attenuated_strip_matrix(pg, mu=0.03, dtype=np.float32)),
    ]


def test_ablation_geometry(benchmark):
    params = CSCVParams(8, 8, 2)
    t = Table(headers=["operator", "nnz", "R_nnzE", "GFLOP/s", "max rel err"],
              fmt=".3f", title="ablation: imaging operator")
    bench_target = None
    for name, geom, (rows, cols, vals) in _cases():
        coo = COOMatrix.from_coo(geom.shape, rows, cols, vals, dtype=np.float32)
        x = np.linspace(0.5, 1.5, coo.shape[1]).astype(np.float32)
        ref = CSRMatrix.from_coo_matrix(coo).spmv(x)
        z = CSCVZMatrix.from_ct(coo, geom, params)
        err = float(np.abs(z.spmv(x) - ref).max() / np.abs(ref).max())
        rec = measure_format(z, iterations=10, max_seconds=1.0)
        t.add_row(name, coo.nnz, z.r_nnze, rec.gflops, f"{err:.1e}")
        assert err < 5e-6
        if bench_target is None:
            bench_target = (z, x)
    emit(t.render())

    z, x = bench_target
    y = np.zeros(z.shape[0], dtype=np.float32)
    benchmark(z.spmv_into, x, y)
