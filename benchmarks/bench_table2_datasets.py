"""Table II: the matrix datasets (paper rows vs scaled builds)."""

import numpy as np
from conftest import emit

from repro.bench.experiments import table2
from repro.sparse.csr import CSRMatrix


def test_table2_datasets(benchmark, quick_matrix):
    coo, geom = quick_matrix
    csr = CSRMatrix.from_coo_matrix(coo)
    x = np.ones(coo.shape[1], dtype=np.float32)
    y = np.zeros(coo.shape[0], dtype=np.float32)
    benchmark(csr.spmv_into, x, y)
    emit(table2.run())
