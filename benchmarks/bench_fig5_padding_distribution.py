"""Fig 5: padding / CSCVE count / offset span by reference pixel."""

from conftest import emit

from repro.bench.experiments import fig5, table1
from repro.core.cscve import pixel_stats


def test_fig5_padding_distribution(benchmark):
    geom = table1.sample_geometry()
    block = table1.sample_block()
    s_vvec = table1.sample_params().s_vvec
    benchmark(pixel_stats, geom, block, (6, 6), block.reference_pixel, s_vvec)
    emit(fig5.run())
