"""Fig 8: R_nnzE and memory requirements over the parameter space."""

import numpy as np
from conftest import emit

from repro.bench.experiments import fig8
from repro.core.builder import build_cscv
from repro.core.params import CSCVParams


def test_fig8_parameter_memory(benchmark, quick_matrix):
    coo, geom = quick_matrix
    benchmark.pedantic(
        build_cscv,
        args=(coo.rows, coo.cols, coo.vals, geom, CSCVParams(8, 16, 2), np.float32),
        rounds=3, iterations=1,
    )
    # sweep the quick dataset; pass dataset="mixed-large" for paper scale
    emit(fig8.run(dataset="clinical-small"))
