"""Table III: CSCV parameter selection (section V-D autotune)."""

import numpy as np
from conftest import emit

from repro.bench.experiments import table3
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams


def test_table3_parameter_selection(benchmark, quick_matrix):
    coo, geom = quick_matrix
    z = CSCVZMatrix.from_ct(coo, geom, CSCVParams(16, 16, 2))
    x = np.ones(coo.shape[1], dtype=np.float32)
    y = np.zeros(coo.shape[0], dtype=np.float32)
    benchmark(z.spmv_into, x, y)
    # autotune on the quick dataset keeps bench wall-clock bounded; pass
    # dataset="mixed-large" to match the paper's selection matrix exactly.
    emit(table3.run(dataset="clinical-small", scorer="measure"))
