"""Ablation: CSCV vs the paper's Algorithm 2 (vectorized CSC).

Section III's motivating comparison, end to end: Algorithm 2 pays a
gather and a scatter per nonzero; CSCV pays none.  Measure both on the
same matrix and report the permutation-instruction tax.
"""

import numpy as np
from conftest import emit

from repro.bench.harness import measure_format
from repro.core.format_m import CSCVMMatrix
from repro.core.format_z import CSCVZMatrix
from repro.core.params import CSCVParams
from repro.perfmodel import SKL, instruction_profile
from repro.sparse import CSCMatrix, CSCVecMatrix
from repro.utils.tables import Table


def test_ablation_algorithm2(benchmark, quick_matrix):
    coo, geom = quick_matrix
    params = CSCVParams(8, 16, 2)
    z = CSCVZMatrix.from_ct(coo, geom, params)
    fmts = {
        "csc (Alg. 1, scalar)": CSCMatrix.from_coo(coo.shape, coo.rows, coo.cols, coo.vals),
        "csc-vec (Alg. 2)": CSCVecMatrix.from_coo(
            coo.shape, coo.rows, coo.cols, coo.vals, s_vvec=8
        ),
        "cscv-z (Alg. 3)": z,
        "cscv-m (Alg. 3 + mask)": CSCVMMatrix.from_data(z.data),
    }
    t = Table(
        headers=["algorithm", "GFLOP/s", "gathers/nnz", "scatters/nnz"],
        fmt=".2f", title="ablation: CSC vectorization strategies",
    )
    x = np.ones(coo.shape[1], dtype=np.float32)
    ref = None
    for name, fmt in fmts.items():
        yv = fmt.spmv(x)
        ref = yv if ref is None else ref
        assert np.abs(yv - ref).max() / np.abs(ref).max() < 1e-5
        rec = measure_format(fmt, iterations=8, max_seconds=1.5)
        prof = instruction_profile(fmt, SKL) if fmt.name in (
            "csc", "cscv-z", "cscv-m") else None
        g = prof.gather_elems / coo.nnz if prof else 1.0
        s = prof.scatter_elems / coo.nnz if prof else 1.0
        t.add_row(name, rec.gflops, g, s)
    t.mark_extremes(1)
    emit(t.render())

    y = np.zeros(coo.shape[0], dtype=np.float32)
    benchmark(z.spmv_into, x, y)
