"""Fig 4: SIMD efficiency under bin-major / view-major / IOBLR layouts."""

from conftest import emit

from repro.bench.experiments import fig4, table1
from repro.core.ioblr import layout_simd_efficiency


def test_fig4_simd_efficiency(benchmark):
    geom = table1.sample_geometry()
    block = table1.sample_block()
    s_vvec = table1.sample_params().s_vvec
    benchmark(layout_simd_efficiency, geom, block, (7, 7), s_vvec, "ioblr")
    emit(fig4.run())
