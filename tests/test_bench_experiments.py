"""Tests for the experiment modules: each regenerated table/figure must
render and satisfy the paper's qualitative claims."""

import numpy as np
import pytest

from repro.bench.datasets import DATASETS, get_dataset
from repro.bench.experiments import (
    fig1,
    fig2,
    fig4,
    fig5,
    fig6,
    fig7,
    fig10,
    table1,
    table2,
)
from repro.bench.harness import measure_format, run_suite
from repro.sparse.csr import CSRMatrix


class TestDatasets:
    def test_registry_has_four(self):
        assert len(DATASETS) == 4

    def test_quick_dataset_loads_and_caches(self):
        ds = get_dataset("clinical-small")
        coo1, geom1 = ds.load()
        coo2, geom2 = ds.load()
        assert coo1.nnz == coo2.nnz
        assert geom1 == geom2

    def test_density_matches_paper_within_band(self):
        from repro.bench.experiments.table2 import density_match

        paper, ours = density_match("clinical-small")
        assert abs(ours - paper) / paper < 0.25

    def test_limited_angle_dataset_span(self):
        ds = get_dataset("micro-limited")
        geom = ds.geometry()
        span = geom.delta_angle_deg * geom.num_views
        assert span <= 31.0  # mirrors the paper's limited-angle 2048 case

    def test_unknown_dataset(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            get_dataset("nope")


class TestHarness:
    def test_measure_format_record(self):
        coo, geom = get_dataset("clinical-small").load()
        rec = measure_format(CSRMatrix.from_coo_matrix(coo), iterations=3,
                             max_seconds=0.5)
        assert rec.gflops > 0 and rec.seconds > 0
        assert rec.r_em(100.0) == pytest.approx(rec.bw_gbs / 100.0)

    def test_run_suite_all_formats(self):
        coo, geom = get_dataset("clinical-small").load()
        recs = run_suite(coo, geom, ["csr", "cscv-z"], iterations=3, max_seconds=0.5)
        assert {r.format_name for r in recs} == {"csr", "cscv-z"}


class TestTable1:
    def test_matches_paper_fields(self):
        geom = table1.sample_geometry()
        assert geom.num_bins == 38
        assert geom.delta_angle_deg == 4.0
        block = table1.sample_block()
        assert block.v0 * geom.delta_angle_deg == 32.0
        assert (block.i0, block.i1 - 1) == (5, 9)

    def test_report_renders(self):
        out = table1.run()
        assert "S_VVec" in out and "32" in out


class TestTable2:
    def test_report_has_paper_and_ours_rows(self):
        out = table2.run(names=["clinical-small"])
        assert "paper:512 x 512" in out and "ours:clinical-small" in out


class TestFigures:
    def test_fig1_sinogram_nontrivial(self):
        out = fig1.run(image_size=32, num_views=24)
        assert "sinogram" in out

    def test_fig2_adjacent_share_most(self):
        out = fig2.run()
        assert "red-blue" in out

    def test_fig4_layout_ordering(self):
        bin_major = fig4.mean_efficiency("bin-major")
        view_major = fig4.mean_efficiency("view-major")
        ioblr = fig4.mean_efficiency("ioblr")
        assert bin_major < view_major < ioblr
        assert ioblr > 4.5  # paper: 7-8 for interior pixels

    def test_fig5_center_reference_good(self):
        assert fig5.center_is_good_reference()

    def test_fig6_ratios_reported(self):
        out = fig6.run()
        assert "index volume" in out

    def test_fig7_stage_times(self):
        times = fig7.stage_times()
        assert times["convert"] > 0 and times["iteration"] > 0
        # conversion is a one-off cost within ~1000 iterations' budget
        assert times["convert"] / times["iteration"] < 2000

    def test_fig10_model_shapes(self):
        curves = fig10.model_curves()
        skl_z = curves[("skl", "cscv-z")]
        skl_m = curves[("skl", "cscv-m")]
        # Z leads at 1 thread, M leads at 64
        assert skl_z[1] > skl_m[1]
        assert skl_m[64] > skl_z[64]
        # Zen2 M nearly linear to 64T (paper's soft-vexpand observation)
        zen2_m = curves[("zen2", "cscv-m")]
        assert zen2_m[64] / zen2_m[1] > 30
